//! Offline stand-in for the `bytes` crate: the [`Bytes`] type only, an
//! immutable reference-counted byte buffer whose clones share storage.
#![allow(clippy::all)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap a static byte slice (copies in this shim; the API shape is
    /// what matters for compatibility).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self(Arc::from(bytes))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The contents as a slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self(Arc::from(s.into_bytes()))
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Self(Arc::from(s.as_bytes()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self(Arc::from(s))
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Self(Arc::from(&s[..]))
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sharing() {
        let b: Bytes = "hello".to_string().into();
        let c = b.clone();
        assert_eq!(&c[..], b"hello");
        assert_eq!(c.len(), 5);
        let s: Bytes = (&b"xy"[..]).into();
        assert_eq!(&s[..], b"xy");
        assert_eq!(Bytes::from_static(b"z").len(), 1);
        assert_eq!(Bytes::copy_from_slice(b"ab"), Bytes::from("ab"));
    }
}

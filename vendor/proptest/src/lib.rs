//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`strategy::Strategy`]
//! trait with `prop_map`/`prop_recursive`/`boxed`, range and `any::<T>()`
//! strategies, regex-pattern string strategies (character classes with
//! `{m,n}` counts plus `\PC`), `prop::collection::vec`,
//! `prop::sample::select`, `Just`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert*!` / `prop_assume!` macros.
//!
//! Differences from upstream: generation is seeded per-test from the test
//! name (fully deterministic across runs), there is no shrinking, and
//! failed assertions panic directly with the offending message.
#![allow(clippy::all)]

pub mod rng {
    /// Deterministic splitmix64 generator used for all test data.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a 64-bit value.
        pub fn seed(seed: u64) -> Self {
            Self { state: seed ^ 0x6A09_E667_F3BC_C909 }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::rng::TestRng;
    use std::ops::Range;
    use std::sync::Arc;

    /// A generator of test values.
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform produced values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase into a cheaply-cloneable boxed strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Build recursive structures: `f` maps a strategy for depth-n
        /// values to a strategy for depth-(n+1) values. `depth` bounds
        /// nesting; the size hints are accepted for API compatibility.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = f(strat).boxed();
                strat = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            strat
        }
    }

    /// Clonable, type-erased strategy (backed by an `Arc`).
    pub struct BoxedStrategy<V>(Arc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            Self(Arc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between several strategies of the same value type.
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build from a non-empty list of options.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "Union requires at least one option");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for Range<char> {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            let span = self.end as u32 - self.start as u32;
            char::from_u32(self.start as u32 + rng.below(span as u64) as u32).unwrap_or(self.start)
        }
    }

    /// String slices are regex-like patterns generating matching strings.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            super::pattern::generate(self, rng)
        }
    }

    impl Strategy for String {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            super::pattern::generate(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

    /// Types with a canonical [`any`] strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::from_bits(rng.next_u64())
        }
    }

    /// Strategy for an arbitrary value of `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

mod pattern {
    //! A miniature generator for the regex-like string patterns the tests
    //! use: sequences of literals, character classes `[...]` (with ranges
    //! and escapes), and `\PC` (any non-control char), each optionally
    //! followed by a `{m,n}` or `{m}` repetition count.

    use super::rng::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
        NonControl,
    }

    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            chars[i]
                        };
                        i += 1;
                        // `x-y` range (a trailing `-` is a literal).
                        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                            i += 1;
                            let hi = if chars[i] == '\\' {
                                i += 1;
                                unescape(chars[i])
                            } else {
                                chars[i]
                            };
                            i += 1;
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    i += 1; // closing ']'
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    if i < chars.len() && chars[i] == 'P' && chars.get(i + 1) == Some(&'C') {
                        i += 2;
                        Atom::NonControl
                    } else {
                        let c = unescape(chars[i]);
                        i += 1;
                        Atom::Literal(c)
                    }
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                i += 1;
                let mut lo = 0u32;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    lo = lo * 10 + chars[i].to_digit(10).unwrap();
                    i += 1;
                }
                let hi = if i < chars.len() && chars[i] == ',' {
                    i += 1;
                    let mut h = 0u32;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        h = h * 10 + chars[i].to_digit(10).unwrap();
                        i += 1;
                    }
                    h
                } else {
                    lo
                };
                i += 1; // closing '}'
                (lo, hi)
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    /// Sampling pool for `\PC`: mostly printable ASCII with a sprinkle of
    /// non-ASCII codepoints so unicode paths get exercised.
    const NON_CONTROL_EXTRA: &[char] = &['é', '中', 'Ω', '→', '𝕊', 'ß', '¥', '☃'];

    fn gen_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Class(ranges) => {
                let r = ranges[rng.below(ranges.len() as u64) as usize];
                let span = r.1 as u32 - r.0 as u32 + 1;
                char::from_u32(r.0 as u32 + rng.below(span as u64) as u32).unwrap_or(r.0)
            }
            Atom::NonControl => {
                if rng.below(8) == 0 {
                    NON_CONTROL_EXTRA[rng.below(NON_CONTROL_EXTRA.len() as u64) as usize]
                } else {
                    // Printable ASCII: 0x20..=0x7E.
                    char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap()
                }
            }
        }
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as u32;
            for _ in 0..n {
                out.push(gen_atom(&piece.atom, rng));
            }
        }
        out
    }
}

pub mod collection {
    use super::rng::TestRng;
    use super::strategy::Strategy;
    use std::ops::Range;

    /// Size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { min: r.start, max: r.end - 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    /// Strategy for vectors of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate a `Vec` whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let n = self.size.min + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::rng::TestRng;
    use super::strategy::Strategy;

    /// Strategy picking uniformly from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    /// Pick one of `options` uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod test_runner {
    use super::rng::TestRng;

    /// Number of cases each property runs. Overridable (lower only makes
    /// sense for expensive properties) via `PROPTEST_CASES`.
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
    }

    /// Run `body` for each case with a deterministic per-test RNG.
    pub fn run(test_name: &str, mut body: impl FnMut(&mut TestRng)) {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        for case in 0..cases() {
            let mut rng = TestRng::seed(seed.wrapping_add(case as u64));
            body(&mut rng);
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec`, `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(concat!(module_path!(), "::", stringify!($name)), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                });
            }
        )*
    };
}

/// Assert a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_generation_matches_shape() {
        crate::test_runner::run("pattern_shape", |rng| {
            let s = Strategy::generate(&"[a-z_][a-z0-9_]{0,8}", rng);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            let t = Strategy::generate(&"\\PC{0,60}", rng);
            assert!(t.chars().count() <= 60);
            assert!(t.chars().all(|c| !c.is_control()));
        });
    }

    proptest! {
        #[test]
        fn macro_roundtrip(xs in prop::collection::vec(0u8..8, 1..20), b in any::<bool>()) {
            prop_assert!(xs.len() >= 1 && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 8));
            prop_assert_eq!(b || !b, true);
        }

        #[test]
        fn oneof_and_select(c in prop::sample::select(vec!['a', 'b']), n in prop_oneof![Just(1u32), 2u32..5]) {
            prop_assert!(c == 'a' || c == 'b');
            prop_assert!((1..5).contains(&n));
        }
    }
}

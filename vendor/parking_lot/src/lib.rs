//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `parking_lot` to this shim: the same `Mutex`/`RwLock` API the
//! repo uses, backed by `std::sync` primitives with poisoning unwrapped
//! (parking_lot locks are not poisoned, so recovering the guard on a
//! poisoned std lock reproduces the same semantics).
#![allow(clippy::all)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}

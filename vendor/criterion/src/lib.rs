//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the API the benches use (`benchmark_group`, `Throughput`,
//! `BenchmarkId`, `Bencher::iter`/`iter_with_setup`, `black_box`,
//! `criterion_group!`/`criterion_main!`) but runs each routine a handful
//! of times and prints the best wall-clock time instead of doing
//! statistical analysis. Good enough to keep the bench targets compiling
//! and runnable offline; not a measurement-grade harness.
#![allow(clippy::all)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Iterations each routine runs in this shim (min time is reported).
const RUNS: u32 = 3;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { _c: self, group: name.to_string(), throughput: None }
    }

    /// Benchmark a single function outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (messages, samples, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name with a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    group: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores time budgets.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Set the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.group, name), self.throughput, &mut f);
        self
    }

    /// Benchmark a closure over one input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(&format!("{}/{}", self.group, id.id), self.throughput, &mut wrapped);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, f: &mut F) {
    let mut b = Bencher { best_ns: u64::MAX };
    for _ in 0..RUNS {
        f(&mut b);
    }
    let ns = b.best_ns;
    if ns == u64::MAX {
        println!("  {label}: no measurement");
        return;
    }
    let rate = match throughput {
        Some(Throughput::Elements(n)) if ns > 0 => {
            format!(" ({:.0} elem/s)", n as f64 / (ns as f64 / 1e9))
        }
        Some(Throughput::Bytes(n)) if ns > 0 => {
            format!(" ({:.0} B/s)", n as f64 / (ns as f64 / 1e9))
        }
        _ => String::new(),
    };
    println!("  {label}: {:.3} ms{rate}", ns as f64 / 1e6);
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    best_ns: u64,
}

impl Bencher {
    /// Time a routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.record(start.elapsed().as_nanos() as u64);
    }

    /// Time a routine whose setup should not be measured.
    pub fn iter_with_setup<S, O, SF, R>(&mut self, mut setup: SF, mut routine: R)
    where
        SF: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.record(start.elapsed().as_nanos() as u64);
    }

    fn record(&mut self, ns: u64) {
        self.best_ns = self.best_ns.min(ns);
    }
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_routines() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        let mut count = 0u32;
        g.throughput(Throughput::Elements(10)).bench_function("counts", |b| {
            b.iter(|| count += 1);
        });
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &n| {
            b.iter_with_setup(|| n, |n| n * 2);
        });
        g.finish();
        assert!(count >= 1);
    }
}

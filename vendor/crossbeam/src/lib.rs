//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module surface the repo uses is provided: bounded
//! MPMC channels with non-blocking `try_send`/`try_recv`/`try_iter` and a
//! blocking `recv`, with disconnect detection on both ends.
#![allow(clippy::all)]

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        not_empty: Condvar,
    }

    struct State<T> {
        buf: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::try_send`].
    pub enum TrySendError<T> {
        /// The channel buffer is full; the message is handed back.
        Full(T),
        /// All receivers are gone; the message is handed back.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// No message queued and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a bounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create a bounded channel with room for `cap` queued messages.
    /// A capacity of zero is treated as one (this shim has no rendezvous
    /// mode; the repo only uses buffered channels).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                buf: VecDeque::new(),
                cap: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Queue a message without blocking.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.queue.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if st.buf.len() >= st.cap {
                return Err(TrySendError::Full(msg));
            }
            st.buf.push_back(msg);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.queue.lock().unwrap();
            match st.buf.pop_front() {
                Some(m) => Ok(m),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Block until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.queue.lock().unwrap();
            loop {
                if let Some(m) = st.buf.pop_front() {
                    return Ok(m);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        /// Iterator draining everything currently queued, non-blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().buf.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn bounded_fills_and_drains() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_detected_on_both_ends() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
        let (tx, rx) = bounded::<u32>(1);
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert!(rx.recv().is_err());
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic `StdRng` (splitmix64 core, not the real
//! ChaCha12 — streams differ from upstream but are stable across runs and
//! platforms, which is all this workspace relies on), the `SeedableRng`
//! and `Rng` traits, and `gen_range` over the primitive range types the
//! repo uses (`f64`, `u32`, `u64`, `i64`, `usize`).
#![allow(clippy::all)]

use std::ops::Range;

/// Trait for RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange {
    /// The value type produced.
    type Output;
    /// Draw a uniform value from the range using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform value of type `T` (bool or f64 in this shim).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types drawable via [`Rng::gen`].
pub trait Standard {
    /// Draw a uniform value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn uniform_u64(rng: &mut dyn RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Modulo is biased for huge spans, but deterministically so; fine here.
    rng.next_u64() % span
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

macro_rules! int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $ty
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard RNG (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 step.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen_range(35.0..55.0);
            assert!((35.0..55.0).contains(&x));
            assert_eq!(x, b.gen_range(35.0..55.0));
            let n = a.gen_range(1u32..99_999);
            assert!((1..99_999).contains(&n));
            assert_eq!(n, b.gen_range(1u32..99_999));
            let i = a.gen_range(0usize..7);
            assert!(i < 7);
            assert_eq!(i, b.gen_range(0usize..7));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32)
            .filter(|_| a.gen_range(0u64..1_000_000) == b.gen_range(0u64..1_000_000))
            .count();
        assert!(same < 4);
    }
}

//! # shasta-mon
//!
//! A from-scratch Rust reproduction of *"Shasta Log Aggregation,
//! Monitoring and Alerting in HPC Environments with Grafana Loki and
//! ServiceNow"* (Bautista, Sukhija, Deng — IEEE CLUSTER 2022).
//!
//! The paper describes the monitoring pipeline NERSC operates around the
//! Perlmutter (HPE Shasta) system. This workspace rebuilds every box of
//! its Figure 1 as an independent, tested Rust crate, and wires them into
//! the integrated framework:
//!
//! | Paper component | Crate |
//! |---|---|
//! | Shasta xnames | [`xname`] |
//! | Redfish events + HMS collector | [`redfish`] |
//! | Perlmutter machine + fabric manager | [`shasta`] |
//! | Kafka | [`bus`] |
//! | Telemetry API | [`telemetry`] |
//! | LogQL | [`logql`] |
//! | Grafana Loki (+ Ruler) | [`loki`] |
//! | VictoriaMetrics (+ vmagent, vmalert) | [`tsdb`] |
//! | Prometheus exporters | [`exporters`] |
//! | Alertmanager (+ Slack) | [`alertmanager`] |
//! | ServiceNow event management | [`servicenow`] |
//! | Elasticsearch-style baseline | [`baseline`] |
//! | Self-telemetry: metrics registry + tracing | [`obs`] |
//! | The integrated framework (OMNI) | [`core`] |
//!
//! ## Quickstart
//!
//! ```
//! use shasta_mon::core::{MonitoringStack, StackConfig};
//! use shasta_mon::shasta::LeakZone;
//!
//! let mut stack = MonitoringStack::new(StackConfig::default());
//! // Simulate one quiet minute, then the paper's leak scenario.
//! stack.step(60_000_000_000, 10, 10);
//! let chassis = stack.machine.topology().chassis()[0];
//! stack.inject_leak(chassis, 'A', LeakZone::Front);
//! for _ in 0..6 {
//!     stack.step(60_000_000_000, 10, 10);
//! }
//! assert!(!stack.slack.is_empty());         // Figure 6's Slack alert
//! assert!(!stack.servicenow.incidents().is_empty()); // SN incident
//! ```

pub use omni_alertmanager as alertmanager;
pub use omni_baseline as baseline;
pub use omni_bus as bus;
pub use omni_core as core;
pub use omni_exporters as exporters;
pub use omni_json as json;
pub use omni_logql as logql;
pub use omni_loki as loki;
pub use omni_model as model;
pub use omni_obs as obs;
pub use omni_redfish as redfish;
pub use omni_servicenow as servicenow;
pub use omni_shasta as shasta;
pub use omni_telemetry as telemetry;
pub use omni_tsdb as tsdb;
pub use omni_xname as xname;

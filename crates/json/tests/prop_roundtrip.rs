//! Property tests: any value the model can represent survives a
//! serialize → parse roundtrip, and the parser never panics on arbitrary
//! input.

use omni_json::{parse, Json};
use proptest::prelude::*;

/// Strategy producing arbitrary JSON values (finite numbers only — JSON has
/// no NaN/Inf, and our serializer maps them to null by design).
fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        // Constrain to integers and simple fractions so float text
        // roundtrips exactly.
        (-1_000_000i64..1_000_000).prop_map(|n| Json::Number(n as f64)),
        (-1000i64..1000).prop_map(|n| Json::Number(n as f64 / 4.0)),
        "[a-zA-Z0-9 _\\-\\.\"\\\\\n\t\u{e9}\u{4e2d}]{0,20}".prop_map(Json::String),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Json::Array),
            prop::collection::vec(("[a-z]{1,8}", inner), 0..6).prop_map(Json::Object),
        ]
    })
}

proptest! {
    #[test]
    fn dump_parse_roundtrip(v in arb_json()) {
        let text = v.dump();
        let back = parse(&text).expect("serialized JSON must reparse");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn pretty_parse_roundtrip(v in arb_json()) {
        let text = v.pretty(2);
        let back = parse(&text).expect("pretty JSON must reparse");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,200}") {
        let _ = parse(&s);
    }

    #[test]
    fn parser_never_panics_jsonish(s in "[{}\\[\\],:\"0-9a-z\\\\ .\\-+eE]{0,100}") {
        let _ = parse(&s);
    }
}

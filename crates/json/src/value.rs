//! The JSON value model and serializers.

use std::fmt;

/// A type-mismatch error from a mutation that expected a specific
/// variant (e.g. [`Json::set`] on a non-object).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonTypeError {
    /// The variant the operation needed.
    pub expected: &'static str,
    /// The variant it found.
    pub found: &'static str,
}

impl fmt::Display for JsonTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected a JSON {}, found a {}", self.expected, self.found)
    }
}

impl std::error::Error for JsonTypeError {}

/// A JSON value. Objects are stored as insertion-ordered `(key, value)`
/// vectors so serialization is deterministic — necessary for reproducing
/// the paper's Figure 3 payload byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64, like most dynamic JSON libraries).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with preserved key order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for an empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn idx(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Array(items) => items.get(i),
            _ => None,
        }
    }

    /// Insert or replace a field on an object. On a non-object the value
    /// is left untouched and `Err` names the actual variant — callers
    /// often hold values parsed from external payloads (Redfish events,
    /// bus messages), where a scalar in an object position is a data
    /// error, not a programming error, and must not bring the process down.
    pub fn set(&mut self, key: impl Into<String>, value: Json) -> Result<(), JsonTypeError> {
        let Json::Object(fields) = self else {
            return Err(JsonTypeError { expected: "object", found: self.type_name() });
        };
        let key = key.into();
        if let Some(slot) = fields.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            fields.push((key, value));
        }
        Ok(())
    }

    /// The variant's name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Number(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// Remove a field from an object, returning it if present.
    pub fn unset(&mut self, key: &str) -> Option<Json> {
        if let Json::Object(fields) = self {
            if let Some(pos) = fields.iter().position(|(k, _)| k == key) {
                return Some(fields.remove(pos).1);
            }
        }
        None
    }

    /// RFC 6901-flavoured pointer access: `/Events/0/Severity`.
    pub fn pointer(&self, ptr: &str) -> Option<&Json> {
        if ptr.is_empty() {
            return Some(self);
        }
        let mut cur = self;
        for token in ptr.trim_start_matches('/').split('/') {
            let token = token.replace("~1", "/").replace("~0", "~");
            cur = match cur {
                Json::Object(_) => cur.get(&token)?,
                Json::Array(_) => cur.idx(token.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array contents, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Compact serialization (no whitespace), matching the paper's inline
    /// log-content strings.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with the given indent width.
    pub fn pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => out.push_str(&format_number(*n)),
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !fields.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

/// Serialize a number the way JSON expects: integers without a trailing
/// `.0`, others via the shortest roundtrip representation Rust provides.
fn format_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no Inf/NaN; serialize as null like most implementations.
        return "null".to_string();
    }
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.dump())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Number(n)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Self {
        Json::Number(n as f64)
    }
}
impl From<i32> for Json {
    fn from(n: i32) -> Self {
        Json::Number(n as f64)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Number(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Number(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::String(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::String(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Flatten a JSON value into `(key, scalar-as-string)` pairs the way Loki's
/// `json` stage does: nested object keys are joined with `_`, array
/// elements with their index, and scalar leaves are rendered as bare
/// strings (strings unquoted, numbers/bools in JSON form).
///
/// ```
/// use omni_json::{flatten, parse};
/// let v = parse(r#"{"a":{"b":1},"c":[true,"x"]}"#).unwrap();
/// assert_eq!(flatten(&v), vec![
///     ("a_b".to_string(), "1".to_string()),
///     ("c_0".to_string(), "true".to_string()),
///     ("c_1".to_string(), "x".to_string()),
/// ]);
/// ```
pub fn flatten(value: &Json) -> Vec<(String, String)> {
    let mut out = Vec::new();
    flatten_into("", value, &mut out);
    out
}

fn flatten_into(prefix: &str, value: &Json, out: &mut Vec<(String, String)>) {
    let join = |prefix: &str, key: &str| {
        if prefix.is_empty() {
            sanitize_label_name(key)
        } else {
            format!("{prefix}_{}", sanitize_label_name(key))
        }
    };
    match value {
        Json::Object(fields) => {
            for (k, v) in fields {
                flatten_into(&join(prefix, k), v, out);
            }
        }
        Json::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                // Array indices join without sanitization: `c[0]` -> `c_0`.
                let key = if prefix.is_empty() { format!("_{i}") } else { format!("{prefix}_{i}") };
                flatten_into(&key, v, out);
            }
        }
        Json::Null => {}
        Json::String(s) => out.push((prefix.to_string(), s.clone())),
        other => out.push((prefix.to_string(), other.dump())),
    }
}

/// Make a JSON key a valid Prometheus/Loki label name: non-alphanumeric
/// characters become `_`, and a leading digit is prefixed with `_`.
pub fn sanitize_label_name(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for (i, c) in key.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn get_set_unset() {
        let mut v = Json::object();
        v.set("a", Json::from(1)).unwrap();
        v.set("a", Json::from(2)).unwrap();
        v.set("b", Json::from("x")).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(2.0));
        assert_eq!(v.unset("b"), Some(Json::String("x".into())));
        assert_eq!(v.unset("b"), None);
    }

    #[test]
    fn set_on_non_object_errors_without_panicking() {
        for mut v in [Json::Null, Json::from(3), Json::from("s"), Json::from(vec![1, 2])] {
            let before = v.clone();
            let err = v.set("k", Json::Null).unwrap_err();
            assert_eq!(err.expected, "object");
            assert_eq!(err.found, before.type_name());
            assert_eq!(v, before, "failed set must leave the value untouched");
        }
        assert_eq!(
            Json::from(3).set("k", Json::Null).unwrap_err().to_string(),
            "expected a JSON object, found a number"
        );
    }

    #[test]
    fn pointer_paths() {
        let v = parse(r#"{"Events":[{"Severity":"Warning"}],"a~b":{"x/y":3}}"#).unwrap();
        assert_eq!(v.pointer("/Events/0/Severity").and_then(Json::as_str), Some("Warning"));
        assert_eq!(v.pointer("/a~0b/x~1y").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.pointer("/nope"), None);
        assert_eq!(v.pointer(""), Some(&v));
    }

    #[test]
    fn dump_is_compact_and_ordered() {
        let v = parse(r#"{"z": 1, "a": [true, null]}"#).unwrap();
        assert_eq!(v.dump(), r#"{"z":1,"a":[true,null]}"#);
    }

    #[test]
    fn pretty_indents() {
        let v = parse(r#"{"a":[1]}"#).unwrap();
        assert_eq!(v.pretty(2), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(Json::from(42).dump(), "42");
        assert_eq!(Json::from(2.5).dump(), "2.5");
        assert_eq!(Json::from(-7i64).dump(), "-7");
        assert_eq!(Json::Number(f64::NAN).dump(), "null");
    }

    #[test]
    fn string_escaping() {
        let v = Json::from("a\"b\\c\nd\te\u{01}");
        assert_eq!(v.dump(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn flatten_matches_loki_json_stage() {
        let v = parse(r#"{"Severity":"Warning","Origin":{"@odata.id":"/redfish/v1"}}"#).unwrap();
        let flat = flatten(&v);
        assert_eq!(
            flat,
            vec![
                ("Severity".to_string(), "Warning".to_string()),
                ("Origin__odata_id".to_string(), "/redfish/v1".to_string()),
            ]
        );
    }

    #[test]
    fn flatten_skips_nulls() {
        let v = parse(r#"{"a":null,"b":1}"#).unwrap();
        assert_eq!(flatten(&v), vec![("b".to_string(), "1".to_string())]);
    }

    #[test]
    fn sanitize_label_names() {
        assert_eq!(sanitize_label_name("MessageId"), "MessageId");
        assert_eq!(sanitize_label_name("@odata.id"), "_odata_id");
        assert_eq!(sanitize_label_name("0bad"), "_0bad");
        assert_eq!(sanitize_label_name(""), "_");
    }
}

//! From-scratch JSON support for the shasta-mon stack.
//!
//! The paper's pipeline is soaked in JSON: the Telemetry API publishes
//! Redfish events "in a nested JSON format" (Fig 2), the bridge clients
//! reshape them into Loki push payloads (Fig 3), and LogQL's `json` stage
//! re-parses log lines into labels at query time. This crate implements the
//! whole format without external dependencies:
//!
//! * [`Json`] — a value model whose objects preserve insertion order, so
//!   serialized output is stable and can be compared byte-for-byte against
//!   the paper's figures.
//! * [`parse`] — a strict recursive-descent parser (full escape handling,
//!   surrogate pairs, nesting-depth guard).
//! * [`Json::dump`] / [`Json::pretty`] — compact and indented serializers.
//! * [`Json::pointer`] — RFC 6901-style path access.
//! * [`flatten`] — nested-object flattening with `_`-joined keys, matching
//!   the behaviour of Loki's `json` stage.

mod parse;
mod value;

pub use parse::{parse, JsonParseError};
pub use value::{flatten, Json, JsonTypeError};

/// Convenience macro for building [`Json`] literals.
///
/// ```
/// use omni_json::{jsonv, Json};
/// let v = jsonv!({
///     "Severity": "Warning",
///     "Count": 1,
///     "Args": ["A", "Front"],
/// });
/// assert_eq!(v.get("Count").and_then(Json::as_f64), Some(1.0));
/// ```
#[macro_export]
macro_rules! jsonv {
    (null) => { $crate::Json::Null };
    ([ $( $elem:tt ),* $(,)? ]) => {
        $crate::Json::Array(vec![ $( $crate::jsonv!($elem) ),* ])
    };
    ({ $( $key:literal : $val:tt ),* $(,)? }) => {
        $crate::Json::Object(vec![ $( ($key.to_string(), $crate::jsonv!($val)) ),* ])
    };
    ($other:expr) => { $crate::Json::from($other) };
}

#[cfg(test)]
mod macro_tests {
    use crate::Json;

    #[test]
    fn literal_builder() {
        let v = jsonv!({
            "a": 1,
            "b": [true, null, "x"],
            "c": {"d": 2.5},
        });
        assert_eq!(v.pointer("/b/0"), Some(&Json::Bool(true)));
        assert_eq!(v.pointer("/b/1"), Some(&Json::Null));
        assert_eq!(v.pointer("/c/d").and_then(Json::as_f64), Some(2.5));
    }
}

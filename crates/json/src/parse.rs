//! Strict recursive-descent JSON parser.

use crate::Json;
use std::fmt;

/// Maximum nesting depth — a guard against stack exhaustion on adversarial
/// log lines fed through the LogQL `json` stage.
const MAX_DEPTH: usize = 128;

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonParseError {
        JsonParseError { offset: self.pos, message: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("invalid literal, expected {lit}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            } else if (0xdc00..0xe000).contains(&hi) {
                                return Err(self.err("unexpected low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar. The input is a &str so the
                    // bytes are valid UTF-8 by construction.
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bytes[self.pos];
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: either a single 0 or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("missing digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("missing digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Number).map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_redfish_event() {
        // The Figure 2 payload shape.
        let raw = r#"{
            "metrics": {
                "messages": [{
                    "Context": "x1203c1b0",
                    "Events": [{
                        "EventTimestamp": "2022-03-03T01:47:57+00:00",
                        "Severity": "Warning",
                        "Message": "Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak.",
                        "MessageId": "CrayAlerts.1.0.CabinetLeakDetected",
                        "MessageArgs": ["A, Front"],
                        "OriginOfCondition": {"@odata.id": "/redfish/v1/Chassis/Enclosure"}
                    }]
                }]
            }
        }"#;
        let v = parse(raw).unwrap();
        assert_eq!(
            v.pointer("/metrics/messages/0/Context").and_then(Json::as_str),
            Some("x1203c1b0")
        );
        assert_eq!(
            v.pointer("/metrics/messages/0/Events/0/MessageId").and_then(Json::as_str),
            Some("CrayAlerts.1.0.CabinetLeakDetected")
        );
    }

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Number(-1250.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn escapes_and_unicode() {
        assert_eq!(parse(r#""a\nb\t\"c\"""#).unwrap(), Json::String("a\nb\t\"c\"".into()));
        assert_eq!(parse(r#""A""#).unwrap(), Json::String("A".into()));
        // Surrogate pair: 💩 U+1F4A9
        assert_eq!(parse(r#""💩""#).unwrap(), Json::String("💩".into()));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\udca9""#).is_err());
    }

    #[test]
    fn rejects_malformed() {
        for s in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{a:1}",
            "01",
            "1.",
            "1e",
            "\"\x01\"",
            "nulll",
            "[]x",
            "{\"a\":1,}",
        ] {
            assert!(parse(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn depth_guard() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn whitespace_tolerance() {
        let v = parse(" \t\n{ \"a\" : [ 1 , 2 ] } \r\n").unwrap();
        assert_eq!(v.pointer("/a/1").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn roundtrip_dump_parse() {
        let original = r#"{"a":[1,2.5,null,true,"x\ny"],"b":{"c":{}}}"#;
        let v = parse(original).unwrap();
        assert_eq!(parse(&v.dump()).unwrap(), v);
    }

    #[test]
    fn utf8_passthrough() {
        let v = parse(r#""naïve — 日本語""#).unwrap();
        assert_eq!(v.as_str(), Some("naïve — 日本語"));
    }
}

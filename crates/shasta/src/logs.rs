//! Syslog and container-log generators.
//!
//! OMNI's dominant ingest volume is plain logs ("Syslog, container logs,
//! and redfish events that are stored in Kafka"). These generators
//! produce realistic, deterministic line mixes for the throughput and
//! compression experiments (C1, C2) and for soak-testing the Loki path.

use omni_model::{format_iso8601, SimClock};
use omni_xname::XName;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Message templates with weights; `{}` slots are filled per line.
const SYSLOG_TEMPLATES: &[(&str, u32)] = &[
    ("systemd[1]: Started Session {} of user nersc.", 20),
    ("sshd[{}]: Accepted publickey for user{} from 10.10.{}.{} port 50022", 12),
    ("kernel: [{}] EDAC MC0: 1 CE memory read error on CPU_SrcID#0_MC#0", 6),
    ("slurmd[{}]: launch task StepId={}.0 request from UID 6{}", 18),
    ("slurmd[{}]: done with job {}", 18),
    ("kernel: [{}] nvidia-smi: GPU {} temperature within range", 8),
    ("munged[{}]: Decoded credential for UID {}", 10),
    ("ntpd[{}]: adjusting local clock by {}.{}s", 4),
    ("lustre: {}.{}: Connection restored to MGS (at 10.100.0.{})", 3),
    ("kernel: [{}] BUG: soft lockup - CPU#{} stuck for 23s!", 1),
];

const CONTAINER_TEMPLATES: &[(&str, u32)] = &[
    (
        r#"{{"level":"info","msg":"request handled","path":"/apis/telemetry/v1/stream","code":200,"dur_ms":{}}}"#,
        30,
    ),
    (r#"{{"level":"info","msg":"scrape ok","target":"node-exporter-{}","samples":{}}}"#, 25),
    (
        r#"{{"level":"warn","msg":"retrying kafka publish","topic":"cray-telemetry-temperature","attempt":{}}}"#,
        6,
    ),
    (r#"{{"level":"info","msg":"chunk flushed","stream_count":{},"bytes":{}}}"#, 15),
    (r#"{{"level":"error","msg":"connection reset by peer","remote":"10.20.{}.{}"}}"#, 3),
    (r#"{{"level":"info","msg":"compaction done","tables":{},"dur_ms":{}}}"#, 10),
];

fn pick_weighted(rng: &mut StdRng, templates: &'static [(&'static str, u32)]) -> &'static str {
    let total: u32 = templates.iter().map(|(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for (t, w) in templates {
        if roll < *w {
            return t;
        }
        roll -= w;
    }
    templates[0].0
}

fn fill_slots(template: &str, rng: &mut StdRng) -> String {
    let mut out = String::with_capacity(template.len() + 16);
    let mut rest = template;
    // `{{`/`}}` are literal braces (pre-rendered JSON templates); bare `{}`
    // is a numeric slot.
    while let Some(pos) = rest.find("{}") {
        // Don't treat the `{}` inside an escaped `{{}}` specially: the
        // templates above never produce that sequence.
        out.push_str(&rest[..pos]);
        out.push_str(&rng.gen_range(1u32..99_999).to_string());
        rest = &rest[pos + 2..];
    }
    out.push_str(rest);
    out.replace("{{", "{").replace("}}", "}")
}

/// Deterministic syslog line generator for a set of hosts.
pub struct SyslogGenerator {
    hosts: Vec<String>,
    clock: SimClock,
    rng: StdRng,
}

impl SyslogGenerator {
    /// Generate for the given node xnames.
    pub fn new(nodes: &[XName], clock: SimClock, seed: u64) -> Self {
        assert!(!nodes.is_empty(), "need at least one host");
        Self {
            hosts: nodes.iter().map(|x| x.to_string()).collect(),
            clock,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Produce one `(host, line)` pair in RFC 5424-ish shape:
    /// `<13> 2022-03-03T01:47:57Z x1000c0s0b0n0 slurmd[1234]: ...`.
    pub fn next_line(&mut self) -> (String, String) {
        let host = self.hosts[self.rng.gen_range(0..self.hosts.len())].clone();
        let template = pick_weighted(&mut self.rng, SYSLOG_TEMPLATES);
        let body = fill_slots(template, &mut self.rng);
        let ts = format_iso8601(self.clock.now());
        let pri = if body.contains("BUG") { 2 } else { 13 };
        (host.clone(), format!("<{pri}> {ts} {host} {body}"))
    }

    /// Produce a batch of lines.
    pub fn batch(&mut self, n: usize) -> Vec<(String, String)> {
        (0..n).map(|_| self.next_line()).collect()
    }
}

/// Deterministic container (K8s pod) log generator.
pub struct ContainerLogGenerator {
    pods: Vec<String>,
    rng: StdRng,
}

impl ContainerLogGenerator {
    /// Generate for the named pods (e.g. `telemetry-api-0`).
    pub fn new(pods: Vec<String>, seed: u64) -> Self {
        assert!(!pods.is_empty(), "need at least one pod");
        Self { pods, rng: StdRng::seed_from_u64(seed) }
    }

    /// The paper's K3s service pod set.
    pub fn k3s_services(seed: u64) -> Self {
        let pods = [
            "telemetry-api-server",
            "kafka-broker",
            "rsyslog-aggregator",
            "vmagent",
            "loki-ingester",
            "loki-querier",
            "bridge-client-logs",
            "bridge-client-metrics",
        ]
        .iter()
        .flat_map(|s| (0..2).map(move |i| format!("{s}-{i}")))
        .collect();
        Self::new(pods, seed)
    }

    /// Produce one `(pod, json_line)` pair.
    pub fn next_line(&mut self) -> (String, String) {
        let pod = self.pods[self.rng.gen_range(0..self.pods.len())].clone();
        let template = pick_weighted(&mut self.rng, CONTAINER_TEMPLATES);
        (pod, fill_slots(template, &mut self.rng))
    }

    /// Produce a batch of lines.
    pub fn batch(&mut self, n: usize) -> Vec<(String, String)> {
        (0..n).map(|_| self.next_line()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_xname::{MachineTopology, TopologySpec};

    fn nodes() -> Vec<XName> {
        MachineTopology::new(TopologySpec::tiny()).nodes().to_vec()
    }

    #[test]
    fn syslog_lines_have_shape() {
        let clock = SimClock::starting_at(1_646_272_077_000_000_000);
        let mut g = SyslogGenerator::new(&nodes(), clock, 7);
        for _ in 0..100 {
            let (host, line) = g.next_line();
            assert!(line.starts_with('<'), "{line}");
            assert!(line.contains(&host), "{line}");
            assert!(line.contains("2022-03-03T"), "{line}");
            assert!(!line.contains("{}"), "unfilled slot in {line}");
        }
    }

    #[test]
    fn syslog_is_deterministic() {
        let mk = || {
            let clock = SimClock::new();
            SyslogGenerator::new(&nodes(), clock, 99).batch(50)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn container_lines_are_valid_json() {
        let mut g = ContainerLogGenerator::k3s_services(3);
        for _ in 0..200 {
            let (_pod, line) = g.next_line();
            omni_json::parse(&line).unwrap_or_else(|e| panic!("bad json {line}: {e}"));
        }
    }

    #[test]
    fn container_pods_cover_services() {
        let g = ContainerLogGenerator::k3s_services(3);
        assert_eq!(g.pods.len(), 16);
        assert!(g.pods.iter().any(|p| p.starts_with("telemetry-api-server")));
    }

    #[test]
    fn weighted_pick_hits_common_templates() {
        let clock = SimClock::new();
        let mut g = SyslogGenerator::new(&nodes(), clock, 1);
        let lines = g.batch(500);
        let slurm = lines.iter().filter(|(_, l)| l.contains("slurmd")).count();
        // slurmd templates carry 36/100 weight; expect a healthy share.
        assert!(slurm > 100, "slurmd lines: {slurm}");
    }
}

//! Perlmutter-like Shasta machine simulator.
//!
//! The paper's framework consumes four kinds of signal from the machine:
//!
//! 1. **Redfish events** — leak detections, power events — published by
//!    chassis controllers ([`machine::ShastaMachine`] + fault injection);
//! 2. **numeric telemetry** — temperature/humidity/power/fan samples from
//!    "sensors in each cabinet, chassis, node, switch, cooling unit";
//! 3. **fabric state** — the Slingshot fabric manager's switch-state API
//!    ([`fabric::FabricManager`]) and the NERSC monitor program that polls
//!    it ([`fabric::FabricManagerMonitor`]);
//! 4. **logs** — syslog and container logs ([`logs`]).
//!
//! All of it is deterministic: sensor evolution and log generation are
//! seeded, and time comes from the shared [`omni_model::SimClock`].

pub mod fabric;
pub mod gpfs;
pub mod logs;
pub mod machine;
pub mod workload;

pub use fabric::{FabricManager, FabricManagerMonitor, SwitchState};
pub use gpfs::{GpfsCluster, GpfsMonitor, GpfsState};
pub use logs::{ContainerLogGenerator, SyslogGenerator};
pub use machine::{LeakZone, ShastaMachine};
pub use workload::{WorkloadMix, WorkloadModel};

//! GPFS (Spectrum Scale) health simulation — the paper's stated future
//! work: "The immediate future work will be to employ Loki for syslog
//! monitoring and creating a mechanism for monitoring the health status
//! and performance for the General Parallel File System (GPFS) which is
//! one of Perlmutter's storage components." (§V)
//!
//! The model mirrors how GPFS actually surfaces health: `mmhealth`-style
//! component states per NSD server and disk, `mmfs.log`-style log lines,
//! and long-waiter warnings under load. A polling monitor (like the
//! fabric-manager monitor of §IV-B) turns state changes into event lines
//! for Loki.

use omni_model::{Severity, SimClock, Timestamp};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Health state of one GPFS component (`mmhealth` vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpfsState {
    /// Component healthy.
    Healthy,
    /// Degraded but serving.
    Degraded,
    /// Failed / down.
    Failed,
}

impl GpfsState {
    /// `mmhealth` wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            GpfsState::Healthy => "HEALTHY",
            GpfsState::Degraded => "DEGRADED",
            GpfsState::Failed => "FAILED",
        }
    }
}

impl fmt::Display for GpfsState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One NSD (network shared disk) server with its disks.
#[derive(Debug, Clone)]
struct NsdServer {
    state: GpfsState,
    disks: Vec<GpfsState>,
    /// Current longest RPC waiter in seconds (long waiters signal
    /// contention or a sick disk).
    longest_waiter_s: f64,
    read_mb_s: f64,
    write_mb_s: f64,
}

/// Performance/health sample of one NSD server.
#[derive(Debug, Clone, PartialEq)]
pub struct GpfsSample {
    /// Server name, e.g. `nsd03`.
    pub server: String,
    /// Server state.
    pub state: GpfsState,
    /// Disks currently not HEALTHY.
    pub sick_disks: usize,
    /// Total disks.
    pub total_disks: usize,
    /// Longest waiter seconds.
    pub longest_waiter_s: f64,
    /// Read throughput MB/s.
    pub read_mb_s: f64,
    /// Write throughput MB/s.
    pub write_mb_s: f64,
    /// Sample time.
    pub ts: Timestamp,
}

/// The filesystem simulator.
pub struct GpfsCluster {
    name: String,
    clock: SimClock,
    servers: RwLock<HashMap<String, NsdServer>>,
    rng: parking_lot::Mutex<StdRng>,
}

impl GpfsCluster {
    /// A filesystem with `servers` NSD servers of `disks_per_server`
    /// disks each (Perlmutter's scratch runs tens of servers).
    pub fn new(
        name: &str,
        servers: usize,
        disks_per_server: usize,
        clock: SimClock,
        seed: u64,
    ) -> Arc<Self> {
        let mut map = HashMap::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..servers {
            map.insert(
                format!("nsd{i:02}"),
                NsdServer {
                    state: GpfsState::Healthy,
                    disks: vec![GpfsState::Healthy; disks_per_server],
                    longest_waiter_s: 0.0,
                    read_mb_s: rng.gen_range(500.0..2_000.0),
                    write_mb_s: rng.gen_range(300.0..1_500.0),
                },
            );
        }
        Arc::new(Self {
            name: name.to_string(),
            clock,
            servers: RwLock::new(map),
            rng: parking_lot::Mutex::new(rng),
        })
    }

    /// Filesystem name (`scratch`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Server names, sorted.
    pub fn servers(&self) -> Vec<String> {
        let mut v: Vec<String> = self.servers.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Random-walk the performance counters and return one sample per
    /// server (the `mmperfmon`-style scrape).
    pub fn sample(&self) -> Vec<GpfsSample> {
        let ts = self.clock.now();
        let mut servers = self.servers.write();
        let mut rng = self.rng.lock();
        let mut names: Vec<&String> = servers.keys().collect();
        names.sort();
        let names: Vec<String> = names.into_iter().cloned().collect();
        let mut out = Vec::with_capacity(names.len());
        for name in names {
            let s = servers.get_mut(&name).unwrap();
            s.read_mb_s = (s.read_mb_s + rng.gen_range(-50.0..50.0)).clamp(0.0, 5_000.0);
            s.write_mb_s = (s.write_mb_s + rng.gen_range(-40.0..40.0)).clamp(0.0, 4_000.0);
            // Waiters decay toward zero unless the server is sick.
            let target = match s.state {
                GpfsState::Healthy => 0.0,
                GpfsState::Degraded => 45.0,
                GpfsState::Failed => 600.0,
            };
            s.longest_waiter_s += (target - s.longest_waiter_s) * 0.5;
            let sick = s.disks.iter().filter(|d| **d != GpfsState::Healthy).count();
            out.push(GpfsSample {
                server: name.clone(),
                state: s.state,
                sick_disks: sick,
                total_disks: s.disks.len(),
                longest_waiter_s: s.longest_waiter_s,
                read_mb_s: if s.state == GpfsState::Failed { 0.0 } else { s.read_mb_s },
                write_mb_s: if s.state == GpfsState::Failed { 0.0 } else { s.write_mb_s },
                ts,
            });
        }
        out
    }

    /// Fault injection: set a server's state.
    pub fn set_server_state(&self, server: &str, state: GpfsState) {
        if let Some(s) = self.servers.write().get_mut(server) {
            s.state = state;
        }
    }

    /// Fault injection: fail one disk of a server. Returns `false` if the
    /// server or disk index is unknown.
    pub fn fail_disk(&self, server: &str, disk: usize) -> bool {
        let mut servers = self.servers.write();
        let Some(s) = servers.get_mut(server) else { return false };
        let Some(d) = s.disks.get_mut(disk) else { return false };
        *d = GpfsState::Failed;
        if s.state == GpfsState::Healthy {
            s.state = GpfsState::Degraded;
        }
        true
    }

    /// Repair everything on a server.
    pub fn repair_server(&self, server: &str) {
        if let Some(s) = self.servers.write().get_mut(server) {
            s.state = GpfsState::Healthy;
            for d in &mut s.disks {
                *d = GpfsState::Healthy;
            }
        }
    }
}

/// A state-change observation from the GPFS monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct GpfsStateChange {
    /// Filesystem name.
    pub filesystem: String,
    /// Server.
    pub server: String,
    /// Previous state.
    pub from: GpfsState,
    /// New state.
    pub to: GpfsState,
    /// Severity the monitor assigns.
    pub severity: Severity,
}

impl GpfsStateChange {
    /// The event line pushed to Loki, following the fabric monitor's
    /// format so the same pattern-stage tooling applies:
    /// `[critical] problem:gpfs_server_state, fs:scratch, server:nsd03, state:FAILED`.
    pub fn to_event_line(&self) -> String {
        format!(
            "[{}] problem:gpfs_server_state, fs:{}, server:{}, state:{}",
            self.severity.as_str().to_ascii_lowercase(),
            self.filesystem,
            self.server,
            self.to.as_str()
        )
    }
}

/// Polling monitor over a [`GpfsCluster`], mirroring the fabric-manager
/// monitor of §IV-B.
pub struct GpfsMonitor {
    cluster: Arc<GpfsCluster>,
    last: HashMap<String, GpfsState>,
}

impl GpfsMonitor {
    /// Baseline the current state.
    pub fn new(cluster: Arc<GpfsCluster>) -> Self {
        let last = cluster.sample().into_iter().map(|s| (s.server, s.state)).collect();
        Self { cluster, last }
    }

    /// Poll once; returns one change record per server whose state
    /// changed since the previous poll.
    pub fn poll(&mut self) -> Vec<GpfsStateChange> {
        let mut changes = Vec::new();
        for s in self.cluster.sample() {
            let prev = self.last.insert(s.server.clone(), s.state).unwrap_or(GpfsState::Healthy);
            if prev != s.state {
                let severity = match s.state {
                    GpfsState::Failed => Severity::Critical,
                    GpfsState::Degraded => Severity::Warning,
                    GpfsState::Healthy => Severity::Ok,
                };
                changes.push(GpfsStateChange {
                    filesystem: self.cluster.name().to_string(),
                    server: s.server,
                    from: prev,
                    to: s.state,
                    severity,
                });
            }
        }
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Arc<GpfsCluster> {
        GpfsCluster::new("scratch", 4, 8, SimClock::starting_at(0), 5)
    }

    #[test]
    fn samples_cover_all_servers() {
        let c = cluster();
        let samples = c.sample();
        assert_eq!(samples.len(), 4);
        assert!(samples.iter().all(|s| s.state == GpfsState::Healthy));
        assert!(samples.iter().all(|s| s.total_disks == 8 && s.sick_disks == 0));
        assert_eq!(c.servers(), vec!["nsd00", "nsd01", "nsd02", "nsd03"]);
    }

    #[test]
    fn disk_failure_degrades_server() {
        let c = cluster();
        assert!(c.fail_disk("nsd02", 3));
        let samples = c.sample();
        let s = samples.iter().find(|s| s.server == "nsd02").unwrap();
        assert_eq!(s.state, GpfsState::Degraded);
        assert_eq!(s.sick_disks, 1);
        assert!(!c.fail_disk("nsd99", 0));
        assert!(!c.fail_disk("nsd02", 100));
    }

    #[test]
    fn failed_server_stops_io_and_grows_waiters() {
        let c = cluster();
        c.set_server_state("nsd01", GpfsState::Failed);
        // Waiters converge toward the sick target across samples.
        let mut last = 0.0;
        for _ in 0..6 {
            let s = c.sample().into_iter().find(|s| s.server == "nsd01").unwrap();
            assert_eq!(s.read_mb_s, 0.0);
            assert_eq!(s.write_mb_s, 0.0);
            last = s.longest_waiter_s;
        }
        assert!(last > 300.0, "waiters should grow, got {last}");
    }

    #[test]
    fn monitor_emits_changes_once() {
        let c = cluster();
        let mut mon = GpfsMonitor::new(Arc::clone(&c));
        assert!(mon.poll().is_empty());
        c.set_server_state("nsd03", GpfsState::Failed);
        let changes = mon.poll();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].severity, Severity::Critical);
        assert_eq!(
            changes[0].to_event_line(),
            "[critical] problem:gpfs_server_state, fs:scratch, server:nsd03, state:FAILED"
        );
        assert!(mon.poll().is_empty());
        c.repair_server("nsd03");
        let changes = mon.poll();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].severity, Severity::Ok);
        assert!(changes[0].to_event_line().contains("state:HEALTHY"));
    }

    #[test]
    fn event_line_parses_with_pattern_tooling() {
        // The line must be extractable by the same pattern shape as the
        // fabric events (verified end-to-end in the logql crate; here we
        // check the shape).
        let change = GpfsStateChange {
            filesystem: "scratch".into(),
            server: "nsd07".into(),
            from: GpfsState::Healthy,
            to: GpfsState::Degraded,
            severity: Severity::Warning,
        };
        let line = change.to_event_line();
        assert!(line.starts_with("[warning] problem:gpfs_server_state"));
        assert!(line.contains("server:nsd07"));
        assert!(line.contains("state:DEGRADED"));
    }
}

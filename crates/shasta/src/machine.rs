//! The machine: component sensor state, telemetry generation, and fault
//! injection for the paper's case study A (cabinet leak detection).

use omni_model::{SimClock, Timestamp};
use omni_redfish::{RedfishEvent, SensorKind, SensorReading};
use omni_xname::{MachineTopology, TopologySpec, XName};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Cabinet zone a leak sensor watches. Perlmutter chassis carry redundant
/// sensor pairs (`A`/`B`) per zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LeakZone {
    /// Front of the cabinet.
    Front,
    /// Rear of the cabinet.
    Rear,
}

impl LeakZone {
    /// Zone name as it appears in the Redfish message.
    pub fn as_str(&self) -> &'static str {
        match self {
            LeakZone::Front => "Front",
            LeakZone::Rear => "Rear",
        }
    }
}

/// Per-node thermal/power state (random-walk around a baseline).
#[derive(Debug, Clone)]
struct NodeState {
    temperature: f64,
    power: f64,
    fan_rpm: f64,
    powered_on: bool,
}

/// Per-chassis environmental state.
#[derive(Debug, Clone, Default)]
struct ChassisState {
    /// Leaking (sensor-id, zone) pairs.
    leaks: Vec<(char, LeakZone)>,
    humidity: f64,
}

/// Per-CDU coolant-loop state.
#[derive(Debug, Clone)]
struct CduState {
    supply_temp: f64,
    return_temp: f64,
    flow_lpm: f64,
}

struct MachineState {
    nodes: HashMap<XName, NodeState>,
    chassis: HashMap<XName, ChassisState>,
    cdus: HashMap<XName, CduState>,
    rng: StdRng,
}

/// The simulated machine.
pub struct ShastaMachine {
    topology: MachineTopology,
    clock: SimClock,
    state: Mutex<MachineState>,
}

impl ShastaMachine {
    /// Build a machine with a deterministic seed.
    pub fn new(spec: TopologySpec, clock: SimClock, seed: u64) -> Self {
        let topology = MachineTopology::new(spec);
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes = topology
            .nodes()
            .iter()
            .map(|&x| {
                (
                    x,
                    NodeState {
                        temperature: rng.gen_range(35.0..55.0),
                        power: rng.gen_range(400.0..900.0),
                        fan_rpm: rng.gen_range(5_000.0..9_000.0),
                        powered_on: true,
                    },
                )
            })
            .collect();
        let chassis = topology
            .chassis()
            .iter()
            .map(|&x| (x, ChassisState { leaks: Vec::new(), humidity: rng.gen_range(30.0..50.0) }))
            .collect();
        let cdus = topology
            .cdus()
            .iter()
            .map(|&x| {
                (
                    x,
                    CduState {
                        supply_temp: rng.gen_range(15.0..20.0),
                        return_temp: rng.gen_range(28.0..35.0),
                        flow_lpm: rng.gen_range(400.0..700.0),
                    },
                )
            })
            .collect();
        Self { topology, clock, state: Mutex::new(MachineState { nodes, chassis, cdus, rng }) }
    }

    /// A small machine for tests.
    pub fn tiny(clock: SimClock, seed: u64) -> Self {
        Self::new(TopologySpec::tiny(), clock, seed)
    }

    /// The machine's topology.
    pub fn topology(&self) -> &MachineTopology {
        &self.topology
    }

    /// The machine's clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Advance the sensor random walk one step and emit a full scrape of
    /// sensor readings (one temperature/power/fan sample per powered node,
    /// humidity per chassis, plus leak-sensor states).
    pub fn sample_sensors(&self) -> Vec<SensorReading> {
        let ts = self.clock.now();
        let mut st = self.state.lock();
        let mut out = Vec::with_capacity(st.nodes.len() * 3 + st.chassis.len());
        // Split borrows: walk nodes, chassis and CDUs with the shared rng, in
        // topology order so the random walk is deterministic per seed
        // (HashMap iteration order is not).
        let MachineState { nodes, chassis, cdus, rng } = &mut *st;
        for x in self.topology.nodes() {
            let Some(n) = nodes.get_mut(x) else { continue };
            let x = *x;
            if !n.powered_on {
                continue;
            }
            n.temperature = (n.temperature + rng.gen_range(-0.5..0.5)).clamp(20.0, 95.0);
            n.power = (n.power + rng.gen_range(-15.0..15.0)).clamp(100.0, 1200.0);
            n.fan_rpm = (n.fan_rpm + rng.gen_range(-100.0..100.0)).clamp(2_000.0, 12_000.0);
            out.push(reading(x, "t0", SensorKind::Temperature, n.temperature, ts));
            out.push(reading(x, "p0", SensorKind::Power, n.power, ts));
            out.push(reading(x, "fan0", SensorKind::FanSpeed, n.fan_rpm, ts));
        }
        for x in self.topology.cdus() {
            let Some(c) = cdus.get_mut(x) else { continue };
            let x = *x;
            c.supply_temp = (c.supply_temp + rng.gen_range(-0.2..0.2)).clamp(10.0, 30.0);
            c.return_temp = (c.return_temp + rng.gen_range(-0.3..0.3)).clamp(20.0, 50.0);
            c.flow_lpm = (c.flow_lpm + rng.gen_range(-5.0..5.0)).clamp(100.0, 1_000.0);
            out.push(reading(x, "supply", SensorKind::Temperature, c.supply_temp, ts));
            out.push(reading(x, "return", SensorKind::Temperature, c.return_temp, ts));
            out.push(reading(x, "loop0", SensorKind::Flow, c.flow_lpm, ts));
        }
        for x in self.topology.chassis() {
            let Some(c) = chassis.get_mut(x) else { continue };
            let x = *x;
            c.humidity = (c.humidity + rng.gen_range(-0.3..0.3)).clamp(10.0, 90.0);
            out.push(reading(x, "h0", SensorKind::Humidity, c.humidity, ts));
            for (sensor, zone) in &c.leaks {
                out.push(reading(
                    x,
                    &format!("leak_{sensor}_{}", zone.as_str()),
                    SensorKind::Leak,
                    1.0,
                    ts,
                ));
            }
        }
        out
    }

    /// Inject a liquid leak at one chassis: marks the redundant sensor as
    /// wet and returns the Redfish event its chassis BMC publishes —
    /// exactly the Figure 2 event when pointed at `x1203c1`.
    pub fn inject_leak(&self, chassis: XName, sensor: char, zone: LeakZone) -> RedfishEvent {
        assert!(
            matches!(chassis, XName::Chassis { .. }),
            "leaks are injected at chassis level, got {chassis}"
        );
        let mut st = self.state.lock();
        let entry = st.chassis.entry(chassis).or_default();
        if !entry.leaks.contains(&(sensor, zone)) {
            entry.leaks.push((sensor, zone));
        }
        let XName::Chassis { cabinet, chassis: ch } = chassis else { unreachable!() };
        RedfishEvent::from_registry(
            XName::ChassisBmc { cabinet, chassis: ch, bmc: 0 },
            self.clock.now(),
            "CrayAlerts.1.0.CabinetLeakDetected",
            &[&sensor.to_string(), zone.as_str()],
            "/redfish/v1/Chassis/Enclosure",
        )
    }

    /// Clear a leak; returns the clearing event.
    pub fn clear_leak(&self, chassis: XName, sensor: char, zone: LeakZone) -> RedfishEvent {
        let mut st = self.state.lock();
        if let Some(entry) = st.chassis.get_mut(&chassis) {
            entry.leaks.retain(|&(s, z)| (s, z) != (sensor, zone));
        }
        let XName::Chassis { cabinet, chassis: ch } = chassis else {
            panic!("leaks live at chassis level")
        };
        RedfishEvent::from_registry(
            XName::ChassisBmc { cabinet, chassis: ch, bmc: 0 },
            self.clock.now(),
            "CrayAlerts.1.0.CabinetLeakCleared",
            &[&sensor.to_string(), zone.as_str()],
            "/redfish/v1/Chassis/Enclosure",
        )
    }

    /// Chassis currently reporting a leak.
    pub fn leaking_chassis(&self) -> Vec<XName> {
        let st = self.state.lock();
        let mut v: Vec<XName> =
            st.chassis.iter().filter(|(_, c)| !c.leaks.is_empty()).map(|(&x, _)| x).collect();
        v.sort();
        v
    }

    /// Power a node off; returns the Redfish power event.
    pub fn power_off_node(&self, node: XName) -> RedfishEvent {
        let mut st = self.state.lock();
        if let Some(n) = st.nodes.get_mut(&node) {
            n.powered_on = false;
        }
        RedfishEvent::from_registry(
            node.parent().unwrap_or(node),
            self.clock.now(),
            "CrayAlerts.1.0.NodePowerOff",
            &[&node.to_string()],
            "/redfish/v1/Systems/Node",
        )
    }

    /// Power a node back on.
    pub fn power_on_node(&self, node: XName) -> RedfishEvent {
        let mut st = self.state.lock();
        if let Some(n) = st.nodes.get_mut(&node) {
            n.powered_on = true;
        }
        RedfishEvent::from_registry(
            node.parent().unwrap_or(node),
            self.clock.now(),
            "CrayAlerts.1.0.NodePowerOn",
            &[&node.to_string()],
            "/redfish/v1/Systems/Node",
        )
    }

    /// Number of powered-on nodes.
    pub fn powered_nodes(&self) -> usize {
        self.state.lock().nodes.values().filter(|n| n.powered_on).count()
    }
}

fn reading(x: XName, id: &str, kind: SensorKind, value: f64, ts: Timestamp) -> SensorReading {
    SensorReading { xname: x, sensor_id: id.to_string(), kind, value, ts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::NANOS_PER_SEC;

    fn machine() -> ShastaMachine {
        ShastaMachine::tiny(SimClock::starting_at(NANOS_PER_SEC), 42)
    }

    #[test]
    fn sample_covers_all_nodes_and_chassis() {
        let m = machine();
        let samples = m.sample_sensors();
        let nodes = m.topology().nodes().len();
        let chassis = m.topology().chassis().len();
        let cdus = m.topology().cdus().len();
        assert_eq!(samples.len(), nodes * 3 + chassis + cdus * 3);
    }

    #[test]
    fn sensor_walk_is_deterministic_per_seed() {
        let a = machine().sample_sensors();
        let b = machine().sample_sensors();
        assert_eq!(a.len(), b.len());
        let mut a_sorted = a.clone();
        let mut b_sorted = b;
        a_sorted.sort_by_key(|r| (r.xname.to_string(), r.sensor_id.clone()));
        b_sorted.sort_by_key(|r| (r.xname.to_string(), r.sensor_id.clone()));
        assert_eq!(a_sorted, b_sorted);
    }

    #[test]
    fn leak_injection_produces_paper_event_shape() {
        let m = machine();
        let chassis = m.topology().chassis()[0];
        let ev = m.inject_leak(chassis, 'A', LeakZone::Front);
        assert_eq!(ev.message_id, "CrayAlerts.1.0.CabinetLeakDetected");
        assert_eq!(ev.message_args, vec!["A, Front".to_string()]);
        assert!(ev.message.contains("Sensor 'A'"));
        assert!(ev.message.contains("'Front' cabinet zone"));
        assert_eq!(m.leaking_chassis(), vec![chassis]);
        // Leak shows up in telemetry too.
        let leaks: Vec<_> =
            m.sample_sensors().into_iter().filter(|r| r.kind == SensorKind::Leak).collect();
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].value, 1.0);
    }

    #[test]
    fn clear_leak_removes_state() {
        let m = machine();
        let chassis = m.topology().chassis()[1];
        m.inject_leak(chassis, 'B', LeakZone::Rear);
        let ev = m.clear_leak(chassis, 'B', LeakZone::Rear);
        assert_eq!(ev.message_id, "CrayAlerts.1.0.CabinetLeakCleared");
        assert!(m.leaking_chassis().is_empty());
    }

    #[test]
    fn power_off_stops_telemetry_for_node() {
        let m = machine();
        let before = m.sample_sensors().len();
        let node = m.topology().nodes()[0];
        let ev = m.power_off_node(node);
        assert_eq!(ev.message_id, "CrayAlerts.1.0.NodePowerOff");
        let after = m.sample_sensors().len();
        assert_eq!(before - after, 3); // temp + power + fan
        assert_eq!(m.powered_nodes(), m.topology().nodes().len() - 1);
        m.power_on_node(node);
        assert_eq!(m.powered_nodes(), m.topology().nodes().len());
    }

    #[test]
    #[should_panic(expected = "chassis level")]
    fn leak_injection_requires_chassis() {
        let m = machine();
        let node = m.topology().nodes()[0];
        m.inject_leak(node, 'A', LeakZone::Front);
    }

    #[test]
    fn readings_stay_in_physical_bounds() {
        let m = machine();
        for _ in 0..50 {
            for r in m.sample_sensors() {
                match r.kind {
                    SensorKind::Temperature if matches!(r.xname, XName::Cdu { .. }) => {
                        assert!((10.0..=50.0).contains(&r.value))
                    }
                    SensorKind::Temperature => assert!((20.0..=95.0).contains(&r.value)),
                    SensorKind::Power => assert!((100.0..=1200.0).contains(&r.value)),
                    SensorKind::FanSpeed => assert!((2_000.0..=12_000.0).contains(&r.value)),
                    SensorKind::Humidity => assert!((10.0..=90.0).contains(&r.value)),
                    SensorKind::Leak => assert_eq!(r.value, 1.0),
                    SensorKind::Flow => assert!((100.0..=1_000.0).contains(&r.value)),
                }
            }
        }
    }
}

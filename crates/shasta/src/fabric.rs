//! Slingshot fabric manager and the NERSC switch-state monitor.
//!
//! "There is a Slingshot Fabric Manager in Shasta, provided by HPE, that
//! manages all switches. It provides an API for querying the state of each
//! switch. NERSC uses a python program to query the API periodically, and
//! send out an event to Loki if any switch stage change is found." — §IV-B.
//!
//! [`FabricManager`] is the API; [`FabricManagerMonitor`] is the polling
//! program, emitting exactly the paper's event line:
//!
//! ```text
//! [critical] problem:fm_switch_offline, xname:x1002c1r7b0, state:UNKNOWN
//! ```

use omni_model::Severity;
use omni_xname::{MachineTopology, XName};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// State of one Rosetta switch as the fabric manager reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchState {
    /// Healthy and routing.
    Online,
    /// Administratively or physically down.
    Offline,
    /// The fabric manager lost contact (the Figure 7 case).
    Unknown,
    /// Some ports degraded.
    Degraded,
}

impl SwitchState {
    /// Upper-case wire spelling used in the event line.
    pub fn as_str(&self) -> &'static str {
        match self {
            SwitchState::Online => "ONLINE",
            SwitchState::Offline => "OFFLINE",
            SwitchState::Unknown => "UNKNOWN",
            SwitchState::Degraded => "DEGRADED",
        }
    }

    /// Whether this state means the switch is not serving its nodes.
    pub fn is_down(&self) -> bool {
        matches!(self, SwitchState::Offline | SwitchState::Unknown)
    }
}

impl fmt::Display for SwitchState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The fabric manager: authoritative switch-state registry with a
/// query API.
#[derive(Clone)]
pub struct FabricManager {
    states: Arc<RwLock<HashMap<XName, SwitchState>>>,
}

impl FabricManager {
    /// Bring up a fabric with every switch of the topology online.
    pub fn new(topology: &MachineTopology) -> Self {
        let states = topology
            .switches()
            .iter()
            .map(|&x| (x, SwitchState::Online))
            .collect::<HashMap<_, _>>();
        Self { states: Arc::new(RwLock::new(states)) }
    }

    /// The query API: all switches and their current state, sorted by
    /// xname (deterministic pagination order).
    pub fn switch_states(&self) -> Vec<(XName, SwitchState)> {
        let mut v: Vec<(XName, SwitchState)> =
            self.states.read().iter().map(|(&x, &s)| (x, s)).collect();
        v.sort_by_key(|(x, _)| *x);
        v
    }

    /// Query one switch.
    pub fn switch_state(&self, switch: &XName) -> Option<SwitchState> {
        self.states.read().get(switch).copied()
    }

    /// Fault injection / repair: set a switch's state. Unknown xnames are
    /// ignored (the fabric manager only tracks enrolled switches).
    pub fn set_switch_state(&self, switch: XName, state: SwitchState) {
        if let Some(slot) = self.states.write().get_mut(&switch) {
            *slot = state;
        }
    }

    /// Count of switches in a down state.
    pub fn down_count(&self) -> usize {
        self.states.read().values().filter(|s| s.is_down()).count()
    }
}

/// A switch state-change observation produced by the monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchStateChange {
    /// The switch.
    pub xname: XName,
    /// State before.
    pub from: SwitchState,
    /// State after.
    pub to: SwitchState,
    /// Severity the monitor assigns.
    pub severity: Severity,
}

impl SwitchStateChange {
    /// The event line pushed to Loki, byte-identical to §IV-B:
    /// `[critical] problem:fm_switch_offline, xname:x1002c1r7b0, state:UNKNOWN`.
    pub fn to_event_line(&self) -> String {
        let problem = if self.to.is_down() { "fm_switch_offline" } else { "fm_switch_recovered" };
        format!(
            "[{}] problem:{}, xname:{}, state:{}",
            self.severity.as_str().to_ascii_lowercase(),
            problem,
            self.xname,
            self.to.as_str()
        )
    }
}

/// The paper's polling monitor program: remembers the last seen state of
/// every switch and reports changes.
pub struct FabricManagerMonitor {
    fm: FabricManager,
    last: HashMap<XName, SwitchState>,
}

impl FabricManagerMonitor {
    /// Start monitoring; the first poll treats the current state as
    /// baseline (no events for an initially healthy fabric).
    pub fn new(fm: FabricManager) -> Self {
        let last = fm.switch_states().into_iter().collect();
        Self { fm, last }
    }

    /// Poll the API once; returns one change record per switch whose state
    /// differs from the previous poll.
    pub fn poll(&mut self) -> Vec<SwitchStateChange> {
        let mut changes = Vec::new();
        for (xname, state) in self.fm.switch_states() {
            let prev = self.last.insert(xname, state).unwrap_or(SwitchState::Online);
            if prev != state {
                let severity = if state.is_down() {
                    Severity::Critical
                } else if state == SwitchState::Degraded {
                    Severity::Warning
                } else {
                    Severity::Ok
                };
                changes.push(SwitchStateChange { xname, from: prev, to: state, severity });
            }
        }
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_xname::TopologySpec;

    fn fabric() -> (MachineTopology, FabricManager) {
        let topo = MachineTopology::new(TopologySpec::tiny());
        let fm = FabricManager::new(&topo);
        (topo, fm)
    }

    #[test]
    fn all_switches_start_online() {
        let (topo, fm) = fabric();
        assert_eq!(fm.switch_states().len(), topo.switches().len());
        assert!(fm.switch_states().iter().all(|(_, s)| *s == SwitchState::Online));
        assert_eq!(fm.down_count(), 0);
    }

    #[test]
    fn monitor_reports_only_changes() {
        let (topo, fm) = fabric();
        let mut mon = FabricManagerMonitor::new(fm.clone());
        assert!(mon.poll().is_empty());
        let victim = topo.switches()[3];
        fm.set_switch_state(victim, SwitchState::Unknown);
        let changes = mon.poll();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].xname, victim);
        assert_eq!(changes[0].to, SwitchState::Unknown);
        assert_eq!(changes[0].severity, Severity::Critical);
        // No re-report while the state is stable.
        assert!(mon.poll().is_empty());
    }

    #[test]
    fn event_line_matches_paper_exactly() {
        let change = SwitchStateChange {
            xname: "x1002c1r7b0".parse().unwrap(),
            from: SwitchState::Online,
            to: SwitchState::Unknown,
            severity: Severity::Critical,
        };
        assert_eq!(
            change.to_event_line(),
            "[critical] problem:fm_switch_offline, xname:x1002c1r7b0, state:UNKNOWN"
        );
    }

    #[test]
    fn recovery_emits_ok_event() {
        let (topo, fm) = fabric();
        let mut mon = FabricManagerMonitor::new(fm.clone());
        let victim = topo.switches()[0];
        fm.set_switch_state(victim, SwitchState::Offline);
        mon.poll();
        fm.set_switch_state(victim, SwitchState::Online);
        let changes = mon.poll();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].severity, Severity::Ok);
        assert!(changes[0].to_event_line().contains("fm_switch_recovered"));
        assert!(changes[0].to_event_line().contains("state:ONLINE"));
    }

    #[test]
    fn unknown_switch_ignored() {
        let (_, fm) = fabric();
        let foreign: XName = "x9999c9r9b9".parse().unwrap();
        fm.set_switch_state(foreign, SwitchState::Offline);
        assert_eq!(fm.switch_state(&foreign), None);
    }

    #[test]
    fn down_count_tracks_states() {
        let (topo, fm) = fabric();
        fm.set_switch_state(topo.switches()[0], SwitchState::Offline);
        fm.set_switch_state(topo.switches()[1], SwitchState::Unknown);
        fm.set_switch_state(topo.switches()[2], SwitchState::Degraded);
        assert_eq!(fm.down_count(), 2);
    }
}

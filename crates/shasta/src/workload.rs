//! The Perlmutter daily-volume workload model (experiment C2).
//!
//! "Phase 1 of Perlmutter is projected to produce over 400 gigabytes of
//! data per day. As more data is released by the different monitoring
//! components, this could potentially become 10x per day." This module
//! turns per-source message rates and sizes into a volume model so the
//! benches can (a) reproduce the 400 GB/day figure and (b) generate a
//! proportional one-minute slice of it.

use crate::logs::{ContainerLogGenerator, SyslogGenerator};
use crate::machine::ShastaMachine;
use omni_model::SimClock;

/// Per-source share of the workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadMix {
    /// Syslog lines per node per second.
    pub syslog_per_node_per_sec: f64,
    /// Container-log lines per service pod per second.
    pub container_per_pod_per_sec: f64,
    /// Sensor samples per component per second (telemetry scrape).
    pub telemetry_per_component_per_sec: f64,
    /// Redfish events per second across the machine (rare).
    pub redfish_events_per_sec: f64,
    /// Number of service pods.
    pub service_pods: usize,
}

impl Default for WorkloadMix {
    /// A mix calibrated so a Perlmutter-like topology produces ≈400 GB/day
    /// (the paper's phase-1 projection).
    fn default() -> Self {
        Self {
            // ~12 lines/s/node: slurmd + kernel + sshd on busy HPC nodes.
            syslog_per_node_per_sec: 12.0,
            container_per_pod_per_sec: 60.0,
            // Each component exposes several sensors sampled at ~1 Hz.
            telemetry_per_component_per_sec: 8.0,
            redfish_events_per_sec: 0.5,
            service_pods: 16,
        }
    }
}

/// Average encoded message sizes in bytes (measured from the generators).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessageSizes {
    /// One syslog line.
    pub syslog: usize,
    /// One container-log line.
    pub container: usize,
    /// One telemetry sample (JSON wire form).
    pub telemetry: usize,
    /// One Redfish event (nested JSON wire form).
    pub redfish: usize,
}

impl Default for MessageSizes {
    fn default() -> Self {
        Self { syslog: 120, container: 110, telemetry: 160, redfish: 430 }
    }
}

/// The volume model for one machine.
#[derive(Debug, Clone)]
pub struct WorkloadModel {
    /// Node count.
    pub nodes: usize,
    /// Telemetry-bearing component count (nodes + chassis + switches).
    pub components: usize,
    /// The rate mix.
    pub mix: WorkloadMix,
    /// The size assumptions.
    pub sizes: MessageSizes,
}

impl WorkloadModel {
    /// Build a model for a machine.
    pub fn for_machine(machine: &ShastaMachine, mix: WorkloadMix) -> Self {
        let topo = machine.topology();
        Self {
            nodes: topo.nodes().len(),
            components: topo.nodes().len() + topo.chassis().len() + topo.switches().len(),
            mix,
            sizes: MessageSizes::default(),
        }
    }

    /// Messages per second across all sources.
    pub fn messages_per_sec(&self) -> f64 {
        self.mix.syslog_per_node_per_sec * self.nodes as f64
            + self.mix.container_per_pod_per_sec * self.mix.service_pods as f64
            + self.mix.telemetry_per_component_per_sec * self.components as f64
            + self.mix.redfish_events_per_sec
    }

    /// Bytes per second across all sources.
    pub fn bytes_per_sec(&self) -> f64 {
        self.mix.syslog_per_node_per_sec * self.nodes as f64 * self.sizes.syslog as f64
            + self.mix.container_per_pod_per_sec
                * self.mix.service_pods as f64
                * self.sizes.container as f64
            + self.mix.telemetry_per_component_per_sec
                * self.components as f64
                * self.sizes.telemetry as f64
            + self.mix.redfish_events_per_sec * self.sizes.redfish as f64
    }

    /// Bytes per day (the paper's 400 GB/day claim lives here).
    pub fn bytes_per_day(&self) -> f64 {
        self.bytes_per_sec() * 86_400.0
    }

    /// Gigabytes per day.
    pub fn gb_per_day(&self) -> f64 {
        self.bytes_per_day() / 1e9
    }

    /// Generate a representative slice of `secs` seconds of log traffic
    /// (syslog + container lines only — the string data that goes to
    /// Loki), capped at `max_lines`.
    pub fn generate_log_slice(
        &self,
        machine: &ShastaMachine,
        secs: f64,
        max_lines: usize,
        seed: u64,
    ) -> Vec<(String, String)> {
        let clock: SimClock = machine.clock().clone();
        let syslog_n = (self.mix.syslog_per_node_per_sec * self.nodes as f64 * secs) as usize;
        let container_n =
            (self.mix.container_per_pod_per_sec * self.mix.service_pods as f64 * secs) as usize;
        let total = (syslog_n + container_n).min(max_lines);
        let syslog_share = (total * syslog_n).checked_div(syslog_n + container_n).unwrap_or(0);
        let mut out = Vec::with_capacity(total);
        let mut sys = SyslogGenerator::new(machine.topology().nodes(), clock, seed);
        out.extend(sys.batch(syslog_share));
        let mut cont = ContainerLogGenerator::k3s_services(seed ^ 0x5eed);
        out.extend(cont.batch(total - syslog_share));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::SimClock;
    use omni_xname::TopologySpec;

    fn perlmutter() -> ShastaMachine {
        ShastaMachine::new(TopologySpec::perlmutter_like(), SimClock::new(), 1)
    }

    #[test]
    fn default_mix_lands_near_400_gb_per_day() {
        let m = perlmutter();
        let model = WorkloadModel::for_machine(&m, WorkloadMix::default());
        let gb = model.gb_per_day();
        // The paper says "over 400 GB"; the calibrated default should land
        // in the same regime (300–800 GB/day).
        assert!((300.0..800.0).contains(&gb), "gb/day = {gb}");
    }

    #[test]
    fn rates_compose_linearly() {
        let m = perlmutter();
        let base = WorkloadModel::for_machine(&m, WorkloadMix::default());
        let mut doubled_mix = WorkloadMix::default();
        doubled_mix.syslog_per_node_per_sec *= 2.0;
        doubled_mix.container_per_pod_per_sec *= 2.0;
        doubled_mix.telemetry_per_component_per_sec *= 2.0;
        doubled_mix.redfish_events_per_sec *= 2.0;
        let doubled = WorkloadModel::for_machine(&m, doubled_mix);
        let ratio = doubled.bytes_per_sec() / base.bytes_per_sec();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn log_slice_respects_cap_and_mix() {
        let m = ShastaMachine::tiny(SimClock::new(), 2);
        let model = WorkloadModel::for_machine(&m, WorkloadMix::default());
        let lines = model.generate_log_slice(&m, 10.0, 500, 11);
        assert_eq!(lines.len(), 500);
        let syslog = lines.iter().filter(|(_, l)| l.starts_with('<')).count();
        // tiny: 32 nodes * 4/s vs 16 pods * 40/s → syslog ≈ 1/6 of traffic.
        assert!(syslog > 50 && syslog < 250, "syslog share = {syslog}");
    }

    #[test]
    fn message_rate_scale_is_plausible_for_omni() {
        // OMNI claims up to 400k msg/s capacity; one Perlmutter-like
        // machine's steady mix should be far below that ceiling.
        let m = perlmutter();
        let model = WorkloadModel::for_machine(&m, WorkloadMix::default());
        let rate = model.messages_per_sec();
        assert!(rate > 1_000.0 && rate < 400_000.0, "msgs/s = {rate}");
    }
}

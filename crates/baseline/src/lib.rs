//! Full-text inverted-index log store — the Elasticsearch-style baseline.
//!
//! §III-A of the paper argues Loki's design point: "In contrast with
//! other logging platforms, Loki does not index the text of the logs but
//! allows indexing the metadata about the logs by creating labels ... a
//! small index and compressed chunks significantly reduce the costs for
//! storage and the log query times." To measure that trade-off
//! (experiment C4) we need the *other* side: a store that tokenizes every
//! line and maintains a term → documents inverted index, like a search
//! engine would.
//!
//! The comparison is honest in both directions: full-text pays a large
//! index and slower ingest, but answers needle-in-haystack term queries
//! without scanning.

use omni_model::{LabelSet, Timestamp};
use std::collections::HashMap;

/// One stored document.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// Document id (insertion order).
    pub id: u32,
    /// Entry timestamp.
    pub ts: Timestamp,
    /// Source labels (stored, not inverted — the term index is the point).
    pub labels: LabelSet,
    /// The raw line.
    pub line: String,
}

/// Tokenize a line the way search engines do: lowercase alphanumeric
/// runs, dropping one-character tokens.
pub fn tokenize(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in line.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            cur.push(c.to_ascii_lowercase());
        } else if !cur.is_empty() {
            if cur.len() > 1 {
                out.push(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
        }
    }
    if cur.len() > 1 {
        out.push(cur);
    }
    out
}

/// The full-text store.
#[derive(Debug, Default)]
pub struct FullTextStore {
    docs: Vec<Document>,
    /// term → sorted doc ids.
    postings: HashMap<String, Vec<u32>>,
    /// Total bytes of raw lines.
    line_bytes: usize,
}

impl FullTextStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest one entry, indexing every token of the line.
    pub fn ingest(&mut self, labels: LabelSet, ts: Timestamp, line: impl Into<String>) -> u32 {
        let line = line.into();
        let id = self.docs.len() as u32;
        for token in tokenize(&line) {
            let posting = self.postings.entry(token).or_default();
            if posting.last() != Some(&id) {
                posting.push(id);
            }
        }
        self.line_bytes += line.len();
        self.docs.push(Document { id, ts, labels, line });
        id
    }

    /// Documents whose lines contain `term` (single-token lookup — the
    /// needle query full-text indexing exists for).
    pub fn search_term(&self, term: &str) -> Vec<&Document> {
        let term = term.to_ascii_lowercase();
        self.postings
            .get(&term)
            .map(|ids| ids.iter().map(|&i| &self.docs[i as usize]).collect())
            .unwrap_or_default()
    }

    /// Documents containing *all* the given terms (AND query) — postings
    /// intersection, smallest list first.
    pub fn search_all(&self, terms: &[&str]) -> Vec<&Document> {
        if terms.is_empty() {
            return Vec::new();
        }
        let mut lists: Vec<&Vec<u32>> = Vec::with_capacity(terms.len());
        for t in terms {
            match self.postings.get(&t.to_ascii_lowercase()) {
                Some(l) => lists.push(l),
                None => return Vec::new(),
            }
        }
        lists.sort_by_key(|l| l.len());
        let mut result: Vec<u32> = lists[0].clone();
        for l in &lists[1..] {
            result.retain(|id| l.binary_search(id).is_ok());
        }
        result.iter().map(|&i| &self.docs[i as usize]).collect()
    }

    /// Documents in `(start, end]` containing a term, like a filtered
    /// Kibana query.
    pub fn search_term_in_range(
        &self,
        term: &str,
        start: Timestamp,
        end: Timestamp,
    ) -> Vec<&Document> {
        self.search_term(term).into_iter().filter(|d| d.ts > start && d.ts <= end).collect()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Number of distinct indexed terms — the dimension that explodes
    /// relative to Loki's label index.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// Approximate index memory: term bytes + posting entries.
    pub fn index_bytes(&self) -> usize {
        self.postings
            .iter()
            .map(|(term, ids)| term.len() + ids.len() * std::mem::size_of::<u32>())
            .sum()
    }

    /// Raw line bytes stored (uncompressed — this baseline does not
    /// compress).
    pub fn stored_bytes(&self) -> usize {
        self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::labels;

    #[test]
    fn tokenizer_behaviour() {
        assert_eq!(
            tokenize("[critical] problem:fm_switch_offline, xname:x1002c1r7b0"),
            vec!["critical", "problem", "fm_switch_offline", "xname", "x1002c1r7b0"]
        );
        assert_eq!(tokenize("a b c"), Vec::<String>::new()); // 1-char dropped
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("MixedCase TOKENS"), vec!["mixedcase", "tokens"]);
    }

    #[test]
    fn ingest_and_term_search() {
        let mut s = FullTextStore::new();
        s.ingest(labels!("host" => "x1"), 1, "leak detected in cabinet");
        s.ingest(labels!("host" => "x2"), 2, "all systems nominal");
        let hits = s.search_term("leak");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].labels.get("host"), Some("x1"));
        assert!(s.search_term("quench").is_empty());
        // Case-insensitive.
        assert_eq!(s.search_term("LEAK").len(), 1);
    }

    #[test]
    fn and_search_intersects() {
        let mut s = FullTextStore::new();
        s.ingest(LabelSet::new(), 1, "switch x1002 offline now");
        s.ingest(LabelSet::new(), 2, "switch x1003 online now");
        s.ingest(LabelSet::new(), 3, "node x1002 healthy");
        assert_eq!(s.search_all(&["switch", "x1002"]).len(), 1);
        assert_eq!(s.search_all(&["now"]).len(), 2);
        assert!(s.search_all(&["switch", "quench"]).is_empty());
        assert!(s.search_all(&[]).is_empty());
    }

    #[test]
    fn range_filter() {
        let mut s = FullTextStore::new();
        for i in 0..10 {
            s.ingest(LabelSet::new(), i, "tick event");
        }
        assert_eq!(s.search_term_in_range("tick", 2, 5).len(), 3);
    }

    #[test]
    fn duplicate_tokens_counted_once_per_doc() {
        let mut s = FullTextStore::new();
        s.ingest(LabelSet::new(), 1, "leak leak leak");
        assert_eq!(s.search_term("leak").len(), 1);
    }

    #[test]
    fn index_grows_with_vocabulary() {
        let mut s = FullTextStore::new();
        for i in 0..1000 {
            s.ingest(LabelSet::new(), i, format!("unique_token_{i} common_word"));
        }
        // 1000 unique + 1 common.
        assert_eq!(s.term_count(), 1001);
        assert!(s.index_bytes() > 10_000);
        assert_eq!(s.search_term("common_word").len(), 1000);
    }
}

//! Property tests for the regex engine.

use omni_regexlite::Regex;
use proptest::prelude::*;

/// Escape a literal so it must match itself.
fn escape(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        if "\\.+*?()|[]{}^$".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

proptest! {
    #[test]
    fn compiler_never_panics(pattern in "\\PC{0,40}") {
        let _ = Regex::new(&pattern);
    }

    #[test]
    fn matcher_never_panics(pattern in "[a-c()|*+?\\[\\]{},0-9^$.]{0,15}", text in "[a-c]{0,30}") {
        if let Ok(re) = Regex::new(&pattern) {
            let _ = re.is_match(&text);
            let _ = re.captures(&text);
        }
    }

    #[test]
    fn escaped_literal_matches_itself(text in "\\PC{0,30}") {
        // Skip inputs with newline-ish control chars (Dot semantics aside,
        // literals should still match; nothing here uses Dot).
        let re = Regex::new(&escape(&text)).unwrap();
        prop_assert!(re.is_match(&text));
        prop_assert!(re.is_full_match(&text));
    }

    #[test]
    fn substring_search_agrees_with_str_contains(
        needle in "[a-b]{1,4}",
        hay in "[a-c]{0,30}",
    ) {
        let re = Regex::new(&needle).unwrap();
        prop_assert_eq!(re.is_match(&hay), hay.contains(&needle));
    }

    #[test]
    fn find_returns_leftmost_occurrence(needle in "[a-b]{1,3}", hay in "[a-c]{0,20}") {
        let re = Regex::new(&needle).unwrap();
        if let Some(pos) = hay.find(&needle) {
            prop_assert_eq!(re.find(&hay), Some((pos, pos + needle.len())));
        } else {
            prop_assert_eq!(re.find(&hay), None);
        }
    }

    #[test]
    fn star_matches_repetitions(c in prop::sample::select(vec!['a', 'b']), n in 0usize..20) {
        let text: String = c.to_string().repeat(n);
        let re = Regex::new(&format!("^{c}*$")).unwrap();
        prop_assert!(re.is_match(&text));
        let re_plus = Regex::new(&format!("^{c}+$")).unwrap();
        prop_assert_eq!(re_plus.is_match(&text), n > 0);
    }

    #[test]
    fn bounded_repeat_counts(n in 0u32..8, lo in 0u32..5, hi in 0u32..8) {
        prop_assume!(lo <= hi);
        let text: String = "a".repeat(n as usize);
        let re = Regex::new(&format!("^a{{{lo},{hi}}}$")).unwrap();
        prop_assert_eq!(re.is_match(&text), n >= lo && n <= hi);
    }
}

//! Backtracking regex VM.
//!
//! The AST is compiled to a small instruction program; matching runs a
//! depth-first backtracking interpreter with an explicit stack and a step
//! budget. Star loops carry a progress check so empty-matching bodies
//! cannot spin forever.

use crate::ast::{Ast, ClassItem};
use std::fmt;

/// Hard limit on compiled program size; `{1000}{1000}`-style expansion
/// bombs hit this instead of exhausting memory.
const MAX_PROGRAM: usize = 65_536;

/// Default step budget per `search` call.
const STEP_BUDGET: usize = 1_000_000;

/// Matching failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchError {
    /// The pattern compiled to an excessively large program.
    ProgramTooLarge,
    /// The backtracking budget was exhausted (pathological pattern/input).
    BudgetExhausted,
}

impl fmt::Display for MatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchError::ProgramTooLarge => write!(f, "regex program too large"),
            MatchError::BudgetExhausted => write!(f, "regex step budget exhausted"),
        }
    }
}

impl std::error::Error for MatchError {}

#[derive(Debug, Clone)]
enum Inst {
    Char(char),
    Any,
    Class {
        items: Vec<ClassItem>,
        negated: bool,
    },
    /// Record current position into capture slot `n`.
    Save(usize),
    Jmp(usize),
    /// Try `a` first, then `b` on backtrack.
    Split(usize, usize),
    AnchorStart,
    AnchorEnd,
    /// Record current position into progress slot `n` (star-loop guard).
    Mark(usize),
    /// Fail this thread if position equals progress slot `n`.
    Progress(usize),
    Match,
}

/// A compiled program.
#[derive(Debug, Clone)]
pub(crate) struct Program {
    insts: Vec<Inst>,
    n_caps: usize,
    n_marks: usize,
}

struct Compiler {
    insts: Vec<Inst>,
    n_marks: usize,
}

impl Compiler {
    fn push(&mut self, inst: Inst) -> Result<usize, MatchError> {
        if self.insts.len() >= MAX_PROGRAM {
            return Err(MatchError::ProgramTooLarge);
        }
        self.insts.push(inst);
        Ok(self.insts.len() - 1)
    }

    fn compile(&mut self, ast: &Ast) -> Result<(), MatchError> {
        match ast {
            Ast::Empty => {}
            Ast::Literal(c) => {
                self.push(Inst::Char(*c))?;
            }
            Ast::AnyChar => {
                self.push(Inst::Any)?;
            }
            Ast::Class { items, negated } => {
                self.push(Inst::Class { items: items.clone(), negated: *negated })?;
            }
            Ast::Concat(parts) => {
                for p in parts {
                    self.compile(p)?;
                }
            }
            Ast::Alt(branches) => {
                // split b1, (split b2, (... bN))
                let mut jumps = Vec::new();
                for (i, b) in branches.iter().enumerate() {
                    if i + 1 < branches.len() {
                        let split = self.push(Inst::Split(0, 0))?;
                        let body = self.insts.len();
                        self.compile(b)?;
                        jumps.push(self.push(Inst::Jmp(0))?);
                        let next = self.insts.len();
                        self.insts[split] = Inst::Split(body, next);
                    } else {
                        self.compile(b)?;
                    }
                }
                let end = self.insts.len();
                for j in jumps {
                    self.insts[j] = Inst::Jmp(end);
                }
            }
            Ast::Group { index, node } => {
                if let Some(idx) = index {
                    self.push(Inst::Save(idx * 2))?;
                    self.compile(node)?;
                    self.push(Inst::Save(idx * 2 + 1))?;
                } else {
                    self.compile(node)?;
                }
            }
            Ast::AnchorStart => {
                self.push(Inst::AnchorStart)?;
            }
            Ast::AnchorEnd => {
                self.push(Inst::AnchorEnd)?;
            }
            Ast::Repeat { node, min, max, greedy } => {
                self.compile_repeat(node, *min, *max, *greedy)?;
            }
        }
        Ok(())
    }

    fn compile_repeat(
        &mut self,
        node: &Ast,
        min: u32,
        max: Option<u32>,
        greedy: bool,
    ) -> Result<(), MatchError> {
        // Mandatory copies.
        for _ in 0..min {
            self.compile(node)?;
        }
        match max {
            Some(max) => {
                // (max - min) optional copies: split over each.
                let mut splits = Vec::new();
                for _ in min..max {
                    let split = self.push(Inst::Split(0, 0))?;
                    let body = self.insts.len();
                    self.compile(node)?;
                    splits.push((split, body));
                }
                let end = self.insts.len();
                for (split, body) in splits {
                    self.insts[split] =
                        if greedy { Inst::Split(body, end) } else { Inst::Split(end, body) };
                }
            }
            None => {
                // Kleene star with progress guard:
                //   L1: Split(L2, L4)
                //   L2: Mark(m); <node>; Progress(m); Jmp(L1)
                //   L4:
                let mark = self.n_marks;
                self.n_marks += 1;
                let l1 = self.push(Inst::Split(0, 0))?;
                let l2 = self.push(Inst::Mark(mark))?;
                self.compile(node)?;
                self.push(Inst::Progress(mark))?;
                self.push(Inst::Jmp(l1))?;
                let l4 = self.insts.len();
                self.insts[l1] = if greedy { Inst::Split(l2, l4) } else { Inst::Split(l4, l2) };
            }
        }
        Ok(())
    }
}

/// Compile an AST into a program. `n_groups` includes group 0. With
/// `anchored`, the whole input must be consumed (Prometheus label-matcher
/// semantics).
pub(crate) fn compile(ast: &Ast, n_groups: usize, anchored: bool) -> Result<Program, MatchError> {
    let mut c = Compiler { insts: Vec::new(), n_marks: 0 };
    if anchored {
        c.push(Inst::AnchorStart)?;
    }
    c.push(Inst::Save(0))?;
    c.compile(ast)?;
    c.push(Inst::Save(1))?;
    if anchored {
        c.push(Inst::AnchorEnd)?;
    }
    c.push(Inst::Match)?;
    Ok(Program { insts: c.insts, n_caps: n_groups * 2, n_marks: c.n_marks })
}

/// Backtracking thread state saved on the stack.
#[derive(Clone)]
struct Frame {
    pc: usize,
    pos: usize,
    caps: Vec<usize>,
    marks: Vec<usize>,
}

const UNSET: usize = usize::MAX;

/// Capture byte spans of one match: index 0 is the whole match.
pub(crate) type CaptureSpans = Vec<Option<(usize, usize)>>;

/// Run the program over `text`, trying each start position (unanchored
/// leftmost-first search). Returns capture byte spans on success.
pub(crate) fn run(prog: &Program, text: &str) -> Result<Option<CaptureSpans>, MatchError> {
    // Decode once: positions are indices into `chars`, `offsets[i]` is the
    // byte offset of char i, with a sentinel at the end.
    let chars: Vec<char> = text.chars().collect();
    let mut offsets: Vec<usize> = Vec::with_capacity(chars.len() + 1);
    {
        let mut o = 0;
        for c in &chars {
            offsets.push(o);
            o += c.len_utf8();
        }
        offsets.push(o);
    }

    let mut budget = STEP_BUDGET;
    for start in 0..=chars.len() {
        if let Some(caps) = run_from(prog, &chars, start, &mut budget)? {
            let spans = caps
                .chunks(2)
                .map(|c| {
                    if c[0] == UNSET || c[1] == UNSET {
                        None
                    } else {
                        Some((offsets[c[0]], offsets[c[1]]))
                    }
                })
                .collect();
            return Ok(Some(spans));
        }
    }
    Ok(None)
}

fn run_from(
    prog: &Program,
    chars: &[char],
    start: usize,
    budget: &mut usize,
) -> Result<Option<Vec<usize>>, MatchError> {
    let mut stack: Vec<Frame> = vec![Frame {
        pc: 0,
        pos: start,
        caps: vec![UNSET; prog.n_caps],
        marks: vec![UNSET; prog.n_marks],
    }];

    'threads: while let Some(mut f) = stack.pop() {
        loop {
            if *budget == 0 {
                return Err(MatchError::BudgetExhausted);
            }
            *budget -= 1;
            match &prog.insts[f.pc] {
                Inst::Char(c) => {
                    if chars.get(f.pos) == Some(c) {
                        f.pos += 1;
                        f.pc += 1;
                    } else {
                        continue 'threads;
                    }
                }
                Inst::Any => match chars.get(f.pos) {
                    Some(&c) if c != '\n' => {
                        f.pos += 1;
                        f.pc += 1;
                    }
                    _ => continue 'threads,
                },
                Inst::Class { items, negated } => {
                    let Some(&c) = chars.get(f.pos) else { continue 'threads };
                    let hit = items.iter().any(|i| i.matches(c));
                    if hit != *negated {
                        f.pos += 1;
                        f.pc += 1;
                    } else {
                        continue 'threads;
                    }
                }
                Inst::Save(slot) => {
                    f.caps[*slot] = f.pos;
                    f.pc += 1;
                }
                Inst::Jmp(t) => f.pc = *t,
                Inst::Split(a, b) => {
                    let mut alt = f.clone();
                    alt.pc = *b;
                    stack.push(alt);
                    f.pc = *a;
                }
                Inst::AnchorStart => {
                    if f.pos == 0 {
                        f.pc += 1;
                    } else {
                        continue 'threads;
                    }
                }
                Inst::AnchorEnd => {
                    if f.pos == chars.len() {
                        f.pc += 1;
                    } else {
                        continue 'threads;
                    }
                }
                Inst::Mark(m) => {
                    f.marks[*m] = f.pos;
                    f.pc += 1;
                }
                Inst::Progress(m) => {
                    if f.marks[*m] == f.pos {
                        // Loop body matched nothing; kill the thread to
                        // stop an infinite empty loop.
                        continue 'threads;
                    }
                    f.pc += 1;
                }
                Inst::Match => return Ok(Some(f.caps)),
            }
        }
    }
    Ok(None)
}

/// Capture groups of one successful match.
#[derive(Debug)]
pub struct Captures<'t> {
    text: &'t str,
    spans: Vec<Option<(usize, usize)>>,
    names: Vec<Option<String>>,
}

impl<'t> Captures<'t> {
    pub(crate) fn new(
        text: &'t str,
        spans: Vec<Option<(usize, usize)>>,
        names: &[Option<String>],
    ) -> Self {
        Self { text, spans, names: names.to_vec() }
    }

    /// Byte span of group `i` (0 = whole match).
    pub fn get(&self, i: usize) -> Option<(usize, usize)> {
        self.spans.get(i).copied().flatten()
    }

    /// Matched text of group `i`.
    pub fn group(&self, i: usize) -> Option<&'t str> {
        self.get(i).map(|(s, e)| &self.text[s..e])
    }

    /// Matched text of a named group.
    pub fn name(&self, name: &str) -> Option<&'t str> {
        let idx = self.names.iter().position(|n| n.as_deref() == Some(name))?;
        self.group(idx)
    }

    /// All `(name, text)` pairs for named groups that participated in the
    /// match — the LogQL `regexp` stage extracts exactly these.
    pub fn named_pairs(&self) -> Vec<(&str, &'t str)> {
        self.names
            .iter()
            .enumerate()
            .filter_map(|(i, n)| {
                let name = n.as_deref()?;
                self.group(i).map(|text| (name, text))
            })
            .collect()
    }

    /// Number of groups (including group 0).
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when there are no groups (never the case for a real match).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

//! Regex abstract syntax tree.

/// One item inside a character class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassItem {
    /// A single character.
    Char(char),
    /// An inclusive range `a-z`.
    Range(char, char),
    /// `\d` — ASCII digits.
    Digit,
    /// `\w` — word characters.
    Word,
    /// `\s` — whitespace.
    Space,
}

impl ClassItem {
    /// Whether the item matches a character.
    pub fn matches(&self, c: char) -> bool {
        match *self {
            ClassItem::Char(x) => c == x,
            ClassItem::Range(lo, hi) => (lo..=hi).contains(&c),
            ClassItem::Digit => c.is_ascii_digit(),
            ClassItem::Word => c.is_ascii_alphanumeric() || c == '_',
            ClassItem::Space => c.is_whitespace(),
        }
    }
}

/// Parsed regular-expression node.
#[derive(Debug, Clone, PartialEq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A literal character.
    Literal(char),
    /// `.` — any character except `\n`.
    AnyChar,
    /// A character class; `negated` flips the match.
    Class {
        /// The class items.
        items: Vec<ClassItem>,
        /// Whether the class is `[^...]`.
        negated: bool,
    },
    /// Sequence of sub-expressions.
    Concat(Vec<Ast>),
    /// Ordered alternation (leftmost-first).
    Alt(Vec<Ast>),
    /// Repetition of a sub-expression.
    Repeat {
        /// Repeated node.
        node: Box<Ast>,
        /// Minimum count.
        min: u32,
        /// Maximum count, or `None` for unbounded.
        max: Option<u32>,
        /// Greedy (`*`) vs lazy (`*?`).
        greedy: bool,
    },
    /// Capturing or non-capturing group.
    Group {
        /// Capture index (1-based); `None` for `(?:...)`.
        index: Option<usize>,
        /// Grouped node.
        node: Box<Ast>,
    },
    /// `^`
    AnchorStart,
    /// `$`
    AnchorEnd,
}

//! A small regular-expression engine.
//!
//! Powers every regex surface in the reproduction: LogQL line filters
//! (`|~`, `!~`), label matchers (`=~`, `!~`), the LogQL `regexp` stage's
//! named capture groups, and Alertmanager route matchers.
//!
//! Supported syntax (the RE2-ish subset those surfaces need):
//!
//! * literals, `.` (any char except newline), escapes (`\d \w \s \D \W \S
//!   \n \r \t` and escaped metacharacters)
//! * character classes `[a-z0-9_]`, negated classes `[^...]`, class escapes
//! * groups `(...)`, non-capturing `(?:...)`, named `(?P<name>...)`
//! * alternation `a|b`, repetition `* + ?` and bounded `{n}`, `{n,}`,
//!   `{n,m}`, with lazy variants (`*?`, `+?`, ...)
//! * anchors `^` and `$`
//!
//! The matcher is a classic backtracking VM with an explicit step budget:
//! on pathological patterns it fails *loudly* ([`MatchError::BudgetExhausted`])
//! instead of hanging the query path.

mod ast;
mod matcher;
mod parser;

pub use ast::{Ast, ClassItem};
pub use matcher::{Captures, MatchError};
pub use parser::RegexParseError;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    program: matcher::Program,
    anchored: matcher::Program,
    pattern: String,
    /// Names of capture groups, indexed by group number (0 = whole match).
    group_names: Vec<Option<String>>,
    /// A literal substring every match must contain, extracted at compile
    /// time. Texts that don't contain it are rejected by a plain substring
    /// scan before the backtracking VM ever runs — the dominant cost on
    /// log lines that don't match.
    prefilter: Option<String>,
}

/// Commit the literal run being built into `best` if it is longer, then
/// reset the run.
fn commit_run(run: &mut String, best: &mut String) {
    if run.len() > best.len() {
        std::mem::swap(run, best);
    }
    run.clear();
}

/// Walk the AST in match order, growing `run` across adjacent literals.
/// Nodes that make the following text unpredictable (alternation, classes,
/// `.`  wildcards, optional repeats) break the run; anchors and the empty
/// node are zero-width and keep it alive. A repeat with `min >= 1` must
/// match its body at least once, so the body's own required literal is a
/// candidate even though the run around it breaks.
fn literal_scan(ast: &Ast, run: &mut String, best: &mut String) {
    match ast {
        Ast::Literal(c) => run.push(*c),
        Ast::Empty | Ast::AnchorStart | Ast::AnchorEnd => {}
        Ast::Concat(nodes) => {
            for n in nodes {
                literal_scan(n, run, best);
            }
        }
        Ast::Group { node, .. } => literal_scan(node, run, best),
        Ast::Repeat { node, min, .. } if *min >= 1 => {
            commit_run(run, best);
            let mut inner = String::new();
            literal_scan(node, &mut inner, best);
            commit_run(&mut inner, best);
        }
        _ => commit_run(run, best),
    }
}

/// The longest literal substring every match of `ast` must contain, if
/// any adjacent literal run survives the walk.
fn required_literal(ast: &Ast) -> Option<String> {
    let mut run = String::new();
    let mut best = String::new();
    literal_scan(ast, &mut run, &mut best);
    commit_run(&mut run, &mut best);
    if best.is_empty() {
        None
    } else {
        Some(best)
    }
}

impl Regex {
    /// Compile a pattern.
    pub fn new(pattern: &str) -> Result<Self, RegexParseError> {
        let (ast, group_names) = parser::parse(pattern)?;
        let to_err = |e: MatchError| RegexParseError { offset: 0, message: e.to_string() };
        let program = matcher::compile(&ast, group_names.len(), false).map_err(to_err)?;
        let anchored = matcher::compile(&ast, group_names.len(), true).map_err(to_err)?;
        let prefilter = required_literal(&ast);
        Ok(Self { program, anchored, pattern: pattern.to_string(), group_names, prefilter })
    }

    /// The literal substring every match must contain, when the compiler
    /// managed to extract one — the prefilter that short-circuits
    /// non-matching texts without running the VM.
    pub fn required_literal(&self) -> Option<&str> {
        self.prefilter.as_deref()
    }

    /// Prefilter check: `false` means the text cannot possibly match.
    #[inline]
    fn might_match(&self, text: &str) -> bool {
        match &self.prefilter {
            Some(lit) => text.contains(lit.as_str()),
            None => true,
        }
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of capture groups, including group 0 (the whole match).
    pub fn group_count(&self) -> usize {
        self.group_names.len()
    }

    /// Names of the capture groups (index 0 is the implicit whole-match
    /// group and is always unnamed).
    pub fn group_names(&self) -> &[Option<String>] {
        &self.group_names
    }

    /// Unanchored search: does the pattern match anywhere in `text`?
    /// Budget-exhausted patterns report `false` (the conservative answer
    /// for a filter).
    pub fn is_match(&self, text: &str) -> bool {
        self.might_match(text) && matcher::run(&self.program, text).ok().flatten().is_some()
    }

    /// Anchored match over the *entire* input, the semantics Prometheus
    /// label matchers use (`=~"foo.*"` must match the whole value).
    pub fn is_full_match(&self, text: &str) -> bool {
        self.might_match(text) && matches!(matcher::run(&self.anchored, text), Ok(Some(_)))
    }

    /// First match with capture groups, or `None`.
    pub fn captures<'t>(&self, text: &'t str) -> Option<Captures<'t>> {
        if !self.might_match(text) {
            return None;
        }
        matcher::run(&self.program, text)
            .ok()
            .flatten()
            .map(|spans| Captures::new(text, spans, &self.group_names))
    }

    /// Like [`Regex::captures`] but surfacing budget exhaustion.
    pub fn try_captures<'t>(&self, text: &'t str) -> Result<Option<Captures<'t>>, MatchError> {
        if !self.might_match(text) {
            return Ok(None);
        }
        Ok(matcher::run(&self.program, text)?
            .map(|spans| Captures::new(text, spans, &self.group_names)))
    }

    /// Byte range of the first match, if any.
    pub fn find(&self, text: &str) -> Option<(usize, usize)> {
        if !self.might_match(text) {
            return None;
        }
        matcher::run(&self.program, text)
            .ok()
            .flatten()
            .and_then(|caps| caps.first().copied().flatten())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).unwrap_or_else(|e| panic!("pattern {p:?} failed: {e}"))
    }

    #[test]
    fn literals_and_dot() {
        assert!(re("leak").is_match("a leak was detected"));
        assert!(!re("leak").is_match("all dry"));
        assert!(re("l.ak").is_match("look: leak"));
        assert!(!re("l.ak").is_match("l\nak")); // dot excludes newline
    }

    #[test]
    fn classes() {
        assert!(re("[a-z]+[0-9]+").is_match("x1002"));
        assert!(re("[^0-9]").is_match("abc"));
        assert!(!re("^[^0-9]+$").is_match("abc1"));
        assert!(re(r"x\d+c\d+r\d+b\d+").is_match("switch x1002c1r7b0 offline"));
        assert!(re(r"\w+").is_match("under_score"));
        assert!(re(r"\s").is_match("a b"));
        assert!(!re(r"\S").is_match(" \t\n"));
    }

    #[test]
    fn alternation_and_groups() {
        let r = re("(warning|critical): (leak|offline)");
        assert!(r.is_match("critical: offline detected"));
        assert!(!r.is_match("info: leak"));
        let caps = r.captures("status critical: leak now").unwrap();
        assert_eq!(caps.group(1), Some("critical"));
        assert_eq!(caps.group(2), Some("leak"));
    }

    #[test]
    fn named_groups() {
        let r = re(r"problem:(?P<problem>\w+), xname:(?P<xname>\w+)");
        let caps = r.captures("problem:fm_switch_offline, xname:x1002c1r7b0").unwrap();
        assert_eq!(caps.name("problem"), Some("fm_switch_offline"));
        assert_eq!(caps.name("xname"), Some("x1002c1r7b0"));
        assert_eq!(caps.name("missing"), None);
    }

    #[test]
    fn repetitions() {
        assert!(re("ab{2}c").is_match("abbc"));
        assert!(!re("^ab{2}c$").is_match("abc"));
        assert!(re("a{2,}").is_match("aaa"));
        assert!(!re("^a{2,3}$").is_match("aaaa"));
        assert!(re("^a{0,2}$").is_match(""));
        assert!(re("colou?r").is_match("color"));
        assert!(re("(ab)+").is_match("ababab"));
    }

    #[test]
    fn lazy_vs_greedy() {
        let greedy = re(r#""(.*)""#);
        let caps = greedy.captures(r#"say "a" and "b" now"#).unwrap();
        assert_eq!(caps.group(1), Some(r#"a" and "b"#));
        let lazy = re(r#""(.*?)""#);
        let caps = lazy.captures(r#"say "a" and "b" now"#).unwrap();
        assert_eq!(caps.group(1), Some("a"));
    }

    #[test]
    fn anchors() {
        assert!(re("^abc$").is_match("abc"));
        assert!(!re("^abc$").is_match("xabc"));
        assert!(re("^ab").is_match("abc"));
        assert!(re("bc$").is_match("abc"));
    }

    #[test]
    fn full_match_semantics() {
        let r = re("perl.*");
        assert!(r.is_full_match("perlmutter"));
        assert!(!r.is_full_match("my perlmutter"));
        assert!(re("").is_full_match(""));
    }

    #[test]
    fn leftmost_first() {
        assert_eq!(re("a+").find("xxaaayy"), Some((2, 5)));
        assert_eq!(re("").find("abc"), Some((0, 0)));
    }

    #[test]
    fn escaped_metacharacters() {
        assert!(re(r"CrayAlerts\.1\.0").is_match("CrayAlerts.1.0.CabinetLeakDetected"));
        assert!(!re(r"^CrayAlerts\.1\.0$").is_match("CrayAlertsX1X0"));
        assert!(re(r"\[critical\]").is_match("[critical] problem"));
        assert!(re(r"a\{2\}").is_match("a{2}"));
    }

    #[test]
    fn unicode_text() {
        assert!(re("naïve").is_match("a naïve plan"));
        assert!(re("n.ïve").is_match("naïve"));
        assert!(re("日本").is_match("日本語"));
    }

    #[test]
    fn parse_errors() {
        for p in ["(", ")", "a{2", "a{3,1}", "[a-", "a**", "(?P<", "(?P<1a>x)", "\\"] {
            assert!(Regex::new(p).is_err(), "should reject {p:?}");
        }
        // `{` not opening a quantifier is a literal brace, like RE2.
        assert!(Regex::new("a{").unwrap().is_match("a{"));
        assert!(Regex::new("a{x}").unwrap().is_match("a{x}"));
    }

    #[test]
    fn pathological_pattern_fails_loudly_not_forever() {
        // Classic exponential backtracking case; the budget converts it
        // into an explicit error instead of a hang.
        let r = re("(a+)+$");
        let text = "a".repeat(40) + "b";
        match r.try_captures(&text) {
            Err(MatchError::BudgetExhausted) => {}
            Ok(None) => {} // small enough to finish is fine too
            other => panic!("unexpected: {other:?}"),
        }
        assert!(!r.is_match(&text));
    }

    #[test]
    fn prefilter_extracts_longest_required_literal() {
        assert_eq!(re("leak detected").required_literal(), Some("leak detected"));
        assert_eq!(re("leak.*detected").required_literal(), Some("detected"));
        assert_eq!(re("(warning|critical): leak").required_literal(), Some(": leak"));
        assert_eq!(re("^CabinetLeak$").required_literal(), Some("CabinetLeak"));
        assert_eq!(re(r"problem:(?P<p>\w+)").required_literal(), Some("problem:"));
        // One mandatory copy of a repeated body counts.
        assert_eq!(re("(leak)+x").required_literal(), Some("leak"));
        // Nothing extractable: every position is a wildcard or choice.
        assert_eq!(re("a|b").required_literal(), None);
        assert_eq!(re(r"\d+").required_literal(), None);
        assert_eq!(re(".*").required_literal(), None);
    }

    #[test]
    fn prefilter_preserves_match_semantics() {
        // `ab+c`: matches "abbc", which contains "ab" and "bc" but not
        // "abc" — the extractor must not weld runs across a repeat.
        let r = re("ab+c");
        assert!(r.is_match("xx abbc yy"));
        assert!(!r.is_match("ac"));
        // Prefilter-rejected text behaves exactly like a VM miss on every
        // entry point.
        let r = re("leak.*detected");
        assert!(!r.is_match("all dry"));
        assert!(r.captures("all dry").is_none());
        assert!(r.find("all dry").is_none());
        assert!(matches!(r.try_captures("all dry"), Ok(None)));
        assert!(!r.is_full_match("all dry"));
        // And prefilter-passing text still goes through the VM.
        assert!(r.is_match("leak was detected"));
        assert!(!r.is_match("detected before the leak")); // order matters
    }

    #[test]
    fn group_metadata() {
        let r = re(r"(?P<a>x)(y)(?:z)");
        assert_eq!(r.group_count(), 3); // whole match + a + unnamed
        assert_eq!(r.group_names()[1], Some("a".to_string()));
        assert_eq!(r.group_names()[2], None);
    }
}

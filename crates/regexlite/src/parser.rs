//! Recursive-descent regex parser.

use crate::ast::{Ast, ClassItem};
use std::fmt;

/// Error produced when a pattern fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexParseError {
    /// Byte position in the pattern.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for RegexParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex parse error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for RegexParseError {}

/// Parse a pattern into an AST plus the capture-group name table
/// (index 0 = whole match, always unnamed).
pub fn parse(pattern: &str) -> Result<(Ast, Vec<Option<String>>), RegexParseError> {
    let mut p = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
        group_names: vec![None], // group 0
    };
    let ast = p.alternation()?;
    if p.pos != p.chars.len() {
        return Err(p.err("unexpected ')'"));
    }
    Ok((ast, p.group_names))
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    group_names: Vec<Option<String>>,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> RegexParseError {
        RegexParseError { offset: self.pos, message: msg.into() }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn alternation(&mut self) -> Result<Ast, RegexParseError> {
        let mut branches = vec![self.concat()?];
        while self.eat('|') {
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 { branches.pop().unwrap() } else { Ast::Alt(branches) })
    }

    fn concat(&mut self) -> Result<Ast, RegexParseError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().unwrap(),
            _ => Ast::Concat(parts),
        })
    }

    fn repeat(&mut self) -> Result<Ast, RegexParseError> {
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.pos += 1;
                (0, None)
            }
            Some('+') => {
                self.pos += 1;
                (1, None)
            }
            Some('?') => {
                self.pos += 1;
                (0, Some(1))
            }
            Some('{') => {
                // `{` not followed by a digit is a literal brace in most
                // engines; we require the quantifier form to be complete.
                let save = self.pos;
                self.pos += 1;
                match self.bounded_repeat() {
                    Ok(r) => r,
                    Err(e) => {
                        // Distinguish "not a quantifier at all" ({x) from a
                        // malformed quantifier ({2).
                        if self.chars.get(save + 1).is_some_and(|c| c.is_ascii_digit()) {
                            return Err(e);
                        }
                        self.pos = save;
                        return Ok(atom);
                    }
                }
            }
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::Repeat { .. }) {
            return Err(self.err("nested quantifier (use a group)"));
        }
        if matches!(atom, Ast::AnchorStart | Ast::AnchorEnd | Ast::Empty) {
            return Err(self.err("quantifier has nothing to repeat"));
        }
        if let Some(m) = max {
            if m < min {
                return Err(self.err("quantifier max below min"));
            }
        }
        let greedy = !self.eat('?');
        Ok(Ast::Repeat { node: Box::new(atom), min, max, greedy })
    }

    fn bounded_repeat(&mut self) -> Result<(u32, Option<u32>), RegexParseError> {
        let min = self.number()?;
        if self.eat('}') {
            return Ok((min, Some(min)));
        }
        if !self.eat(',') {
            return Err(self.err("expected ',' or '}' in quantifier"));
        }
        if self.eat('}') {
            return Ok((min, None));
        }
        let max = self.number()?;
        if !self.eat('}') {
            return Err(self.err("expected '}' in quantifier"));
        }
        Ok((min, Some(max)))
    }

    fn number(&mut self) -> Result<u32, RegexParseError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start || self.pos - start > 4 {
            return Err(self.err("expected a (small) number"));
        }
        Ok(self.chars[start..self.pos].iter().collect::<String>().parse().unwrap())
    }

    fn atom(&mut self) -> Result<Ast, RegexParseError> {
        match self.bump() {
            None => Err(self.err("unexpected end of pattern")),
            Some('(') => self.group(),
            Some('[') => self.class(),
            Some('.') => Ok(Ast::AnyChar),
            Some('^') => Ok(Ast::AnchorStart),
            Some('$') => Ok(Ast::AnchorEnd),
            Some('\\') => self.escape(),
            Some(c @ ('*' | '+' | '?')) => Err(self.err(format!("dangling quantifier {c:?}"))),
            Some(c) => Ok(Ast::Literal(c)),
        }
    }

    fn group(&mut self) -> Result<Ast, RegexParseError> {
        let index = if self.eat('?') {
            match self.bump() {
                Some(':') => None,
                Some('P') => {
                    if !self.eat('<') {
                        return Err(self.err("expected '<' after (?P"));
                    }
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                        self.pos += 1;
                    }
                    let name: String = self.chars[start..self.pos].iter().collect();
                    if name.is_empty() || name.chars().next().unwrap().is_ascii_digit() {
                        return Err(self.err("invalid group name"));
                    }
                    if !self.eat('>') {
                        return Err(self.err("expected '>' after group name"));
                    }
                    self.group_names.push(Some(name));
                    Some(self.group_names.len() - 1)
                }
                Some('<') => {
                    // Also accept the (?<name>...) spelling.
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                        self.pos += 1;
                    }
                    let name: String = self.chars[start..self.pos].iter().collect();
                    if name.is_empty() || name.chars().next().unwrap().is_ascii_digit() {
                        return Err(self.err("invalid group name"));
                    }
                    if !self.eat('>') {
                        return Err(self.err("expected '>' after group name"));
                    }
                    self.group_names.push(Some(name));
                    Some(self.group_names.len() - 1)
                }
                _ => return Err(self.err("unsupported group flag")),
            }
        } else {
            self.group_names.push(None);
            Some(self.group_names.len() - 1)
        };
        let inner = self.alternation()?;
        if !self.eat(')') {
            return Err(self.err("missing ')'"));
        }
        Ok(Ast::Group { index, node: Box::new(inner) })
    }

    fn class(&mut self) -> Result<Ast, RegexParseError> {
        let negated = self.eat('^');
        let mut items = Vec::new();
        // A leading ']' is a literal.
        if self.eat(']') {
            items.push(ClassItem::Char(']'));
        }
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated character class")),
                Some(']') => {
                    self.pos += 1;
                    break;
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.bump() {
                        Some('d') => items.push(ClassItem::Digit),
                        Some('w') => items.push(ClassItem::Word),
                        Some('s') => items.push(ClassItem::Space),
                        Some('n') => items.push(ClassItem::Char('\n')),
                        Some('r') => items.push(ClassItem::Char('\r')),
                        Some('t') => items.push(ClassItem::Char('\t')),
                        Some(c) => items.push(ClassItem::Char(c)),
                        None => return Err(self.err("trailing backslash in class")),
                    }
                }
                Some(lo) => {
                    self.pos += 1;
                    if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                        self.pos += 1; // '-'
                        let hi =
                            self.bump().ok_or_else(|| self.err("unterminated range in class"))?;
                        if hi < lo {
                            return Err(self.err("reversed range in class"));
                        }
                        items.push(ClassItem::Range(lo, hi));
                    } else {
                        items.push(ClassItem::Char(lo));
                    }
                }
            }
        }
        if items.is_empty() && !negated {
            return Err(self.err("empty character class"));
        }
        Ok(Ast::Class { items, negated })
    }

    fn escape(&mut self) -> Result<Ast, RegexParseError> {
        match self.bump() {
            None => Err(self.err("trailing backslash")),
            Some('d') => Ok(Ast::Class { items: vec![ClassItem::Digit], negated: false }),
            Some('D') => Ok(Ast::Class { items: vec![ClassItem::Digit], negated: true }),
            Some('w') => Ok(Ast::Class { items: vec![ClassItem::Word], negated: false }),
            Some('W') => Ok(Ast::Class { items: vec![ClassItem::Word], negated: true }),
            Some('s') => Ok(Ast::Class { items: vec![ClassItem::Space], negated: false }),
            Some('S') => Ok(Ast::Class { items: vec![ClassItem::Space], negated: true }),
            Some('n') => Ok(Ast::Literal('\n')),
            Some('r') => Ok(Ast::Literal('\r')),
            Some('t') => Ok(Ast::Literal('\t')),
            Some('0') => Ok(Ast::Literal('\0')),
            Some(c) if c.is_ascii_alphanumeric() => {
                Err(self.err(format!("unsupported escape \\{c}")))
            }
            Some(c) => Ok(Ast::Literal(c)),
        }
    }
}

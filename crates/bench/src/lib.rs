//! Shared workload helpers for the benchmark suite.

use omni_json::{parse, Json};
use omni_loki::{Limits, LokiCluster};
use omni_model::{LabelSet, LogRecord, SimClock, NANOS_PER_SEC};
use omni_shasta::{ShastaMachine, SyslogGenerator};
use omni_xname::TopologySpec;
use std::path::PathBuf;
use std::sync::Arc;

/// Deterministic corpus of syslog-shaped records: `n` lines spread over
/// `streams` label sets, advancing one second every 256 lines.
pub fn syslog_corpus(n: usize, streams: usize) -> Vec<LogRecord> {
    let clock = SimClock::starting_at(0);
    let machine = Arc::new(ShastaMachine::new(TopologySpec::tiny(), clock.clone(), 7));
    let mut gen = SyslogGenerator::new(machine.topology().nodes(), clock.clone(), 7);
    (0..n)
        .map(|i| {
            let (_, line) = gen.next_line();
            if i % 256 == 0 {
                clock.advance_secs(1);
            }
            let labels = LabelSet::from_pairs([
                ("cluster", "perlmutter".to_string()),
                ("data_type", "syslog".to_string()),
                ("stream", format!("{}", i % streams)),
            ]);
            LogRecord::new(labels, clock.now() + (i % 256) as i64, line)
        })
        .collect()
}

/// A Loki cluster pre-loaded with a corpus (flushed so queries hit sealed
/// chunks, like steady-state production).
pub fn loaded_cluster(shards: usize, n: usize, streams: usize) -> LokiCluster {
    let clock = SimClock::starting_at(0);
    let cluster = LokiCluster::new(shards, Limits::default(), clock.clone());
    for r in syslog_corpus(n, streams) {
        cluster.push_record(r).expect("corpus records are valid");
    }
    clock.advance_secs(3600);
    cluster.flush();
    cluster
}

/// Window end covering the whole corpus.
pub fn corpus_end() -> i64 {
    10_000 * NANOS_PER_SEC
}

/// Whether the bench binary was invoked with `--quick` (the verify.sh
/// smoke mode). The vendored criterion shim ignores CLI flags, so benches
/// check the raw argument list themselves: quick mode shrinks workloads
/// and skips the report write so a smoke run never dirties the tree.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Repo-root path of the machine-readable PR5 report.
pub fn pr5_report_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_PR5.json")
}

/// Merge one named section into `BENCH_PR5.json` (read-modify-write, the
/// same contract as [`write_pr3_section`]).
pub fn write_pr5_section(section: &str, value: Json) {
    let path = pr5_report_path();
    let mut root = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| parse(&text).ok())
        .filter(|v| matches!(v, Json::Object(_)))
        .unwrap_or_else(|| Json::Object(Vec::new()));
    root.set(section, value).expect("report root is an object");
    std::fs::write(&path, root.pretty(2) + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
}

/// Repo-root path of the machine-readable PR3 report.
pub fn pr3_report_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_PR3.json")
}

/// Merge one named section into `BENCH_PR3.json` (read-modify-write, so
/// the ingest and range-query benches can run in either order and each
/// owns exactly one top-level key).
pub fn write_pr3_section(section: &str, value: Json) {
    let path = pr3_report_path();
    let mut root = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| parse(&text).ok())
        .filter(|v| matches!(v, Json::Object(_)))
        .unwrap_or_else(|| Json::Object(Vec::new()));
    root.set(section, value).expect("report root is an object");
    std::fs::write(&path, root.pretty(2) + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
}

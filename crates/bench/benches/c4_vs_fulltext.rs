//! C4 — the label-index-vs-full-text trade-off (§III-A): "Loki does not
//! index the text of the logs ... a small index and compressed chunks
//! significantly reduce the costs for storage and the log query times."
//!
//! Same corpus into the Loki-style store and into the Elasticsearch-style
//! inverted-index baseline. Expected shape: Loki wins index size and
//! ingest rate by orders of magnitude; full-text wins needle-term query
//! latency (it has a postings list; Loki scans and greps).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use omni_baseline::FullTextStore;
use omni_bench::{corpus_end, syslog_corpus};
use omni_loki::{Limits, LokiCluster};
use omni_model::SimClock;

const MESSAGES: usize = 50_000;

fn bench(c: &mut Criterion) {
    let corpus = syslog_corpus(MESSAGES, 64);

    // Build both stores once for the report + query benches.
    let loki = LokiCluster::new(4, Limits::default(), SimClock::starting_at(0));
    for r in corpus.clone() {
        loki.push_record(r).unwrap();
    }
    loki.flush();
    let mut fulltext = FullTextStore::new();
    for r in &corpus {
        fulltext.ingest(r.labels.clone(), r.entry.ts, r.entry.line.clone());
    }

    let raw_bytes: usize = corpus.iter().map(|r| r.entry.line.len()).sum();
    println!("\n[c4] {} messages, {} raw bytes:", MESSAGES, raw_bytes);
    println!(
        "[c4]   loki:      index {:>10} bytes ({} entries), stored {:>10} bytes (compressed)",
        loki.index_bytes(),
        loki.index_entries(),
        loki.compressed_bytes(),
    );
    println!(
        "[c4]   fulltext:  index {:>10} bytes ({} terms),  stored {:>10} bytes (raw)",
        fulltext.index_bytes(),
        fulltext.term_count(),
        fulltext.stored_bytes(),
    );
    println!(
        "[c4]   index-size ratio (fulltext/loki): {:.1}x",
        fulltext.index_bytes() as f64 / loki.index_bytes().max(1) as f64
    );
    assert!(
        fulltext.index_bytes() > 10 * loki.index_bytes(),
        "the paper's 'small index' claim must hold"
    );

    let mut g = c.benchmark_group("c4_loki_vs_fulltext");
    g.sample_size(10);

    // Ingest rate.
    g.throughput(Throughput::Elements(MESSAGES as u64));
    g.bench_function("ingest_loki", |b| {
        b.iter_with_setup(
            || (LokiCluster::new(4, Limits::default(), SimClock::starting_at(0)), corpus.clone()),
            |(cluster, corpus)| {
                for r in corpus {
                    cluster.push_record(r).unwrap();
                }
                black_box(cluster.stats().entries)
            },
        );
    });
    g.bench_function("ingest_fulltext", |b| {
        b.iter_with_setup(
            || corpus.clone(),
            |corpus| {
                let mut store = FullTextStore::new();
                for r in corpus {
                    store.ingest(r.labels, r.entry.ts, r.entry.line);
                }
                black_box(store.len())
            },
        );
    });

    // Needle query: a rare term ("lockup" appears with weight 1/100).
    g.throughput(Throughput::Elements(1));
    g.bench_function("needle_query_loki_grep", |b| {
        b.iter(|| {
            let out = loki
                .query_logs(
                    black_box(r#"{cluster="perlmutter"} |= "lockup""#),
                    0,
                    corpus_end(),
                    usize::MAX,
                )
                .unwrap();
            black_box(out.len())
        });
    });
    g.bench_function("needle_query_fulltext_postings", |b| {
        b.iter(|| black_box(fulltext.search_term(black_box("lockup")).len()));
    });

    // Aggregation-style query: count per stream over everything — the
    // kind of query Loki's label grouping is built for.
    g.bench_function("aggregation_loki_count_by_stream", |b| {
        b.iter(|| {
            let v = loki
                .query_instant(
                    black_box(r#"sum(count_over_time({cluster="perlmutter"}[3h])) by (stream)"#),
                    corpus_end(),
                )
                .unwrap();
            black_box(v.len())
        });
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

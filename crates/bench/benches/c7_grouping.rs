//! C7 — Alertmanager noise reduction under an alert storm: how many
//! notifications leave the system per alert that enters it, and what one
//! grouping pass costs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use omni_alertmanager::{Alert, AlertStatus, Alertmanager, Route};
use omni_model::{labels, NANOS_PER_SEC};

const SEC: i64 = NANOS_PER_SEC;

fn storm(n_alertnames: usize, n_locations: usize) -> Vec<Alert> {
    let mut alerts = Vec::with_capacity(n_alertnames * n_locations);
    for a in 0..n_alertnames {
        for l in 0..n_locations {
            alerts.push(Alert {
                labels: labels!(
                    "alertname" => format!("Alert{a}"),
                    "severity" => "critical",
                    "xname" => format!("x{:04}c{}r0b0", 1000 + l, l % 8)
                ),
                annotations: vec![("summary".into(), "storm".into())],
                status: AlertStatus::Firing,
                starts_at: SEC,
            });
        }
    }
    alerts
}

fn am() -> Alertmanager {
    let mut route = Route::default_route("slack");
    route.group_by = vec!["alertname".into()];
    route.group_wait_ns = 10 * SEC;
    Alertmanager::new(route)
}

fn bench(c: &mut Criterion) {
    // Report the noise-reduction factor once.
    for (names, locs) in [(1usize, 100usize), (4, 64), (16, 16)] {
        let mut m = am();
        for a in storm(names, locs) {
            m.receive(a, SEC);
        }
        let notifs = m.tick(30 * SEC);
        let (received, notified, _) = m.stats();
        println!(
            "[c7] storm {names} alertnames x {locs} locations: {received} alerts -> {} notifications ({:.0}x reduction)",
            notifs.len(),
            received as f64 / notified.max(1) as f64
        );
        assert_eq!(notifs.len(), names);
    }

    let mut g = c.benchmark_group("c7_alertmanager_grouping");
    g.sample_size(10);
    for &(names, locs) in &[(1usize, 512usize), (16, 32), (64, 8)] {
        let alerts = storm(names, locs);
        g.throughput(Throughput::Elements(alerts.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("receive_and_flush", format!("{names}x{locs}")),
            &alerts,
            |b, alerts| {
                b.iter_with_setup(
                    || (am(), alerts.clone()),
                    |(mut m, alerts)| {
                        for a in alerts {
                            m.receive(a, SEC);
                        }
                        black_box(m.tick(30 * SEC).len())
                    },
                );
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

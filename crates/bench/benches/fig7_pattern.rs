//! E5 — Figure 7: the `pattern` stage extracting fields from the
//! fabric-manager event line, against the `regexp` and `json` stages on
//! equivalent inputs.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use omni_logql::{parse_log_query, Pipeline};
use omni_model::labels;

const LINE: &str = "[critical] problem:fm_switch_offline, xname:x1002c1r7b0, state:UNKNOWN";
const JSON_LINE: &str = r#"{"severity":"critical","problem":"fm_switch_offline","xname":"x1002c1r7b0","state":"UNKNOWN"}"#;

fn pipeline(q: &str) -> Pipeline {
    Pipeline::new(parse_log_query(q).unwrap().stages)
}

fn bench(c: &mut Criterion) {
    let stream = labels!("app" => "fabric_manager_monitor", "cluster" => "perlmutter");
    let pattern = pipeline(
        r#"{app="fm"} | pattern "[<severity>] problem:<problem>, xname:<xname>, state:<state>""#,
    );
    let regexp = pipeline(
        r#"{app="fm"} | regexp "\[(?P<severity>\w+)\] problem:(?P<problem>\w+), xname:(?P<xname>\w+), state:(?P<state>\w+)""#,
    );
    let json = pipeline(r#"{app="fm"} | json"#);

    let mut g = c.benchmark_group("fig7_field_extraction");
    g.throughput(Throughput::Bytes(LINE.len() as u64));
    g.bench_function("pattern_stage", |b| {
        b.iter(|| black_box(pattern.process(black_box(LINE), &stream)));
    });
    g.bench_function("regexp_stage", |b| {
        b.iter(|| black_box(regexp.process(black_box(LINE), &stream)));
    });
    g.throughput(Throughput::Bytes(JSON_LINE.len() as u64));
    g.bench_function("json_stage", |b| {
        b.iter(|| black_box(json.process(black_box(JSON_LINE), &stream)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E4 + E7 — Figures 6 & 9: end-to-end alert path latency. One measured
//! iteration = inject fault → telemetry → bridges → Loki → Ruler →
//! Alertmanager → formatted Slack message.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use omni_core::{MonitoringStack, StackConfig};
use omni_model::NANOS_PER_SEC;
use omni_shasta::{LeakZone, SwitchState};

const MINUTE: i64 = 60 * NANOS_PER_SEC;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_fig9_end_to_end");
    g.sample_size(10);

    g.bench_function("leak_to_slack_message", |b| {
        b.iter(|| {
            let mut stack = MonitoringStack::new(StackConfig::default());
            stack.step(MINUTE, 0, 0);
            let chassis = stack.machine.topology().chassis()[0];
            stack.inject_leak(chassis, 'A', LeakZone::Front);
            let mut steps = 0;
            while stack.slack.is_empty() && steps < 10 {
                stack.step(MINUTE, 0, 0);
                steps += 1;
            }
            assert!(!stack.slack.is_empty());
            black_box(steps)
        });
    });

    g.bench_function("switch_offline_to_slack_message", |b| {
        b.iter(|| {
            let mut stack = MonitoringStack::new(StackConfig::default());
            stack.step(MINUTE, 0, 0);
            let switch = stack.machine.topology().switches()[0];
            stack.take_switch_offline(switch, SwitchState::Unknown);
            let mut steps = 0;
            while stack.slack.is_empty() && steps < 10 {
                stack.step(MINUTE, 0, 0);
                steps += 1;
            }
            assert!(!stack.slack.is_empty());
            black_box(steps)
        });
    });

    // Steady-state pipeline step cost with background traffic.
    g.bench_function("pipeline_step_with_traffic", |b| {
        let mut stack = MonitoringStack::new(StackConfig::default());
        b.iter(|| {
            black_box(stack.step(MINUTE, 50, 25).len());
        });
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E6 — Figure 8: Ruler evaluation cost. "The Ruler ... is responsible
//! for continually evaluating a set of configurable queries" — this
//! measures one evaluation pass across rule counts and store sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use omni_bench::{corpus_end, loaded_cluster};
use omni_loki::{AlertingRule, RuleGroup, Ruler};
use omni_model::{LabelSet, NANOS_PER_SEC};

fn switch_rule(i: usize) -> AlertingRule {
    AlertingRule {
        name: format!("SwitchOffline{i}"),
        expr: format!(
            r#"sum(count_over_time({{data_type="syslog", stream="{i}"}} |= "slurmd" [5m])) by (stream) > 0"#
        ),
        for_ns: 60 * NANOS_PER_SEC,
        labels: LabelSet::from_pairs([("severity", "critical")]),
        annotations: vec![("summary".into(), "stream {{.stream}} busy".into())],
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_ruler_evaluation");
    g.sample_size(10);
    for &rules in &[1usize, 4, 16] {
        let cluster = loaded_cluster(4, 50_000, 32);
        let mut ruler = Ruler::new(cluster.clone());
        ruler
            .add_group(RuleGroup {
                name: "bench".into(),
                interval_ns: 0, // always due
                rules: (0..rules).map(switch_rule).collect(),
            })
            .unwrap();
        g.bench_with_input(BenchmarkId::new("rules", rules), &rules, |b, _| {
            let mut t = corpus_end();
            b.iter(|| {
                t += NANOS_PER_SEC;
                black_box(ruler.evaluate(t).len())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

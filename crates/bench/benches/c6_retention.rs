//! C6 — retention and archive/restore cost: "up to two years of
//! operational data is immediately available and more can be restored."

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use omni_core::Omni;
use omni_loki::Limits;
use omni_model::{labels, SimClock, NANOS_PER_SEC};

const DAY: i64 = 86_400 * NANOS_PER_SEC;
const MESSAGES: usize = 20_000;

fn populated_omni() -> Omni {
    let limits =
        Limits { retention_ns: 730 * DAY, chunk_target_bytes: 16 * 1024, ..Default::default() };
    let omni = Omni::new(4, limits, SimClock::starting_at(0));
    // Three years of sparse history: most of it is already expired
    // relative to "now" = day 1095. Timestamps increase monotonically so
    // every stream accepts its entries.
    let step = 1095 * DAY / MESSAGES as i64;
    for i in 0..MESSAGES {
        let ts = i as i64 * step;
        omni.ingest_log(
            labels!("app" => "history", "shard" => format!("{}", i % 8)),
            ts,
            format!("log line {i} from day {}", ts / DAY),
        )
        .unwrap();
    }
    omni.loki().flush();
    omni.clock().set(1095 * DAY);
    omni
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c6_retention");
    g.sample_size(10);

    g.throughput(Throughput::Elements(MESSAGES as u64));
    g.bench_function("enforce_two_year_retention", |b| {
        b.iter_with_setup(populated_omni, |omni| {
            let dropped = omni.loki().enforce_retention();
            black_box(dropped)
        });
    });

    g.bench_function("archive_one_year_window", |b| {
        b.iter_with_setup(populated_omni, |omni| {
            let archived = omni.archive_window(r#"{app="history"}"#, 0, 365 * DAY).unwrap();
            black_box(archived)
        });
    });

    g.bench_function("restore_one_year_window", |b| {
        b.iter_with_setup(
            || {
                let omni = populated_omni();
                omni.archive_window(r#"{app="history"}"#, 0, 365 * DAY).unwrap();
                omni.loki().enforce_retention();
                omni
            },
            |omni| black_box(omni.restore_window(0, 365 * DAY)),
        );
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E2 — Figure 4: latency of the Redfish-event log query against a
//! store carrying realistic background traffic.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use omni_bench::{corpus_end, loaded_cluster};
use omni_core::redfish_to_loki;
use omni_redfish::RedfishEvent;

fn bench(c: &mut Criterion) {
    // 100k syslog lines of noise + one Redfish event needle.
    let cluster = loaded_cluster(8, 100_000, 64);
    let event = RedfishEvent::paper_leak_event();
    let mut record = redfish_to_loki(&event, "perlmutter");
    record.entry.ts = corpus_end() / 2;
    cluster.push_record(record).unwrap();
    cluster.flush();

    let mut g = c.benchmark_group("fig4_event_query");
    g.sample_size(20);
    g.bench_function("needle_query_redfish_event", |b| {
        b.iter(|| {
            let out = cluster
                .query_logs(
                    black_box(r#"{data_type="redfish_event"} |= "CabinetLeakDetected""#),
                    0,
                    corpus_end(),
                    100,
                )
                .unwrap();
            assert_eq!(out.len(), 1);
            black_box(out)
        });
    });
    g.bench_function("selector_only_syslog_count", |b| {
        b.iter(|| {
            let out = cluster
                .query_logs(black_box(r#"{stream="5"}"#), 0, corpus_end(), usize::MAX)
                .unwrap();
            black_box(out.len())
        });
    });
    g.bench_function("line_filter_over_all_syslog", |b| {
        b.iter(|| {
            let out = cluster
                .query_logs(
                    black_box(r#"{data_type="syslog"} |= "soft lockup""#),
                    0,
                    corpus_end(),
                    usize::MAX,
                )
                .unwrap();
            black_box(out.len())
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! C2 — "Phase 1 of Perlmutter is projected to produce over 400
//! gigabytes of data per day" + Loki's compression claims.
//!
//! Prints the workload model's daily volume for a Perlmutter-like machine
//! and measures chunk compression (ratio and encode cost) on a
//! representative one-minute slice.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use omni_loki::chunk::SealedChunk;
use omni_model::{LogEntry, SimClock};
use omni_shasta::{ShastaMachine, WorkloadMix, WorkloadModel};
use omni_tsdb::GorillaEncoder;
use omni_xname::TopologySpec;

fn bench(c: &mut Criterion) {
    // The volume model itself (printed once; the paper's figure is a
    // projection, not a benchmark).
    let machine = ShastaMachine::new(TopologySpec::perlmutter_like(), SimClock::new(), 1);
    let model = WorkloadModel::for_machine(&machine, WorkloadMix::default());
    println!(
        "\n[c2] Perlmutter-like volume model: {:.1} GB/day ({:.0} msgs/s, {:.2} MB/s) — paper projects \"over 400 GB per day\"",
        model.gb_per_day(),
        model.messages_per_sec(),
        model.bytes_per_sec() / 1e6,
    );

    // A one-minute log slice for compression measurements.
    let lines = model.generate_log_slice(&machine, 60.0, 20_000, 99);
    let entries: Vec<LogEntry> = lines
        .iter()
        .enumerate()
        .map(|(i, (_, line))| LogEntry::new(i as i64 * 1_000_000, line.clone()))
        .collect();
    let raw_bytes: usize = entries.iter().map(|e| e.line.len()).sum();

    let chunk = SealedChunk::from_entries(&entries);
    println!(
        "[c2] chunk compression: {} lines, {} raw bytes -> {} compressed ({:.2}x)",
        entries.len(),
        raw_bytes,
        chunk.compressed_size(),
        chunk.ratio(),
    );
    assert!(chunk.ratio() > 2.0, "log chunks must compress meaningfully");

    let mut g = c.benchmark_group("c2_compression");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(raw_bytes as u64));
    g.bench_function("chunk_seal_syslog_slice", |b| {
        b.iter(|| black_box(SealedChunk::from_entries(black_box(&entries))));
    });
    g.bench_function("chunk_decode_syslog_slice", |b| {
        b.iter(|| black_box(chunk.decode().unwrap()));
    });

    // Metric-side compression (Gorilla) on a day of 15-second scrapes.
    let samples: Vec<omni_model::Sample> = (0..5_760)
        .map(|i| omni_model::Sample::new(i * 15_000_000_000, 42.0 + ((i % 7) as f64) * 0.25))
        .collect();
    g.throughput(Throughput::Elements(samples.len() as u64));
    g.bench_function("gorilla_encode_day_of_scrapes", |b| {
        b.iter(|| {
            let mut enc = GorillaEncoder::new();
            for &s in &samples {
                enc.append(s);
            }
            black_box(enc.finish().compressed_size())
        });
    });
    {
        let mut enc = GorillaEncoder::new();
        for &s in &samples {
            enc.append(s);
        }
        let block = enc.finish();
        println!(
            "[c2] gorilla: {} samples, {} bytes ({:.2} bytes/sample vs 16 raw)",
            samples.len(),
            block.compressed_size(),
            block.compressed_size() as f64 / samples.len() as f64,
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

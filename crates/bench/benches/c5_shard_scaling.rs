//! C5 — the paper's Loki cluster runs "8 server nodes (that work as
//! Kubernetes worker nodes)". Sweep ingester shard count 1 → 8 with 8
//! concurrent producers and with parallel query fan-out; the expected
//! shape is near-linear ingest scaling until producers saturate.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use omni_bench::{corpus_end, syslog_corpus};
use omni_loki::{Limits, LokiCluster};
use omni_model::SimClock;

const MESSAGES: usize = 40_000;
const PRODUCERS: usize = 8;

fn bench(c: &mut Criterion) {
    let corpus = syslog_corpus(MESSAGES, 256);
    let mut g = c.benchmark_group("c5_shard_scaling");
    g.sample_size(10);

    for &shards in &[1usize, 2, 4, 8] {
        g.throughput(Throughput::Elements(MESSAGES as u64));
        g.bench_with_input(BenchmarkId::new("concurrent_ingest", shards), &shards, |b, &shards| {
            b.iter_with_setup(
                || {
                    (
                        LokiCluster::new(shards, Limits::default(), SimClock::starting_at(0)),
                        corpus.clone(),
                    )
                },
                |(cluster, corpus)| {
                    // Partition by stream fingerprint: disjoint streams
                    // per producer (see c1 for why).
                    let mut parts: Vec<Vec<omni_model::LogRecord>> =
                        (0..PRODUCERS).map(|_| Vec::new()).collect();
                    for r in corpus {
                        let p = (r.labels.fingerprint() % PRODUCERS as u64) as usize;
                        parts[p].push(r);
                    }
                    std::thread::scope(|s| {
                        for part in parts {
                            let cluster = cluster.clone();
                            s.spawn(move || {
                                for r in part {
                                    cluster.push_record(r).unwrap();
                                }
                            });
                        }
                    });
                    black_box(cluster.stats().entries)
                },
            );
        });

        g.bench_with_input(BenchmarkId::new("parallel_query", shards), &shards, |b, &shards| {
            let cluster = LokiCluster::new(shards, Limits::default(), SimClock::starting_at(0));
            for r in corpus.clone() {
                cluster.push_record(r).unwrap();
            }
            cluster.flush();
            b.iter(|| {
                let out = cluster
                    .query_logs(
                        black_box(r#"{cluster="perlmutter"} |= "kernel""#),
                        0,
                        corpus_end(),
                        usize::MAX,
                    )
                    .unwrap();
                black_box(out.len())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! C7b — query-frontend results cache: a Grafana dashboard refresh
//! re-issues the same panel queries every few seconds, and the paper's
//! operators keep several such dashboards open around the clock. With
//! split-aligned caching the second refresh should touch no chunks at
//! all.
//!
//! Measures a fixed "dashboard" (two range panels + one log panel) over a
//! pre-loaded cluster, cold cache vs warm cache, best-of-N. Also
//! cross-checks the split path against an unsplit cluster
//! (`split_interval_ns: 0`) loaded with the identical corpus — the
//! refresh results must be byte-identical. Owns the `frontend_cache`
//! section of BENCH_PR5.json; quick mode shrinks the corpus and only
//! prints.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use omni_bench::{corpus_end, quick_mode, syslog_corpus, write_pr5_section};
use omni_json::jsonv;
use omni_loki::{Limits, LokiCluster};
use omni_model::{LogRecord, SimClock, NANOS_PER_SEC};
use std::time::Instant;

/// The simulated dashboard: the panel mix of a pipeline-health board.
const RANGE_PANELS: &[&str] = &[
    r#"sum by (stream) (count_over_time({cluster="perlmutter"}[5m]))"#,
    r#"count_over_time({data_type="syslog"}[1m])"#,
];
const LOG_PANEL: &str = r#"{cluster="perlmutter"}"#;
const STEP_NS: i64 = 60 * NANOS_PER_SEC;

fn build_cluster(corpus: &[LogRecord], split_interval_ns: i64) -> LokiCluster {
    let clock = SimClock::starting_at(0);
    let limits = Limits { split_interval_ns, ..Default::default() };
    let cluster = LokiCluster::new(8, limits, clock.clone());
    for r in corpus {
        cluster.push_record(r.clone()).expect("corpus records are valid");
    }
    clock.advance_secs(3600);
    cluster.flush();
    cluster
}

/// One dashboard refresh: every panel query against the full corpus
/// window. Returns the results so callers can checksum them.
fn refresh(cluster: &LokiCluster) -> (Vec<omni_logql::Matrix>, Vec<omni_model::LogRecord>) {
    let end = corpus_end();
    let matrices = RANGE_PANELS
        .iter()
        .map(|q| cluster.query_range(q, 0, end, STEP_NS).expect("panel query parses"))
        .collect();
    let logs = cluster.query_logs(LOG_PANEL, 0, end, 200).expect("panel query parses");
    (matrices, logs)
}

fn pr5_frontend_cache_report() {
    let quick = quick_mode();
    let n = if quick { 8_000 } else { 50_000 };
    let runs = if quick { 2 } else { 5 };
    let corpus = syslog_corpus(n, 64);

    let split = build_cluster(&corpus, Limits::default().split_interval_ns);
    let unsplit = build_cluster(&corpus, 0);

    // Correctness cross-check first: splitting (and then caching) must be
    // invisible in the results.
    let from_split = refresh(&split);
    let from_unsplit = refresh(&unsplit);
    let split_equals_unsplit = from_split == from_unsplit;
    assert!(split_equals_unsplit, "split refresh diverged from unsplit refresh");
    let warm_equals_cold = refresh(&split) == from_split;
    assert!(warm_equals_cold, "warm refresh diverged from cold refresh");

    // Cold vs warm, best-of-N. `invalidate_all` restores a cold cache
    // without rebuilding the cluster.
    let mut cold = f64::INFINITY;
    let mut warm = f64::INFINITY;
    for _ in 0..runs {
        split.frontend().invalidate_all();
        let t = Instant::now();
        black_box(refresh(&split));
        cold = cold.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        black_box(refresh(&split));
        warm = warm.min(t.elapsed().as_secs_f64());
    }
    let speedup = cold / warm;
    let stats = split.frontend().stats();
    assert!(stats.cache_hits > 0, "warm refreshes never hit the cache");
    if !quick {
        assert!(
            speedup >= 5.0,
            "warm-cache dashboard refresh speedup {speedup:.2}x below the 5x floor"
        );
    }

    println!(
        "pr5 frontend_cache: cold {:.6}s, warm {:.6}s ({speedup:.1}x), \
         splits {}, hits {}, misses {}, split==unsplit {split_equals_unsplit}",
        cold, warm, stats.splits_total, stats.cache_hits, stats.cache_misses,
    );
    if !quick {
        write_pr5_section(
            "frontend_cache",
            jsonv!({
                "messages": (n),
                "runs_best_of": (runs),
                "range_panels": (RANGE_PANELS.len()),
                "log_panels": (1),
                "cold_refresh_seconds": (cold),
                "warm_refresh_seconds": (warm),
                "speedup": (speedup),
                "splits_total": (stats.splits_total),
                "cache_hits": (stats.cache_hits),
                "cache_misses": (stats.cache_misses),
                "split_equals_unsplit": (split_equals_unsplit),
            }),
        );
    }
}

fn bench(c: &mut Criterion) {
    pr5_frontend_cache_report();
    if quick_mode() {
        return;
    }

    let mut g = c.benchmark_group("c7_frontend_cache");
    g.sample_size(10);

    let corpus = syslog_corpus(50_000, 64);
    let cluster = build_cluster(&corpus, Limits::default().split_interval_ns);

    g.bench_function("dashboard_refresh_cold", |b| {
        b.iter(|| {
            cluster.frontend().invalidate_all();
            black_box(refresh(&cluster))
        });
    });
    g.bench_function("dashboard_refresh_warm", |b| {
        black_box(refresh(&cluster));
        b.iter(|| black_box(refresh(&cluster)));
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

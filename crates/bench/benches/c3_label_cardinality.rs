//! C3 — the paper's §IV-A design claim, as an ablation:
//!
//! "Since labels are indexed, more labels creates more index entries and
//! each log stream fills a chunk. The overuse of labels will create a
//! huge amount of small chunks in memory and on disk. Moreover, Loki
//! prefers handling bigger but fewer chunks. Thus, to achieve better
//! performance, there is need to limit the number of labels in logs, and
//! use key-value pairs with less variation as labels if possible."
//!
//! Sweep stream cardinality (2 → 8192 label-set combinations) at a fixed
//! message count and measure ingest rate and query latency; the printed
//! table shows chunks created and index size exploding with cardinality.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use omni_bench::syslog_corpus;
use omni_loki::{Limits, LokiCluster};
use omni_model::SimClock;

const MESSAGES: usize = 40_000;

fn build(streams: usize) -> LokiCluster {
    let cluster = LokiCluster::new(4, Limits::default(), SimClock::starting_at(0));
    for r in syslog_corpus(MESSAGES, streams) {
        cluster.push_record(r).unwrap();
    }
    cluster.flush();
    cluster
}

fn bench(c: &mut Criterion) {
    println!("\n[c3] label-cardinality ablation, {MESSAGES} messages:");
    println!("[c3] {:>8} {:>8} {:>12} {:>14}", "streams", "chunks", "index_entries", "index_bytes");
    for &streams in &[2usize, 64, 1024, 8192] {
        let cluster = build(streams);
        println!(
            "[c3] {:>8} {:>8} {:>12} {:>14}",
            streams,
            cluster.chunk_count(),
            cluster.index_entries(),
            cluster.index_bytes(),
        );
    }

    let mut g = c.benchmark_group("c3_label_cardinality");
    g.sample_size(10);
    for &streams in &[2usize, 64, 1024, 8192] {
        g.throughput(Throughput::Elements(MESSAGES as u64));
        g.bench_with_input(BenchmarkId::new("ingest", streams), &streams, |b, &streams| {
            let corpus = syslog_corpus(MESSAGES, streams);
            b.iter_with_setup(
                || {
                    (
                        LokiCluster::new(4, Limits::default(), SimClock::starting_at(0)),
                        corpus.clone(),
                    )
                },
                |(cluster, corpus)| {
                    for r in corpus {
                        cluster.push_record(r).unwrap();
                    }
                    black_box(cluster.chunk_count())
                },
            );
        });
        g.bench_with_input(
            BenchmarkId::new("query_line_filter", streams),
            &streams,
            |b, &streams| {
                let cluster = build(streams);
                b.iter(|| {
                    let out = cluster
                        .query_logs(
                            black_box(r#"{cluster="perlmutter"} |= "slurmd""#),
                            0,
                            omni_bench::corpus_end(),
                            usize::MAX,
                        )
                        .unwrap();
                    black_box(out.len())
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E3 — Figure 5: the `count_over_time ... | json [60m]` range query that
//! turns the leak event into a metric, evaluated as a Grafana graph
//! (range query at fixed steps).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use omni_bench::{corpus_end, loaded_cluster};
use omni_core::redfish_to_loki;
use omni_model::NANOS_PER_SEC;
use omni_redfish::RedfishEvent;

const FIG5_QUERY: &str = r#"sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (Severity, cluster, Context, MessageId, Message)"#;

fn bench(c: &mut Criterion) {
    let cluster = loaded_cluster(8, 50_000, 64);
    let event = RedfishEvent::paper_leak_event();
    let mut record = redfish_to_loki(&event, "perlmutter");
    record.entry.ts = corpus_end() / 2;
    cluster.push_record(record).unwrap();
    cluster.flush();

    let mut g = c.benchmark_group("fig5_logql_metric");
    g.sample_size(20);
    g.bench_function("instant_count_over_time_60m", |b| {
        b.iter(|| {
            let v = cluster
                .query_instant(black_box(FIG5_QUERY), corpus_end() / 2 + NANOS_PER_SEC)
                .unwrap();
            assert_eq!(v.len(), 1);
            black_box(v)
        });
    });
    g.bench_function("range_grafana_graph_24_steps", |b| {
        b.iter(|| {
            let m = cluster
                .query_range(black_box(FIG5_QUERY), 0, corpus_end(), corpus_end() / 24)
                .unwrap();
            black_box(m)
        });
    });
    g.bench_function("rate_over_syslog_stream", |b| {
        b.iter(|| {
            let v = cluster
                .query_instant(
                    black_box(r#"sum(rate({data_type="syslog"}[5m])) by (stream)"#),
                    corpus_end() / 2,
                )
                .unwrap();
            black_box(v)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E3 — Figure 5: the `count_over_time ... | json [60m]` range query that
//! turns the leak event into a metric, evaluated as a Grafana graph
//! (range query at fixed steps).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use omni_bench::{corpus_end, loaded_cluster, quick_mode, syslog_corpus, write_pr3_section};
use omni_core::redfish_to_loki;
use omni_json::jsonv;
use omni_loki::chunk::SealedChunk;
use omni_model::{LogEntry, NANOS_PER_SEC};
use omni_redfish::RedfishEvent;
use std::collections::BTreeMap;
use std::time::Instant;

const FIG5_QUERY: &str = r#"sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (Severity, cluster, Context, MessageId, Message)"#;

/// PR3 before/after: answer a narrow time window over sealed chunks by
/// decompressing every block and filtering afterwards (the old decode
/// path) versus `decode_range`, which reads the per-block min/max
/// headers and skips blocks outside the window. Owns the `range_query`
/// section of BENCH_PR3.json; quick mode shrinks the workload and only
/// prints.
fn pr3_range_report() {
    let quick = quick_mode();
    let n = if quick { 5_000 } else { 50_000 };
    let runs = if quick { 2 } else { 5 };
    // Few streams so each chunk is large enough to hold many blocks.
    let streams = 16;
    let mut per_stream: BTreeMap<String, Vec<LogEntry>> = BTreeMap::new();
    for r in syslog_corpus(n, streams) {
        // The corpus is globally time-ordered, so per-stream order holds.
        per_stream
            .entry(r.labels.get("stream").unwrap_or("?").to_string())
            .or_default()
            .push(LogEntry::new(r.entry.ts, r.entry.line));
    }
    let chunks: Vec<SealedChunk> =
        per_stream.into_values().map(|es| SealedChunk::from_entries(&es)).collect();
    let min_ts = chunks.iter().map(|c| c.min_ts).min().unwrap();
    let max_ts = chunks.iter().map(|c| c.max_ts).max().unwrap();
    // A two-second window in the middle of the corpus: the shape of the
    // Figure 5 drill-down, where most blocks fall outside the range.
    let start = min_ts + (max_ts - min_ts) / 2;
    let end = start + 2 * NANOS_PER_SEC;

    let best_secs = |count: &dyn Fn() -> usize| -> (f64, usize) {
        let mut best = f64::INFINITY;
        let mut hits = 0;
        for _ in 0..runs {
            let t = Instant::now();
            hits = black_box(count());
            best = best.min(t.elapsed().as_secs_f64());
        }
        (best, hits)
    };

    let (full_secs, full_hits) = best_secs(&|| {
        let mut hits = 0;
        for c in &chunks {
            if c.overlaps(start, end) {
                let entries = c.decode().unwrap();
                hits += entries.iter().filter(|e| e.ts > start && e.ts <= end).count();
            }
        }
        hits
    });
    let (skip_secs, skip_hits) = best_secs(&|| {
        let mut hits = 0;
        for c in &chunks {
            hits += c.decode_range(start, end).unwrap().len();
        }
        hits
    });
    assert_eq!(full_hits, skip_hits, "block-skip decode must return the same entries");
    assert!(full_hits > 0, "the window must actually select entries");

    let blocks_total: usize =
        chunks.iter().filter(|c| c.overlaps(start, end)).map(|c| c.block_count()).sum();
    let blocks_decoded: usize =
        chunks.iter().map(|c| c.decode_range_counted(start, end).unwrap().1).sum();
    let speedup = full_secs / skip_secs;
    println!(
        "pr3 range_query: full decode {full_secs:.4}s, block-skip {skip_secs:.4}s \
         ({speedup:.2}x, {blocks_decoded}/{blocks_total} blocks decompressed)"
    );
    if !quick {
        write_pr3_section(
            "range_query",
            jsonv!({
                "corpus_entries": (n),
                "streams": (streams),
                "window_seconds": 2,
                "entries_in_window": (full_hits),
                "runs_best_of": (runs),
                "full_decode_seconds": (full_secs),
                "block_skip_seconds": (skip_secs),
                "speedup": (speedup),
                "blocks_total": (blocks_total),
                "blocks_decoded": (blocks_decoded),
            }),
        );
    }
}

fn bench(c: &mut Criterion) {
    pr3_range_report();
    if quick_mode() {
        return;
    }

    let cluster = loaded_cluster(8, 50_000, 64);
    let event = RedfishEvent::paper_leak_event();
    let mut record = redfish_to_loki(&event, "perlmutter");
    record.entry.ts = corpus_end() / 2;
    cluster.push_record(record).unwrap();
    cluster.flush();

    let mut g = c.benchmark_group("fig5_logql_metric");
    g.sample_size(20);
    g.bench_function("instant_count_over_time_60m", |b| {
        b.iter(|| {
            let v = cluster
                .query_instant(black_box(FIG5_QUERY), corpus_end() / 2 + NANOS_PER_SEC)
                .unwrap();
            assert_eq!(v.len(), 1);
            black_box(v)
        });
    });
    g.bench_function("range_grafana_graph_24_steps", |b| {
        b.iter(|| {
            let m = cluster
                .query_range(black_box(FIG5_QUERY), 0, corpus_end(), corpus_end() / 24)
                .unwrap();
            black_box(m)
        });
    });
    g.bench_function("rate_over_syslog_stream", |b| {
        b.iter(|| {
            let v = cluster
                .query_instant(
                    black_box(r#"sum(rate({data_type="syslog"}[5m])) by (stream)"#),
                    corpus_end() / 2,
                )
                .unwrap();
            black_box(v)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

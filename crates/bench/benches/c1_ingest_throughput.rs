//! C1 — "OMNI is able to ingest at a rate of up to 400,000 messages per
//! second from heterogeneous and distributed sources."
//!
//! Measures sustained push throughput into the Loki cluster (single and
//! multi-producer) and into the TSDB; Criterion's throughput mode reports
//! elements/second to compare against the paper's 400k msg/s figure.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use omni_bench::syslog_corpus;
use omni_loki::{Limits, LokiCluster};
use omni_model::{labels, SimClock};
use omni_tsdb::{Tsdb, TsdbConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c1_ingest_throughput");
    g.sample_size(10);

    // Single-threaded log ingest per batch of 10k messages.
    let corpus = syslog_corpus(10_000, 64);
    g.throughput(Throughput::Elements(corpus.len() as u64));
    g.bench_function("loki_single_producer_10k", |b| {
        b.iter_with_setup(
            || (LokiCluster::new(8, Limits::default(), SimClock::starting_at(0)), corpus.clone()),
            |(cluster, corpus)| {
                for r in corpus {
                    cluster.push_record(r).unwrap();
                }
                black_box(cluster.stats().entries)
            },
        );
    });

    // Concurrent producers (the "distributed sources" part of the claim).
    for &producers in &[2usize, 4, 8] {
        g.throughput(Throughput::Elements(10_000));
        g.bench_with_input(
            BenchmarkId::new("loki_concurrent_producers", producers),
            &producers,
            |b, &producers| {
                b.iter_with_setup(
                    || {
                        (
                            LokiCluster::new(8, Limits::default(), SimClock::starting_at(0)),
                            syslog_corpus(10_000, 64),
                        )
                    },
                    |(cluster, corpus)| {
                        // Partition by stream fingerprint so each producer
                        // owns disjoint streams (contiguous chunks would
                        // race one stream across producers and trip the
                        // out-of-order check).
                        let mut parts: Vec<Vec<omni_model::LogRecord>> =
                            (0..producers).map(|_| Vec::new()).collect();
                        for r in corpus {
                            let p = (r.labels.fingerprint() % producers as u64) as usize;
                            parts[p].push(r);
                        }
                        std::thread::scope(|s| {
                            for part in parts {
                                let cluster = cluster.clone();
                                s.spawn(move || {
                                    for r in part {
                                        cluster.push_record(r).unwrap();
                                    }
                                });
                            }
                        });
                        black_box(cluster.stats().entries)
                    },
                );
            },
        );
    }

    // Metric-side ingest.
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("tsdb_ingest_10k_samples", |b| {
        b.iter_with_setup(
            || Tsdb::new(TsdbConfig::default()),
            |db| {
                for i in 0..10_000i64 {
                    db.ingest_sample(
                        "shasta_temperature_celsius",
                        labels!("xname" => format!("x{}", i % 100)),
                        i * 1_000_000,
                        42.0 + (i % 10) as f64,
                    );
                }
                black_box(db.samples_ingested())
            },
        );
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! C1 — "OMNI is able to ingest at a rate of up to 400,000 messages per
//! second from heterogeneous and distributed sources."
//!
//! Measures sustained push throughput into the Loki cluster (single and
//! multi-producer) and into the TSDB; Criterion's throughput mode reports
//! elements/second to compare against the paper's 400k msg/s figure.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use omni_bench::{quick_mode, syslog_corpus, write_pr3_section};
use omni_json::jsonv;
use omni_loki::{Limits, LokiCluster};
use omni_model::{labels, LabelSet, LogEntry, LogRecord, SimClock};
use omni_tsdb::{Tsdb, TsdbConfig};
use std::time::Instant;

/// PR3 before/after, fixed seed: the same corpus pushed three ways.
///
/// * **per-record** — `push_record`, the old hot path: every message pays
///   the fingerprint-cache probe, its own WAL record (labels re-encoded
///   each time), and one ingester lock round-trip.
/// * **record-batched** — `push_record_batch`: one WAL segment append and
///   one ingester lock per shard per batch, run-framed WAL records, and
///   the consecutive-run fingerprint fast path.
/// * **batched (stream-framed)** — `push_stream_batch`, the Loki push
///   protocol's native shape (one label set + its entries, which is also
///   exactly what a source bridge drains per pump round): the whole frame
///   pays for labels once — fingerprint, routing, WAL framing, and the
///   ingester lock — and each entry costs only the stream append.
///
/// The corpus is stream-contiguous (what batching producers emit) and
/// sized so no chunk seals mid-run: seal/compression cost is identical
/// across paths and is benched separately (c2). The headline `speedup`
/// compares stream-framed batching against per-record. Owns the `ingest`
/// section of BENCH_PR3.json; quick mode shrinks the workload and only
/// prints.
fn pr3_ingest_report() {
    let quick = quick_mode();
    let n = if quick { 8_000 } else { 50_000 };
    let runs = if quick { 2 } else { 5 };
    let streams = 64usize;
    let batch_size = 1_024;
    let mut corpus = syslog_corpus(n, streams);
    corpus.sort_by(|a, b| a.labels.get("stream").cmp(&b.labels.get("stream")));
    // Pre-built inputs so the timed region only moves records: cloning
    // line strings inside the timer is allocator traffic that would swamp
    // the path cost being measured.
    let chunked: Vec<Vec<LogRecord>> = corpus.chunks(batch_size).map(<[_]>::to_vec).collect();
    let frames: Vec<(LabelSet, Vec<LogEntry>)> = {
        let mut frames = Vec::new();
        let mut i = 0;
        while i < corpus.len() {
            let j = (i..corpus.len())
                .find(|&k| corpus[k].labels != corpus[i].labels)
                .unwrap_or(corpus.len());
            for chunk in corpus[i..j].chunks(batch_size) {
                let entries: Vec<LogEntry> = chunk.iter().map(|r| r.entry.clone()).collect();
                frames.push((corpus[i].labels.clone(), entries));
            }
            i = j;
        }
        frames
    };

    fn timed<T: Clone>(runs: usize, n: usize, data: &T, run: impl Fn(&LokiCluster, T)) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..runs {
            let cluster = LokiCluster::new(8, Limits::default(), SimClock::starting_at(0));
            let data = data.clone();
            let start = Instant::now();
            run(&cluster, data);
            best = best.min(start.elapsed().as_secs_f64());
            assert_eq!(cluster.stats().entries, n as u64);
        }
        best
    }

    let per_record = timed(runs, n, &corpus, |cluster, corpus| {
        for r in corpus {
            cluster.push_record(r).unwrap();
        }
    });
    let record_batched = timed(runs, n, &chunked, |cluster, batches| {
        for batch in batches {
            for result in cluster.push_record_batch(batch) {
                result.unwrap();
            }
        }
    });
    let framed = timed(runs, n, &frames, |cluster, frames| {
        for (labels, entries) in frames {
            for result in cluster.push_stream_batch(labels, entries) {
                result.unwrap();
            }
        }
    });

    let rate = |secs: f64| n as f64 / secs;
    let speedup = rate(framed) / rate(per_record);
    let record_batch_speedup = rate(record_batched) / rate(per_record);
    println!(
        "pr3 ingest: per-record {:.0} msg/s, record-batched {:.0} msg/s \
         ({record_batch_speedup:.2}x), stream-framed batched {:.0} msg/s ({speedup:.2}x)",
        rate(per_record),
        rate(record_batched),
        rate(framed),
    );
    if !quick {
        write_pr3_section(
            "ingest",
            jsonv!({
                "messages": (n),
                "streams": (streams),
                "batch_size": (batch_size),
                "runs_best_of": (runs),
                "per_record_seconds": (per_record),
                "batched_seconds": (framed),
                "per_record_msgs_per_sec": (rate(per_record)),
                "batched_msgs_per_sec": (rate(framed)),
                "speedup": (speedup),
                "record_batched_msgs_per_sec": (rate(record_batched)),
                "record_batch_speedup": (record_batch_speedup),
            }),
        );
    }
}

fn bench(c: &mut Criterion) {
    pr3_ingest_report();
    if quick_mode() {
        return;
    }

    let mut g = c.benchmark_group("c1_ingest_throughput");
    g.sample_size(10);

    // Single-threaded log ingest per batch of 10k messages.
    let corpus = syslog_corpus(10_000, 64);
    g.throughput(Throughput::Elements(corpus.len() as u64));
    g.bench_function("loki_single_producer_10k", |b| {
        b.iter_with_setup(
            || (LokiCluster::new(8, Limits::default(), SimClock::starting_at(0)), corpus.clone()),
            |(cluster, corpus)| {
                for r in corpus {
                    cluster.push_record(r).unwrap();
                }
                black_box(cluster.stats().entries)
            },
        );
    });

    // Concurrent producers (the "distributed sources" part of the claim).
    for &producers in &[2usize, 4, 8] {
        g.throughput(Throughput::Elements(10_000));
        g.bench_with_input(
            BenchmarkId::new("loki_concurrent_producers", producers),
            &producers,
            |b, &producers| {
                b.iter_with_setup(
                    || {
                        (
                            LokiCluster::new(8, Limits::default(), SimClock::starting_at(0)),
                            syslog_corpus(10_000, 64),
                        )
                    },
                    |(cluster, corpus)| {
                        // Partition by stream fingerprint so each producer
                        // owns disjoint streams (contiguous chunks would
                        // race one stream across producers and trip the
                        // out-of-order check).
                        let mut parts: Vec<Vec<omni_model::LogRecord>> =
                            (0..producers).map(|_| Vec::new()).collect();
                        for r in corpus {
                            let p = (r.labels.fingerprint() % producers as u64) as usize;
                            parts[p].push(r);
                        }
                        std::thread::scope(|s| {
                            for part in parts {
                                let cluster = cluster.clone();
                                s.spawn(move || {
                                    for r in part {
                                        cluster.push_record(r).unwrap();
                                    }
                                });
                            }
                        });
                        black_box(cluster.stats().entries)
                    },
                );
            },
        );
    }

    // Metric-side ingest.
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("tsdb_ingest_10k_samples", |b| {
        b.iter_with_setup(
            || Tsdb::new(TsdbConfig::default()),
            |db| {
                for i in 0..10_000i64 {
                    db.ingest_sample(
                        "shasta_temperature_celsius",
                        labels!("xname" => format!("x{}", i % 100)),
                        i * 1_000_000,
                        42.0 + (i % 10) as f64,
                    );
                }
                black_box(db.samples_ingested())
            },
        );
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

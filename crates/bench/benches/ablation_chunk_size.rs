//! Ablation — the §IV-A chunk-sizing claim: "Loki prefers handling
//! bigger but fewer chunks."
//!
//! Sweep `chunk_target_bytes` at fixed corpus size and measure ingest and
//! query cost; the printed table shows the chunk-count explosion at small
//! targets.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use omni_bench::{corpus_end, syslog_corpus};
use omni_loki::{Limits, LokiCluster};
use omni_model::SimClock;

const MESSAGES: usize = 30_000;

fn cluster_with_target(target: usize) -> LokiCluster {
    let limits = Limits { chunk_target_bytes: target, ..Default::default() };
    let cluster = LokiCluster::new(4, limits, SimClock::starting_at(0));
    for r in syslog_corpus(MESSAGES, 32) {
        cluster.push_record(r).unwrap();
    }
    cluster.flush();
    cluster
}

fn bench(c: &mut Criterion) {
    println!("\n[ablation] chunk-size sweep, {MESSAGES} messages / 32 streams:");
    println!(
        "[ablation] {:>12} {:>8} {:>14} {:>12}",
        "target_bytes", "chunks", "stored_bytes", "ratio"
    );
    for &target in &[512usize, 4 * 1024, 64 * 1024, 1024 * 1024] {
        let cluster = cluster_with_target(target);
        let ratio = cluster.uncompressed_bytes() as f64 / cluster.compressed_bytes().max(1) as f64;
        println!(
            "[ablation] {:>12} {:>8} {:>14} {:>12.2}",
            target,
            cluster.chunk_count(),
            cluster.compressed_bytes(),
            ratio,
        );
    }

    let mut g = c.benchmark_group("ablation_chunk_size");
    g.sample_size(10);
    for &target in &[512usize, 4 * 1024, 64 * 1024, 1024 * 1024] {
        g.throughput(Throughput::Elements(MESSAGES as u64));
        g.bench_with_input(BenchmarkId::new("ingest", target), &target, |b, &target| {
            let corpus = syslog_corpus(MESSAGES, 32);
            b.iter_with_setup(
                || {
                    let limits = Limits { chunk_target_bytes: target, ..Default::default() };
                    (LokiCluster::new(4, limits, SimClock::starting_at(0)), corpus.clone())
                },
                |(cluster, corpus)| {
                    for r in corpus {
                        cluster.push_record(r).unwrap();
                    }
                    black_box(cluster.chunk_count())
                },
            );
        });
        g.bench_with_input(BenchmarkId::new("scan_query", target), &target, |b, &target| {
            let cluster = cluster_with_target(target);
            b.iter(|| {
                let out = cluster
                    .query_logs(
                        black_box(r#"{cluster="perlmutter"} |= "kernel""#),
                        0,
                        corpus_end(),
                        usize::MAX,
                    )
                    .unwrap();
                black_box(out.len())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

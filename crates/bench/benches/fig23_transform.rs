//! E1 — Figures 2→3: throughput of the Telemetry-API → Loki transform
//! (payload parse, event decode, clean-up, re-serialize).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use omni_core::bridge::telemetry_payload_to_loki;
use omni_core::redfish_to_loki;
use omni_redfish::RedfishEvent;

fn bench(c: &mut Criterion) {
    let event = RedfishEvent::paper_leak_event();
    let payload = event.to_telemetry_json().dump();

    let mut g = c.benchmark_group("fig2_fig3_transform");
    g.throughput(Throughput::Elements(1));
    g.bench_function("event_struct_to_loki_record", |b| {
        b.iter(|| black_box(redfish_to_loki(black_box(&event), "perlmutter")));
    });
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("raw_payload_to_loki_record", |b| {
        b.iter(|| black_box(telemetry_payload_to_loki(black_box(&payload), "perlmutter")));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

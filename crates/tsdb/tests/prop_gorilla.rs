//! Property tests: Gorilla compression is lossless for any time-ordered
//! sample sequence.

use omni_model::Sample;
use omni_tsdb::GorillaEncoder;
use proptest::prelude::*;

proptest! {
    #[test]
    fn lossless_roundtrip(
        deltas in prop::collection::vec(0i64..1_000_000_000, 0..300),
        values in prop::collection::vec(-1e12f64..1e12, 0..300),
    ) {
        let n = deltas.len().min(values.len());
        let mut ts = 1_600_000_000_000_000_000i64;
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            ts += deltas[i];
            samples.push(Sample::new(ts, values[i]));
        }
        let mut enc = GorillaEncoder::new();
        for &s in &samples {
            enc.append(s);
        }
        let decoded = enc.finish().decode();
        prop_assert_eq!(decoded.len(), samples.len());
        for (a, b) in samples.iter().zip(decoded.iter()) {
            prop_assert_eq!(a.ts, b.ts);
            prop_assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
    }

    #[test]
    fn lossless_with_extreme_bit_patterns(
        bits in prop::collection::vec(any::<u64>(), 1..100),
    ) {
        // Raw bit patterns stress the XOR window logic (NaNs, subnormals).
        let samples: Vec<Sample> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| Sample::new(i as i64 * 1_000, f64::from_bits(b)))
            .collect();
        let mut enc = GorillaEncoder::new();
        for &s in &samples {
            enc.append(s);
        }
        let decoded = enc.finish().decode();
        for (a, b) in samples.iter().zip(decoded.iter()) {
            prop_assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
    }

    #[test]
    fn regular_scrapes_stay_under_two_bytes_per_sample(
        n in 100usize..500,
        interval in 1_000_000_000i64..60_000_000_000,
        base in -1000.0f64..1000.0,
    ) {
        let mut enc = GorillaEncoder::new();
        for i in 0..n {
            enc.append(Sample::new(i as i64 * interval, base));
        }
        let block = enc.finish();
        let per_sample = block.compressed_size() as f64 / n as f64;
        prop_assert!(per_sample < 2.0, "bytes/sample = {}", per_sample);
    }
}

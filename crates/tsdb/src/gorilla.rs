//! Gorilla-style time-series compression (Facebook's in-memory TSDB
//! paper), the codec VictoriaMetrics-class stores build on:
//!
//! * timestamps: delta-of-delta, bit-packed in variable-width buckets;
//! * values: XOR with the previous value, encoding leading-zero /
//!   meaningful-bit windows.
//!
//! Built on an explicit [`BitWriter`] / [`BitReader`] pair.

use omni_model::{Sample, Timestamp};

/// Bit-granular append buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the last byte (0..8).
    used: u8,
}

impl BitWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one bit.
    pub fn push_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
            self.used = 8;
        }
        self.used -= 1;
        if bit {
            *self.bytes.last_mut().unwrap() |= 1 << self.used;
        }
    }

    /// Append the low `n` bits of `v`, most-significant first.
    pub fn push_bits(&mut self, v: u64, n: u8) {
        for i in (0..n).rev() {
            self.push_bit((v >> i) & 1 == 1);
        }
    }

    /// Finish, returning the byte buffer and total bit count.
    pub fn finish(self) -> (Vec<u8>, usize) {
        let bits = self.bytes.len() * 8 - self.used as usize;
        (self.bytes, bits)
    }
}

/// Bit-granular reader.
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    limit: usize,
}

impl<'a> BitReader<'a> {
    /// Read from a buffer of `limit` valid bits.
    pub fn new(bytes: &'a [u8], limit: usize) -> Self {
        Self { bytes, pos: 0, limit }
    }

    /// Read one bit.
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.limit {
            return None;
        }
        let byte = self.bytes[self.pos / 8];
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Read `n` bits as a big-endian value.
    pub fn read_bits(&mut self, n: u8) -> Option<u64> {
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Some(v)
    }
}

/// A sealed, compressed block of one series.
#[derive(Debug, Clone)]
pub struct GorillaBlock {
    data: Vec<u8>,
    bits: usize,
    /// Sample count.
    pub count: usize,
    /// First timestamp.
    pub min_ts: Timestamp,
    /// Last timestamp.
    pub max_ts: Timestamp,
}

/// Streaming Gorilla encoder.
#[derive(Debug)]
pub struct GorillaEncoder {
    w: BitWriter,
    count: usize,
    first_ts: Timestamp,
    prev_ts: Timestamp,
    prev_delta: i64,
    prev_value_bits: u64,
    prev_leading: u8,
    prev_trailing: u8,
}

impl Default for GorillaEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl GorillaEncoder {
    /// Empty encoder.
    pub fn new() -> Self {
        Self {
            w: BitWriter::new(),
            count: 0,
            first_ts: 0,
            prev_ts: 0,
            prev_delta: 0,
            prev_value_bits: 0,
            prev_leading: 255,
            prev_trailing: 0,
        }
    }

    /// Append a sample; timestamps must be non-decreasing.
    pub fn append(&mut self, s: Sample) {
        if self.count == 0 {
            self.first_ts = s.ts;
            self.prev_ts = s.ts;
            // First timestamp: stored raw (64 bits), first value raw.
            self.w.push_bits(s.ts as u64, 64);
            self.w.push_bits(s.value.to_bits(), 64);
            self.prev_value_bits = s.value.to_bits();
            self.count = 1;
            return;
        }
        debug_assert!(s.ts >= self.prev_ts, "gorilla appends must be time-ordered");
        // Timestamp: delta-of-delta buckets (Gorilla §4.1.1).
        let delta = s.ts - self.prev_ts;
        let dod = delta - self.prev_delta;
        self.prev_ts = s.ts;
        self.prev_delta = delta;
        match dod {
            0 => self.w.push_bit(false),
            -8_388_608..=8_388_607 if (-64..=63).contains(&dod) => {
                self.w.push_bits(0b10, 2);
                self.w.push_bits((dod & 0x7f) as u64, 7);
            }
            -8_388_608..=8_388_607 if (-4096..=4095).contains(&dod) => {
                self.w.push_bits(0b110, 3);
                self.w.push_bits((dod & 0x1fff) as u64, 13);
            }
            -8_388_608..=8_388_607 => {
                self.w.push_bits(0b1110, 4);
                self.w.push_bits((dod & 0xff_ffff) as u64, 24);
            }
            _ => {
                self.w.push_bits(0b1111, 4);
                self.w.push_bits(dod as u64, 64);
            }
        }
        // Value: XOR scheme (Gorilla §4.1.2).
        let bits = s.value.to_bits();
        let xor = bits ^ self.prev_value_bits;
        self.prev_value_bits = bits;
        if xor == 0 {
            self.w.push_bit(false);
        } else {
            self.w.push_bit(true);
            let leading = (xor.leading_zeros() as u8).min(31);
            let trailing = xor.trailing_zeros() as u8;
            if self.prev_leading != 255
                && leading >= self.prev_leading
                && trailing >= self.prev_trailing
            {
                // Fits in the previous window.
                self.w.push_bit(false);
                let meaningful = 64 - self.prev_leading - self.prev_trailing;
                self.w.push_bits(xor >> self.prev_trailing, meaningful);
            } else {
                self.w.push_bit(true);
                let meaningful = 64 - leading - trailing;
                self.w.push_bits(leading as u64, 5);
                // Store meaningful-1 in 6 bits (meaningful ∈ 1..=64).
                self.w.push_bits((meaningful - 1) as u64, 6);
                self.w.push_bits(xor >> trailing, meaningful);
                self.prev_leading = leading;
                self.prev_trailing = trailing;
            }
        }
        self.count += 1;
    }

    /// Sample count so far.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no samples were appended.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Seal into an immutable block.
    pub fn finish(self) -> GorillaBlock {
        let min_ts = self.first_ts;
        let max_ts = self.prev_ts;
        let count = self.count;
        let (data, bits) = self.w.finish();
        GorillaBlock { data, bits, count, min_ts, max_ts }
    }
}

impl GorillaBlock {
    /// Compressed size in bytes.
    pub fn compressed_size(&self) -> usize {
        self.data.len()
    }

    /// Decode all samples.
    pub fn decode(&self) -> Vec<Sample> {
        let mut out = Vec::with_capacity(self.count);
        if self.count == 0 {
            return out;
        }
        let mut r = BitReader::new(&self.data, self.bits);
        let ts = r.read_bits(64).expect("block truncated") as i64;
        let value = f64::from_bits(r.read_bits(64).expect("block truncated"));
        out.push(Sample::new(ts, value));
        let mut prev_ts = ts;
        let mut prev_delta: i64 = 0;
        let mut prev_bits = value.to_bits();
        let mut leading: u8 = 0;
        let mut trailing: u8 = 0;
        for _ in 1..self.count {
            // Timestamp.
            let dod = if !r.read_bit().expect("ts flag") {
                0
            } else if !r.read_bit().expect("ts flag") {
                sign_extend(r.read_bits(7).expect("dod7"), 7)
            } else if !r.read_bit().expect("ts flag") {
                sign_extend(r.read_bits(13).expect("dod13"), 13)
            } else if !r.read_bit().expect("ts flag") {
                sign_extend(r.read_bits(24).expect("dod24"), 24)
            } else {
                r.read_bits(64).expect("dod64") as i64
            };
            prev_delta += dod;
            prev_ts += prev_delta;
            // Value.
            let bits = if !r.read_bit().expect("val flag") {
                prev_bits
            } else if !r.read_bit().expect("val window flag") {
                let meaningful = 64 - leading - trailing;
                let v = r.read_bits(meaningful).expect("xor bits");
                prev_bits ^ (v << trailing)
            } else {
                leading = r.read_bits(5).expect("leading") as u8;
                let meaningful = r.read_bits(6).expect("meaningful") as u8 + 1;
                trailing = 64 - leading - meaningful;
                let v = r.read_bits(meaningful).expect("xor bits");
                prev_bits ^ (v << trailing)
            };
            prev_bits = bits;
            out.push(Sample::new(prev_ts, f64::from_bits(bits)));
        }
        out
    }

    /// Decode samples in `(start, end]`.
    pub fn decode_range(&self, start: Timestamp, end: Timestamp) -> Vec<Sample> {
        if self.count == 0 || self.max_ts <= start || self.min_ts > end {
            return Vec::new();
        }
        self.decode().into_iter().filter(|s| s.ts > start && s.ts <= end).collect()
    }

    /// Whether the block may hold samples in `(start, end]`.
    pub fn overlaps(&self, start: Timestamp, end: Timestamp) -> bool {
        self.count > 0 && self.max_ts > start && self.min_ts <= end
    }
}

fn sign_extend(v: u64, bits: u8) -> i64 {
    let shift = 64 - bits;
    ((v << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(samples: &[Sample]) -> GorillaBlock {
        let mut enc = GorillaEncoder::new();
        for &s in samples {
            enc.append(s);
        }
        let block = enc.finish();
        let decoded = block.decode();
        assert_eq!(decoded.len(), samples.len());
        for (a, b) in samples.iter().zip(decoded.iter()) {
            assert_eq!(a.ts, b.ts);
            assert!(
                (a.value == b.value) || (a.value.is_nan() && b.value.is_nan()),
                "{} != {}",
                a.value,
                b.value
            );
        }
        block
    }

    #[test]
    fn empty_and_single() {
        let block = GorillaEncoder::new().finish();
        assert!(block.decode().is_empty());
        roundtrip(&[Sample::new(1_600_000_000, 42.5)]);
    }

    #[test]
    fn regular_interval_constant_value_compresses_hard() {
        // The scrape-loop common case: fixed interval, slowly-moving value.
        let samples: Vec<Sample> =
            (0..1_000).map(|i| Sample::new(1_000_000 + i * 15_000, 55.0)).collect();
        let block = roundtrip(&samples);
        // Raw = 16 bytes/sample; Gorilla gets ~2 bits/sample here.
        let bytes_per_sample = block.compressed_size() as f64 / samples.len() as f64;
        assert!(bytes_per_sample < 1.0, "bytes/sample = {bytes_per_sample}");
    }

    #[test]
    fn varying_values() {
        let samples: Vec<Sample> =
            (0..500).map(|i| Sample::new(i * 1_000, (i as f64 * 0.7).sin() * 100.0)).collect();
        roundtrip(&samples);
    }

    #[test]
    fn irregular_timestamps() {
        let ts = [0i64, 1, 10, 11, 1_000_000, 1_000_001, 5_000_000_000];
        let samples: Vec<Sample> =
            ts.iter().enumerate().map(|(i, &t)| Sample::new(t, i as f64)).collect();
        roundtrip(&samples);
    }

    #[test]
    fn negative_and_special_values() {
        let samples = vec![
            Sample::new(0, -1.5),
            Sample::new(1, 0.0),
            Sample::new(2, -0.0),
            Sample::new(3, f64::MAX),
            Sample::new(4, f64::MIN_POSITIVE),
            Sample::new(5, f64::INFINITY),
            Sample::new(6, f64::NEG_INFINITY),
            Sample::new(7, f64::NAN),
        ];
        roundtrip(&samples);
    }

    #[test]
    fn duplicate_timestamps_allowed() {
        roundtrip(&[Sample::new(5, 1.0), Sample::new(5, 2.0), Sample::new(5, 3.0)]);
    }

    #[test]
    fn decode_range_half_open() {
        let samples: Vec<Sample> = (0..10).map(|i| Sample::new(i * 10, i as f64)).collect();
        let mut enc = GorillaEncoder::new();
        for &s in &samples {
            enc.append(s);
        }
        let block = enc.finish();
        let got = block.decode_range(10, 30);
        assert_eq!(got.len(), 2); // ts 20, 30
        assert_eq!(got[0].ts, 20);
        assert!(block.decode_range(100, 200).is_empty());
    }

    #[test]
    fn bitio_roundtrip() {
        let mut w = BitWriter::new();
        w.push_bits(0b1011, 4);
        w.push_bits(u64::MAX, 64);
        w.push_bit(false);
        w.push_bits(0x2a, 7);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::new(&bytes, bits);
        assert_eq!(r.read_bits(4), Some(0b1011));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
        assert_eq!(r.read_bit(), Some(false));
        assert_eq!(r.read_bits(7), Some(0x2a));
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    fn large_delta_of_delta() {
        // Jumps bigger than the 24-bit bucket take the 64-bit escape.
        let samples = vec![
            Sample::new(0, 1.0),
            Sample::new(1, 1.0),
            Sample::new(1_000_000_000_000, 1.0),
            Sample::new(1_000_000_000_001, 1.0),
        ];
        roundtrip(&samples);
    }
}

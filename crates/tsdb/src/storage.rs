//! Series storage: label-indexed, Gorilla-compressed, sharded for
//! parallel ingest.

use crate::gorilla::{GorillaBlock, GorillaEncoder};
use omni_logql::Selector;
use omni_model::{LabelSet, MetricRecord, Sample, Timestamp};
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Storage configuration.
#[derive(Debug, Clone)]
pub struct TsdbConfig {
    /// Shards for parallel ingest.
    pub shards: usize,
    /// Seal a series' open encoder after this many samples.
    pub block_max_samples: usize,
    /// Retention horizon in nanoseconds.
    pub retention_ns: i64,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            block_max_samples: 4_096,
            retention_ns: 2 * 365 * 86_400 * 1_000_000_000, // two years, like OMNI
        }
    }
}

struct SeriesData {
    labels: LabelSet,
    open: GorillaEncoder,
    open_newest: Timestamp,
    blocks: Vec<GorillaBlock>,
}

impl SeriesData {
    fn samples_in(&self, start: Timestamp, end: Timestamp) -> Vec<Sample> {
        let mut out = Vec::new();
        for b in &self.blocks {
            if b.overlaps(start, end) {
                out.extend(b.decode_range(start, end));
            }
        }
        // Open encoder: decode via a temporary seal-free path. Samples in
        // the encoder are also mirrored in `recent` for cheap reads.
        out
    }
}

struct Shard {
    /// fingerprint → series.
    series: HashMap<u64, SeriesData>,
    /// Mirror of each series' open (unsealed) samples for cheap reads.
    recent: HashMap<u64, Vec<Sample>>,
    /// (name, value) → fingerprints.
    postings: BTreeMap<(String, String), BTreeSet<u64>>,
}

impl Shard {
    fn new() -> Self {
        Self { series: HashMap::new(), recent: HashMap::new(), postings: BTreeMap::new() }
    }

    fn candidates(&self, selector: &Selector) -> Vec<u64> {
        let mut result: Option<BTreeSet<u64>> = None;
        for (name, value) in selector.equality_matchers() {
            let set = self
                .postings
                .get(&(name.to_string(), value.to_string()))
                .cloned()
                .unwrap_or_default();
            result = Some(match result {
                None => set,
                Some(prev) => prev.intersection(&set).copied().collect(),
            });
        }
        match result {
            Some(set) => set.into_iter().collect(),
            None => self.series.keys().copied().collect(),
        }
    }
}

/// The time-series store ("we send metrics to Victoriametrics, the time
/// series database").
#[derive(Clone)]
pub struct Tsdb {
    shards: Arc<Vec<RwLock<Shard>>>,
    config: TsdbConfig,
    samples_ingested: Arc<AtomicU64>,
}

impl Tsdb {
    /// Create a store.
    pub fn new(config: TsdbConfig) -> Self {
        assert!(config.shards > 0);
        Self {
            shards: Arc::new((0..config.shards).map(|_| RwLock::new(Shard::new())).collect()),
            config,
            samples_ingested: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Default-config store.
    pub fn default_config() -> Self {
        Self::new(TsdbConfig::default())
    }

    /// Ingest one metric record. Samples must be (per-series)
    /// non-decreasing in time; older samples are silently dropped like
    /// most TSDBs' out-of-order policy.
    pub fn ingest(&self, record: &MetricRecord) {
        let fp = record.labels.fingerprint();
        let shard = &self.shards[(fp % self.shards.len() as u64) as usize];
        let mut sh = shard.write();
        if !sh.series.contains_key(&fp) {
            // New series: create and index its labels.
            for (k, v) in record.labels.iter() {
                sh.postings.entry((k.to_string(), v.to_string())).or_default().insert(fp);
            }
            sh.series.insert(
                fp,
                SeriesData {
                    labels: record.labels.clone(),
                    open: GorillaEncoder::new(),
                    open_newest: i64::MIN,
                    blocks: Vec::new(),
                },
            );
        }
        let series = sh.series.get_mut(&fp).unwrap();
        if record.sample.ts < series.open_newest {
            return; // out of order: drop
        }
        series.open_newest = record.sample.ts;
        series.open.append(record.sample);
        let must_seal = series.open.len() >= self.config.block_max_samples;
        if must_seal {
            let enc = std::mem::take(&mut series.open);
            series.blocks.push(enc.finish());
            sh.recent.remove(&fp);
        } else {
            sh.recent.entry(fp).or_default().push(record.sample);
        }
        self.samples_ingested.fetch_add(1, Ordering::Relaxed);
    }

    /// Convenience: ingest a named sample.
    pub fn ingest_sample(&self, name: &str, labels: LabelSet, ts: Timestamp, value: f64) {
        self.ingest(&MetricRecord::new(name, labels, ts, value));
    }

    /// All series matching `selector` with their samples in `(start, end]`.
    pub fn query_series(
        &self,
        selector: &Selector,
        start: Timestamp,
        end: Timestamp,
    ) -> Vec<(LabelSet, Vec<Sample>)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let sh = shard.read();
            for fp in sh.candidates(selector) {
                let Some(series) = sh.series.get(&fp) else { continue };
                if !selector.matches(&series.labels) {
                    continue;
                }
                let mut samples = series.samples_in(start, end);
                if let Some(recent) = sh.recent.get(&fp) {
                    samples.extend(recent.iter().filter(|s| s.ts > start && s.ts <= end));
                }
                samples.sort_by_key(|s| s.ts);
                if !samples.is_empty() {
                    out.push((series.labels.clone(), samples));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Latest sample at or before `at` within a lookback window, per
    /// matching series (the PromQL instant-vector semantics).
    pub fn query_instant(
        &self,
        selector: &Selector,
        at: Timestamp,
        lookback_ns: i64,
    ) -> Vec<(LabelSet, Sample)> {
        self.query_series(selector, at.saturating_sub(lookback_ns), at)
            .into_iter()
            .filter_map(|(labels, samples)| samples.last().map(|&s| (labels, s)))
            .collect()
    }

    /// Drop blocks past retention. Returns blocks dropped.
    pub fn enforce_retention(&self, now: Timestamp) -> usize {
        let horizon = now.saturating_sub(self.config.retention_ns);
        let mut dropped = 0;
        for shard in self.shards.iter() {
            let mut sh = shard.write();
            for series in sh.series.values_mut() {
                let before = series.blocks.len();
                series.blocks.retain(|b| b.max_ts >= horizon);
                dropped += before - series.blocks.len();
            }
        }
        dropped
    }

    /// Total samples ingested.
    pub fn samples_ingested(&self) -> u64 {
        self.samples_ingested.load(Ordering::Relaxed)
    }

    /// Active series count.
    pub fn series_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().series.len()).sum()
    }

    /// Compressed bytes across sealed blocks.
    pub fn compressed_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .series
                    .values()
                    .flat_map(|ser| ser.blocks.iter())
                    .map(|b| b.compressed_size())
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_logql::parse_selector;
    use omni_model::labels;

    fn store() -> Tsdb {
        Tsdb::new(TsdbConfig { shards: 2, block_max_samples: 8, ..Default::default() })
    }

    #[test]
    fn ingest_and_query() {
        let db = store();
        for i in 0..20 {
            db.ingest_sample("node_temp", labels!("node" => "x1"), i * 10, 40.0 + i as f64);
        }
        let sel = parse_selector(r#"{__name__="node_temp", node="x1"}"#).unwrap();
        let series = db.query_series(&sel, -1, 1_000);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].1.len(), 20);
        // Sorted and contiguous across sealed blocks and the open head.
        assert!(series[0].1.windows(2).all(|w| w[0].ts < w[1].ts));
    }

    #[test]
    fn instant_returns_latest_in_lookback() {
        let db = store();
        db.ingest_sample("up", labels!("job" => "a"), 100, 1.0);
        db.ingest_sample("up", labels!("job" => "a"), 200, 0.0);
        let sel = parse_selector(r#"{__name__="up"}"#).unwrap();
        let v = db.query_instant(&sel, 250, 100);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1.value, 0.0);
        // Outside lookback: empty.
        assert!(db.query_instant(&sel, 1_000, 100).is_empty());
    }

    #[test]
    fn out_of_order_samples_dropped() {
        let db = store();
        db.ingest_sample("m", labels!("a" => "1"), 100, 1.0);
        db.ingest_sample("m", labels!("a" => "1"), 50, 2.0);
        let sel = parse_selector(r#"{__name__="m"}"#).unwrap();
        let series = db.query_series(&sel, -1, 1_000);
        assert_eq!(series[0].1.len(), 1);
        assert_eq!(db.samples_ingested(), 1);
    }

    #[test]
    fn selector_filters_series() {
        let db = store();
        db.ingest_sample("m", labels!("node" => "x1"), 1, 1.0);
        db.ingest_sample("m", labels!("node" => "x2"), 1, 2.0);
        db.ingest_sample("other", labels!("node" => "x1"), 1, 3.0);
        let sel = parse_selector(r#"{__name__="m", node=~"x.*"}"#).unwrap();
        let series = db.query_series(&sel, -1, 10);
        assert_eq!(series.len(), 2);
    }

    #[test]
    fn blocks_seal_and_remain_queryable() {
        let db = store(); // seals every 8 samples
        for i in 0..50 {
            db.ingest_sample("m", labels!("a" => "1"), i, i as f64);
        }
        assert!(db.compressed_bytes() > 0);
        let sel = parse_selector(r#"{__name__="m"}"#).unwrap();
        assert_eq!(db.query_series(&sel, -1, 100)[0].1.len(), 50);
    }

    #[test]
    fn retention_drops_old_blocks() {
        let db = Tsdb::new(TsdbConfig { shards: 1, block_max_samples: 4, retention_ns: 100 });
        for i in 0..20 {
            db.ingest_sample("m", labels!("a" => "1"), i * 10, 1.0);
        }
        let dropped = db.enforce_retention(1_000);
        assert!(dropped > 0);
    }

    #[test]
    fn sentinel_timestamps_do_not_overflow() {
        // Regression: `at - lookback_ns` / `now - retention_ns` used to
        // overflow in debug builds with sentinel timestamps.
        let db = store();
        db.ingest_sample("up", labels!("job" => "a"), 100, 1.0);
        let sel = parse_selector(r#"{__name__="up"}"#).unwrap();
        assert!(db.query_instant(&sel, i64::MIN, 100).is_empty());
        assert_eq!(db.query_instant(&sel, i64::MAX, i64::MAX).len(), 1);
        assert_eq!(db.enforce_retention(i64::MIN), 0);
    }

    #[test]
    fn concurrent_ingest() {
        let db = Tsdb::new(TsdbConfig { shards: 4, ..Default::default() });
        std::thread::scope(|s| {
            for t in 0..8 {
                let db = db.clone();
                s.spawn(move || {
                    for i in 0..1_000 {
                        db.ingest_sample("m", labels!("t" => format!("{t}")), i, 1.0);
                    }
                });
            }
        });
        assert_eq!(db.samples_ingested(), 8_000);
        assert_eq!(db.series_count(), 8);
    }
}

//! vmalert: "a component of VictoriaMetrics, that queries the database
//! based on predefined rules. When the return value matches, vmalert
//! sends an event to AlertManager." (§III)
//!
//! Mirrors the Loki Ruler's pending → firing → resolved state machine,
//! over PromQL instead of LogQL.

use crate::promql::{eval_instant, parse_promql, PromExpr, PromParseError};
use crate::storage::Tsdb;
use omni_logql::pipeline::render_template;
use omni_model::{LabelSet, Timestamp};
use std::collections::HashMap;

/// State of one alert series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmAlertState {
    /// Hold (`for:`) not yet met.
    Pending,
    /// Active.
    Firing,
    /// Condition cleared.
    Resolved,
}

/// One metric alerting rule.
#[derive(Debug, Clone)]
pub struct MetricRule {
    /// Alert name.
    pub name: String,
    /// PromQL expression (usually with a threshold filter).
    pub expr: String,
    /// Hold duration.
    pub for_ns: i64,
    /// Extra labels.
    pub labels: LabelSet,
    /// `{{.label}}`-templated annotations.
    pub annotations: Vec<(String, String)>,
}

impl MetricRule {
    /// The metric alerting rules the shipped stack evaluates (thermal,
    /// GPFS waiters, leak sensors) — the vmalert side of the paper's
    /// case studies. `core::stack` loads these and `omni-lint` validates
    /// them statically against the emittable-metric catalog.
    pub fn shipped_rules() -> Vec<MetricRule> {
        let minute = 60 * 1_000_000_000;
        vec![
            MetricRule {
                name: "NodeTemperatureCritical".into(),
                expr: "max by (xname) (shasta_temperature_celsius) > 90".into(),
                for_ns: minute,
                labels: LabelSet::from_pairs([("severity", "critical")]),
                annotations: vec![("summary".into(), "node {{.xname}} above 90C".into())],
            },
            MetricRule {
                name: "GpfsLongWaiters".into(),
                expr: "max by (fs, server) (gpfs_longest_waiter_seconds) > 300".into(),
                for_ns: minute,
                labels: LabelSet::from_pairs([("severity", "critical")]),
                annotations: vec![(
                    "summary".into(),
                    "GPFS {{.fs}}/{{.server}} has waiters over 300s".into(),
                )],
            },
            MetricRule {
                name: "LeakSensorWet".into(),
                expr: "max by (xname) (shasta_leak_bool) > 0".into(),
                for_ns: 0,
                labels: LabelSet::from_pairs([("severity", "warning")]),
                annotations: vec![("summary".into(), "leak sensor wet at {{.xname}}".into())],
            },
        ]
    }
}

/// Notification emitted on firing/resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct VmAlertNotification {
    /// alertname + rule labels + series labels.
    pub labels: LabelSet,
    /// Rendered annotations.
    pub annotations: Vec<(String, String)>,
    /// firing/resolved.
    pub state: VmAlertState,
    /// First active timestamp.
    pub active_at: Timestamp,
    /// Expression value.
    pub value: f64,
}

#[derive(Debug, Clone)]
struct Active {
    active_at: Timestamp,
    firing: bool,
    last_value: f64,
}

/// The evaluator.
pub struct VmAlert {
    db: Tsdb,
    rules: Vec<(MetricRule, PromExpr)>,
    active: HashMap<(usize, LabelSet), Active>,
}

impl VmAlert {
    /// Attach to a store.
    pub fn new(db: Tsdb) -> Self {
        Self { db, rules: Vec::new(), active: HashMap::new() }
    }

    /// Add a rule, parsing its expression.
    pub fn add_rule(&mut self, rule: MetricRule) -> Result<(), PromParseError> {
        let expr = parse_promql(&rule.expr)?;
        self.rules.push((rule, expr));
        Ok(())
    }

    /// Evaluate all rules at `now`.
    pub fn evaluate(&mut self, now: Timestamp) -> Vec<VmAlertNotification> {
        let mut out = Vec::new();
        for ri in 0..self.rules.len() {
            let (rule, expr) = &self.rules[ri];
            let rule = rule.clone();
            let vector = eval_instant(&self.db, expr, now);
            let mut seen = Vec::new();
            for (series_labels, value) in vector {
                seen.push(series_labels.clone());
                let key = (ri, series_labels.clone());
                let entry = self.active.entry(key).or_insert(Active {
                    active_at: now,
                    firing: false,
                    last_value: value,
                });
                entry.last_value = value;
                if !entry.firing && now.saturating_sub(entry.active_at) >= rule.for_ns {
                    entry.firing = true;
                }
                if entry.firing {
                    let snapshot = entry.clone();
                    out.push(notification(&rule, &series_labels, &snapshot, VmAlertState::Firing));
                }
            }
            let stale: Vec<(usize, LabelSet)> = self
                .active
                .keys()
                .filter(|(r, l)| *r == ri && !seen.contains(l))
                .cloned()
                .collect();
            for key in stale {
                let Some(entry) = self.active.remove(&key) else { continue };
                if entry.firing {
                    out.push(notification(&rule, &key.1, &entry, VmAlertState::Resolved));
                }
            }
        }
        out
    }

    /// Active (pending or firing) series count.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }
}

fn notification(
    rule: &MetricRule,
    series_labels: &LabelSet,
    entry: &Active,
    state: VmAlertState,
) -> VmAlertNotification {
    let mut labels = series_labels.merged_with(&rule.labels);
    labels.insert("alertname", rule.name.as_str());
    let annotations = rule
        .annotations
        .iter()
        .map(|(k, tpl)| (k.clone(), render_template(tpl, &labels)))
        .collect();
    VmAlertNotification {
        labels,
        annotations,
        state,
        active_at: entry.active_at,
        value: entry.last_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::TsdbConfig;
    use omni_model::{labels, NANOS_PER_SEC};

    fn minute() -> i64 {
        60 * NANOS_PER_SEC
    }

    fn hot_node_rule() -> MetricRule {
        MetricRule {
            name: "NodeTooHot".into(),
            expr: "max by (node) (node_temp) > 90".into(),
            for_ns: minute(),
            labels: LabelSet::from_pairs([("severity", "critical")]),
            annotations: vec![("summary".into(), "node {{.node}} over 90C".into())],
        }
    }

    #[test]
    fn fires_after_hold_and_resolves() {
        let db = Tsdb::new(TsdbConfig::default());
        let mut va = VmAlert::new(db.clone());
        va.add_rule(hot_node_rule()).unwrap();
        let t0 = 10 * minute();
        db.ingest_sample("node_temp", labels!("node" => "x9"), t0, 95.0);
        assert!(va.evaluate(t0).is_empty()); // pending
        db.ingest_sample("node_temp", labels!("node" => "x9"), t0 + minute(), 96.0);
        let notifs = va.evaluate(t0 + minute());
        assert_eq!(notifs.len(), 1);
        assert_eq!(notifs[0].state, VmAlertState::Firing);
        assert_eq!(notifs[0].labels.get("alertname"), Some("NodeTooHot"));
        assert_eq!(notifs[0].annotations[0].1, "node x9 over 90C");
        // Cooled down: series leaves the vector -> resolved.
        db.ingest_sample("node_temp", labels!("node" => "x9"), t0 + 2 * minute(), 60.0);
        let notifs = va.evaluate(t0 + 2 * minute());
        assert_eq!(notifs.len(), 1);
        assert_eq!(notifs[0].state, VmAlertState::Resolved);
        assert_eq!(va.active_count(), 0);
    }

    #[test]
    fn evaluate_at_sentinel_now_does_not_overflow() {
        // Regression: `now - entry.active_at` used to overflow when a rule
        // first activated at a negative timestamp and was re-evaluated at a
        // large one (the sentinel-start class PR5 fixed in the frontend).
        let db = Tsdb::new(TsdbConfig::default());
        let mut va = VmAlert::new(db.clone());
        va.add_rule(hot_node_rule()).unwrap();
        db.ingest_sample("node_temp", labels!("node" => "x9"), i64::MIN / 2, 95.0);
        assert!(va.evaluate(i64::MIN / 2).is_empty()); // pending

        // MIN/2 → MAX/2 keeps the gorilla timestamp delta representable
        // while `now - active_at` still spans more than i64::MAX.
        db.ingest_sample("node_temp", labels!("node" => "x9"), i64::MAX / 2, 96.0);
        let notifs = va.evaluate(i64::MAX / 2);
        assert_eq!(notifs.len(), 1);
        assert_eq!(notifs[0].state, VmAlertState::Firing);
    }

    #[test]
    fn bad_rule_rejected() {
        let db = Tsdb::new(TsdbConfig::default());
        let mut va = VmAlert::new(db);
        let mut rule = hot_node_rule();
        rule.expr = "max by (".into();
        assert!(va.add_rule(rule).is_err());
    }

    #[test]
    fn value_carried_in_notification() {
        let db = Tsdb::new(TsdbConfig::default());
        let mut va = VmAlert::new(db.clone());
        let mut rule = hot_node_rule();
        rule.for_ns = 0;
        va.add_rule(rule).unwrap();
        db.ingest_sample("node_temp", labels!("node" => "x9"), minute(), 93.5);
        let notifs = va.evaluate(minute());
        assert_eq!(notifs[0].value, 93.5);
    }
}

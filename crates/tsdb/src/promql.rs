//! A PromQL subset: what vmalert rules and Grafana metric panels need.
//!
//! Supported: instant vector selectors (`node_temp{node="x1"}`), range
//! functions (`rate`, `increase`, `delta`, `*_over_time`), vector
//! aggregation (`sum/min/max/avg/count by/without`), and vector⊗scalar
//! comparison filters for alert thresholds.

use crate::storage::Tsdb;
use omni_logql::ast::{CmpOp, GroupKind, Grouping, VectorAggOp};
use omni_logql::eval::{eval_filter, eval_vector_agg, InstantVector, Matrix};
use omni_logql::lexer::{lex, Token};
use omni_logql::matcher::{MatchOp, Matcher, Selector};
use omni_model::{Sample, Timestamp, NANOS_PER_SEC};
use std::collections::BTreeMap;
use std::fmt;

/// Default instant-vector lookback (Prometheus uses 5 minutes).
pub const DEFAULT_LOOKBACK_NS: i64 = 5 * 60 * NANOS_PER_SEC;

/// Range function over a series window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeFn {
    /// Counter per-second rate (reset-aware).
    Rate,
    /// Counter increase over the window (reset-aware).
    Increase,
    /// Gauge difference last-first.
    Delta,
    /// Mean of samples.
    AvgOverTime,
    /// Minimum.
    MinOverTime,
    /// Maximum.
    MaxOverTime,
    /// Sum.
    SumOverTime,
    /// Sample count.
    CountOverTime,
    /// Last sample value.
    LastOverTime,
}

impl RangeFn {
    fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "rate" => RangeFn::Rate,
            "increase" => RangeFn::Increase,
            "delta" => RangeFn::Delta,
            "avg_over_time" => RangeFn::AvgOverTime,
            "min_over_time" => RangeFn::MinOverTime,
            "max_over_time" => RangeFn::MaxOverTime,
            "sum_over_time" => RangeFn::SumOverTime,
            "count_over_time" => RangeFn::CountOverTime,
            "last_over_time" => RangeFn::LastOverTime,
            _ => return None,
        })
    }

    /// Apply to one window of samples.
    pub fn apply(&self, samples: &[Sample], range_ns: i64) -> Option<f64> {
        if samples.is_empty() {
            return None;
        }
        let secs = range_ns as f64 / NANOS_PER_SEC as f64;
        Some(match self {
            RangeFn::Rate | RangeFn::Increase => {
                // Counter semantics: sum positive deltas (reset-aware).
                let mut increase = 0.0;
                for w in samples.windows(2) {
                    let d = w[1].value - w[0].value;
                    increase += if d >= 0.0 { d } else { w[1].value };
                }
                if *self == RangeFn::Rate {
                    increase / secs
                } else {
                    increase
                }
            }
            RangeFn::Delta => samples.last().unwrap().value - samples[0].value,
            RangeFn::AvgOverTime => {
                samples.iter().map(|s| s.value).sum::<f64>() / samples.len() as f64
            }
            RangeFn::MinOverTime => samples.iter().map(|s| s.value).fold(f64::INFINITY, f64::min),
            RangeFn::MaxOverTime => {
                samples.iter().map(|s| s.value).fold(f64::NEG_INFINITY, f64::max)
            }
            RangeFn::SumOverTime => samples.iter().map(|s| s.value).sum(),
            RangeFn::CountOverTime => samples.len() as f64,
            RangeFn::LastOverTime => samples.last().unwrap().value,
        })
    }
}

/// PromQL expression AST.
#[derive(Debug, Clone)]
pub enum PromExpr {
    /// Instant vector selector.
    Selector(Selector),
    /// `absent(selector)` — 1 when no series matches (alerting on
    /// vanished targets).
    Absent(Selector),
    /// `fn(selector[range])`
    RangeFn {
        /// The function.
        func: RangeFn,
        /// Series selector.
        selector: Selector,
        /// Window nanoseconds.
        range_ns: i64,
    },
    /// Vector aggregation.
    VectorAgg {
        /// Operator.
        op: VectorAggOp,
        /// Grouping clause.
        grouping: Option<Grouping>,
        /// Inner expression.
        inner: Box<PromExpr>,
    },
    /// Threshold filter.
    Filter {
        /// Inner expression.
        inner: Box<PromExpr>,
        /// Comparison.
        op: CmpOp,
        /// Scalar.
        scalar: f64,
    },
    /// Vector⊗vector arithmetic with one-to-one label matching
    /// (`errors / requests`).
    BinOp {
        /// Left side.
        lhs: Box<PromExpr>,
        /// `+ - * /`.
        op: ArithOp,
        /// Right side.
        rhs: Box<PromExpr>,
    },
}

/// Arithmetic operator for vector⊗vector expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (x/0 → dropped, like Prometheus NaN filtering).
    Div,
}

impl ArithOp {
    fn apply(&self, l: f64, r: f64) -> f64 {
        match self {
            ArithOp::Add => l + r,
            ArithOp::Sub => l - r,
            ArithOp::Mul => l * r,
            ArithOp::Div => l / r,
        }
    }
}

/// PromQL parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct PromParseError(pub String);

impl fmt::Display for PromParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "promql parse error: {}", self.0)
    }
}

impl std::error::Error for PromParseError {}

/// Parse a PromQL expression.
pub fn parse_promql(input: &str) -> Result<PromExpr, PromParseError> {
    let toks = lex(input).map_err(|e| PromParseError(e.to_string()))?;
    let mut p = PromParser { toks, pos: 0 };
    let expr = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(PromParseError(format!("trailing token {}", p.toks[p.pos])));
    }
    Ok(expr)
}

struct PromParser {
    toks: Vec<Token>,
    pos: usize,
}

impl PromParser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Token) -> Result<(), PromParseError> {
        match self.bump() {
            Some(t) if &t == tok => Ok(()),
            other => Err(PromParseError(format!("expected {tok}, found {other:?}"))),
        }
    }

    fn expr(&mut self) -> Result<PromExpr, PromParseError> {
        let mut inner = self.vector_expr()?;
        // Left-associative arithmetic chain (single precedence level —
        // parenthesize inside aggregations for anything fancier).
        loop {
            let aop = match self.peek() {
                Some(Token::Plus) => ArithOp::Add,
                Some(Token::Minus) => ArithOp::Sub,
                Some(Token::Star) => ArithOp::Mul,
                Some(Token::Slash) => ArithOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.vector_expr()?;
            inner = PromExpr::BinOp { lhs: Box::new(inner), op: aop, rhs: Box::new(rhs) };
        }
        let op = match self.peek() {
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::EqEq) => CmpOp::Eq,
            Some(Token::Neq) => CmpOp::Neq,
            _ => return Ok(inner),
        };
        self.bump();
        let negative = self.peek() == Some(&Token::Minus);
        if negative {
            self.bump();
        }
        match self.bump() {
            Some(Token::Number(n)) => Ok(PromExpr::Filter {
                inner: Box::new(inner),
                op,
                scalar: if negative { -n } else { n },
            }),
            other => Err(PromParseError(format!("expected scalar, found {other:?}"))),
        }
    }

    fn vector_expr(&mut self) -> Result<PromExpr, PromParseError> {
        match self.peek() {
            Some(Token::LBrace) => Ok(PromExpr::Selector(self.selector(None)?)),
            Some(Token::Ident(name)) => {
                let name = name.clone();
                self.bump();
                if name == "absent" {
                    self.expect(&Token::LParen)?;
                    let sel_name = match self.peek() {
                        Some(Token::Ident(n)) => {
                            let n = n.clone();
                            self.bump();
                            Some(n)
                        }
                        _ => None,
                    };
                    let selector = if self.peek() == Some(&Token::LBrace) {
                        self.selector(sel_name)?
                    } else {
                        let Some(n) = sel_name else {
                            return Err(PromParseError("absent needs a selector".into()));
                        };
                        Selector::new(vec![Matcher::eq("__name__", &n)])
                    };
                    self.expect(&Token::RParen)?;
                    return Ok(PromExpr::Absent(selector));
                }
                if let Some(func) = RangeFn::from_name(&name) {
                    self.expect(&Token::LParen)?;
                    let sel_name = match self.peek() {
                        Some(Token::Ident(n)) => {
                            let n = n.clone();
                            self.bump();
                            Some(n)
                        }
                        _ => None,
                    };
                    let selector = if self.peek() == Some(&Token::LBrace) {
                        self.selector(sel_name)?
                    } else {
                        let Some(n) = sel_name else {
                            return Err(PromParseError("range function needs a selector".into()));
                        };
                        Selector::new(vec![Matcher::eq("__name__", &n)])
                    };
                    self.expect(&Token::LBracket)?;
                    let range_ns = match self.bump() {
                        Some(Token::Duration(ns)) => ns,
                        other => {
                            return Err(PromParseError(format!(
                                "expected duration, found {other:?}"
                            )))
                        }
                    };
                    self.expect(&Token::RBracket)?;
                    self.expect(&Token::RParen)?;
                    return Ok(PromExpr::RangeFn { func, selector, range_ns });
                }
                let vop = match name.as_str() {
                    "sum" => Some(VectorAggOp::Sum),
                    "min" => Some(VectorAggOp::Min),
                    "max" => Some(VectorAggOp::Max),
                    "avg" => Some(VectorAggOp::Avg),
                    "count" => Some(VectorAggOp::Count),
                    _ => None,
                };
                if let Some(op) = vop {
                    let g_before = self.grouping()?;
                    self.expect(&Token::LParen)?;
                    let inner = self.expr()?;
                    self.expect(&Token::RParen)?;
                    let g_after = self.grouping()?;
                    if g_before.is_some() && g_after.is_some() {
                        return Err(PromParseError("duplicate grouping".into()));
                    }
                    return Ok(PromExpr::VectorAgg {
                        op,
                        grouping: g_before.or(g_after),
                        inner: Box::new(inner),
                    });
                }
                // Bare metric name, optionally with matchers.
                if self.peek() == Some(&Token::LBrace) {
                    Ok(PromExpr::Selector(self.selector(Some(name))?))
                } else {
                    Ok(PromExpr::Selector(Selector::new(vec![Matcher::eq("__name__", &name)])))
                }
            }
            other => Err(PromParseError(format!("unexpected token {other:?}"))),
        }
    }

    fn grouping(&mut self) -> Result<Option<Grouping>, PromParseError> {
        let kind = match self.peek() {
            Some(Token::Ident(s)) if s == "by" => GroupKind::By,
            Some(Token::Ident(s)) if s == "without" => GroupKind::Without,
            _ => return Ok(None),
        };
        self.bump();
        self.expect(&Token::LParen)?;
        let mut labels = Vec::new();
        loop {
            match self.bump() {
                Some(Token::Ident(l)) => labels.push(l),
                Some(Token::RParen) if labels.is_empty() => break,
                other => return Err(PromParseError(format!("expected label, found {other:?}"))),
            }
            match self.bump() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                other => return Err(PromParseError(format!("expected , or ), found {other:?}"))),
            }
        }
        Ok(Some(Grouping { kind, labels }))
    }

    fn selector(&mut self, name: Option<String>) -> Result<Selector, PromParseError> {
        self.expect(&Token::LBrace)?;
        let mut matchers = Vec::new();
        if let Some(n) = name {
            matchers.push(Matcher::eq("__name__", &n));
        }
        if self.peek() == Some(&Token::RBrace) {
            self.bump();
            return Ok(Selector::new(matchers));
        }
        loop {
            let lname = match self.bump() {
                Some(Token::Ident(n)) => n,
                other => return Err(PromParseError(format!("expected label, found {other:?}"))),
            };
            let op = match self.bump() {
                Some(Token::Eq) => MatchOp::Eq,
                Some(Token::Neq) => MatchOp::Neq,
                Some(Token::ReMatch) => MatchOp::Re,
                Some(Token::NotRegex) => MatchOp::NotRe,
                other => return Err(PromParseError(format!("expected op, found {other:?}"))),
            };
            let value = match self.bump() {
                Some(Token::Str(s)) => s,
                other => return Err(PromParseError(format!("expected string, found {other:?}"))),
            };
            matchers.push(Matcher::new(&lname, op, &value).map_err(PromParseError)?);
            match self.bump() {
                Some(Token::Comma) => continue,
                Some(Token::RBrace) => break,
                other => return Err(PromParseError(format!("expected , or }}, found {other:?}"))),
            }
        }
        Ok(Selector::new(matchers))
    }
}

/// Evaluate an expression at one instant against a store.
pub fn eval_instant(db: &Tsdb, expr: &PromExpr, at: Timestamp) -> InstantVector {
    match expr {
        PromExpr::Selector(sel) => db
            .query_instant(sel, at, DEFAULT_LOOKBACK_NS)
            .into_iter()
            .map(|(mut labels, s)| {
                labels.remove("__name__");
                (labels, s.value)
            })
            .collect(),
        PromExpr::Absent(sel) => {
            if db.query_instant(sel, at, DEFAULT_LOOKBACK_NS).is_empty() {
                // Like Prometheus: the result labels are the selector's
                // equality matchers (minus the metric name).
                let mut labels = omni_model::LabelSet::new();
                for (k, v) in sel.equality_matchers() {
                    if k != "__name__" {
                        labels.insert(k, v);
                    }
                }
                vec![(labels, 1.0)]
            } else {
                Vec::new()
            }
        }
        PromExpr::RangeFn { func, selector, range_ns } => {
            let mut out = Vec::new();
            // Saturate: a sentinel `at` near `i64::MIN` must not overflow
            // when the range is subtracted (same class as the frontend's
            // `start - range_ns` fix).
            for (mut labels, samples) in db.query_series(selector, at.saturating_sub(*range_ns), at)
            {
                if let Some(v) = func.apply(&samples, *range_ns) {
                    labels.remove("__name__");
                    out.push((labels, v));
                }
            }
            out.sort_by(|a, b| a.0.cmp(&b.0));
            out
        }
        PromExpr::VectorAgg { op, grouping, inner } => {
            eval_vector_agg(*op, grouping.as_ref(), eval_instant(db, inner, at))
        }
        PromExpr::Filter { inner, op, scalar } => {
            eval_filter(eval_instant(db, inner, at), *op, *scalar)
        }
        PromExpr::BinOp { lhs, op, rhs } => {
            let left = eval_instant(db, lhs, at);
            let right = eval_instant(db, rhs, at);
            // One-to-one matching on identical label sets (sans metric
            // name, already stripped by the selector paths).
            let rmap: std::collections::BTreeMap<&omni_model::LabelSet, f64> =
                right.iter().map(|(l, v)| (l, *v)).collect();
            left.into_iter()
                .filter_map(|(l, lv)| {
                    let rv = rmap.get(&l)?;
                    let v = op.apply(lv, *rv);
                    if v.is_finite() {
                        Some((l, v))
                    } else {
                        None
                    }
                })
                .collect()
        }
    }
}

/// Evaluate over `[start, end]` at `step_ns` intervals.
pub fn eval_range(
    db: &Tsdb,
    expr: &PromExpr,
    start: Timestamp,
    end: Timestamp,
    step_ns: i64,
) -> Matrix {
    assert!(step_ns > 0);
    let mut series: BTreeMap<omni_model::LabelSet, Vec<Sample>> = BTreeMap::new();
    let mut t = start;
    while t <= end {
        for (labels, value) in eval_instant(db, expr, t) {
            series.entry(labels).or_default().push(Sample::new(t, value));
        }
        t += step_ns;
    }
    series.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::TsdbConfig;
    use omni_model::labels;

    fn db() -> Tsdb {
        Tsdb::new(TsdbConfig { shards: 2, ..Default::default() })
    }

    #[test]
    fn bare_name_selector() {
        let d = db();
        d.ingest_sample("node_temp", labels!("node" => "x1"), NANOS_PER_SEC, 42.0);
        let e = parse_promql("node_temp").unwrap();
        let v = eval_instant(&d, &e, 2 * NANOS_PER_SEC);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 42.0);
        assert_eq!(v[0].0.get("node"), Some("x1"));
        assert_eq!(v[0].0.get("__name__"), None);
    }

    #[test]
    fn name_with_matchers() {
        let d = db();
        d.ingest_sample("node_temp", labels!("node" => "x1"), 1, 42.0);
        d.ingest_sample("node_temp", labels!("node" => "x2"), 1, 50.0);
        let e = parse_promql(r#"node_temp{node="x2"}"#).unwrap();
        let v = eval_instant(&d, &e, NANOS_PER_SEC);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 50.0);
    }

    #[test]
    fn rate_of_counter() {
        let d = db();
        for i in 0..=60 {
            d.ingest_sample(
                "requests_total",
                labels!("job" => "api"),
                i * NANOS_PER_SEC,
                (i * 5) as f64,
            );
        }
        let e = parse_promql("rate(requests_total[60s])").unwrap();
        let v = eval_instant(&d, &e, 60 * NANOS_PER_SEC);
        assert_eq!(v.len(), 1);
        assert!((v[0].1 - 5.0).abs() < 0.1, "rate = {}", v[0].1);
    }

    #[test]
    fn rate_survives_counter_reset() {
        let d = db();
        let values = [0.0, 10.0, 20.0, 3.0, 13.0]; // reset after 20
        for (i, v) in values.iter().enumerate() {
            d.ingest_sample("c", labels!("a" => "1"), (i as i64 + 1) * NANOS_PER_SEC, *v);
        }
        let e = parse_promql("increase(c[10s])").unwrap();
        let v = eval_instant(&d, &e, 10 * NANOS_PER_SEC);
        // 0→10→20 (+20), reset→3 (+3), 3→13 (+10) = 33
        assert_eq!(v[0].1, 33.0);
    }

    #[test]
    fn aggregation_by() {
        let d = db();
        d.ingest_sample("temp", labels!("cab" => "x1000", "node" => "n0"), 1, 40.0);
        d.ingest_sample("temp", labels!("cab" => "x1000", "node" => "n1"), 1, 50.0);
        d.ingest_sample("temp", labels!("cab" => "x1001", "node" => "n0"), 1, 60.0);
        let e = parse_promql("max by (cab) (temp)").unwrap();
        let v = eval_instant(&d, &e, NANOS_PER_SEC);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], (labels!("cab" => "x1000"), 50.0));
        assert_eq!(v[1], (labels!("cab" => "x1001"), 60.0));
    }

    #[test]
    fn threshold_filter_alert_shape() {
        let d = db();
        d.ingest_sample("temp", labels!("node" => "hot"), 1, 92.0);
        d.ingest_sample("temp", labels!("node" => "cool"), 1, 45.0);
        let e = parse_promql("temp > 90").unwrap();
        let v = eval_instant(&d, &e, NANOS_PER_SEC);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0.get("node"), Some("hot"));
    }

    #[test]
    fn over_time_functions() {
        let d = db();
        for (i, val) in [1.0, 5.0, 3.0].iter().enumerate() {
            d.ingest_sample("g", labels!("a" => "1"), (i as i64 + 1) * NANOS_PER_SEC, *val);
        }
        let at = 10 * NANOS_PER_SEC;
        for (q, expected) in [
            ("avg_over_time(g[10s])", 3.0),
            ("min_over_time(g[10s])", 1.0),
            ("max_over_time(g[10s])", 5.0),
            ("sum_over_time(g[10s])", 9.0),
            ("count_over_time(g[10s])", 3.0),
            ("last_over_time(g[10s])", 3.0),
            ("delta(g[10s])", 2.0),
        ] {
            let e = parse_promql(q).unwrap();
            let v = eval_instant(&d, &e, at);
            assert_eq!(v[0].1, expected, "query {q}");
        }
    }

    #[test]
    fn range_eval_produces_series() {
        let d = db();
        for i in 0..10 {
            d.ingest_sample("g", labels!("a" => "1"), i * NANOS_PER_SEC, i as f64);
        }
        let e = parse_promql("max_over_time(g[2s])").unwrap();
        let m = eval_range(&d, &e, 0, 9 * NANOS_PER_SEC, NANOS_PER_SEC);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].1.len(), 10);
    }

    #[test]
    fn binop_divides_with_label_matching() {
        let d = db();
        for inst in ["a", "b"] {
            d.ingest_sample("errors_total", labels!("instance" => inst), NANOS_PER_SEC, 5.0);
            d.ingest_sample("requests_total", labels!("instance" => inst), NANOS_PER_SEC, 50.0);
        }
        // An instance with requests but no errors: dropped from the result.
        d.ingest_sample("requests_total", labels!("instance" => "c"), NANOS_PER_SEC, 10.0);
        let e =
            parse_promql("sum by (instance) (errors_total) / sum by (instance) (requests_total)")
                .unwrap();
        let v = eval_instant(&d, &e, 2 * NANOS_PER_SEC);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|(_, r)| *r == 0.1));
    }

    #[test]
    fn binop_division_by_zero_dropped() {
        let d = db();
        d.ingest_sample("a", labels!("x" => "1"), 1, 5.0);
        d.ingest_sample("b", labels!("x" => "1"), 1, 0.0);
        let e = parse_promql("sum by (x) (a) / sum by (x) (b)").unwrap();
        assert!(eval_instant(&d, &e, NANOS_PER_SEC).is_empty());
    }

    #[test]
    fn binop_chain_left_associative() {
        let d = db();
        d.ingest_sample("m", labels!("x" => "1"), 1, 8.0);
        let e = parse_promql("sum by (x) (m) + sum by (x) (m) - sum by (x) (m)").unwrap();
        let v = eval_instant(&d, &e, NANOS_PER_SEC);
        assert_eq!(v[0].1, 8.0);
    }

    #[test]
    fn negative_threshold_scalar() {
        let d = db();
        d.ingest_sample("g", labels!("x" => "1"), 1, -5.0);
        let e = parse_promql("g < -1").unwrap();
        let v = eval_instant(&d, &e, NANOS_PER_SEC);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn absent_fires_only_when_series_missing() {
        let d = db();
        let e = parse_promql(r#"absent(up{instance="ghost"})"#).unwrap();
        let v = eval_instant(&d, &e, NANOS_PER_SEC);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 1.0);
        assert_eq!(v[0].0.get("instance"), Some("ghost"));
        d.ingest_sample("up", labels!("instance" => "ghost"), 1, 1.0);
        let v = eval_instant(&d, &e, NANOS_PER_SEC);
        assert!(v.is_empty());
    }

    #[test]
    fn parse_errors() {
        for q in ["", "rate(x)", "sum by (a", "x > ", "rate(x[5m]) trailing", "{a=}"] {
            assert!(parse_promql(q).is_err(), "should reject {q:?}");
        }
    }
}

//! vmagent: "VMagent collects metrics from all the Prometheus-style
//! exporters and sends data to Victoriametrics."
//!
//! Targets are scrape callbacks (the exporters crate adapts
//! exposition-format endpoints onto this). Every scrape also records the
//! synthetic `up` metric per target, like the real agent.

use crate::storage::Tsdb;
use omni_model::{LabelSet, MetricRecord, Timestamp};
use std::sync::atomic::{AtomicU64, Ordering};

/// A scrape callback: returns the target's current samples or an error
/// message on scrape failure.
pub type ScrapeFn = Box<dyn Fn(Timestamp) -> Result<Vec<MetricRecord>, String> + Send + Sync>;

struct Target {
    job: String,
    instance: String,
    scrape: ScrapeFn,
}

/// The scrape agent.
pub struct VmAgent {
    db: Tsdb,
    targets: Vec<Target>,
    scrapes: AtomicU64,
    samples: AtomicU64,
    failures: AtomicU64,
}

impl VmAgent {
    /// Agent writing into `db`.
    pub fn new(db: Tsdb) -> Self {
        Self {
            db,
            targets: Vec::new(),
            scrapes: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    /// Register a target under `job`/`instance` labels.
    pub fn add_target(&mut self, job: &str, instance: &str, scrape: ScrapeFn) {
        self.targets.push(Target { job: job.to_string(), instance: instance.to_string(), scrape });
    }

    /// Number of registered targets.
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Scrape every target once at virtual time `now`. Each sample gets
    /// `job`/`instance` labels; each target gets an `up` sample.
    pub fn scrape_once(&self, now: Timestamp) {
        for t in &self.targets {
            self.scrapes.fetch_add(1, Ordering::Relaxed);
            match (t.scrape)(now) {
                Ok(records) => {
                    for mut r in records {
                        r.labels.insert("job", t.job.as_str());
                        r.labels.insert("instance", t.instance.as_str());
                        r.sample.ts = now;
                        self.db.ingest(&r);
                        self.samples.fetch_add(1, Ordering::Relaxed);
                    }
                    self.record_up(t, now, 1.0);
                }
                Err(_) => {
                    self.failures.fetch_add(1, Ordering::Relaxed);
                    self.record_up(t, now, 0.0);
                }
            }
        }
    }

    fn record_up(&self, t: &Target, now: Timestamp, value: f64) {
        let labels =
            LabelSet::from_pairs([("job", t.job.as_str()), ("instance", t.instance.as_str())]);
        self.db.ingest(&MetricRecord::new("up", labels, now, value));
    }

    /// (scrapes, samples, failures) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.scrapes.load(Ordering::Relaxed),
            self.samples.load(Ordering::Relaxed),
            self.failures.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::promql::{eval_instant, parse_promql};
    use crate::storage::TsdbConfig;
    use omni_model::{labels, NANOS_PER_SEC};

    fn agent() -> (Tsdb, VmAgent) {
        let db = Tsdb::new(TsdbConfig::default());
        let agent = VmAgent::new(db.clone());
        (db, agent)
    }

    #[test]
    fn scrape_ingests_with_job_instance_and_up() {
        let (db, mut agent) = agent();
        agent.add_target(
            "node-exporter",
            "x1000c0s0b0n0",
            Box::new(|_now| {
                Ok(vec![MetricRecord::new("node_temp", labels!("sensor" => "t0"), 0, 44.0)])
            }),
        );
        agent.scrape_once(NANOS_PER_SEC);
        let e = parse_promql(r#"node_temp{job="node-exporter"}"#).unwrap();
        let v = eval_instant(&db, &e, 2 * NANOS_PER_SEC);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0.get("instance"), Some("x1000c0s0b0n0"));
        let up = eval_instant(&db, &parse_promql("up").unwrap(), 2 * NANOS_PER_SEC);
        assert_eq!(up.len(), 1);
        assert_eq!(up[0].1, 1.0);
    }

    #[test]
    fn failed_scrape_sets_up_zero() {
        let (db, mut agent) = agent();
        agent.add_target("blackbox", "probe-1", Box::new(|_| Err("connection refused".into())));
        agent.scrape_once(NANOS_PER_SEC);
        let up = eval_instant(&db, &parse_promql("up").unwrap(), 2 * NANOS_PER_SEC);
        assert_eq!(up[0].1, 0.0);
        assert_eq!(agent.stats().2, 1);
    }

    #[test]
    fn repeated_scrapes_build_series() {
        let (db, mut agent) = agent();
        agent.add_target(
            "exp",
            "i",
            Box::new(|now| {
                Ok(vec![MetricRecord::new("g", LabelSet::new(), 0, (now / NANOS_PER_SEC) as f64)])
            }),
        );
        for i in 1..=10 {
            agent.scrape_once(i * 15 * NANOS_PER_SEC);
        }
        let e = parse_promql("count_over_time(g[300s])").unwrap();
        let v = eval_instant(&db, &e, 200 * NANOS_PER_SEC);
        assert_eq!(v[0].1, 10.0);
        assert_eq!(agent.stats(), (10, 10, 0));
    }
}

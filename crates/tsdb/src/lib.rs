//! A VictoriaMetrics-like time-series database.
//!
//! "As a rule, we send metrics to Victoriametrics, the time series
//! database and logs to Loki" (§III). The crate covers the metric half of
//! the paper's pipeline:
//!
//! * [`storage::Tsdb`] — sharded, label-indexed series storage over
//!   Gorilla-compressed blocks ([`gorilla`]);
//! * [`promql`] — the PromQL subset vmalert rules and Grafana panels use;
//! * [`vmagent`] — the scrape loop feeding the store;
//! * [`vmalert`] — "queries the database based on predefined rules. When
//!   the return value matches, vmalert sends an event to AlertManager."

pub mod gorilla;
pub mod promql;
pub mod storage;
pub mod vmagent;
pub mod vmalert;

pub use gorilla::{GorillaBlock, GorillaEncoder};
pub use promql::{eval_instant, eval_range, parse_promql, PromExpr, RangeFn};
pub use storage::{Tsdb, TsdbConfig};
pub use vmagent::{ScrapeFn, VmAgent};
pub use vmalert::{MetricRule, VmAlert, VmAlertNotification, VmAlertState};

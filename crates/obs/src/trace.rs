//! Deterministic end-to-end tracing for the pipeline.
//!
//! A hardware event picks up a [`TraceContext`] the moment the HMS
//! collector publishes it; the context travels as a Kafka-style message
//! header ([`TRACE_HEADER`]), a Loki entry label and an alert annotation,
//! and every stage it crosses records a [`Span`] with enter/exit times on
//! the virtual clock. [`TraceStore::render_timeline`] then prints the
//! whole journey — collector → bus → bridge → Loki → ruler →
//! alertmanager → delivery → ServiceNow — including the gaps that chaos
//! retries punched into it.
//!
//! Ids are derived from `fnv1a64(seed ‖ sequence)`, never from a wall
//! clock or global RNG, so the same seed produces byte-identical
//! timelines.

use omni_model::{fnv1a64, Timestamp, NANOS_PER_SEC};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The message-header key that carries the trace id across the bus.
pub const TRACE_HEADER: &str = "omni-trace-id";

/// The identity a traced event carries between stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Identifies the whole journey of one event.
    pub trace_id: u64,
    /// Identifies the span that produced this context (the parent of the
    /// next stage's span).
    pub span_id: u64,
}

impl TraceContext {
    /// Header encoding: 16 lowercase hex digits.
    pub fn encode(&self) -> String {
        format_trace_id(self.trace_id)
    }
}

/// Render a trace id the way headers and annotations carry it.
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parse a header/annotation value back into a trace id.
pub fn parse_trace_id(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// One stage's enter/exit record within a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Owning trace.
    pub trace_id: u64,
    /// Deterministic span id.
    pub span_id: u64,
    /// Stage name, e.g. `"kafka"` or `"deliver_slack"`.
    pub stage: String,
    /// Virtual time the stage was entered.
    pub start: Timestamp,
    /// Virtual time the stage was exited.
    pub end: Timestamp,
    /// Free-form detail (offsets, receivers, incident numbers).
    pub note: String,
}

struct OpenSpan {
    stage: String,
    span_id: u64,
    start: Timestamp,
    note: String,
}

struct Trace {
    description: String,
    context: String,
    started: Timestamp,
    spans: Vec<Span>,
    open: Vec<OpenSpan>,
}

struct Inner {
    seed: u64,
    next_id: u64,
    traces: BTreeMap<u64, Trace>,
    by_context: BTreeMap<String, u64>,
}

impl Inner {
    fn derive_id(&mut self) -> u64 {
        let mut material = [0u8; 16];
        material[..8].copy_from_slice(&self.seed.to_le_bytes());
        material[8..].copy_from_slice(&self.next_id.to_le_bytes());
        self.next_id += 1;
        let h = fnv1a64(&material);
        if h == 0 {
            1
        } else {
            h
        }
    }
}

/// Shared store of every trace and span in a run. Cheap to clone.
#[derive(Clone)]
pub struct TraceStore {
    inner: Arc<Mutex<Inner>>,
}

impl TraceStore {
    /// Create a store seeded for deterministic id derivation (pass the
    /// chaos/stack seed).
    pub fn new(seed: u64) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Inner {
                seed,
                next_id: 0,
                traces: BTreeMap::new(),
                by_context: BTreeMap::new(),
            })),
        }
    }

    /// Start a trace for an event. `context` is the correlation key the
    /// pipeline already carries end to end (the Redfish event's `Context`
    /// xname), `description` is free-form (e.g. the message id).
    pub fn begin_trace(&self, context: &str, description: &str, now: Timestamp) -> TraceContext {
        let mut g = self.inner.lock().unwrap();
        let trace_id = g.derive_id();
        let span_id = g.derive_id();
        g.traces.insert(
            trace_id,
            Trace {
                description: description.to_string(),
                context: context.to_string(),
                started: now,
                spans: Vec::new(),
                open: Vec::new(),
            },
        );
        g.by_context.insert(context.to_string(), trace_id);
        TraceContext { trace_id, span_id }
    }

    /// The most recent trace started for a correlation context, if any.
    pub fn lookup(&self, context: &str) -> Option<u64> {
        self.inner.lock().unwrap().by_context.get(context).copied()
    }

    /// Record a completed span (enter and exit already known).
    pub fn span(&self, trace_id: u64, stage: &str, start: Timestamp, end: Timestamp, note: &str) {
        let mut g = self.inner.lock().unwrap();
        let span_id = g.derive_id();
        if let Some(t) = g.traces.get_mut(&trace_id) {
            t.spans.push(Span {
                trace_id,
                span_id,
                stage: stage.to_string(),
                start,
                end,
                note: note.to_string(),
            });
        }
    }

    /// Record a completed span only if the stage has not been recorded yet
    /// — for stages that re-fire every evaluation tick.
    pub fn span_once(
        &self,
        trace_id: u64,
        stage: &str,
        start: Timestamp,
        end: Timestamp,
        note: &str,
    ) {
        if !self.has_stage(trace_id, stage) {
            self.span(trace_id, stage, start, end, note);
        }
    }

    /// Enter a stage. Idempotent while open: re-entering keeps the
    /// earliest start, which is exactly what makes retry gaps visible —
    /// the span stretches from first attempt to eventual success.
    pub fn begin_span(&self, trace_id: u64, stage: &str, now: Timestamp, note: &str) {
        let mut g = self.inner.lock().unwrap();
        let span_id = g.derive_id();
        if let Some(t) = g.traces.get_mut(&trace_id) {
            let already_open = t.open.iter().any(|o| o.stage == stage);
            let already_closed = t.spans.iter().any(|s| s.stage == stage);
            if !already_open && !already_closed {
                t.open.push(OpenSpan {
                    stage: stage.to_string(),
                    span_id,
                    start: now,
                    note: note.to_string(),
                });
            }
        }
    }

    /// Exit a stage opened with [`Self::begin_span`]. Unmatched exits are
    /// ignored. An empty `note` keeps the note given at enter time.
    pub fn end_span(&self, trace_id: u64, stage: &str, now: Timestamp, note: &str) {
        let mut g = self.inner.lock().unwrap();
        if let Some(t) = g.traces.get_mut(&trace_id) {
            if let Some(i) = t.open.iter().position(|o| o.stage == stage) {
                let o = t.open.remove(i);
                t.spans.push(Span {
                    trace_id,
                    span_id: o.span_id,
                    stage: o.stage,
                    start: o.start,
                    end: now,
                    note: if note.is_empty() { o.note } else { note.to_string() },
                });
            }
        }
    }

    /// Whether a closed span exists for the stage.
    pub fn has_stage(&self, trace_id: u64, stage: &str) -> bool {
        self.inner
            .lock()
            .unwrap()
            .traces
            .get(&trace_id)
            .is_some_and(|t| t.spans.iter().any(|s| s.stage == stage))
    }

    /// All closed spans of a trace, ordered by start time (insertion order
    /// breaks ties, so the order is deterministic).
    pub fn spans(&self, trace_id: u64) -> Vec<Span> {
        let g = self.inner.lock().unwrap();
        let mut spans = g.traces.get(&trace_id).map(|t| t.spans.clone()).unwrap_or_default();
        spans.sort_by_key(|s| s.start);
        spans
    }

    /// Every trace id in the store, sorted.
    pub fn trace_ids(&self) -> Vec<u64> {
        self.inner.lock().unwrap().traces.keys().copied().collect()
    }

    /// End-to-end latency of a trace in nanoseconds: trace start to the
    /// latest span exit. `None` until at least one span has closed.
    pub fn latency_ns(&self, trace_id: u64) -> Option<i64> {
        let g = self.inner.lock().unwrap();
        let t = g.traces.get(&trace_id)?;
        let end = t.spans.iter().map(|s| s.end).max()?;
        Some(end - t.started)
    }

    /// Print a deterministic, human-readable timeline of one trace:
    /// per-stage enter/exit offsets from the trace start, notes, and the
    /// end-to-end latency.
    pub fn render_timeline(&self, trace_id: u64) -> String {
        let spans = self.spans(trace_id);
        let (description, context, started) = {
            let g = self.inner.lock().unwrap();
            match g.traces.get(&trace_id) {
                Some(t) => (t.description.clone(), t.context.clone(), t.started),
                None => return format!("trace {}: not found\n", format_trace_id(trace_id)),
            }
        };
        let mut out = String::new();
        out.push_str(&format!(
            "trace {}  {} ({})\n",
            format_trace_id(trace_id),
            description,
            context
        ));
        let stage_width = spans.iter().map(|s| s.stage.len()).max().unwrap_or(0).max(5);
        for s in &spans {
            let from = offset_secs(s.start, started);
            let to = offset_secs(s.end, started);
            out.push_str(&format!(
                "  {:<width$}  t+{:>9} .. t+{:>9}  {}\n",
                s.stage,
                from,
                to,
                s.note,
                width = stage_width
            ));
        }
        match self.latency_ns(trace_id) {
            Some(ns) => {
                out.push_str(&format!("  event -> incident latency: {}\n", format_secs(ns)))
            }
            None => out.push_str("  (no spans recorded)\n"),
        }
        out
    }
}

fn offset_secs(ts: Timestamp, origin: Timestamp) -> String {
    format_secs(ts - origin)
}

fn format_secs(ns: i64) -> String {
    let whole = ns / NANOS_PER_SEC;
    let millis = (ns % NANOS_PER_SEC).abs() / 1_000_000;
    format!("{whole}.{millis:03}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_deterministic_and_nonzero() {
        let a = TraceStore::new(42);
        let b = TraceStore::new(42);
        let ca = a.begin_trace("x1", "leak", 0);
        let cb = b.begin_trace("x1", "leak", 0);
        assert_eq!(ca, cb);
        assert_ne!(ca.trace_id, 0);
        let c2 = a.begin_trace("x2", "leak", 0);
        assert_ne!(ca.trace_id, c2.trace_id);
        // A different seed shifts every id.
        let c = TraceStore::new(43);
        assert_ne!(c.begin_trace("x1", "leak", 0).trace_id, ca.trace_id);
    }

    #[test]
    fn header_roundtrip() {
        let s = TraceStore::new(7);
        let ctx = s.begin_trace("x", "d", 0);
        let encoded = ctx.encode();
        assert_eq!(encoded.len(), 16);
        assert_eq!(parse_trace_id(&encoded), Some(ctx.trace_id));
        assert_eq!(parse_trace_id("nope"), None);
        assert_eq!(parse_trace_id("zzzzzzzzzzzzzzzz"), None);
    }

    #[test]
    fn lookup_by_context() {
        let s = TraceStore::new(1);
        let ctx = s.begin_trace("x3000c0s9b0", "leak", 10);
        assert_eq!(s.lookup("x3000c0s9b0"), Some(ctx.trace_id));
        assert_eq!(s.lookup("x9999"), None);
    }

    #[test]
    fn begin_end_span_keeps_earliest_start() {
        let s = TraceStore::new(1);
        let ctx = s.begin_trace("x", "d", 0);
        s.begin_span(ctx.trace_id, "deliver_slack", 100, "attempt");
        // A retry re-enters: the open span keeps its original start.
        s.begin_span(ctx.trace_id, "deliver_slack", 500, "retry");
        s.end_span(ctx.trace_id, "deliver_slack", 900, "delivered");
        let spans = s.spans(ctx.trace_id);
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].start, spans[0].end), (100, 900));
        assert_eq!(spans[0].note, "delivered");
        // Re-entering a closed stage does nothing.
        s.begin_span(ctx.trace_id, "deliver_slack", 1_000, "late");
        s.end_span(ctx.trace_id, "deliver_slack", 2_000, "late");
        assert_eq!(s.spans(ctx.trace_id).len(), 1);
    }

    #[test]
    fn span_once_dedupes_refiring_stages() {
        let s = TraceStore::new(1);
        let ctx = s.begin_trace("x", "d", 0);
        s.span_once(ctx.trace_id, "alert_rule", 0, 60, "fired");
        s.span_once(ctx.trace_id, "alert_rule", 0, 120, "fired again");
        let spans = s.spans(ctx.trace_id);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].end, 60);
    }

    #[test]
    fn timeline_renders_deterministically() {
        let render = || {
            let s = TraceStore::new(42);
            let ctx = s.begin_trace("x3000c0s9b0", "CrayTelemetry.Temperature", 0);
            s.span(ctx.trace_id, "collect", 0, 0, "published");
            s.span(ctx.trace_id, "kafka", 0, 60 * NANOS_PER_SEC, "offset 12");
            s.span(
                ctx.trace_id,
                "servicenow_incident",
                240 * NANOS_PER_SEC,
                240 * NANOS_PER_SEC,
                "INC0001",
            );
            s.render_timeline(ctx.trace_id)
        };
        let a = render();
        assert_eq!(a, render());
        assert!(a.contains("collect"), "{a}");
        assert!(a.contains("event -> incident latency: 240.000s"), "{a}");
        assert!(a.contains("t+   0.000s .. t+  60.000s"), "{a}");
    }

    #[test]
    fn unknown_trace_renders_placeholder() {
        let s = TraceStore::new(1);
        assert!(s.render_timeline(123).contains("not found"));
    }
}

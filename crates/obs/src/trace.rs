//! Deterministic end-to-end tracing for the pipeline.
//!
//! A hardware event picks up a [`TraceContext`] the moment the HMS
//! collector publishes it; the context travels as a Kafka-style message
//! header ([`TRACE_HEADER`]), a Loki entry label and an alert annotation,
//! and every stage it crosses records a [`Span`] with enter/exit times on
//! the virtual clock. Spans form a *tree*: each span carries the id of
//! its parent (the innermost span open when it started, or an explicit
//! parent for fan-out work like per-split query execution), and
//! [`TraceStore::render_timeline`] prints the whole journey — collector →
//! bus → bridge → Loki → ruler → alertmanager → delivery → ServiceNow —
//! with children indented under their parents, including the gaps that
//! chaos retries punched into it.
//!
//! Ids are derived from `fnv1a64(seed ‖ sequence)`, never from a wall
//! clock or global RNG, so the same seed produces byte-identical
//! timelines. The same determinism extends to **tail-based sampling**
//! ([`TailSampling`]): when a trace finishes, it is kept if it errored or
//! exceeded the latency threshold, and otherwise kept only if a
//! seed-derived hash of its trace id samples it in — so the store's
//! memory stays bounded under chaos drills while every interesting trace
//! survives, identically on every run.

use omni_model::{fnv1a64, Timestamp, NANOS_PER_SEC};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// The message-header key that carries the trace id across the bus.
pub const TRACE_HEADER: &str = "omni-trace-id";

/// The identity a traced event carries between stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Identifies the whole journey of one event.
    pub trace_id: u64,
    /// Identifies the span that produced this context (the parent of the
    /// next stage's span).
    pub span_id: u64,
}

impl TraceContext {
    /// Header encoding: 16 lowercase hex digits.
    pub fn encode(&self) -> String {
        format_trace_id(self.trace_id)
    }
}

/// Render a trace id the way headers and annotations carry it.
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parse a header/annotation value back into a trace id.
pub fn parse_trace_id(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// One stage's enter/exit record within a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Owning trace.
    pub trace_id: u64,
    /// Deterministic span id.
    pub span_id: u64,
    /// The span this one nests under; `None` for a root span.
    pub parent_span_id: Option<u64>,
    /// Stage name, e.g. `"kafka"` or `"deliver_slack"`.
    pub stage: String,
    /// Virtual time the stage was entered.
    pub start: Timestamp,
    /// Virtual time the stage was exited.
    pub end: Timestamp,
    /// Free-form detail (offsets, receivers, incident numbers).
    pub note: String,
}

/// Tail-based sampling policy: the keep/drop decision is made when a
/// trace *finishes*, with full knowledge of its outcome — the opposite of
/// head sampling, which throws interesting traces away before they have
/// become interesting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailSampling {
    /// Keep every finished trace whose end-to-end latency reaches this
    /// threshold.
    pub latency_threshold_ns: i64,
    /// Of the fast, error-free traces, keep one in this many (decided by
    /// a seed-derived hash of the trace id, so the same seed keeps the
    /// same traces). `0` or `1` keeps everything.
    pub keep_one_in: u64,
    /// Hard cap on retained traces; beyond it the oldest expendable
    /// trace is evicted (finished clean traces first, then finished
    /// errored ones, then still-open ones). Bounds store memory under
    /// chaos drills no matter what the workload does.
    pub max_retained: usize,
}

impl Default for TailSampling {
    /// Keep everything: the policy of a store built with
    /// [`TraceStore::new`], preserving full timelines for the shipped
    /// stack and its drills.
    fn default() -> Self {
        Self { latency_threshold_ns: 0, keep_one_in: 1, max_retained: usize::MAX }
    }
}

/// Counters describing what tail sampling did so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampleStats {
    /// Finished traces kept because they errored.
    pub kept_error: u64,
    /// Finished traces kept for exceeding the latency threshold.
    pub kept_slow: u64,
    /// Fast, clean traces kept by the hash sample.
    pub kept_sampled: u64,
    /// Finished traces dropped by the sampler.
    pub dropped: u64,
    /// Traces evicted by the [`TailSampling::max_retained`] cap.
    pub evicted: u64,
}

struct OpenSpan {
    stage: String,
    span_id: u64,
    parent_span_id: Option<u64>,
    start: Timestamp,
    note: String,
}

struct Trace {
    description: String,
    context: String,
    started: Timestamp,
    spans: Vec<Span>,
    open: Vec<OpenSpan>,
    error: bool,
    finished: bool,
}

struct Inner {
    seed: u64,
    next_id: u64,
    traces: BTreeMap<u64, Trace>,
    by_context: BTreeMap<String, u64>,
    /// Insertion order of live traces (trace ids), oldest first — the
    /// eviction queue for the retention cap.
    order: Vec<u64>,
    sampling: TailSampling,
    sample_stats: SampleStats,
}

impl Inner {
    fn derive_id(&mut self) -> u64 {
        let mut material = [0u8; 16];
        material[..8].copy_from_slice(&self.seed.to_le_bytes());
        material[8..].copy_from_slice(&self.next_id.to_le_bytes());
        self.next_id += 1;
        let h = fnv1a64(&material);
        if h == 0 {
            1
        } else {
            h
        }
    }

    /// Seed-derived coin flip for the sample-in decision: depends only on
    /// the store seed and the trace id, never on arrival order.
    fn sampled_in(&self, trace_id: u64) -> bool {
        if self.sampling.keep_one_in <= 1 {
            return true;
        }
        let mut material = [0u8; 16];
        material[..8].copy_from_slice(&self.seed.to_le_bytes());
        material[8..].copy_from_slice(&trace_id.to_le_bytes());
        fnv1a64(&material).is_multiple_of(self.sampling.keep_one_in)
    }

    fn remove_trace(&mut self, trace_id: u64) {
        if let Some(t) = self.traces.remove(&trace_id) {
            if self.by_context.get(&t.context) == Some(&trace_id) {
                self.by_context.remove(&t.context);
            }
        }
        self.order.retain(|&id| id != trace_id);
    }

    /// Evict the oldest expendable trace: finished clean traces first,
    /// then finished errored ones, then still-open ones — so the cap
    /// sacrifices the least interesting history first but *always* frees
    /// a slot.
    fn evict_one(&mut self) {
        let pick = |inner: &Inner, f: &dyn Fn(&Trace) -> bool| {
            inner.order.iter().copied().find(|id| inner.traces.get(id).is_some_and(f))
        };
        let victim = pick(self, &|t: &Trace| t.finished && !t.error)
            .or_else(|| pick(self, &|t: &Trace| t.finished))
            .or_else(|| self.order.first().copied());
        if let Some(id) = victim {
            self.remove_trace(id);
            self.sample_stats.evicted += 1;
        }
    }
}

/// Shared store of every trace and span in a run. Cheap to clone.
#[derive(Clone)]
pub struct TraceStore {
    inner: Arc<Mutex<Inner>>,
}

impl TraceStore {
    /// Create a store seeded for deterministic id derivation (pass the
    /// chaos/stack seed). Tail sampling defaults to keep-everything.
    pub fn new(seed: u64) -> Self {
        Self::with_sampling(seed, TailSampling::default())
    }

    /// A store with an explicit tail-sampling policy.
    pub fn with_sampling(seed: u64, sampling: TailSampling) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Inner {
                seed,
                next_id: 0,
                traces: BTreeMap::new(),
                by_context: BTreeMap::new(),
                order: Vec::new(),
                sampling,
                sample_stats: SampleStats::default(),
            })),
        }
    }

    /// Start a trace for an event. `context` is the correlation key the
    /// pipeline already carries end to end (the Redfish event's `Context`
    /// xname), `description` is free-form (e.g. the message id).
    pub fn begin_trace(&self, context: &str, description: &str, now: Timestamp) -> TraceContext {
        let mut g = self.lock();
        let trace_id = g.derive_id();
        let span_id = g.derive_id();
        while g.traces.len() >= g.sampling.max_retained.max(1) {
            g.evict_one();
        }
        g.traces.insert(
            trace_id,
            Trace {
                description: description.to_string(),
                context: context.to_string(),
                started: now,
                spans: Vec::new(),
                open: Vec::new(),
                error: false,
                finished: false,
            },
        );
        g.order.push(trace_id);
        g.by_context.insert(context.to_string(), trace_id);
        TraceContext { trace_id, span_id }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panicking holder leaves consistent state (plain maps/vecs).
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The most recent trace started for a correlation context, if any.
    pub fn lookup(&self, context: &str) -> Option<u64> {
        self.lock().by_context.get(context).copied()
    }

    /// Record a completed span (enter and exit already known), nested
    /// under the innermost currently-open span. Returns the span id so
    /// callers can hang explicit children off it.
    pub fn span(
        &self,
        trace_id: u64,
        stage: &str,
        start: Timestamp,
        end: Timestamp,
        note: &str,
    ) -> u64 {
        self.record_span(trace_id, None, stage, start, end, note)
    }

    /// Record a completed span as an explicit child of `parent_span_id`
    /// — for fan-out work (per-split query execution) whose parent is
    /// never "open" in the stack-of-stages sense. Returns the span id.
    pub fn span_child(
        &self,
        trace_id: u64,
        parent_span_id: u64,
        stage: &str,
        start: Timestamp,
        end: Timestamp,
        note: &str,
    ) -> u64 {
        self.record_span(trace_id, Some(parent_span_id), stage, start, end, note)
    }

    fn record_span(
        &self,
        trace_id: u64,
        parent: Option<u64>,
        stage: &str,
        start: Timestamp,
        end: Timestamp,
        note: &str,
    ) -> u64 {
        let mut g = self.lock();
        let span_id = g.derive_id();
        if let Some(t) = g.traces.get_mut(&trace_id) {
            let parent_span_id = parent.or_else(|| t.open.last().map(|o| o.span_id));
            t.spans.push(Span {
                trace_id,
                span_id,
                parent_span_id,
                stage: stage.to_string(),
                start,
                end,
                note: note.to_string(),
            });
        }
        span_id
    }

    /// Record a completed span only if the stage has not been recorded yet
    /// — for stages that re-fire every evaluation tick.
    pub fn span_once(
        &self,
        trace_id: u64,
        stage: &str,
        start: Timestamp,
        end: Timestamp,
        note: &str,
    ) {
        if !self.has_stage(trace_id, stage) {
            self.span(trace_id, stage, start, end, note);
        }
    }

    /// Enter a stage, nested under the innermost span already open (the
    /// top of the open stack). Idempotent while open: re-entering keeps
    /// the earliest start, which is exactly what makes retry gaps visible
    /// — the span stretches from first attempt to eventual success.
    pub fn begin_span(&self, trace_id: u64, stage: &str, now: Timestamp, note: &str) {
        let mut g = self.lock();
        let span_id = g.derive_id();
        if let Some(t) = g.traces.get_mut(&trace_id) {
            let already_open = t.open.iter().any(|o| o.stage == stage);
            let already_closed = t.spans.iter().any(|s| s.stage == stage);
            if !already_open && !already_closed {
                let parent_span_id = t.open.last().map(|o| o.span_id);
                t.open.push(OpenSpan {
                    stage: stage.to_string(),
                    span_id,
                    parent_span_id,
                    start: now,
                    note: note.to_string(),
                });
            }
        }
    }

    /// Exit a stage opened with [`Self::begin_span`]. Unmatched exits are
    /// ignored. An empty `note` keeps the note given at enter time.
    pub fn end_span(&self, trace_id: u64, stage: &str, now: Timestamp, note: &str) {
        let mut g = self.lock();
        if let Some(t) = g.traces.get_mut(&trace_id) {
            if let Some(i) = t.open.iter().position(|o| o.stage == stage) {
                let o = t.open.remove(i);
                t.spans.push(Span {
                    trace_id,
                    span_id: o.span_id,
                    parent_span_id: o.parent_span_id,
                    stage: o.stage,
                    start: o.start,
                    end: now,
                    note: if note.is_empty() { o.note } else { note.to_string() },
                });
            }
        }
    }

    /// Mark a trace as errored: it survives tail sampling unconditionally.
    pub fn mark_error(&self, trace_id: u64) {
        if let Some(t) = self.lock().traces.get_mut(&trace_id) {
            t.error = true;
        }
    }

    /// Finish a trace and apply the tail-sampling decision: keep it if it
    /// errored, if its end-to-end latency reached the threshold, or if
    /// the seed-derived hash samples it in; drop it (and its context
    /// mapping) otherwise. Returns whether the trace was retained.
    /// Finishing an unknown (or already dropped) trace returns `false`;
    /// finishing a retained trace again is a kept no-op.
    pub fn finish(&self, trace_id: u64) -> bool {
        let mut g = self.lock();
        let Some(t) = g.traces.get(&trace_id) else {
            return false;
        };
        if t.finished {
            return true;
        }
        let latency = t.spans.iter().map(|s| s.end).max().map(|end| end - t.started);
        // A threshold of 0 disables the slow-keep rule (everything would
        // trivially exceed it); `keep_one_in` alone decides then.
        let slow = g.sampling.latency_threshold_ns > 0
            && latency.is_some_and(|ns| ns >= g.sampling.latency_threshold_ns);
        if t.error {
            g.sample_stats.kept_error += 1;
        } else if slow {
            g.sample_stats.kept_slow += 1;
        } else if g.sampled_in(trace_id) {
            g.sample_stats.kept_sampled += 1;
        } else {
            g.sample_stats.dropped += 1;
            g.remove_trace(trace_id);
            return false;
        }
        if let Some(t) = g.traces.get_mut(&trace_id) {
            t.finished = true;
        }
        true
    }

    /// What tail sampling has kept, dropped and evicted so far.
    pub fn sample_stats(&self) -> SampleStats {
        self.lock().sample_stats
    }

    /// Number of traces currently retained.
    pub fn retained(&self) -> usize {
        self.lock().traces.len()
    }

    /// Whether a closed span exists for the stage.
    pub fn has_stage(&self, trace_id: u64, stage: &str) -> bool {
        self.lock().traces.get(&trace_id).is_some_and(|t| t.spans.iter().any(|s| s.stage == stage))
    }

    /// All closed spans of a trace, ordered by start time (insertion order
    /// breaks ties, so the order is deterministic).
    pub fn spans(&self, trace_id: u64) -> Vec<Span> {
        let g = self.lock();
        let mut spans = g.traces.get(&trace_id).map(|t| t.spans.clone()).unwrap_or_default();
        spans.sort_by_key(|s| s.start);
        spans
    }

    /// Every trace id in the store, sorted.
    pub fn trace_ids(&self) -> Vec<u64> {
        self.lock().traces.keys().copied().collect()
    }

    /// End-to-end latency of a trace in nanoseconds: trace start to the
    /// latest span exit. `None` until at least one span has closed.
    pub fn latency_ns(&self, trace_id: u64) -> Option<i64> {
        let g = self.lock();
        let t = g.traces.get(&trace_id)?;
        let end = t.spans.iter().map(|s| s.end).max()?;
        Some(end - t.started)
    }

    /// Print a deterministic, human-readable timeline of one trace as a
    /// span tree: children indented under their parents, per-stage
    /// enter/exit offsets from the trace start, notes, and the
    /// end-to-end latency.
    pub fn render_timeline(&self, trace_id: u64) -> String {
        let spans = self.spans(trace_id);
        let (description, context, started) = {
            let g = self.lock();
            match g.traces.get(&trace_id) {
                Some(t) => (t.description.clone(), t.context.clone(), t.started),
                None => return format!("trace {}: not found\n", format_trace_id(trace_id)),
            }
        };
        let mut out = String::new();
        out.push_str(&format!(
            "trace {}  {} ({})\n",
            format_trace_id(trace_id),
            description,
            context
        ));
        // Depth-first walk of the span tree; spans are already sorted by
        // start time, which the walk preserves among siblings. A span
        // whose parent never closed renders as a root.
        let closed: BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
        let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut roots: Vec<usize> = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            match s.parent_span_id {
                Some(p) if p != s.span_id && closed.contains(&p) => {
                    children.entry(p).or_default().push(i)
                }
                _ => roots.push(i),
            }
        }
        let mut ordered: Vec<(usize, usize)> = Vec::with_capacity(spans.len());
        let mut stack: Vec<(usize, usize)> = roots.into_iter().rev().map(|i| (i, 0)).collect();
        while let Some((i, depth)) = stack.pop() {
            ordered.push((i, depth));
            if let Some(kids) = children.get(&spans[i].span_id) {
                for &k in kids.iter().rev() {
                    stack.push((k, depth + 1));
                }
            }
        }
        let stage_width =
            ordered.iter().map(|&(i, d)| 2 * d + spans[i].stage.len()).max().unwrap_or(0).max(5);
        for &(i, depth) in &ordered {
            let s = &spans[i];
            let from = offset_secs(s.start, started);
            let to = offset_secs(s.end, started);
            let label = format!("{}{}", "  ".repeat(depth), s.stage);
            out.push_str(&format!(
                "  {label:<stage_width$}  t+{from:>9} .. t+{to:>9}  {}\n",
                s.note
            ));
        }
        match self.latency_ns(trace_id) {
            Some(ns) => {
                out.push_str(&format!("  event -> incident latency: {}\n", format_secs(ns)))
            }
            None => out.push_str("  (no spans recorded)\n"),
        }
        out
    }
}

fn offset_secs(ts: Timestamp, origin: Timestamp) -> String {
    format_secs(ts - origin)
}

fn format_secs(ns: i64) -> String {
    let whole = ns / NANOS_PER_SEC;
    let millis = (ns % NANOS_PER_SEC).abs() / 1_000_000;
    format!("{whole}.{millis:03}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_deterministic_and_nonzero() {
        let a = TraceStore::new(42);
        let b = TraceStore::new(42);
        let ca = a.begin_trace("x1", "leak", 0);
        let cb = b.begin_trace("x1", "leak", 0);
        assert_eq!(ca, cb);
        assert_ne!(ca.trace_id, 0);
        let c2 = a.begin_trace("x2", "leak", 0);
        assert_ne!(ca.trace_id, c2.trace_id);
        // A different seed shifts every id.
        let c = TraceStore::new(43);
        assert_ne!(c.begin_trace("x1", "leak", 0).trace_id, ca.trace_id);
    }

    #[test]
    fn header_roundtrip() {
        let s = TraceStore::new(7);
        let ctx = s.begin_trace("x", "d", 0);
        let encoded = ctx.encode();
        assert_eq!(encoded.len(), 16);
        assert_eq!(parse_trace_id(&encoded), Some(ctx.trace_id));
        assert_eq!(parse_trace_id("nope"), None);
        assert_eq!(parse_trace_id("zzzzzzzzzzzzzzzz"), None);
    }

    #[test]
    fn parse_trace_id_roundtrips_fuzzed_ids() {
        // Pseudo-random (but seeded) 64-bit ids, including the edges.
        let mut ids = vec![0, 1, u64::MAX, u64::MAX - 1, 0x8000_0000_0000_0000];
        let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
        for _ in 0..500 {
            // xorshift64*: deterministic, no global RNG.
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            ids.push(x.wrapping_mul(0x2545_f491_4f6c_dd1d));
        }
        for id in ids {
            let s = format_trace_id(id);
            assert_eq!(s.len(), 16);
            assert_eq!(parse_trace_id(&s), Some(id), "roundtrip failed for {id}");
            // Uppercase and padded variants are not the wire format.
            assert_eq!(parse_trace_id(&format!("{s} ")), None);
            assert_eq!(parse_trace_id(&s[..15]), None);
        }
    }

    #[test]
    fn lookup_by_context() {
        let s = TraceStore::new(1);
        let ctx = s.begin_trace("x3000c0s9b0", "leak", 10);
        assert_eq!(s.lookup("x3000c0s9b0"), Some(ctx.trace_id));
        assert_eq!(s.lookup("x9999"), None);
    }

    #[test]
    fn begin_end_span_keeps_earliest_start() {
        let s = TraceStore::new(1);
        let ctx = s.begin_trace("x", "d", 0);
        s.begin_span(ctx.trace_id, "deliver_slack", 100, "attempt");
        // A retry re-enters: the open span keeps its original start.
        s.begin_span(ctx.trace_id, "deliver_slack", 500, "retry");
        s.end_span(ctx.trace_id, "deliver_slack", 900, "delivered");
        let spans = s.spans(ctx.trace_id);
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].start, spans[0].end), (100, 900));
        assert_eq!(spans[0].note, "delivered");
        // Re-entering a closed stage does nothing.
        s.begin_span(ctx.trace_id, "deliver_slack", 1_000, "late");
        s.end_span(ctx.trace_id, "deliver_slack", 2_000, "late");
        assert_eq!(s.spans(ctx.trace_id).len(), 1);
    }

    #[test]
    fn span_once_dedupes_refiring_stages() {
        let s = TraceStore::new(1);
        let ctx = s.begin_trace("x", "d", 0);
        s.span_once(ctx.trace_id, "alert_rule", 0, 60, "fired");
        s.span_once(ctx.trace_id, "alert_rule", 0, 120, "fired again");
        let spans = s.spans(ctx.trace_id);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].end, 60);
    }

    #[test]
    fn nested_begin_spans_form_a_tree() {
        let s = TraceStore::new(3);
        let ctx = s.begin_trace("x", "query", 0);
        s.begin_span(ctx.trace_id, "query", 0, "root");
        s.begin_span(ctx.trace_id, "schedule", 10, "queued");
        s.end_span(ctx.trace_id, "schedule", 20, "granted");
        s.begin_span(ctx.trace_id, "execute", 20, "");
        s.end_span(ctx.trace_id, "execute", 90, "done");
        s.end_span(ctx.trace_id, "query", 100, "merged");
        let spans = s.spans(ctx.trace_id);
        assert_eq!(spans.len(), 3);
        let root = spans.iter().find(|s| s.stage == "query").unwrap();
        assert_eq!(root.parent_span_id, None);
        for child in ["schedule", "execute"] {
            let c = spans.iter().find(|s| s.stage == child).unwrap();
            assert_eq!(c.parent_span_id, Some(root.span_id), "{child} must nest under query");
        }
        // The rendered tree indents children under the root.
        let tl = s.render_timeline(ctx.trace_id);
        assert!(tl.contains("\n  query "), "{tl}");
        assert!(tl.contains("\n    schedule"), "{tl}");
        assert!(tl.contains("\n    execute"), "{tl}");
    }

    #[test]
    fn explicit_children_nest_under_given_parent() {
        let s = TraceStore::new(4);
        let ctx = s.begin_trace("q", "fanout", 0);
        let root = s.span(ctx.trace_id, "query", 0, 100, "");
        let a = s.span_child(ctx.trace_id, root, "split_0", 5, 40, "");
        s.span_child(ctx.trace_id, a, "queue_wait", 5, 12, "");
        s.span_child(ctx.trace_id, root, "split_1", 6, 60, "");
        let spans = s.spans(ctx.trace_id);
        assert_eq!(spans.len(), 4);
        let wait = spans.iter().find(|s| s.stage == "queue_wait").unwrap();
        assert_eq!(wait.parent_span_id, Some(a));
        let tl = s.render_timeline(ctx.trace_id);
        // Two levels of nesting under the root.
        assert!(tl.contains("\n    split_0"), "{tl}");
        assert!(tl.contains("\n      queue_wait"), "{tl}");
        assert!(tl.contains("\n    split_1"), "{tl}");
    }

    #[test]
    fn span_ordering_deterministic_under_interleaving() {
        let run = || {
            let s = TraceStore::new(11);
            let ctx = s.begin_trace("x", "d", 0);
            // Interleaved opens/closes, including same-start ties.
            s.begin_span(ctx.trace_id, "a", 0, "");
            s.begin_span(ctx.trace_id, "b", 0, "");
            s.span(ctx.trace_id, "c", 0, 5, "");
            s.end_span(ctx.trace_id, "b", 10, "");
            s.begin_span(ctx.trace_id, "d", 2, "");
            s.end_span(ctx.trace_id, "d", 3, "");
            s.end_span(ctx.trace_id, "a", 20, "");
            (
                s.spans(ctx.trace_id)
                    .iter()
                    .map(|sp| (sp.stage.clone(), sp.start, sp.end, sp.parent_span_id))
                    .collect::<Vec<_>>(),
                s.render_timeline(ctx.trace_id),
            )
        };
        let (spans_a, tl_a) = run();
        let (spans_b, tl_b) = run();
        assert_eq!(spans_a, spans_b);
        assert_eq!(tl_a, tl_b);
        // Sorted by start; same-start ties (c, b, a all at 0) keep the
        // order the spans *closed* in, which is insertion order.
        let order: Vec<&str> = spans_a.iter().map(|(st, ..)| st.as_str()).collect();
        assert_eq!(order, vec!["c", "b", "a", "d"]);
    }

    #[test]
    fn timeline_renders_deterministically() {
        let render = || {
            let s = TraceStore::new(42);
            let ctx = s.begin_trace("x3000c0s9b0", "CrayTelemetry.Temperature", 0);
            s.span(ctx.trace_id, "collect", 0, 0, "published");
            s.span(ctx.trace_id, "kafka", 0, 60 * NANOS_PER_SEC, "offset 12");
            s.span(
                ctx.trace_id,
                "servicenow_incident",
                240 * NANOS_PER_SEC,
                240 * NANOS_PER_SEC,
                "INC0001",
            );
            s.render_timeline(ctx.trace_id)
        };
        let a = render();
        assert_eq!(a, render());
        assert!(a.contains("collect"), "{a}");
        assert!(a.contains("event -> incident latency: 240.000s"), "{a}");
        assert!(a.contains("t+   0.000s .. t+  60.000s"), "{a}");
    }

    #[test]
    fn unknown_trace_renders_placeholder() {
        let s = TraceStore::new(1);
        assert!(s.render_timeline(123).contains("not found"));
    }

    #[test]
    fn empty_trace_renders_no_spans_footer() {
        let s = TraceStore::new(1);
        let ctx = s.begin_trace("x", "nothing happened", 5);
        let tl = s.render_timeline(ctx.trace_id);
        assert!(tl.contains("nothing happened"), "{tl}");
        assert!(tl.contains("(no spans recorded)"), "{tl}");
        // A trace with only *open* spans renders the same footer.
        s.begin_span(ctx.trace_id, "stuck", 6, "");
        assert!(s.render_timeline(ctx.trace_id).contains("(no spans recorded)"));
    }

    #[test]
    fn tail_sampling_keeps_slow_errored_and_sampled_traces() {
        let sampling = TailSampling {
            latency_threshold_ns: 100,
            keep_one_in: u64::MAX, // hash-sample keeps essentially nothing
            max_retained: usize::MAX,
        };
        let s = TraceStore::with_sampling(9, sampling);
        // Fast and clean: dropped.
        let fast = s.begin_trace("fast", "d", 0);
        s.span(fast.trace_id, "work", 0, 10, "");
        assert!(!s.finish(fast.trace_id));
        assert!(s.lookup("fast").is_none(), "dropped trace must unmap its context");
        // Slow: kept.
        let slow = s.begin_trace("slow", "d", 0);
        s.span(slow.trace_id, "work", 0, 500, "");
        assert!(s.finish(slow.trace_id));
        // Errored but fast: kept.
        let err = s.begin_trace("err", "d", 0);
        s.span(err.trace_id, "work", 0, 10, "");
        s.mark_error(err.trace_id);
        assert!(s.finish(err.trace_id));
        let st = s.sample_stats();
        assert_eq!((st.dropped, st.kept_slow, st.kept_error), (1, 1, 1));
        assert_eq!(s.trace_ids(), {
            let mut v = vec![slow.trace_id, err.trace_id];
            v.sort_unstable();
            v
        });
        // Finishing again is a kept no-op; finishing the dropped one is false.
        assert!(s.finish(slow.trace_id));
        assert!(!s.finish(fast.trace_id));
    }

    #[test]
    fn tail_sampling_is_deterministic_across_runs() {
        let run = || {
            let sampling =
                TailSampling { latency_threshold_ns: 1_000, keep_one_in: 4, max_retained: 1_000 };
            let s = TraceStore::with_sampling(42, sampling);
            let mut kept = Vec::new();
            for i in 0..64 {
                let ctx = s.begin_trace(&format!("c{i}"), "d", 0);
                s.span(ctx.trace_id, "work", 0, 10, "");
                if s.finish(ctx.trace_id) {
                    kept.push(ctx.trace_id);
                }
            }
            kept
        };
        let a = run();
        assert_eq!(a, run());
        // 1-in-4 hash sampling keeps *some* but not all of 64 clean traces.
        assert!(!a.is_empty() && a.len() < 64, "kept {}", a.len());
    }

    #[test]
    fn retention_cap_bounds_the_store() {
        let sampling = TailSampling { latency_threshold_ns: 0, keep_one_in: 1, max_retained: 8 };
        let s = TraceStore::with_sampling(5, sampling);
        let mut err_id = 0;
        for i in 0..50 {
            let ctx = s.begin_trace(&format!("c{i}"), "d", 0);
            s.span(ctx.trace_id, "work", 0, 10, "");
            if i == 20 {
                s.mark_error(ctx.trace_id);
                err_id = ctx.trace_id;
            }
            s.finish(ctx.trace_id);
            assert!(s.retained() <= 8, "cap breached at {i}: {}", s.retained());
        }
        assert!(s.sample_stats().evicted > 0);
        // Clean finished traces are evicted before the errored one.
        assert!(s.trace_ids().contains(&err_id), "errored trace must outlive clean ones");
    }
}

//! Service-level objectives for the pipeline itself, with multi-window
//! burn-rate evaluation — the meta-monitoring layer: "is the monitoring
//! stack meeting its own latency and delivery objectives?"
//!
//! The math is the standard SRE-workbook shape. An SLO promises a
//! fraction `objective` of events are *good* (fast enough, delivered).
//! The **error budget** is `1 - objective`. The **burn rate** over a
//! window is `bad_fraction / (1 - objective)`: burn 1.0 spends exactly
//! the budget over the SLO period, burn 14 exhausts a 30-day budget in
//! ~2 days. Alerting on a single window either pages too slowly (long
//! window) or too noisily (short window), so each SLO is evaluated over
//! **two** windows — a short `fast` window with a high burn threshold
//! (catches cliffs) and a long `slow` window with a low threshold
//! (catches smoulders) — and the shipped rules alert on each
//! independently.
//!
//! Everything runs on the virtual clock: [`SloTracker`] keeps a pruned
//! ring of `(timestamp, good, total)` events, and burn rates are exact
//! window sums, not decayed estimates, so the same seed produces the
//! same burn rates and the same meta-alerts.

use omni_model::Timestamp;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Window label for the short, high-threshold burn window.
pub const FAST_WINDOW: &str = "fast";
/// Window label for the long, low-threshold burn window.
pub const SLOW_WINDOW: &str = "slow";

/// The definition of one service-level objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Slo {
    /// Identifier, used as the `slo` label value (e.g. `"query_latency"`).
    pub name: String,
    /// Target good fraction in `(0, 1)`, e.g. `0.99`.
    pub objective: f64,
    /// The `fast` burn window in virtual nanoseconds.
    pub fast_window_ns: i64,
    /// The `slow` burn window in virtual nanoseconds.
    pub slow_window_ns: i64,
}

/// Point-in-time evaluation of one SLO, ready to export as gauges.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSnapshot {
    /// The SLO's name.
    pub name: String,
    /// The promised good fraction.
    pub objective: f64,
    /// Burn rate over the fast window.
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// Fraction of the slow-window error budget still unspent, clamped
    /// to `[0, 1]`.
    pub budget_remaining: f64,
    /// Events observed in the slow window.
    pub slow_total: u64,
}

/// Burn-rate bookkeeping for one SLO: a pruned ring of good/total
/// counts on the virtual clock.
#[derive(Debug)]
pub struct SloTracker {
    spec: Slo,
    /// `(ts, good, total)`, oldest first; pruned past the slow window.
    events: VecDeque<(Timestamp, u64, u64)>,
}

impl SloTracker {
    /// Start tracking an SLO. `objective` must sit strictly inside
    /// `(0, 1)` and the fast window must not exceed the slow one.
    pub fn new(spec: Slo) -> Self {
        assert!(spec.objective > 0.0 && spec.objective < 1.0, "SLO objective must be in (0, 1)");
        assert!(
            0 < spec.fast_window_ns && spec.fast_window_ns <= spec.slow_window_ns,
            "SLO windows must satisfy 0 < fast <= slow"
        );
        Self { spec, events: VecDeque::new() }
    }

    /// The definition this tracker evaluates.
    pub fn spec(&self) -> &Slo {
        &self.spec
    }

    /// Record one event.
    pub fn record(&mut self, now: Timestamp, good: bool) {
        self.record_many(now, u64::from(good), 1);
    }

    /// Record a batch of events sharing one timestamp.
    pub fn record_many(&mut self, now: Timestamp, good: u64, total: u64) {
        debug_assert!(good <= total);
        if total == 0 {
            return;
        }
        // Same-timestamp merge keeps the ring small under bursty steps.
        if let Some(last) = self.events.back_mut() {
            if last.0 == now {
                last.1 += good;
                last.2 += total;
                self.prune(now);
                return;
            }
        }
        self.events.push_back((now, good, total));
        self.prune(now);
    }

    fn prune(&mut self, now: Timestamp) {
        let horizon = now.saturating_sub(self.spec.slow_window_ns);
        while self.events.front().is_some_and(|&(ts, ..)| ts <= horizon) {
            self.events.pop_front();
        }
    }

    fn window_counts(&self, now: Timestamp, window_ns: i64) -> (u64, u64) {
        let horizon = now.saturating_sub(window_ns);
        let mut bad = 0;
        let mut total = 0;
        for &(ts, g, t) in self.events.iter().rev() {
            if ts <= horizon || ts > now {
                if ts <= horizon {
                    break;
                }
                continue;
            }
            bad += t - g;
            total += t;
        }
        (bad, total)
    }

    /// Burn rate over an arbitrary window ending at `now`: the bad
    /// fraction divided by the error budget. `0.0` when the window holds
    /// no events (no data is not a burn).
    pub fn burn_rate(&self, now: Timestamp, window_ns: i64) -> f64 {
        let (bad, total) = self.window_counts(now, window_ns);
        if total == 0 {
            return 0.0;
        }
        (bad as f64 / total as f64) / (1.0 - self.spec.objective)
    }

    /// Evaluate both windows and the remaining budget at `now`.
    pub fn snapshot(&self, now: Timestamp) -> SloSnapshot {
        let (bad, total) = self.window_counts(now, self.spec.slow_window_ns);
        let budget_remaining = if total == 0 {
            1.0
        } else {
            let allowed = total as f64 * (1.0 - self.spec.objective);
            ((allowed - bad as f64) / allowed).clamp(0.0, 1.0)
        };
        SloSnapshot {
            name: self.spec.name.clone(),
            objective: self.spec.objective,
            fast_burn: self.burn_rate(now, self.spec.fast_window_ns),
            slow_burn: self.burn_rate(now, self.spec.slow_window_ns),
            budget_remaining,
            slow_total: total,
        }
    }
}

/// A shared board of SLO trackers — the handle `core::stack` feeds from
/// the pipeline and snapshots into `omni_slo_*` gauges at gather time.
/// Cheap to clone; all clones share state.
#[derive(Clone, Default)]
pub struct SloBoard {
    inner: Arc<Mutex<Vec<SloTracker>>>,
}

impl SloBoard {
    /// An empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an SLO. Re-adding an existing name replaces its spec and
    /// resets its history.
    pub fn add(&self, spec: Slo) {
        let mut g = self.lock();
        if let Some(t) = g.iter_mut().find(|t| t.spec.name == spec.name) {
            *t = SloTracker::new(spec);
        } else {
            g.push(SloTracker::new(spec));
        }
    }

    /// Record one event against a named SLO; unknown names are ignored
    /// (the caller wired the board, a typo shows up in tests, not by
    /// poisoning production counters).
    pub fn record(&self, name: &str, now: Timestamp, good: bool) {
        if let Some(t) = self.lock().iter_mut().find(|t| t.spec.name == name) {
            t.record(now, good);
        }
    }

    /// Record a batch of same-timestamp events against a named SLO.
    pub fn record_many(&self, name: &str, now: Timestamp, good: u64, total: u64) {
        if let Some(t) = self.lock().iter_mut().find(|t| t.spec.name == name) {
            t.record_many(now, good, total);
        }
    }

    /// Evaluate every SLO at `now`, in registration order.
    pub fn snapshot(&self, now: Timestamp) -> Vec<SloSnapshot> {
        self.lock().iter().map(|t| t.snapshot(now)).collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<SloTracker>> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::NANOS_PER_SEC;

    const MIN: i64 = 60 * NANOS_PER_SEC;

    fn spec() -> Slo {
        Slo {
            name: "query_latency".into(),
            objective: 0.9, // budget = 10%
            fast_window_ns: 5 * MIN,
            slow_window_ns: 60 * MIN,
        }
    }

    #[test]
    fn burn_rate_is_bad_fraction_over_budget() {
        let mut t = SloTracker::new(spec());
        // 8 good + 2 bad in the window: bad fraction 0.2, budget 0.1 → burn 2.
        for i in 0..10 {
            t.record(i * MIN / 10, i >= 2);
        }
        let now = MIN;
        assert!((t.burn_rate(now, 5 * MIN) - 2.0).abs() < 1e-9);
        let snap = t.snapshot(now);
        assert!((snap.fast_burn - 2.0).abs() < 1e-9);
        assert!((snap.slow_burn - 2.0).abs() < 1e-9);
        // 2 bad of 1 allowed (10 * 0.1): budget fully spent.
        assert_eq!(snap.budget_remaining, 0.0);
        assert_eq!(snap.slow_total, 10);
    }

    #[test]
    fn windows_see_different_history() {
        let mut t = SloTracker::new(spec());
        // Old badness outside the fast window but inside the slow one.
        for i in 0..10 {
            t.record(i, false);
        }
        let now = 30 * MIN;
        for i in 0..10 {
            t.record(now - 10 + i, true);
        }
        // Fast window: only the recent good events → burn 0.
        assert_eq!(t.burn_rate(now, 5 * MIN), 0.0);
        // Slow window: 10 bad of 20 → bad fraction 0.5 → burn 5.
        assert!((t.burn_rate(now, 60 * MIN) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_does_not_burn() {
        let t = SloTracker::new(spec());
        assert_eq!(t.burn_rate(0, 5 * MIN), 0.0);
        let snap = t.snapshot(0);
        assert_eq!((snap.fast_burn, snap.slow_burn), (0.0, 0.0));
        assert_eq!(snap.budget_remaining, 1.0);
    }

    #[test]
    fn history_is_pruned_past_the_slow_window() {
        let mut t = SloTracker::new(spec());
        for i in 0..1000 {
            t.record(i * MIN, false);
        }
        // Only the slow window (60 min) of events can remain buffered.
        assert!(t.events.len() <= 61, "ring grew to {}", t.events.len());
        // All-bad slow window: burn = 1/0.1 = 10.
        let now = 999 * MIN;
        assert!((t.burn_rate(now, 60 * MIN) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn same_timestamp_records_merge() {
        let mut t = SloTracker::new(spec());
        for _ in 0..100 {
            t.record(5, true);
        }
        t.record_many(5, 0, 10);
        assert_eq!(t.events.len(), 1);
        let (bad, total) = t.window_counts(6, 5 * MIN);
        assert_eq!((bad, total), (10, 110));
    }

    #[test]
    fn board_routes_by_name_and_snapshots_in_order() {
        let board = SloBoard::new();
        board.add(spec());
        board.add(Slo { name: "delivery".into(), ..spec() });
        board.record("query_latency", 0, false);
        board.record("delivery", 0, true);
        board.record("nonexistent", 0, false); // ignored
        let snaps = board.snapshot(1);
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].name, "query_latency");
        assert!(snaps[0].fast_burn > 0.0);
        assert_eq!(snaps[1].name, "delivery");
        assert_eq!(snaps[1].fast_burn, 0.0);
        // Re-adding resets history.
        board.add(spec());
        assert_eq!(board.snapshot(1)[0].fast_burn, 0.0);
    }

    #[test]
    #[should_panic(expected = "objective")]
    fn rejects_objective_of_one() {
        let _ = SloTracker::new(Slo { objective: 1.0, ..spec() });
    }
}

//! Self-telemetry for the monitoring stack: the monitor monitoring itself.
//!
//! The paper's pipeline is a "single pane of glass" over Perlmutter — but
//! the pipeline itself was a black box. This crate closes that loop with
//! two pieces:
//!
//! * [`Registry`] — a metrics registry on the shared
//!   [`omni_model::SimClock`]: counters, gauges and fixed-bucket
//!   histograms keyed by name + [`omni_model::LabelSet`], plus
//!   gather-time *collectors* that absorb the
//!   pre-existing ad-hoc stats structs (`bus::TopicStats`, bridge
//!   resilience counters, delivery stats, …) behind one API. A
//!   [`Registry::gather`] snapshot is rendered in the Prometheus text
//!   exposition format by `omni-exporters` and self-scraped by the
//!   simulated vmagent into the TSDB every tick, so pipeline health is
//!   queryable through the pane like any other metric.
//! * [`TraceStore`] — end-to-end trace propagation: a [`TraceContext`]
//!   (trace id + span id, derived deterministically from the chaos seed,
//!   never from wall clock) rides each Redfish event through Kafka
//!   headers, the bridges, Loki entry labels and alert annotations.
//!   Every stage records an enter/exit span on the virtual clock, and
//!   [`TraceStore::render_timeline`] prints the life of any event from
//!   collector to ServiceNow incident.
//!
//! Determinism is the invariant everything here defends: ids come from
//! [`omni_model::fnv1a64`] over `(seed, sequence)`, timestamps from the
//! virtual clock, and iteration orders from sorted maps — the same seed
//! renders byte-identical timelines and exposition pages.

pub mod registry;
pub mod slo;
pub mod trace;

pub use registry::{
    Counter, Exemplar, FamilySnapshot, Gauge, Histogram, InstrumentKind, MetricSample, Registry,
    DEFAULT_LATENCY_BUCKETS, HISTOGRAM_SUFFIXES,
};
pub use slo::{Slo, SloBoard, SloSnapshot, SloTracker, FAST_WINDOW, SLOW_WINDOW};
pub use trace::{
    format_trace_id, parse_trace_id, SampleStats, Span, TailSampling, TraceContext, TraceStore,
    TRACE_HEADER,
};

#[cfg(test)]
mod integration_tests {
    use super::*;
    use omni_model::{labels, LabelSet, SimClock};

    #[test]
    fn registry_and_traces_compose() {
        let clock = SimClock::new();
        let reg = Registry::new(clock.clone());
        let c = reg.counter("omni_events_total", "Events seen.", labels!("stage" => "bus"));
        c.inc();
        let traces = TraceStore::new(7);
        let ctx = traces.begin_trace("x1000c3s0b0", "leak", reg.now());
        traces.span(ctx.trace_id, "collect", 0, 5, "published");
        assert_eq!(reg.gather().len(), 1);
        assert!(traces.render_timeline(ctx.trace_id).contains("collect"));
        let _ = LabelSet::new();
    }
}

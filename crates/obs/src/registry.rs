//! The self-telemetry metrics registry.
//!
//! Three instrument kinds, all deterministic and all cheap enough to sit
//! on hot paths:
//!
//! * [`Counter`] — monotonically increasing `u64` (atomic).
//! * [`Gauge`] — arbitrary `f64` (atomic bit-cast).
//! * [`Histogram`] — fixed cumulative buckets + sum + count, with
//!   precomputed `p50`/`p99` exported as plain gauges (`<name>_p50`,
//!   `<name>_p99`) because the TSDB's PromQL subset has no
//!   `histogram_quantile`.
//!
//! Instruments are identified by `(family name, LabelSet)`; asking for the
//! same pair twice returns a handle to the same underlying cell, so any
//! subsystem holding a `Registry` clone contributes to one shared view.
//!
//! Subsystems that already keep their own counters (the bus topic stats,
//! bridge resilience counters, delivery stats) are absorbed via
//! *collectors*: closures registered with [`Registry::register_collector`]
//! that materialise [`FamilySnapshot`]s at gather time. [`Registry::gather`]
//! merges direct instruments and collector output into one sorted,
//! deterministic snapshot.

use omni_model::{LabelSet, SimClock, Timestamp};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default latency buckets in seconds, tuned to the simulation's
/// minute-scale steps: from sub-second bridge hops up to ten minutes of
/// alert-grouping delay.
pub const DEFAULT_LATENCY_BUCKETS: &[f64] =
    &[0.5, 1.0, 2.5, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0];

/// Family-name suffixes a histogram expands to at gather time (see
/// [`Registry::gather`]). `omni-lint` uses this list to derive, from one
/// registered histogram name, every queryable family it produces — keep
/// it in sync with `expand_histogram`.
pub const HISTOGRAM_SUFFIXES: &[&str] = &["_bucket", "_sum", "_count", "_p50", "_p99"];

/// What kind of instrument a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrumentKind {
    /// Monotonically increasing value.
    Counter,
    /// Point-in-time value.
    Gauge,
}

/// One labelled value inside a [`FamilySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// The sample's labels (without `__name__`).
    pub labels: LabelSet,
    /// The value at gather time.
    pub value: f64,
}

/// An exemplar: the trace behind one observation, attached to the
/// histogram bucket the observation landed in — the link from "this
/// latency bucket is filling up" to "here is a sampled trace showing
/// why". Each bucket keeps its most recent exemplar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exemplar {
    /// Trace id of the observation (render with
    /// [`crate::format_trace_id`]).
    pub trace_id: u64,
    /// The observed value.
    pub value: f64,
}

/// A gathered metric family: every sample of one name, plus metadata.
///
/// Histograms are pre-expanded at gather time into `_bucket`/`_sum`/
/// `_count`/`_p50`/`_p99` families so a snapshot always renders directly
/// to the text exposition format.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// Family name (a valid Prometheus metric name).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Counter or gauge semantics.
    pub kind: InstrumentKind,
    /// All samples, sorted by label set.
    pub samples: Vec<MetricSample>,
    /// Exemplars keyed by the sample labels they annotate (histogram
    /// `_bucket` families only; empty elsewhere).
    pub exemplars: Vec<(LabelSet, Exemplar)>,
}

impl FamilySnapshot {
    /// Convenience constructor for collectors.
    pub fn new(name: &str, help: &str, kind: InstrumentKind) -> Self {
        Self {
            name: name.into(),
            help: help.into(),
            kind,
            samples: Vec::new(),
            exemplars: Vec::new(),
        }
    }

    /// Append a sample.
    pub fn push(&mut self, labels: LabelSet, value: f64) {
        self.samples.push(MetricSample { labels, value });
    }
}

/// A monotonically increasing counter handle.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable gauge handle (an `f64` stored as atomic bits).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct HistCore {
    /// Upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; the last slot is `+Inf`.
    counts: Vec<u64>,
    /// Per-bucket most recent exemplar (same indexing as `counts`).
    exemplars: Vec<Option<Exemplar>>,
    sum: f64,
    count: u64,
}

/// A fixed-bucket histogram handle.
#[derive(Clone)]
pub struct Histogram(Arc<Mutex<HistCore>>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let mut h = self.0.lock().unwrap();
        let i = h.bounds.iter().position(|&b| v <= b).unwrap_or(h.bounds.len());
        h.counts[i] += 1;
        h.sum += v;
        h.count += 1;
    }

    /// Record one observation and remember its trace id as the owning
    /// bucket's exemplar (last writer wins — a bucket always points at
    /// the most recent trace that landed in it).
    pub fn observe_with_exemplar(&self, v: f64, trace_id: u64) {
        let mut h = self.0.lock().unwrap();
        let i = h.bounds.iter().position(|&b| v <= b).unwrap_or(h.bounds.len());
        h.counts[i] += 1;
        h.exemplars[i] = Some(Exemplar { trace_id, value: v });
        h.sum += v;
        h.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.lock().unwrap().count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.0.lock().unwrap().sum
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) from the buckets, linearly
    /// interpolated inside the owning bucket — the same estimate
    /// `histogram_quantile` would produce. Returns 0.0 when empty;
    /// observations in the `+Inf` bucket clamp to the largest finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let h = self.0.lock().unwrap();
        if h.count == 0 {
            return 0.0;
        }
        let rank = q * h.count as f64;
        let mut seen = 0u64;
        for (i, &c) in h.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = seen + c;
            if (next as f64) >= rank {
                if i >= h.bounds.len() {
                    // +Inf bucket: clamp like histogram_quantile does.
                    return h.bounds.last().copied().unwrap_or(f64::INFINITY);
                }
                let lower = if i == 0 { 0.0 } else { h.bounds[i - 1] };
                let upper = h.bounds[i];
                let into = (rank - seen as f64) / c as f64;
                return lower + (upper - lower) * into.clamp(0.0, 1.0);
            }
            seen = next;
        }
        h.bounds.last().copied().unwrap_or(f64::INFINITY)
    }
}

enum Series {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Mutex<HistCore>>),
}

struct Family {
    help: String,
    series: BTreeMap<LabelSet, Series>,
}

type CollectorFn = Box<dyn Fn() -> Vec<FamilySnapshot> + Send + Sync>;

struct RegistryInner {
    clock: SimClock,
    families: Mutex<BTreeMap<String, Family>>,
    collectors: Mutex<Vec<CollectorFn>>,
}

/// The shared metrics registry. Cheap to clone; all clones view the same
/// instruments.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// Create a registry on the simulation clock.
    pub fn new(clock: SimClock) -> Self {
        Self {
            inner: Arc::new(RegistryInner {
                clock,
                families: Mutex::new(BTreeMap::new()),
                collectors: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The registry's clock.
    pub fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    /// Current virtual time.
    pub fn now(&self) -> Timestamp {
        self.inner.clock.now()
    }

    /// Get or create a counter. Panics if `name` already holds a different
    /// instrument kind — mixing kinds under one name is a programming error.
    pub fn counter(&self, name: &str, help: &str, labels: LabelSet) -> Counter {
        let mut families = self.inner.families.lock().unwrap();
        let fam = families
            .entry(name.to_string())
            .or_insert_with(|| Family { help: help.to_string(), series: BTreeMap::new() });
        let cell = fam
            .series
            .entry(labels)
            .or_insert_with(|| Series::Counter(Arc::new(AtomicU64::new(0))));
        match cell {
            Series::Counter(c) => Counter(c.clone()),
            _ => panic!("registry: {name} is not a counter"),
        }
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str, help: &str, labels: LabelSet) -> Gauge {
        let mut families = self.inner.families.lock().unwrap();
        let fam = families
            .entry(name.to_string())
            .or_insert_with(|| Family { help: help.to_string(), series: BTreeMap::new() });
        let cell = fam
            .series
            .entry(labels)
            .or_insert_with(|| Series::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))));
        match cell {
            Series::Gauge(g) => Gauge(g.clone()),
            _ => panic!("registry: {name} is not a gauge"),
        }
    }

    /// Get or create a histogram with the given finite bucket bounds
    /// (strictly increasing; `+Inf` is implicit).
    pub fn histogram(&self, name: &str, help: &str, labels: LabelSet, bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && !bounds.is_empty(),
            "histogram bounds must be non-empty and strictly increasing"
        );
        let mut families = self.inner.families.lock().unwrap();
        let fam = families
            .entry(name.to_string())
            .or_insert_with(|| Family { help: help.to_string(), series: BTreeMap::new() });
        let cell = fam.series.entry(labels).or_insert_with(|| {
            Series::Histogram(Arc::new(Mutex::new(HistCore {
                bounds: bounds.to_vec(),
                counts: vec![0; bounds.len() + 1],
                exemplars: vec![None; bounds.len() + 1],
                sum: 0.0,
                count: 0,
            })))
        });
        match cell {
            Series::Histogram(h) => Histogram(h.clone()),
            _ => panic!("registry: {name} is not a histogram"),
        }
    }

    /// Register a gather-time collector: a closure that snapshots some
    /// external stats source (e.g. `bus::TopicStats`) into families. This
    /// is how pre-existing ad-hoc counters are absorbed without rewriting
    /// their owners.
    pub fn register_collector(&self, f: impl Fn() -> Vec<FamilySnapshot> + Send + Sync + 'static) {
        self.inner.collectors.lock().unwrap().push(Box::new(f));
    }

    /// Snapshot every instrument and collector into a deterministic,
    /// name-sorted list of families (samples sorted by label set).
    /// Histograms expand to `_bucket` (cumulative, `le` labelled),
    /// `_sum`, `_count`, `_p50` and `_p99` families.
    pub fn gather(&self) -> Vec<FamilySnapshot> {
        let mut out: BTreeMap<String, FamilySnapshot> = BTreeMap::new();
        let mut add = |snap: FamilySnapshot| match out.entry(snap.name.clone()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(snap);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                e.get_mut().samples.extend(snap.samples);
            }
        };

        {
            let families = self.inner.families.lock().unwrap();
            for (name, fam) in families.iter() {
                for (labels, series) in fam.series.iter() {
                    match series {
                        Series::Counter(c) => {
                            let mut s =
                                FamilySnapshot::new(name, &fam.help, InstrumentKind::Counter);
                            s.push(labels.clone(), c.load(Ordering::Relaxed) as f64);
                            add(s);
                        }
                        Series::Gauge(g) => {
                            let mut s = FamilySnapshot::new(name, &fam.help, InstrumentKind::Gauge);
                            s.push(labels.clone(), f64::from_bits(g.load(Ordering::Relaxed)));
                            add(s);
                        }
                        Series::Histogram(h) => {
                            for snap in expand_histogram(name, &fam.help, labels, h) {
                                add(snap);
                            }
                        }
                    }
                }
            }
        }

        let collectors = self.inner.collectors.lock().unwrap();
        for c in collectors.iter() {
            for snap in c() {
                add(snap);
            }
        }

        let mut families: Vec<FamilySnapshot> = out.into_values().collect();
        for f in &mut families {
            f.samples.sort_by(|a, b| a.labels.cmp(&b.labels));
        }
        families
    }
}

fn expand_histogram(
    name: &str,
    help: &str,
    labels: &LabelSet,
    cell: &Arc<Mutex<HistCore>>,
) -> Vec<FamilySnapshot> {
    let handle = Histogram(cell.clone());
    let (p50, p99) = (handle.quantile(0.50), handle.quantile(0.99));
    let h = cell.lock().unwrap();
    let mut bucket = FamilySnapshot::new(&format!("{name}_bucket"), help, InstrumentKind::Counter);
    let mut cumulative = 0u64;
    for (i, &c) in h.counts.iter().enumerate() {
        cumulative += c;
        let le = if i < h.bounds.len() { format_bound(h.bounds[i]) } else { "+Inf".to_string() };
        let mut ls = labels.clone();
        ls.insert("le", le);
        if let Some(ex) = h.exemplars[i] {
            bucket.exemplars.push((ls.clone(), ex));
        }
        bucket.push(ls, cumulative as f64);
    }
    let mut snaps = vec![bucket];
    for (suffix, kind, value) in [
        ("_sum", InstrumentKind::Counter, h.sum),
        ("_count", InstrumentKind::Counter, h.count as f64),
        ("_p50", InstrumentKind::Gauge, p50),
        ("_p99", InstrumentKind::Gauge, p99),
    ] {
        let mut s = FamilySnapshot::new(&format!("{name}{suffix}"), help, kind);
        s.push(labels.clone(), value);
        snaps.push(s);
    }
    snaps
}

/// Render a bucket bound the way Prometheus does: integral bounds without
/// a trailing `.0` would be ambiguous, so keep one decimal form stable.
fn format_bound(b: f64) -> String {
    if b == b.trunc() {
        format!("{b:.1}")
    } else {
        format!("{b}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::labels;

    fn reg() -> Registry {
        Registry::new(SimClock::new())
    }

    #[test]
    fn counter_identity_is_name_plus_labels() {
        let r = reg();
        let a = r.counter("omni_x_total", "X.", labels!("t" => "a"));
        let a2 = r.counter("omni_x_total", "X.", labels!("t" => "a"));
        let b = r.counter("omni_x_total", "X.", labels!("t" => "b"));
        a.inc();
        a2.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 1);
        let g = r.gather();
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].samples.len(), 2);
        assert_eq!(g[0].samples[0].value, 3.0); // t="a" sorts first
    }

    #[test]
    fn gauge_holds_floats() {
        let r = reg();
        let g = r.gauge("omni_depth", "Depth.", LabelSet::new());
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set(0.0);
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    #[should_panic(expected = "is not a gauge")]
    fn kind_mismatch_panics() {
        let r = reg();
        let _ = r.counter("omni_x", "X.", LabelSet::new());
        let _ = r.gauge("omni_x", "X.", LabelSet::new());
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let r = reg();
        let h = r.histogram("omni_lat_seconds", "Lat.", LabelSet::new(), &[1.0, 10.0, 100.0]);
        for v in [0.5, 0.6, 5.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 56.1);
        // p50: rank 2.0 lands in the first bucket (2 obs ≤ 1.0).
        assert_eq!(h.quantile(0.5), 1.0);
        // p99 lands in the (10,100] bucket.
        assert!(h.quantile(0.99) > 10.0 && h.quantile(0.99) <= 100.0);

        let g = r.gather();
        let names: Vec<&str> = g.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "omni_lat_seconds_bucket",
                "omni_lat_seconds_count",
                "omni_lat_seconds_p50",
                "omni_lat_seconds_p99",
                "omni_lat_seconds_sum"
            ]
        );
        let bucket = &g[0];
        // Cumulative counts: ≤1 → 2, ≤10 → 3, ≤100 → 4, +Inf → 4.
        let values: Vec<f64> = bucket.samples.iter().map(|s| s.value).collect();
        let les: Vec<&str> = bucket.samples.iter().map(|s| s.labels.get("le").unwrap()).collect();
        assert!(les.contains(&"+Inf"));
        assert_eq!(values.iter().cloned().fold(0.0, f64::max), 4.0);
    }

    #[test]
    fn histogram_inf_bucket_clamps_quantile() {
        let r = reg();
        let h = r.histogram("omni_big", "Big.", LabelSet::new(), &[1.0]);
        h.observe(1e9);
        assert_eq!(h.quantile(0.99), 1.0); // clamped to largest finite bound
    }

    #[test]
    fn quantile_on_empty_histogram_is_zero() {
        let r = reg();
        let h = r.histogram("omni_empty", "E.", LabelSet::new(), &[1.0, 2.0]);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0.0, "q={q}");
        }
        // Gather still expands the empty histogram deterministically.
        let g = r.gather();
        let p99 = g.iter().find(|f| f.name == "omni_empty_p99").unwrap();
        assert_eq!(p99.samples[0].value, 0.0);
    }

    #[test]
    fn quantile_with_only_overflow_observations() {
        let r = reg();
        let h = r.histogram("omni_over", "O.", LabelSet::new(), &[1.0, 5.0]);
        // Every observation beyond the largest finite bound: all quantiles
        // clamp to that bound rather than reporting +Inf or garbage.
        for _ in 0..10 {
            h.observe(1e6);
        }
        assert_eq!(h.quantile(0.5), 5.0);
        assert_eq!(h.quantile(0.99), 5.0);
        assert_eq!(h.quantile(1.0), 5.0);
        assert_eq!(h.count(), 10);
    }

    #[test]
    fn exemplars_ride_their_buckets() {
        let r = reg();
        let h = r.histogram("omni_lat_seconds", "Lat.", LabelSet::new(), &[1.0, 10.0]);
        h.observe(0.2); // no exemplar
        h.observe_with_exemplar(0.5, 0xabc);
        h.observe_with_exemplar(0.7, 0xdef); // replaces 0xabc in the ≤1.0 bucket
        h.observe_with_exemplar(42.0, 0xbeef); // +Inf bucket
        let g = r.gather();
        let bucket = g.iter().find(|f| f.name == "omni_lat_seconds_bucket").unwrap();
        assert_eq!(bucket.exemplars.len(), 2);
        let by_le: Vec<(&str, u64, f64)> = bucket
            .exemplars
            .iter()
            .map(|(ls, ex)| (ls.get("le").unwrap(), ex.trace_id, ex.value))
            .collect();
        assert_eq!(by_le, vec![("1.0", 0xdef, 0.7), ("+Inf", 0xbeef, 42.0)]);
        // Non-bucket families carry no exemplars.
        for f in g.iter().filter(|f| f.name != "omni_lat_seconds_bucket") {
            assert!(f.exemplars.is_empty(), "{}", f.name);
        }
    }

    #[test]
    fn collectors_are_absorbed_and_merged() {
        let r = reg();
        let c = r.counter("omni_direct_total", "Direct.", LabelSet::new());
        c.inc();
        r.register_collector(|| {
            let mut f =
                FamilySnapshot::new("omni_absorbed_total", "Absorbed.", InstrumentKind::Counter);
            f.push(labels!("topic" => "t1"), 7.0);
            vec![f]
        });
        let g = r.gather();
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].name, "omni_absorbed_total");
        assert_eq!(g[0].samples[0].value, 7.0);
        assert_eq!(g[1].name, "omni_direct_total");
    }

    #[test]
    fn gather_is_deterministic() {
        let build = || {
            let r = reg();
            for t in ["b", "a", "c"] {
                r.counter("omni_m_total", "M.", labels!("t" => t)).add(t.len() as u64);
            }
            r.histogram("omni_h", "H.", LabelSet::new(), DEFAULT_LATENCY_BUCKETS).observe(3.0);
            format!("{:?}", r.gather())
        };
        assert_eq!(build(), build());
    }
}

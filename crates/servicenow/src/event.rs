//! SN Events and their deduplication into SN Alerts.

use omni_alertmanager::{Alert, AlertStatus};
use omni_model::{Severity, Timestamp};

/// One inbound event, the shape the ServiceNow event-management webhook
/// receives from monitoring tools.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnEvent {
    /// Originating system (`alertmanager`, `prometheus`, ...).
    pub source: String,
    /// The affected node / CI name (an xname for hardware).
    pub node: String,
    /// Metric/event type (`leak`, `switch_state`, ...).
    pub metric_type: String,
    /// Affected resource within the node.
    pub resource: String,
    /// ServiceNow severity code: 1 critical ... 5 info/OK (0 = clear).
    pub severity: u8,
    /// Deduplication key: events sharing it collapse into one SN Alert.
    pub message_key: String,
    /// Human-readable description.
    pub description: String,
}

impl SnEvent {
    /// Convert an Alertmanager alert into an SN Event (the paper's
    /// "alerts are transformed into SN Events").
    pub fn from_alertmanager(alert: &Alert) -> SnEvent {
        let severity = match alert.status {
            AlertStatus::Resolved => 0,
            AlertStatus::Firing => alert
                .labels
                .get("severity")
                .and_then(|s| s.parse::<Severity>().ok())
                .map(|s| s.servicenow_code())
                .unwrap_or(3),
        };
        let node = alert
            .labels
            .get("Context")
            .or_else(|| alert.labels.get("xname"))
            .or_else(|| alert.labels.get("instance"))
            .unwrap_or("")
            .to_string();
        let description = alert
            .annotations
            .iter()
            .find(|(k, _)| k == "summary")
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| alert.name().to_string());
        SnEvent {
            source: "alertmanager".into(),
            message_key: format!("{}:{}", alert.name(), node),
            node,
            metric_type: alert.name().to_string(),
            resource: alert.labels.get("category").unwrap_or("infrastructure").to_string(),
            severity,
            description,
        }
    }
}

/// SN Alert lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnAlertState {
    /// Active.
    Open,
    /// Closed by a clear event.
    Closed,
    /// Re-activated after closing.
    Reopen,
}

/// A deduplicated SN Alert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnAlert {
    /// `AlertNNNNNNN` number.
    pub number: String,
    /// Deduplication key.
    pub message_key: String,
    /// Worst severity seen (1 = critical).
    pub severity: u8,
    /// Lifecycle state.
    pub state: SnAlertState,
    /// Description from the first event.
    pub description: String,
    /// Affected node name.
    pub node: String,
    /// Resource/category (`facility`, `fabric`, `storage`, ...).
    pub resource: String,
    /// Bound CI sys_id, when the CMDB knows the node.
    pub ci: Option<String>,
    /// Number of deduplicated events.
    pub event_count: u64,
    /// First event time.
    pub first_event_at: Timestamp,
    /// Latest event time.
    pub last_event_at: Timestamp,
    /// Incident opened for this alert, if any.
    pub incident: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::labels;

    #[test]
    fn conversion_maps_severity_and_node() {
        let alert = Alert {
            labels: labels!(
                "alertname" => "PerlmutterSwitchOffline",
                "severity" => "critical",
                "xname" => "x1002c1r7b0"
            ),
            annotations: vec![("summary".into(), "Switch x1002c1r7b0 is UNKNOWN".into())],
            status: AlertStatus::Firing,
            starts_at: 0,
        };
        let ev = SnEvent::from_alertmanager(&alert);
        assert_eq!(ev.severity, 1);
        assert_eq!(ev.node, "x1002c1r7b0");
        assert_eq!(ev.message_key, "PerlmutterSwitchOffline:x1002c1r7b0");
        assert_eq!(ev.description, "Switch x1002c1r7b0 is UNKNOWN");
    }

    #[test]
    fn resolved_becomes_clear_event() {
        let alert = Alert {
            labels: labels!("alertname" => "X", "severity" => "critical"),
            annotations: vec![],
            status: AlertStatus::Resolved,
            starts_at: 0,
        };
        assert_eq!(SnEvent::from_alertmanager(&alert).severity, 0);
    }

    #[test]
    fn missing_severity_defaults_to_moderate() {
        let alert = Alert {
            labels: labels!("alertname" => "X"),
            annotations: vec![],
            status: AlertStatus::Firing,
            starts_at: 0,
        };
        assert_eq!(SnEvent::from_alertmanager(&alert).severity, 3);
    }
}

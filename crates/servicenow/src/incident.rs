//! Incidents: the tickets SN Alerts escalate into, with assignment groups
//! and priorities.

use crate::event::SnAlert;
use omni_model::Timestamp;

/// Incident lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentState {
    /// Opened, unassigned work.
    New,
    /// Being worked.
    InProgress,
    /// Fixed; awaiting closure.
    Resolved,
}

/// An incident ticket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incident {
    /// `INCNNNNNNN` number.
    pub number: String,
    /// Ticket title.
    pub short_description: String,
    /// Lifecycle state.
    pub state: IncidentState,
    /// Priority 1 (highest) .. 5.
    pub priority: u8,
    /// Owning team.
    pub assignment_group: String,
    /// Bound CI, if known.
    pub ci: Option<String>,
    /// The SN Alert that opened it.
    pub alert_number: String,
    /// Open time.
    pub opened_at: Timestamp,
    /// Resolution time.
    pub resolved_at: Option<Timestamp>,
}

/// A rule deciding which alerts open incidents, for whom.
#[derive(Debug, Clone)]
pub struct IncidentRule {
    /// Rule name.
    pub name: String,
    /// Open an incident when alert severity ≤ this (1 = critical only,
    /// 2 = critical+major, ...).
    pub max_severity: u8,
    /// Optional substring filter on the node name.
    pub node_contains: Option<String>,
    /// Optional exact filter on the alert's resource/category.
    pub resource: Option<String>,
    /// Team to assign.
    pub assignment_group: String,
}

impl IncidentRule {
    /// Whether an alert triggers this rule.
    pub fn matches(&self, alert: &SnAlert) -> bool {
        if alert.severity > self.max_severity {
            return false;
        }
        if let Some(fragment) = &self.node_contains {
            if !alert.node.contains(fragment.as_str()) {
                return false;
            }
        }
        if let Some(resource) = &self.resource {
            if &alert.resource != resource {
                return false;
            }
        }
        true
    }

    /// Incident priority for an alert severity (identity mapping capped
    /// to 1..=5).
    pub fn priority_for(&self, severity: u8) -> u8 {
        severity.clamp(1, 5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SnAlertState;

    fn alert(severity: u8, node: &str) -> SnAlert {
        SnAlert {
            number: "Alert0000001".into(),
            message_key: "k".into(),
            severity,
            state: SnAlertState::Open,
            description: "d".into(),
            node: node.into(),
            resource: "infrastructure".into(),
            ci: None,
            event_count: 1,
            first_event_at: 0,
            last_event_at: 0,
            incident: None,
        }
    }

    #[test]
    fn severity_threshold() {
        let rule = IncidentRule {
            name: "r".into(),
            max_severity: 2,
            node_contains: None,
            resource: None,
            assignment_group: "ops".into(),
        };
        assert!(rule.matches(&alert(1, "x1")));
        assert!(rule.matches(&alert(2, "x1")));
        assert!(!rule.matches(&alert(3, "x1")));
    }

    #[test]
    fn node_filter() {
        let rule = IncidentRule {
            name: "r".into(),
            max_severity: 3,
            node_contains: Some("c1r".into()),
            resource: None,
            assignment_group: "fabric".into(),
        };
        assert!(rule.matches(&alert(1, "x1002c1r7b0")));
        assert!(!rule.matches(&alert(1, "x1002c1b0")));
    }

    #[test]
    fn resource_filter() {
        let rule = IncidentRule {
            name: "storage".into(),
            max_severity: 3,
            node_contains: None,
            resource: Some("storage".into()),
            assignment_group: "storage-team".into(),
        };
        let mut a = alert(1, "nsd01");
        assert!(!rule.matches(&a));
        a.resource = "storage".into();
        assert!(rule.matches(&a));
    }

    #[test]
    fn priority_mapping() {
        let rule = IncidentRule {
            name: "r".into(),
            max_severity: 5,
            node_contains: None,
            resource: None,
            assignment_group: "ops".into(),
        };
        assert_eq!(rule.priority_for(0), 1);
        assert_eq!(rule.priority_for(3), 3);
        assert_eq!(rule.priority_for(9), 5);
    }
}

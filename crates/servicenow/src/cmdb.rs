//! The CMDB: "a configuration management database (CMDB), that maintains
//! accurate and up-to-date records of the IT assets of an organization".
//! "CMDB and CI still needed to be configured using Perlmutter assets
//! only" — [`Cmdb::load_topology`] does exactly that from an xname
//! topology.

use omni_xname::{MachineTopology, XName};
use std::collections::HashMap;

/// One configuration item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ci {
    /// Stable id (`cmdb_ci_...`).
    pub sys_id: String,
    /// Display name (the xname for hardware CIs).
    pub name: String,
    /// CI class (`cabinet`, `chassis`, `node`, `router_bmc`, ...).
    pub class: String,
    /// Parent CI sys_id (hardware hierarchy).
    pub parent: Option<String>,
}

/// The CMDB.
#[derive(Debug, Default)]
pub struct Cmdb {
    by_id: HashMap<String, Ci>,
    by_name: HashMap<String, String>, // name -> sys_id
    next: u64,
}

impl Cmdb {
    /// Empty CMDB.
    pub fn new() -> Self {
        Self::default()
    }

    fn sys_id(&mut self) -> String {
        self.next += 1;
        format!("cmdb_ci_{:08x}", self.next)
    }

    /// Insert a CI; returns its sys_id. Re-inserting a name updates it.
    pub fn upsert(&mut self, name: &str, class: &str, parent: Option<&str>) -> String {
        if let Some(id) = self.by_name.get(name).cloned() {
            let parent_id = parent.and_then(|p| self.by_name.get(p).cloned());
            if let Some(ci) = self.by_id.get_mut(&id) {
                ci.class = class.to_string();
                ci.parent = parent_id;
            }
            return id;
        }
        let id = self.sys_id();
        let parent_id = parent.and_then(|p| self.by_name.get(p).cloned());
        self.by_id.insert(
            id.clone(),
            Ci {
                sys_id: id.clone(),
                name: name.to_string(),
                class: class.to_string(),
                parent: parent_id,
            },
        );
        self.by_name.insert(name.to_string(), id.clone());
        id
    }

    /// Load every component of a machine topology as CIs, rooted at a
    /// cluster CI named `cluster`.
    pub fn load_topology(&mut self, cluster: &str, topo: &MachineTopology) {
        self.upsert(cluster, "cluster", None);
        let insert = |cmdb: &mut Cmdb, x: &XName| {
            let parent = x.parent().map(|p| p.to_string());
            let parent_name = parent.as_deref().unwrap_or(cluster);
            cmdb.upsert(&x.to_string(), x.kind().as_str(), Some(parent_name));
        };
        for x in topo.cabinets() {
            insert(self, x);
        }
        for x in topo.chassis() {
            insert(self, x);
        }
        for x in topo.chassis_bmcs() {
            insert(self, x);
        }
        for x in topo.node_bmcs() {
            // Blade slots are not modeled as CIs; attach node BMCs to
            // their chassis directly.
            let parent = x.parent().and_then(|p| p.parent()).map(|p| p.to_string());
            self.upsert(&x.to_string(), x.kind().as_str(), parent.as_deref());
        }
        for x in topo.nodes() {
            insert(self, x);
        }
        for x in topo.switches() {
            // Router slots aren't enumerated separately; attach switches
            // to their chassis.
            let parent = x.parent().and_then(|p| p.parent()).map(|p| p.to_string());
            self.upsert(&x.to_string(), x.kind().as_str(), parent.as_deref());
        }
        for x in topo.cdus() {
            self.upsert(&x.to_string(), x.kind().as_str(), Some(cluster));
        }
    }

    /// Find a CI by display name (xname).
    pub fn find_by_name(&self, name: &str) -> Option<&Ci> {
        self.by_name.get(name).and_then(|id| self.by_id.get(id))
    }

    /// Find a CI by sys_id.
    pub fn get(&self, sys_id: &str) -> Option<&Ci> {
        self.by_id.get(sys_id)
    }

    /// Number of CIs.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether the CMDB is empty.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Walk the parent chain of a CI (service-impact analysis direction).
    pub fn ancestors(&self, sys_id: &str) -> Vec<&Ci> {
        let mut out = Vec::new();
        let mut cur = self.get(sys_id).and_then(|ci| ci.parent.as_deref());
        while let Some(id) = cur {
            let Some(ci) = self.get(id) else { break };
            out.push(ci);
            cur = ci.parent.as_deref();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_xname::TopologySpec;

    #[test]
    fn load_topology_creates_all_cis() {
        let topo = MachineTopology::new(TopologySpec::tiny());
        let mut cmdb = Cmdb::new();
        cmdb.load_topology("perlmutter", &topo);
        assert_eq!(cmdb.len(), 1 + topo.component_count());
        let chassis_bmc = cmdb.find_by_name(&topo.chassis_bmcs()[0].to_string()).unwrap();
        assert_eq!(chassis_bmc.class, "chassis_bmc");
    }

    #[test]
    fn hierarchy_walks_to_cluster() {
        let topo = MachineTopology::new(TopologySpec::tiny());
        let mut cmdb = Cmdb::new();
        cmdb.load_topology("perlmutter", &topo);
        let node = cmdb.find_by_name(&topo.nodes()[0].to_string()).unwrap();
        let chain = cmdb.ancestors(&node.sys_id);
        // node -> node_bmc -> compute_slot? slots aren't CIs; chain:
        // node_bmc -> compute_slot missing -> chassis... verify it ends at
        // the cluster root.
        assert!(!chain.is_empty());
        assert_eq!(chain.last().unwrap().name, "perlmutter");
    }

    #[test]
    fn upsert_is_idempotent_by_name() {
        let mut cmdb = Cmdb::new();
        let a = cmdb.upsert("x1000", "cabinet", None);
        let b = cmdb.upsert("x1000", "cabinet", None);
        assert_eq!(a, b);
        assert_eq!(cmdb.len(), 1);
    }

    #[test]
    fn switch_parent_is_chassis() {
        let topo = MachineTopology::new(TopologySpec::tiny());
        let mut cmdb = Cmdb::new();
        cmdb.load_topology("perlmutter", &topo);
        let sw = cmdb.find_by_name(&topo.switches()[0].to_string()).unwrap();
        let parent = cmdb.get(sw.parent.as_deref().unwrap()).unwrap();
        assert_eq!(parent.class, "chassis");
    }
}

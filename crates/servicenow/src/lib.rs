//! A ServiceNow event-management substitute.
//!
//! "Alerts are transformed into ServiceNow (SN) 'Events', which are
//! correlated and grouped into SN 'Alerts', which then trigger automated
//! response actions (incidents, notifications, etc.)" (§IV). NERSC "only
//! use their incident management module, and event management module",
//! which is exactly the slice implemented here:
//!
//! * [`cmdb`] — the configuration management database, its CIs generated
//!   from Perlmutter assets;
//! * [`event`] — Events deduplicated by `message_key` into SN Alerts;
//! * [`incident`] — alert-rule driven Incident creation, assignment
//!   groups, resolution and MTTR accounting.

pub mod cmdb;
pub mod event;
pub mod incident;

pub use cmdb::{Ci, Cmdb};
pub use event::{SnAlert, SnAlertState, SnEvent};
pub use incident::{Incident, IncidentRule, IncidentState};

use omni_alertmanager::Notification;
use omni_model::Timestamp;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// The ServiceNow instance.
#[derive(Clone)]
pub struct ServiceNow {
    inner: Arc<Mutex<Inner>>,
}

struct Inner {
    cmdb: Cmdb,
    alerts: HashMap<String, SnAlert>, // message_key -> alert
    incidents: Vec<Incident>,
    rules: Vec<IncidentRule>,
    events_received: u64,
    next_alert: u64,
    next_incident: u64,
}

impl Default for ServiceNow {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceNow {
    /// An empty instance.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Mutex::new(Inner {
                cmdb: Cmdb::new(),
                alerts: HashMap::new(),
                incidents: Vec::new(),
                rules: Vec::new(),
                events_received: 0,
                next_alert: 1,
                next_incident: 1,
            })),
        }
    }

    /// Access the CMDB (loads, lookups).
    pub fn with_cmdb<R>(&self, f: impl FnOnce(&mut Cmdb) -> R) -> R {
        f(&mut self.inner.lock().cmdb)
    }

    /// Register an incident rule.
    pub fn add_incident_rule(&self, rule: IncidentRule) {
        self.inner.lock().rules.push(rule);
    }

    /// Ingest one event: dedup into an SN Alert, bind its CI, and apply
    /// incident rules. Returns the alert number.
    pub fn process_event(&self, event: SnEvent, now: Timestamp) -> String {
        let mut inner = self.inner.lock();
        inner.events_received += 1;
        let key = event.message_key.clone();
        let is_clear = event.severity == 0 || event.severity == 5;
        if !inner.alerts.contains_key(&key) {
            let number = format!("Alert{:07}", inner.next_alert);
            inner.next_alert += 1;
            let ci_bound = inner.cmdb.find_by_name(&event.node).map(|ci| ci.sys_id.clone());
            inner.alerts.insert(
                key.clone(),
                SnAlert {
                    number,
                    message_key: key.clone(),
                    severity: event.severity,
                    state: SnAlertState::Open,
                    description: event.description.clone(),
                    node: event.node.clone(),
                    resource: event.resource.clone(),
                    ci: ci_bound,
                    event_count: 0,
                    first_event_at: now,
                    last_event_at: now,
                    incident: None,
                },
            );
        }
        let alert = inner.alerts.get_mut(&key).unwrap();
        alert.event_count += 1;
        alert.last_event_at = now;
        alert.severity = alert.severity.min(event.severity.max(1));
        let mut incident_to_close = None;
        if is_clear {
            alert.state = SnAlertState::Closed;
            // Clearing the alert auto-resolves its incident (the paper's
            // "automated response actions"); MTTR accrues from this.
            incident_to_close = alert.incident.clone();
        } else if alert.state == SnAlertState::Closed {
            alert.state = SnAlertState::Reopen;
            alert.incident = None; // a re-occurrence opens a fresh ticket
        }
        let number = alert.number.clone();
        let alert_snapshot = alert.clone();
        if let Some(inc_number) = incident_to_close {
            for inc in inner.incidents.iter_mut() {
                if inc.number == inc_number && inc.state != IncidentState::Resolved {
                    inc.state = IncidentState::Resolved;
                    inc.resolved_at = Some(now);
                }
            }
        }
        // Incident rules.
        if alert_snapshot.state != SnAlertState::Closed && alert_snapshot.incident.is_none() {
            let matched = inner.rules.iter().find(|r| r.matches(&alert_snapshot)).cloned();
            if let Some(rule) = matched {
                let inc_number = format!("INC{:07}", inner.next_incident);
                inner.next_incident += 1;
                let incident = Incident {
                    number: inc_number.clone(),
                    short_description: alert_snapshot.description.clone(),
                    state: IncidentState::New,
                    priority: rule.priority_for(alert_snapshot.severity),
                    assignment_group: rule.assignment_group.clone(),
                    ci: alert_snapshot.ci.clone(),
                    alert_number: number.clone(),
                    opened_at: now,
                    resolved_at: None,
                };
                inner.incidents.push(incident);
                inner.alerts.get_mut(&key).unwrap().incident = Some(inc_number);
            }
        }
        number
    }

    /// Convert and ingest an Alertmanager notification: one SN Event per
    /// contained alert (the paper's "alerts are transformed into SN
    /// Events").
    pub fn receive_notification(&self, notification: &Notification, now: Timestamp) -> Vec<String> {
        notification
            .alerts
            .iter()
            .map(|a| self.process_event(SnEvent::from_alertmanager(a), now))
            .collect()
    }

    /// Resolve an incident (operator action or automated remediation).
    pub fn resolve_incident(&self, number: &str, now: Timestamp) -> bool {
        let mut inner = self.inner.lock();
        for inc in inner.incidents.iter_mut() {
            if inc.number == number && inc.state != IncidentState::Resolved {
                inc.state = IncidentState::Resolved;
                inc.resolved_at = Some(now);
                return true;
            }
        }
        false
    }

    /// All incidents (snapshot).
    pub fn incidents(&self) -> Vec<Incident> {
        self.inner.lock().incidents.clone()
    }

    /// All alerts (snapshot), sorted by number.
    pub fn alerts(&self) -> Vec<SnAlert> {
        let mut v: Vec<SnAlert> = self.inner.lock().alerts.values().cloned().collect();
        v.sort_by(|a, b| a.number.cmp(&b.number));
        v
    }

    /// Events received so far.
    pub fn events_received(&self) -> u64 {
        self.inner.lock().events_received
    }

    /// Mean time to resolution over resolved incidents, in nanoseconds.
    /// The paper: ServiceNow "employing machine learning to reduce the
    /// Mean Time to Resolution (MTTR)" — here it is measured, not
    /// predicted.
    pub fn mttr_ns(&self) -> Option<i64> {
        let inner = self.inner.lock();
        let durations: Vec<i64> =
            inner.incidents.iter().filter_map(|i| i.resolved_at.map(|r| r - i.opened_at)).collect();
        if durations.is_empty() {
            None
        } else {
            Some(durations.iter().sum::<i64>() / durations.len() as i64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::{labels, NANOS_PER_SEC};
    use omni_xname::{MachineTopology, TopologySpec};

    fn sn_with_rule() -> ServiceNow {
        let sn = ServiceNow::new();
        sn.add_incident_rule(IncidentRule {
            name: "critical-to-ops".into(),
            max_severity: 2,
            node_contains: None,
            resource: None,
            assignment_group: "nersc-ops".into(),
        });
        sn
    }

    fn critical_event(key: &str, node: &str) -> SnEvent {
        SnEvent {
            source: "alertmanager".into(),
            node: node.into(),
            metric_type: "leak".into(),
            resource: "chassis".into(),
            severity: 1,
            message_key: key.into(),
            description: "Cabinet leak detected".into(),
        }
    }

    #[test]
    fn events_dedupe_into_one_alert() {
        let sn = sn_with_rule();
        for i in 0..5 {
            sn.process_event(critical_event("leak:x1203c1", "x1203c1b0"), i * NANOS_PER_SEC);
        }
        let alerts = sn.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].event_count, 5);
        assert_eq!(sn.events_received(), 5);
    }

    #[test]
    fn critical_alert_opens_incident_once() {
        let sn = sn_with_rule();
        sn.process_event(critical_event("leak:x1203c1", "x1203c1b0"), 0);
        sn.process_event(critical_event("leak:x1203c1", "x1203c1b0"), 1);
        let incidents = sn.incidents();
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].assignment_group, "nersc-ops");
        assert_eq!(incidents[0].priority, 1);
        assert_eq!(incidents[0].state, IncidentState::New);
    }

    #[test]
    fn low_severity_does_not_open_incident() {
        let sn = sn_with_rule();
        let mut ev = critical_event("warn:x1", "x1");
        ev.severity = 3;
        sn.process_event(ev, 0);
        assert!(sn.incidents().is_empty());
        assert_eq!(sn.alerts().len(), 1);
    }

    #[test]
    fn clear_event_closes_alert_and_reopen_works() {
        let sn = sn_with_rule();
        sn.process_event(critical_event("leak:x1", "x1"), 0);
        let mut clear = critical_event("leak:x1", "x1");
        clear.severity = 5;
        sn.process_event(clear, 10);
        assert_eq!(sn.alerts()[0].state, SnAlertState::Closed);
        sn.process_event(critical_event("leak:x1", "x1"), 20);
        assert_eq!(sn.alerts()[0].state, SnAlertState::Reopen);
    }

    #[test]
    fn mttr_accounting() {
        let sn = sn_with_rule();
        sn.process_event(critical_event("a", "x1"), 0);
        sn.process_event(critical_event("b", "x2"), 0);
        let incs = sn.incidents();
        assert_eq!(incs.len(), 2);
        assert!(sn.mttr_ns().is_none());
        sn.resolve_incident(&incs[0].number, 100 * NANOS_PER_SEC);
        sn.resolve_incident(&incs[1].number, 300 * NANOS_PER_SEC);
        assert_eq!(sn.mttr_ns(), Some(200 * NANOS_PER_SEC));
        // Double-resolve is a no-op.
        assert!(!sn.resolve_incident(&incs[0].number, 500 * NANOS_PER_SEC));
    }

    #[test]
    fn ci_binding_from_cmdb() {
        let sn = sn_with_rule();
        let topo = MachineTopology::new(TopologySpec::tiny());
        sn.with_cmdb(|cmdb| cmdb.load_topology("perlmutter", &topo));
        let node = topo.chassis_bmcs()[0].to_string();
        sn.process_event(critical_event("leak:a", &node), 0);
        let alert = &sn.alerts()[0];
        assert!(alert.ci.is_some());
        let incident = &sn.incidents()[0];
        assert_eq!(incident.ci, alert.ci);
    }

    #[test]
    fn clear_event_auto_resolves_incident() {
        let sn = sn_with_rule();
        sn.process_event(critical_event("leak:x1", "x1"), 0);
        let incidents = sn.incidents();
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].state, IncidentState::New);
        let mut clear = critical_event("leak:x1", "x1");
        clear.severity = 0;
        sn.process_event(clear, 300 * NANOS_PER_SEC);
        let incidents = sn.incidents();
        assert_eq!(incidents[0].state, IncidentState::Resolved);
        assert_eq!(sn.mttr_ns(), Some(300 * NANOS_PER_SEC));
        // Reoccurrence opens a new incident instead of reviving the old.
        sn.process_event(critical_event("leak:x1", "x1"), 400 * NANOS_PER_SEC);
        assert_eq!(sn.incidents().len(), 2);
    }

    #[test]
    fn notification_conversion() {
        use omni_alertmanager::{Alert, AlertStatus, Notification};
        let sn = sn_with_rule();
        let notification = Notification {
            receiver: "servicenow".into(),
            group_labels: labels!("alertname" => "Leak"),
            alerts: vec![Alert {
                labels: labels!(
                    "alertname" => "Leak",
                    "severity" => "critical",
                    "Context" => "x1203c1b0"
                ),
                annotations: vec![("summary".into(), "leak at x1203c1b0".into())],
                status: AlertStatus::Firing,
                starts_at: 0,
            }],
        };
        let numbers = sn.receive_notification(&notification, NANOS_PER_SEC);
        assert_eq!(numbers.len(), 1);
        assert_eq!(sn.incidents().len(), 1);
        assert_eq!(sn.incidents()[0].short_description, "leak at x1203c1b0");
    }
}

//! Layer 1: static analysis of the stack's wired configuration — rules,
//! queries, routing, buckets — against the emittable catalog.

use crate::catalog::Catalog;
use crate::Finding;
use omni_alertmanager::{Route, RouteIssueKind};
use omni_logql::{
    ast::{CmpOp, Expr, GroupKind, Grouping, LogQuery, MetricQuery, RangeAggOp, Stage},
    MatchOp, Matcher, Selector,
};
use omni_tsdb::promql::parse_promql;
use omni_tsdb::PromExpr;
use omni_xname::XName;
use std::collections::BTreeSet;

/// Which parser a query goes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryLang {
    /// LogQL (log or metric form) — Grafana log panels, Loki ruler rules.
    LogQl,
    /// The PromQL subset — vmalert rules, Grafana metric panels.
    PromQl,
}

/// A non-alerting query the stack wires (dashboard panes).
#[derive(Debug, Clone)]
pub struct NamedQuery {
    /// Where it came from, e.g. `dashboard:leak-detection/Leak events`.
    pub source: String,
    /// Parser to use.
    pub lang: QueryLang,
    /// The query text.
    pub query: String,
}

/// An alerting rule the stack wires.
#[derive(Debug, Clone)]
pub struct RuleSpec {
    /// Where it came from, e.g. `vmalert:NodeTemperatureCritical`.
    pub source: String,
    /// Parser to use.
    pub lang: QueryLang,
    /// The rule expression.
    pub expr: String,
    /// The `for:` hold duration.
    pub for_ns: i64,
}

/// Everything layer 1 validates in one pass.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// What the pipeline can emit.
    pub catalog: Catalog,
    /// Evaluation cadence rules are checked against: a `for:` hold
    /// shorter than this can never accumulate a second observation.
    pub scrape_interval_ns: i64,
    /// Dashboard / pane queries.
    pub queries: Vec<NamedQuery>,
    /// Alerting rules (vmalert and Loki ruler).
    pub rules: Vec<RuleSpec>,
    /// The Alertmanager routing tree.
    pub route: Option<Route>,
    /// Receivers with configured sinks.
    pub receivers: Vec<String>,
    /// Histogram bucket layouts, `(source, bounds)`.
    pub buckets: Vec<(String, Vec<f64>)>,
}

impl LintConfig {
    /// An empty config over a catalog; callers push what they wire.
    pub fn new(catalog: Catalog) -> Self {
        Self {
            catalog,
            scrape_interval_ns: 60 * omni_model::NANOS_PER_SEC,
            queries: Vec::new(),
            rules: Vec::new(),
            route: None,
            receivers: Vec::new(),
            buckets: Vec::new(),
        }
    }
}

/// Labels whose equality-matched values must be well-formed xnames.
const XNAME_LABELS: &[&str] = &["xname", "Context"];

/// Run every layer-1 check. Returns normalized (sorted, deduplicated)
/// findings; empty means the configuration is statically sound.
pub fn analyze(config: &LintConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    for q in &config.queries {
        check_query(config, &q.source, q.lang, &q.query, &mut out);
    }
    for r in &config.rules {
        check_query(config, &r.source, r.lang, &r.expr, &mut out);
        if r.for_ns > 0 && r.for_ns < config.scrape_interval_ns {
            out.push(Finding::config(
                &r.source,
                "for-shorter-than-interval",
                format!(
                    "for: hold of {}s is shorter than the {}s evaluation interval; \
                     the hold can never observe a second evaluation",
                    r.for_ns / omni_model::NANOS_PER_SEC,
                    config.scrape_interval_ns / omni_model::NANOS_PER_SEC
                ),
            ));
        }
    }
    if let Some(route) = &config.route {
        let defined: Vec<&str> = config.receivers.iter().map(String::as_str).collect();
        for issue in route.validate(&defined) {
            let rule = match issue.kind {
                RouteIssueKind::UndefinedReceiver => "undefined-receiver",
                RouteIssueKind::ShadowedRoute => "unreachable-route",
            };
            out.push(Finding::config(&format!("route:{}", issue.path), rule, issue.detail));
        }
        check_route_matchers(route, "root", &mut out);
    }
    for (source, bounds) in &config.buckets {
        check_buckets(source, bounds, &mut out);
    }
    crate::normalize(out)
}

/// Histogram bounds must be finite and strictly increasing — a swapped
/// pair silently merges two buckets and skews every quantile estimate.
fn check_buckets(source: &str, bounds: &[f64], out: &mut Vec<Finding>) {
    for w in bounds.windows(2) {
        // partial_cmp: a NaN bound is both non-increasing and non-finite.
        if w[0].partial_cmp(&w[1]) != Some(std::cmp::Ordering::Less) {
            out.push(Finding::config(
                source,
                "bucket-order",
                format!("bucket bounds not strictly increasing: {} then {}", w[0], w[1]),
            ));
        }
    }
    for b in bounds {
        if !b.is_finite() {
            out.push(Finding::config(
                source,
                "bucket-order",
                format!("non-finite bucket bound {b}"),
            ));
        }
    }
}

fn check_query(
    config: &LintConfig,
    source: &str,
    lang: QueryLang,
    text: &str,
    out: &mut Vec<Finding>,
) {
    match lang {
        QueryLang::LogQl => match omni_logql::parse_expr(text) {
            Ok(expr) => check_logql(config, source, &expr, out),
            Err(e) => out.push(Finding::config(source, "parse-logql", e.to_string())),
        },
        QueryLang::PromQl => match parse_promql(text) {
            Ok(expr) => check_promql(config, source, &expr, out),
            Err(e) => out.push(Finding::config(source, "parse-promql", e.to_string())),
        },
    }
}

// ---------------------------------------------------------------- LogQL

fn check_logql(config: &LintConfig, source: &str, expr: &Expr, out: &mut Vec<Finding>) {
    match expr {
        Expr::Log(q) => {
            check_log_query(config, source, q, out);
        }
        Expr::Metric(m) => check_logql_metric(config, source, m, out),
    }
}

fn check_logql_metric(config: &LintConfig, source: &str, m: &MetricQuery, out: &mut Vec<Finding>) {
    let labels = check_log_query(config, source, m.log_query(), out);
    check_logql_metric_inner(source, m, &labels, out);
    check_logql_vacuous(source, m, out);
}

/// Known labels after the pipeline ran: `None` means a dynamic extractor
/// (`json`/`logfmt`/`regexp`) makes the label set unknowable statically.
type KnownLabels = Option<BTreeSet<String>>;

fn check_logql_metric_inner(
    source: &str,
    m: &MetricQuery,
    labels: &KnownLabels,
    out: &mut Vec<Finding>,
) {
    match m {
        MetricQuery::RangeAgg { .. } => {}
        MetricQuery::VectorAgg { grouping, inner, .. } => {
            if let Some(g) = grouping {
                check_grouping(source, g, labels, out);
            }
            check_logql_metric_inner(source, inner, labels, out);
        }
        MetricQuery::Filter { inner, .. } => check_logql_metric_inner(source, inner, labels, out),
    }
}

fn check_grouping(source: &str, g: &Grouping, labels: &KnownLabels, out: &mut Vec<Finding>) {
    let Some(known) = labels else { return };
    if g.kind != GroupKind::By {
        return;
    }
    for l in &g.labels {
        if !known.contains(l) {
            out.push(Finding::config(
                source,
                "unknown-label",
                format!("grouping label {l:?} is not produced by the selector or its pipeline"),
            ));
        }
    }
}

/// Validate a log query; returns the statically known label set after
/// the pipeline (stream labels + pattern captures + label_format
/// destinations), or `None` once a dynamic extractor runs.
fn check_log_query(
    config: &LintConfig,
    source: &str,
    q: &LogQuery,
    out: &mut Vec<Finding>,
) -> KnownLabels {
    check_selector_stream_labels(config, source, &q.selector, out);
    let mut known: KnownLabels = Some(config.catalog.stream_labels().map(str::to_string).collect());
    for stage in &q.stages {
        match stage {
            Stage::Json | Stage::Logfmt | Stage::Regexp(_) => known = None,
            Stage::Pattern(p) => {
                if let Some(k) = known.as_mut() {
                    k.extend(p.capture_names().iter().map(|c| c.to_string()));
                }
            }
            Stage::LabelFormat { dst, .. } => {
                if let Some(k) = known.as_mut() {
                    k.insert(dst.clone());
                }
            }
            Stage::LabelCmpString { label, negated, value } => {
                require_label(source, label, &known, out);
                if !*negated && XNAME_LABELS.contains(&label.as_str()) {
                    check_xname_value(source, label, value, out);
                }
            }
            Stage::LabelCmpRegex { label, .. } | Stage::LabelCmpNumeric { label, .. } => {
                require_label(source, label, &known, out);
            }
            Stage::Unwrap(label) => require_label(source, label, &known, out),
            _ => {}
        }
    }
    known
}

fn require_label(source: &str, label: &str, known: &KnownLabels, out: &mut Vec<Finding>) {
    let Some(k) = known else { return };
    if !k.contains(label) {
        out.push(Finding::config(
            source,
            "unknown-label",
            format!("label {label:?} is not produced by the selector or its pipeline"),
        ));
    }
}

fn check_selector_stream_labels(
    config: &LintConfig,
    source: &str,
    selector: &Selector,
    out: &mut Vec<Finding>,
) {
    for m in &selector.matchers {
        if !config.catalog.is_stream_label(&m.name) {
            out.push(Finding::config(
                source,
                "unknown-label",
                format!("selector label {:?} is not a stream label the bridges produce", m.name),
            ));
        }
        check_matcher_xname(source, m, out);
    }
}

fn check_matcher_xname(source: &str, m: &Matcher, out: &mut Vec<Finding>) {
    if m.op == MatchOp::Eq && XNAME_LABELS.contains(&m.name.as_str()) {
        check_xname_value(source, &m.name, &m.value, out);
    }
}

fn check_xname_value(source: &str, label: &str, value: &str, out: &mut Vec<Finding>) {
    if value.parse::<XName>().is_err() {
        out.push(Finding::config(
            source,
            "invalid-xname",
            format!("label {label:?} matches {value:?}, which is not a well-formed xname"),
        ));
    }
}

/// Thresholds that are always (or never) satisfied on a non-negative
/// count-like aggregate: `count_over_time(...) >= 0` fires on every
/// series forever; `rate(...) < 0` never fires.
fn check_logql_vacuous(source: &str, m: &MetricQuery, out: &mut Vec<Finding>) {
    let MetricQuery::Filter { inner, op, scalar } = m else {
        if let MetricQuery::VectorAgg { inner, .. } = m {
            check_logql_vacuous(source, inner, out);
        }
        return;
    };
    check_logql_vacuous(source, inner, out);
    let count_like = matches!(
        bottom_range_op(inner),
        RangeAggOp::CountOverTime
            | RangeAggOp::Rate
            | RangeAggOp::BytesOverTime
            | RangeAggOp::BytesRate
    );
    if count_like {
        vacuous_on_nonnegative(source, *op, *scalar, out);
    }
}

fn bottom_range_op(m: &MetricQuery) -> RangeAggOp {
    match m {
        MetricQuery::RangeAgg { op, .. } => *op,
        MetricQuery::VectorAgg { inner, .. } => bottom_range_op(inner),
        MetricQuery::Filter { inner, .. } => bottom_range_op(inner),
    }
}

fn vacuous_on_nonnegative(source: &str, op: CmpOp, scalar: f64, out: &mut Vec<Finding>) {
    let verdict = match op {
        CmpOp::Gt if scalar < 0.0 => Some("always true"),
        CmpOp::Ge if scalar <= 0.0 => Some("always true"),
        CmpOp::Lt if scalar <= 0.0 => Some("never true"),
        CmpOp::Le if scalar < 0.0 => Some("never true"),
        _ => None,
    };
    if let Some(v) = verdict {
        out.push(Finding::config(
            source,
            "vacuous-threshold",
            format!("threshold `{op} {scalar}` on a non-negative aggregate is {v}"),
        ));
    }
}

// --------------------------------------------------------------- PromQL

fn check_promql(config: &LintConfig, source: &str, expr: &PromExpr, out: &mut Vec<Finding>) {
    match expr {
        PromExpr::Selector(s) | PromExpr::Absent(s) | PromExpr::RangeFn { selector: s, .. } => {
            check_prom_selector(config, source, s, out);
        }
        PromExpr::VectorAgg { grouping, inner, .. } => {
            if let Some(g) = grouping {
                check_prom_grouping(config, source, expr, g, out);
            }
            check_promql(config, source, inner, out);
        }
        PromExpr::Filter { inner, op, scalar } => {
            check_promql(config, source, inner, out);
            if prom_is_count_like(inner) {
                vacuous_on_nonnegative(source, *op, *scalar, out);
            }
        }
        PromExpr::BinOp { lhs, rhs, .. } => {
            check_promql(config, source, lhs, out);
            check_promql(config, source, rhs, out);
        }
    }
}

/// The metric name of a PromQL selector (stored as a `__name__` equality
/// matcher by the parser).
fn selector_name(s: &Selector) -> Option<&str> {
    s.matchers
        .iter()
        .find(|m| m.name == "__name__" && m.op == MatchOp::Eq)
        .map(|m| m.value.as_str())
}

fn check_prom_selector(config: &LintConfig, source: &str, s: &Selector, out: &mut Vec<Finding>) {
    let name = selector_name(s);
    let known_labels = match name {
        Some(n) => {
            if let Some(labels) = config.catalog.metric_labels(n) {
                Some(labels)
            } else {
                out.push(Finding::config(
                    source,
                    "unknown-metric",
                    format!("metric {n:?} is not emitted by any exporter, bridge or collector"),
                ));
                None
            }
        }
        None => None,
    };
    for m in &s.matchers {
        if m.name == "__name__" {
            continue;
        }
        if let Some(labels) = known_labels {
            if !labels.contains(&m.name) {
                out.push(Finding::config(
                    source,
                    "unknown-label",
                    format!("label {:?} never appears on metric {:?}", m.name, name.unwrap_or("?")),
                ));
            }
        }
        check_matcher_xname(source, m, out);
    }
}

fn check_prom_grouping(
    config: &LintConfig,
    source: &str,
    agg: &PromExpr,
    g: &Grouping,
    out: &mut Vec<Finding>,
) {
    if g.kind != GroupKind::By {
        return;
    }
    let Some(sel) = prom_bottom_selector(agg) else { return };
    let Some(name) = selector_name(sel) else { return };
    let Some(labels) = config.catalog.metric_labels(name) else { return };
    for l in &g.labels {
        if !labels.contains(l) {
            out.push(Finding::config(
                source,
                "unknown-label",
                format!("grouping label {l:?} never appears on metric {name:?}"),
            ));
        }
    }
}

fn prom_bottom_selector(expr: &PromExpr) -> Option<&Selector> {
    match expr {
        PromExpr::Selector(s) | PromExpr::Absent(s) | PromExpr::RangeFn { selector: s, .. } => {
            Some(s)
        }
        PromExpr::VectorAgg { inner, .. } | PromExpr::Filter { inner, .. } => {
            prom_bottom_selector(inner)
        }
        // Two bottoms — no single selector to attribute the grouping to.
        PromExpr::BinOp { .. } => None,
    }
}

fn prom_is_count_like(expr: &PromExpr) -> bool {
    use omni_tsdb::RangeFn;
    match expr {
        PromExpr::RangeFn { func, .. } => {
            matches!(func, RangeFn::Rate | RangeFn::Increase | RangeFn::CountOverTime)
        }
        PromExpr::VectorAgg { inner, .. } | PromExpr::Filter { inner, .. } => {
            prom_is_count_like(inner)
        }
        _ => false,
    }
}

// ---------------------------------------------------------------- misc

/// Route matchers guard alert labels; the only statically checkable ones
/// are xname-valued equality matchers.
fn check_route_matchers(route: &Route, path: &str, out: &mut Vec<Finding>) {
    for m in &route.matchers {
        check_matcher_xname(&format!("route:{path}"), m, out);
    }
    for (i, child) in route.routes.iter().enumerate() {
        check_route_matchers(child, &format!("{path}/{i}"), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::NANOS_PER_SEC;

    fn cfg() -> LintConfig {
        LintConfig::new(Catalog::shipped())
    }

    fn rule(lang: QueryLang, expr: &str, for_ns: i64) -> RuleSpec {
        RuleSpec { source: "test:rule".into(), lang, expr: expr.into(), for_ns }
    }

    #[test]
    fn unknown_metric_flagged() {
        let mut c = cfg();
        c.rules.push(rule(QueryLang::PromQl, "max by (xname) (shasta_temprature_celsius) > 90", 0));
        let f = analyze(&c);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unknown-metric");
    }

    #[test]
    fn unknown_prom_label_flagged() {
        let mut c = cfg();
        c.rules.push(rule(QueryLang::PromQl, "max by (node) (shasta_temperature_celsius) > 90", 0));
        let f = analyze(&c);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unknown-label");
    }

    #[test]
    fn unknown_stream_label_flagged() {
        let mut c = cfg();
        c.queries.push(NamedQuery {
            source: "test:q".into(),
            lang: QueryLang::LogQl,
            query: r#"{datatype="syslog"}"#.into(),
        });
        let f = analyze(&c);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unknown-label");
    }

    #[test]
    fn invalid_xname_flagged_valid_ok() {
        let mut c = cfg();
        c.queries.push(NamedQuery {
            source: "test:bad".into(),
            lang: QueryLang::PromQl,
            query: r#"shasta_leak_bool{xname="not-an-xname"}"#.into(),
        });
        c.queries.push(NamedQuery {
            source: "test:good".into(),
            lang: QueryLang::PromQl,
            query: r#"shasta_leak_bool{xname="x1000c2"}"#.into(),
        });
        let f = analyze(&c);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "invalid-xname");
        assert_eq!(f[0].file, "test:bad");
    }

    #[test]
    fn vacuous_threshold_flagged() {
        let mut c = cfg();
        c.rules.push(rule(
            QueryLang::LogQl,
            r#"sum(count_over_time({data_type="syslog"} [5m])) by (cluster) >= 0"#,
            0,
        ));
        let f = analyze(&c);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "vacuous-threshold");
    }

    #[test]
    fn short_for_hold_flagged() {
        let mut c = cfg();
        c.rules.push(rule(
            QueryLang::PromQl,
            "max by (xname) (shasta_temperature_celsius) > 90",
            5 * NANOS_PER_SEC,
        ));
        let f = analyze(&c);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "for-shorter-than-interval");
    }

    #[test]
    fn zero_for_hold_is_intentional() {
        let mut c = cfg();
        c.rules.push(rule(QueryLang::PromQl, "max by (xname) (shasta_leak_bool) > 0", 0));
        assert!(analyze(&c).is_empty());
    }

    #[test]
    fn parse_errors_reported_not_panicked() {
        let mut c = cfg();
        c.rules.push(rule(QueryLang::PromQl, "max by (", 0));
        c.rules.push(rule(QueryLang::LogQl, "{unclosed", 0));
        let f = analyze(&c);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.rule == "parse-promql"));
        assert!(f.iter().any(|x| x.rule == "parse-logql"));
    }

    #[test]
    fn bad_buckets_flagged() {
        let mut c = cfg();
        c.buckets.push(("test:hist".into(), vec![1.0, 2.0, 2.0, 4.0]));
        let f = analyze(&c);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "bucket-order");
    }

    #[test]
    fn route_issues_mapped_to_findings() {
        let mut c = cfg();
        let mut root = Route::default_route("slack");
        root.routes.push(Route::matching("pagerduty", vec![]));
        root.routes.push(Route::matching("slack", vec![Matcher::eq("severity", "warning")]));
        c.route = Some(root);
        c.receivers = vec!["slack".into()];
        let f = analyze(&c);
        assert!(f.iter().any(|x| x.rule == "undefined-receiver"), "{f:?}");
        assert!(f.iter().any(|x| x.rule == "unreachable-route"), "{f:?}");
    }

    #[test]
    fn pattern_captures_satisfy_grouping() {
        let mut c = cfg();
        c.rules.push(rule(
            QueryLang::LogQl,
            r#"sum(count_over_time({app="fabric_manager_monitor"} |= "fm_switch_offline" | pattern "[<severity>] problem:<problem>, xname:<xname>, state:<state>" [5m])) by (severity, problem, xname, state) > 0"#,
            0,
        ));
        assert!(analyze(&c).is_empty());
    }

    #[test]
    fn grouping_without_extractor_flagged() {
        let mut c = cfg();
        c.rules.push(rule(
            QueryLang::LogQl,
            r#"sum(count_over_time({app="fabric_manager_monitor"} [5m])) by (Severity) > 0"#,
            0,
        ));
        let f = analyze(&c);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unknown-label");
    }
}

//! omni-lint: promtool-style static validation for the shasta-mon stack.
//!
//! Two layers:
//!
//! 1. **Config analysis** ([`analyze`]): every LogQL query, PromQL alert
//!    rule, Alertmanager route tree and histogram bucket layout the stack
//!    wires is parsed with the *same* parsers the runtime uses, then
//!    cross-checked against a statically derived [`Catalog`] of
//!    everything the pipeline can emit — exporter families, registry
//!    registration sites, bridge-produced Loki stream labels. A typo'd
//!    metric name or an unreachable route is a boot-time error instead of
//!    an alert that silently never fires.
//! 2. **Source invariants** ([`lint_workspace`]): a hand-rolled Rust
//!    lexer sweeps `crates/**/*.rs` for wall-clock reads outside
//!    `crates/bench` (the simulation is virtual-time only), `unwrap` /
//!    `expect` / `panic!` in the hot-path crates, malformed metric-name
//!    literals at registration sites, and registration sites that drifted
//!    out of the shipped catalog.
//!
//! Output is deterministic: findings sort by `(file, line, rule,
//! message)` and both the text and `--json` renderings are byte-identical
//! across runs. A `// lint:allow(<rule>)` comment on the offending line
//! or the line above suppresses a source finding.

pub mod catalog;
pub mod config;
pub mod rustlint;

pub use catalog::Catalog;
pub use config::{analyze, LintConfig, NamedQuery, QueryLang, RuleSpec};
pub use rustlint::{lint_source, lint_workspace};

use omni_json::Json;

/// One defect found by either layer.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative source path (layer 2) or a `kind:name` source tag
    /// like `vmalert:NodeTemperatureCritical` (layer 1).
    pub file: String,
    /// 1-based line for source findings; 0 for config findings.
    pub line: usize,
    /// Stable rule id, e.g. `unknown-metric` or `no-unwrap`.
    pub rule: String,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// Build a config-layer finding (no source line).
    pub fn config(source: &str, rule: &str, message: impl Into<String>) -> Self {
        Self { file: source.to_string(), line: 0, rule: rule.to_string(), message: message.into() }
    }

    /// Build a source-layer finding.
    pub fn source(file: &str, line: usize, rule: &str, message: impl Into<String>) -> Self {
        Self { file: file.to_string(), line, rule: rule.to_string(), message: message.into() }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Sort and deduplicate findings into the canonical reporting order.
pub fn normalize(mut findings: Vec<Finding>) -> Vec<Finding> {
    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    findings.dedup();
    findings
}

/// Render findings as sorted text, one per line.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out
}

/// Render findings as the versioned JSON report:
/// `{"version":1,"findings":[{"rule","file","line","message"},...]}`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut root = Json::object();
    let _ = root.set("version", Json::Number(1.0));
    let items = findings
        .iter()
        .map(|f| {
            let mut o = Json::object();
            let _ = o.set("rule", Json::String(f.rule.clone()));
            let _ = o.set("file", Json::String(f.file.clone()));
            let _ = o.set("line", Json::Number(f.line as f64));
            let _ = o.set("message", Json::String(f.message.clone()));
            o
        })
        .collect();
    let _ = root.set("findings", Json::Array(items));
    root.dump()
}

/// The lint configuration covering everything wired below `omni-core`:
/// the shipped vmalert rules, Loki ruler rules, the Alertmanager routing
/// tree and the default latency buckets, all validated against
/// [`Catalog::shipped`]. `core::stack` extends this with its dashboards
/// and extra histogram layouts at boot.
pub fn shipped_config() -> LintConfig {
    use omni_loki::AlertingRule;
    use omni_tsdb::MetricRule;

    let mut cfg = LintConfig::new(Catalog::shipped());
    for r in MetricRule::shipped_rules() {
        cfg.rules.push(RuleSpec {
            source: format!("vmalert:{}", r.name),
            lang: QueryLang::PromQl,
            expr: r.expr.clone(),
            for_ns: r.for_ns,
        });
    }
    for r in [
        AlertingRule::paper_leak_rule(),
        AlertingRule::paper_switch_rule(),
        AlertingRule::gpfs_server_rule(),
    ] {
        cfg.rules.push(RuleSpec {
            source: format!("ruler:{}", r.name),
            lang: QueryLang::LogQl,
            expr: r.expr.clone(),
            for_ns: r.for_ns,
        });
    }
    cfg.route = Some(omni_alertmanager::Route::shipped_tree());
    cfg.receivers = omni_alertmanager::Route::shipped_receivers();
    cfg.buckets
        .push(("obs:default-latency".to_string(), omni_obs::DEFAULT_LATENCY_BUCKETS.to_vec()));
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn findings_sort_and_render_deterministically() {
        let raw = vec![
            Finding::source("b.rs", 2, "no-unwrap", "second"),
            Finding::source("a.rs", 9, "wall-clock", "first"),
            Finding::source("a.rs", 9, "wall-clock", "first"),
        ];
        let n = normalize(raw);
        assert_eq!(n.len(), 2);
        assert_eq!(n[0].file, "a.rs");
        let text = render_text(&n);
        assert_eq!(text, "a.rs:9: [wall-clock] first\nb.rs:2: [no-unwrap] second\n");
        assert_eq!(render_text(&n), text);
    }

    #[test]
    fn json_report_parses_back() {
        let findings = vec![Finding::config("vmalert:X", "unknown-metric", "no such metric")];
        let parsed = omni_json::parse(&render_json(&findings)).unwrap();
        assert_eq!(parsed.pointer("/version").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            parsed.pointer("/findings/0/rule").and_then(Json::as_str),
            Some("unknown-metric")
        );
        assert_eq!(parsed.pointer("/findings/0/line").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn shipped_config_is_clean() {
        assert_eq!(analyze(&shipped_config()), Vec::new());
    }
}

//! Layer 2: source invariants over `crates/**/*.rs`, enforced by a
//! hand-rolled lexer (no syn, no proc-macro machinery — the workspace
//! has no such dependency and doesn't need one for these checks).
//!
//! Rules:
//!
//! - `wall-clock`: no `SystemTime::now` / `Instant::now` (or chrono-style
//!   `Utc::now` / `Local::now`) outside `crates/bench` — the whole
//!   pipeline runs on the virtual [`SimClock`], and a single wall-clock
//!   read breaks replay determinism. Applies to test code too.
//! - `no-unwrap`: no `.unwrap()` / `.expect()` / `panic!` in non-test
//!   code of the hot-path crates (`loki`, `bus`, `core`) — a poisoned
//!   ingest path takes the whole pipeline down.
//! - `metric-name`: string literals at metric registration sites must
//!   satisfy [`omni_exporters::valid_metric_name`].
//! - `tenant-label`: `omni_tenant_*` is the reserved prefix for
//!   tenant-scoped telemetry; any registration of such a name must be
//!   listed in [`Catalog::shipped`] with the `tenant` label, so no
//!   per-tenant series can ship without a tenant dimension.
//! - `catalog-drift`: registration sites in `core`, `exporters` and
//!   `obs` must register names present in [`Catalog::shipped`] — the
//!   guarantee that keeps the layer-1 catalog honest.
//!
//! Suppress a finding with `// lint:allow(<rule>)` on the same line or
//! the line directly above.
//!
//! [`SimClock`]: omni_model::SimClock
//! [`Catalog::shipped`]: crate::Catalog::shipped

use crate::catalog::Catalog;
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Crates whose non-test code must be panic-free.
const HOT_PATH_CRATES: &[&str] = &["loki", "bus", "core"];

/// Crates whose registration sites must match the shipped catalog.
const CATALOG_CRATES: &[&str] = &["core", "exporters", "obs"];

/// Method names whose first string-literal argument is a metric name.
const REGISTER_METHODS: &[&str] = &["counter", "gauge", "histogram", "ingest_sample"];

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Punct(char),
}

struct Lexed {
    /// `(line, token)` in source order; comments/whitespace dropped.
    toks: Vec<(usize, Tok)>,
    /// Rules allowed per line, from `// lint:allow(rule)` comments.
    allows: BTreeMap<usize, BTreeSet<String>>,
}

/// Lex Rust source into the minimal token stream the rules need. Handles
/// line and nested block comments, plain/raw/byte strings, and the
/// char-literal-vs-lifetime ambiguity.
fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut allows: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                record_allows(&src[start..i], line, &mut allows);
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                record_allows(&src[start..i], start_line, &mut allows);
            }
            b'"' => {
                let (s, ni, nl) = scan_string(src, i, line);
                toks.push((line, Tok::Str(s)));
                i = ni;
                line = nl;
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let (s, ni, nl) = scan_raw_or_byte(src, i, line);
                toks.push((line, Tok::Str(s)));
                i = ni;
                line = nl;
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let rest = &b[i + 1..];
                let is_lifetime = match rest.first() {
                    Some(&ch) if ch == b'_' || ch.is_ascii_alphabetic() => {
                        // `'x'` is a char; `'xy`, `'x,` etc. are lifetimes.
                        rest.get(1) != Some(&b'\'')
                    }
                    _ => false,
                };
                if is_lifetime {
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                } else {
                    // Char literal: scan to the closing quote, honouring
                    // escapes.
                    i += 1;
                    while i < b.len() {
                        if b[i] == b'\\' {
                            i += 2;
                        } else if b[i] == b'\'' {
                            i += 1;
                            break;
                        } else {
                            if b[i] == b'\n' {
                                line += 1;
                            }
                            i += 1;
                        }
                    }
                }
            }
            _ if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                toks.push((line, Tok::Ident(src[start..i].to_string())));
            }
            _ if c.is_ascii_digit() => {
                // Numbers (including suffixes/underscores); no token needed.
                while i < b.len() && (b[i] == b'_' || b[i] == b'.' || b[i].is_ascii_alphanumeric())
                {
                    i += 1;
                }
            }
            _ => {
                if !c.is_ascii_whitespace() {
                    toks.push((line, Tok::Punct(c as char)));
                }
                i += 1;
            }
        }
    }
    Lexed { toks, allows }
}

fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'r' => matches!(b.get(i + 1), Some(&b'"') | Some(&b'#')),
        b'b' => match b.get(i + 1) {
            Some(&b'"') => true,
            Some(&b'r') => matches!(b.get(i + 2), Some(&b'"') | Some(&b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Scan a plain `"..."` string starting at `i` (the opening quote).
fn scan_string(src: &str, i: usize, mut line: usize) -> (String, usize, usize) {
    let b = src.as_bytes();
    let mut j = i + 1;
    let start = j;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => break,
            b'\n' => {
                line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    let end = j.min(b.len());
    (src[start..end].to_string(), end + 1, line)
}

/// Scan `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#` starting at `i`.
fn scan_raw_or_byte(src: &str, i: usize, mut line: usize) -> (String, usize, usize) {
    let b = src.as_bytes();
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    let raw = b.get(j) == Some(&b'r');
    if !raw {
        // Plain byte string `b"..."`.
        return scan_string(src, j, line);
    }
    j += 1;
    let mut hashes = 0;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    // Opening quote.
    j += 1;
    let start = j;
    let mut closer = Vec::with_capacity(hashes + 1);
    closer.push(b'"');
    closer.resize(hashes + 1, b'#');
    while j < b.len() {
        if b[j] == b'\n' {
            line += 1;
        }
        if b[j] == b'"' && b[j..].starts_with(&closer) {
            return (src[start..j].to_string(), j + closer.len(), line);
        }
        j += 1;
    }
    (src[start..].to_string(), b.len(), line)
}

/// Pull every `lint:allow(rule)` out of a comment's text.
fn record_allows(comment: &str, line: usize, allows: &mut BTreeMap<usize, BTreeSet<String>>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:allow(") {
        let after = &rest[pos + "lint:allow(".len()..];
        if let Some(end) = after.find(')') {
            allows.entry(line).or_default().insert(after[..end].trim().to_string());
            rest = &after[end..];
        } else {
            break;
        }
    }
}

/// Per-token flag: is this token inside a `#[cfg(test)]` / `#[test]`
/// brace-matched region?
fn mark_test_regions(toks: &[(usize, Tok)]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut region_depths: Vec<i64> = Vec::new();
    let mut k = 0;
    while k < toks.len() {
        if is_test_attr(toks, k) {
            pending = true;
        }
        match &toks[k].1 {
            Tok::Punct('{') => {
                depth += 1;
                if pending {
                    region_depths.push(depth);
                    pending = false;
                }
            }
            Tok::Punct('}') => {
                if region_depths.last() == Some(&depth) {
                    region_depths.pop();
                    // The closing brace itself still belongs to the region.
                    in_test[k] = true;
                }
                depth -= 1;
            }
            // `#[cfg(test)] use ...;` — no braced item follows.
            Tok::Punct(';') if pending && region_depths.is_empty() => pending = false,
            _ => {}
        }
        if !region_depths.is_empty() {
            in_test[k] = true;
        }
        k += 1;
    }
    in_test
}

/// Does `#[cfg(test)]` or `#[test]` start at token `k`?
fn is_test_attr(toks: &[(usize, Tok)], k: usize) -> bool {
    let pat_cfg = ["#", "[", "cfg", "(", "test", ")", "]"];
    let pat_test = ["#", "[", "test", "]"];
    matches_toks(toks, k, &pat_cfg) || matches_toks(toks, k, &pat_test)
}

fn matches_toks(toks: &[(usize, Tok)], k: usize, pat: &[&str]) -> bool {
    if k + pat.len() > toks.len() {
        return false;
    }
    pat.iter().enumerate().all(|(n, want)| match &toks[k + n].1 {
        Tok::Ident(s) => s == want,
        Tok::Punct(c) => want.len() == 1 && *c == want.chars().next().unwrap_or(' '),
        Tok::Str(_) => false,
    })
}

fn allowed(lexed: &Lexed, line: usize, rule: &str) -> bool {
    [line, line.saturating_sub(1)]
        .iter()
        .any(|l| lexed.allows.get(l).is_some_and(|set| set.contains(rule)))
}

/// Lint one source file. `rel_path` is the repo-relative path used in
/// findings; `crate_name` selects which rules apply.
pub fn lint_source(rel_path: &str, crate_name: &str, src: &str, catalog: &Catalog) -> Vec<Finding> {
    let lexed = lex(src);
    let in_test = mark_test_regions(&lexed.toks);
    let toks = &lexed.toks;
    let mut out = Vec::new();

    let push = |lexed: &Lexed, line: usize, rule: &str, msg: String, out: &mut Vec<Finding>| {
        if !allowed(lexed, line, rule) {
            out.push(Finding::source(rel_path, line, rule, msg));
        }
    };

    for k in 0..toks.len() {
        let (line, tok) = &toks[k];
        // wall-clock: Ident::now( — everywhere but crates/bench, tests
        // included (replay determinism).
        if crate_name != "bench" {
            if let Tok::Ident(id) = tok {
                if matches!(id.as_str(), "SystemTime" | "Instant" | "Utc" | "Local")
                    && matches_toks(toks, k + 1, &[":", ":", "now"])
                {
                    push(
                        &lexed,
                        *line,
                        "wall-clock",
                        format!("{id}::now reads the wall clock; use the SimClock"),
                        &mut out,
                    );
                }
            }
        }
        // no-unwrap: hot-path crates, non-test code only.
        if HOT_PATH_CRATES.contains(&crate_name) && !in_test[k] {
            if let Tok::Ident(id) = tok {
                let unwrapish = (id == "unwrap" || id == "expect")
                    && k > 0
                    && toks[k - 1].1 == Tok::Punct('.')
                    && matches_toks(toks, k + 1, &["("]);
                if unwrapish {
                    push(
                        &lexed,
                        *line,
                        "no-unwrap",
                        format!(".{id}() can panic on a hot path; propagate the error"),
                        &mut out,
                    );
                }
                if id == "panic" && matches_toks(toks, k + 1, &["!"]) {
                    push(
                        &lexed,
                        *line,
                        "no-unwrap",
                        "panic! takes the pipeline down; return an error".to_string(),
                        &mut out,
                    );
                }
            }
        }
        // metric-name / catalog-drift: registration sites with a string
        // literal name. Tests are exempt — they deliberately register
        // malformed names to exercise the renderer's degradation path.
        if in_test[k] {
            continue;
        }
        if let Some((name, name_line)) = registration_name(toks, k) {
            if !omni_exporters::valid_metric_name(&name) {
                push(
                    &lexed,
                    name_line,
                    "metric-name",
                    format!("metric name {name:?} is not a valid Prometheus metric name"),
                    &mut out,
                );
            } else if name.starts_with("omni_tenant_") && !tenant_labelled(catalog, &name) {
                push(
                    &lexed,
                    name_line,
                    "tenant-label",
                    format!(
                        "tenant-scoped metric {name:?} must carry the `tenant` label; \
                         register it in omni-lint's Catalog::shipped with labels [\"tenant\"]"
                    ),
                    &mut out,
                );
            } else if CATALOG_CRATES.contains(&crate_name)
                && !in_test[k]
                && !catalog.has_metric(&name)
                && !catalog.has_histogram_base(&name)
            {
                push(
                    &lexed,
                    name_line,
                    "catalog-drift",
                    format!(
                        "metric {name:?} is registered here but missing from the shipped \
                         catalog; add it to omni-lint's Catalog::shipped"
                    ),
                    &mut out,
                );
            }
        }
    }
    out
}

/// Whether a tenant-scoped registration carries the `tenant` label —
/// directly, or (for histograms registered by their base name) via the
/// gather-time `_bucket` expansion.
fn tenant_labelled(catalog: &Catalog, name: &str) -> bool {
    if catalog.metric_labels(name).is_some_and(|ls| ls.contains("tenant")) {
        return true;
    }
    catalog.has_histogram_base(name)
        && catalog.metric_labels(&format!("{name}_bucket")).is_some_and(|ls| ls.contains("tenant"))
}

/// If a metric registration site starts at token `k`, return its
/// string-literal name and the line it sits on. Recognized shapes:
/// `.counter("name"`, `.gauge("name"`, `.histogram("name"`,
/// `.ingest_sample("name"`, `MetricFamily::gauge("name"`,
/// `MetricFamily::counter("name"`, `FamilySnapshot::new("name"`, and the
/// bare `single("name"` collector shorthand.
fn registration_name(toks: &[(usize, Tok)], k: usize) -> Option<(String, usize)> {
    let grab = |at: usize| match toks.get(at) {
        Some((line, Tok::Str(s))) => Some((s.clone(), *line)),
        _ => None,
    };
    match &toks[k].1 {
        Tok::Ident(id) if REGISTER_METHODS.contains(&id.as_str()) => {
            if k > 0 && toks[k - 1].1 == Tok::Punct('.') && matches_toks(toks, k + 1, &["("]) {
                return grab(k + 2);
            }
            None
        }
        Tok::Ident(id) if id == "single" => {
            // Bare call, not a method (`.single(` would be a method).
            if (k == 0 || toks[k - 1].1 != Tok::Punct('.')) && matches_toks(toks, k + 1, &["("]) {
                return grab(k + 2);
            }
            None
        }
        Tok::Ident(id) if id == "MetricFamily" => {
            if matches_toks(toks, k + 1, &[":", ":"]) {
                if let Some((_, Tok::Ident(m))) = toks.get(k + 3) {
                    if (m == "gauge" || m == "counter") && matches_toks(toks, k + 4, &["("]) {
                        return grab(k + 5);
                    }
                }
            }
            None
        }
        Tok::Ident(id) if id == "FamilySnapshot" => {
            if matches_toks(toks, k + 1, &[":", ":", "new", "("]) {
                return grab(k + 5);
            }
            None
        }
        _ => None,
    }
}

/// Walk `<root>/crates/*/src/**/*.rs` in sorted order and lint each
/// file. `root` is the workspace root.
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let catalog = Catalog::shipped();
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let mut crate_dirs: Vec<_> = match std::fs::read_dir(&crates_dir) {
        Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).filter(|p| p.is_dir()).collect(),
        Err(e) => {
            out.push(Finding::source(
                "crates",
                0,
                "io-error",
                format!("cannot read {}: {e}", crates_dir.display()),
            ));
            return out;
        }
    };
    crate_dirs.sort();
    for dir in crate_dirs {
        let crate_name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
        let mut files = Vec::new();
        collect_rs_files(&dir.join("src"), &mut files);
        files.sort();
        for f in files {
            let Ok(src) = std::fs::read_to_string(&f) else { continue };
            let rel = f.strip_prefix(root).unwrap_or(&f).to_string_lossy().replace('\\', "/");
            out.extend(lint_source(&rel, &crate_name, &src, &catalog));
        }
    }
    crate::normalize(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else { return };
    for entry in rd.filter_map(Result::ok) {
        let p = entry.path();
        if p.is_dir() {
            collect_rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        lint_source("crates/loki/src/x.rs", "loki", src, &Catalog::shipped())
    }

    #[test]
    fn flags_unwrap_on_hot_path() {
        let f = lint("fn f() { x.unwrap(); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-unwrap");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn allows_unwrap_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        assert!(lint(src).is_empty());
        let attr = "#[test]\nfn t() { x.expect(\"ok\"); }\n";
        assert!(lint(attr).is_empty());
    }

    #[test]
    fn non_test_code_after_test_region_still_checked() {
        let src = "#[cfg(test)]\nmod tests { fn t() { a.unwrap(); } }\nfn f() { b.unwrap(); }\n";
        let f = lint(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn suppression_comment_works_on_line_and_line_above() {
        let same = "fn f() { x.unwrap(); } // lint:allow(no-unwrap)\n";
        assert!(lint(same).is_empty());
        let above = "// invariant: never empty. lint:allow(no-unwrap)\nfn f() { x.unwrap(); }\n";
        assert!(lint(above).is_empty());
        let wrong_rule = "// lint:allow(wall-clock)\nfn f() { x.unwrap(); }\n";
        assert_eq!(lint(wrong_rule).len(), 1);
    }

    #[test]
    fn ignores_strings_and_comments() {
        let src = "fn f() { let s = \".unwrap()\"; // .unwrap()\n /* x.unwrap() */ }\n";
        assert!(lint(src).is_empty());
        let raw = "fn f() { let s = r#\"a.unwrap() \"quoted\" \"#; }\n";
        assert!(lint(raw).is_empty());
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) { y.unwrap(); }\n";
        assert_eq!(lint(src).len(), 1);
        let chars = "fn f() { let c = '\\''; let q = '\"'; z.unwrap(); }\n";
        assert_eq!(lint(chars).len(), 1);
    }

    #[test]
    fn wall_clock_flagged_everywhere_but_bench() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let f = lint_source("crates/model/src/x.rs", "model", src, &Catalog::shipped());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock");
        let bench = lint_source("crates/bench/src/x.rs", "bench", src, &Catalog::shipped());
        assert!(bench.is_empty());
        // Tests are not exempt: replay determinism covers them too.
        let in_test = "#[cfg(test)]\nmod t { fn f() { Instant::now(); } }\n";
        assert_eq!(
            lint_source("crates/model/src/x.rs", "model", in_test, &Catalog::shipped()).len(),
            1
        );
    }

    #[test]
    fn bad_metric_name_flagged() {
        let src = "fn f(r: &Registry) { r.counter(\"bad.name\", \"h\", labels!()); }\n";
        let f = lint_source("crates/model/src/x.rs", "model", src, &Catalog::shipped());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "metric-name");
    }

    #[test]
    fn catalog_drift_flagged_in_core_only() {
        let src = "fn f(r: &Registry) { r.counter(\"omni_made_up_total\", \"h\", labels!()); }\n";
        let core = lint_source("crates/core/src/x.rs", "core", src, &Catalog::shipped());
        assert_eq!(core.len(), 1, "{core:?}");
        assert_eq!(core[0].rule, "catalog-drift");
        // Same site in a non-catalog crate: only name validity applies.
        let model = lint_source("crates/model/src/x.rs", "model", src, &Catalog::shipped());
        assert!(model.is_empty(), "{model:?}");
    }

    #[test]
    fn tenant_metric_must_carry_tenant_label() {
        // Unknown omni_tenant_* name: reserved prefix, not in the catalog.
        let src =
            "fn f() { let f = FamilySnapshot::new(\"omni_tenant_made_up_total\", \"h\", C); }\n";
        let f = lint_source("crates/core/src/x.rs", "core", src, &Catalog::shipped());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "tenant-label");
        // The prefix is reserved everywhere, not just in catalog crates.
        let model = lint_source("crates/model/src/x.rs", "model", src, &Catalog::shipped());
        assert_eq!(model.len(), 1, "{model:?}");
        assert_eq!(model[0].rule, "tenant-label");
        // In the catalog but without the tenant label: still flagged.
        let mut bare = Catalog::empty();
        bare.add_scraped_metric("omni_tenant_made_up_total", &[]);
        let f = lint_source("crates/core/src/x.rs", "core", src, &bare);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "tenant-label");
        // Shipped tenant families carry the label and pass clean.
        let ok =
            "fn f() { let f = FamilySnapshot::new(\"omni_tenant_active_streams\", \"h\", G); }\n";
        let f = lint_source("crates/core/src/x.rs", "core", ok, &Catalog::shipped());
        assert!(f.is_empty(), "{f:?}");
        // A tenant-scoped histogram registered by its *base* name gets
        // the label from its gather-time `_bucket` expansion.
        let hist = "fn f(r: &Registry) {\n  \
                    r.histogram(\"omni_tenant_query_wait_seconds\", \"h\", labels!(), B);\n}\n";
        let f = lint_source("crates/core/src/x.rs", "core", hist, &Catalog::shipped());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn known_registration_sites_pass() {
        let src = concat!(
            "fn f(r: &Registry) {\n",
            "  r.counter(\"omni_steps_total\", \"h\", labels!());\n",
            "  r.histogram(\"omni_ingest_batch_size\", \"h\", labels!(), B);\n",
            "  let f = FamilySnapshot::new(\"omni_bus_consumer_lag\", \"h\", Gauge);\n",
            "  single(\"omni_loki_shards_up\", \"h\", Gauge, 1.0);\n",
            "}\n"
        );
        let f = lint_source("crates/core/src/x.rs", "core", src, &Catalog::shipped());
        assert!(f.is_empty(), "{f:?}");
    }
}

//! omni-lint CLI: run both layers against the shipped configuration and
//! the workspace sources, print findings (sorted text, or `--json` for
//! the versioned report), exit non-zero if anything was found.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--catalog" => {
                // The emittable-metric surface, one name per line — what
                // the unknown-metric rule checks queries against. Lets
                // scripts assert a family is registered without parsing
                // Rust.
                let catalog = omni_lint::Catalog::shipped();
                for name in catalog.metric_names() {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "omni-lint: static validation of rules, queries and source invariants\n\
                     \n\
                     usage: omni-lint [--json | --catalog]\n\
                     \n\
                     Runs layer 1 (config analysis of the shipped rules, routes and\n\
                     buckets) and layer 2 (source invariants over crates/**/*.rs),\n\
                     prints findings sorted by (file, line, rule, message), and exits\n\
                     with status 1 if any finding was produced.\n\
                     --catalog instead prints every emittable metric name and exits."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("omni-lint: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = workspace_root();
    let mut findings = omni_lint::analyze(&omni_lint::shipped_config());
    findings.extend(omni_lint::lint_workspace(&root));
    let findings = omni_lint::normalize(findings);

    if json {
        println!("{}", omni_lint::render_json(&findings));
    } else if findings.is_empty() {
        println!("omni-lint: no findings");
    } else {
        print!("{}", omni_lint::render_text(&findings));
        eprintln!("omni-lint: {} finding(s)", findings.len());
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Locate the workspace root: walk up from the current directory until a
/// `crates/` directory appears next to a `Cargo.toml`. Falls back to the
/// current directory (layer 2 then reports an io-error finding rather
/// than silently passing).
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return cwd;
        }
    }
}

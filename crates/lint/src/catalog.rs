//! The emittable-metric catalog: every metric name and label key the
//! pipeline can produce, derived statically from the same constants the
//! runtime components use.
//!
//! Sources, in pipeline order:
//!
//! - the MetricBridge turns Redfish sensor readings into
//!   `shasta_<kind>_<unit>` series labelled `{xname, sensor, cluster}`
//!   (derived by iterating [`SensorKind`], exactly like
//!   `core::bridge` formats names at ingest);
//! - the exporter fleet's families come from
//!   [`omni_exporters::shipped_exporter_families`]; vmagent stamps every
//!   scraped sample with `job`/`instance` and synthesizes `up` per target;
//! - the self-telemetry registry's families (registered in `core::stack`
//!   and its gather-time collectors) are scraped through the `omni-self`
//!   job, histograms expanding with [`omni_obs::HISTOGRAM_SUFFIXES`]
//!   (`_bucket` additionally carries `le`);
//! - the LogBridge's per-topic Loki stream labels, plus the `trace_id`
//!   label the tracing path attaches and the `restored` label the archive
//!   restore path adds.

use omni_obs::HISTOGRAM_SUFFIXES;
use omni_redfish::SensorKind;
use std::collections::{BTreeMap, BTreeSet};

/// Labels vmagent adds to every scraped sample.
const SCRAPE_LABELS: &[&str] = &["job", "instance"];

/// What one registered metric family can carry.
#[derive(Debug, Clone)]
pub struct MetricInfo {
    /// Label keys the family's series may use.
    pub labels: BTreeSet<String>,
}

/// The statically derived catalog.
#[derive(Debug, Clone)]
pub struct Catalog {
    metrics: BTreeMap<String, MetricInfo>,
    stream_labels: BTreeSet<String>,
}

impl Catalog {
    /// An empty catalog (fixture tests build small ones by hand).
    pub fn empty() -> Self {
        Self { metrics: BTreeMap::new(), stream_labels: BTreeSet::new() }
    }

    /// Everything the shipped pipeline can emit.
    pub fn shipped() -> Self {
        let mut c = Self::empty();

        // MetricBridge: shasta_<kind>_<unit> with the bridge's labels
        // (direct TSDB ingest — never scraped, so no job/instance).
        const SENSOR_KINDS: &[SensorKind] = &[
            SensorKind::Temperature,
            SensorKind::Humidity,
            SensorKind::Power,
            SensorKind::FanSpeed,
            SensorKind::Leak,
            SensorKind::Flow,
        ];
        for kind in SENSOR_KINDS {
            c.add_metric(
                &format!("shasta_{}_{}", kind.as_str(), kind.unit()),
                &["xname", "sensor", "cluster"],
            );
        }

        // Exporter fleet, scraped by vmagent.
        for (name, labels) in omni_exporters::shipped_exporter_families() {
            c.add_scraped_metric(name, labels);
        }
        c.add_scraped_metric("up", &[]);

        // Self-telemetry registry families (scraped via the `omni-self`
        // job). Kept in lockstep with the registration sites in
        // `core::stack` by the `catalog-drift` source rule.
        for name in [
            "omni_steps_total",
            "omni_bus_unavailable",
            "omni_loki_shards_up",
            "omni_loki_shards_down",
            "omni_loki_crashes_total",
            "omni_loki_wal_replayed_total",
            "omni_loki_rerouted_total",
            "omni_loki_wal_records_total",
            "omni_delivery_enqueued_total",
            "omni_delivery_attempts_total",
            "omni_delivery_delivered_total",
            "omni_delivery_retried_total",
            "omni_delivery_failed_total",
            "omni_delivery_circuit_opens_total",
            "omni_delivery_circuit_closes_total",
            "omni_delivery_queue_depth",
            "omni_chaos_actions_total",
            "omni_chaos_flaky_rolls_total",
            "omni_chaos_flaky_failures_total",
            "omni_servicenow_events_total",
            "omni_servicenow_incidents",
            "omni_frontend_splits_total",
            "omni_frontend_cache_hits_total",
            "omni_frontend_cache_misses_total",
            "omni_frontend_rejected_total",
            "omni_frontend_cached_entries",
            "omni_query_records_total",
            "omni_query_slow_total",
            "omni_query_chunks_touched_total",
            "omni_query_blocks_decoded_total",
            "omni_query_blocks_skipped_total",
            "omni_query_bytes_decompressed_total",
            "omni_query_cold_chunks_total",
            "omni_trace_kept_total",
            "omni_trace_dropped_total",
            // Compactor + tiered-storage telemetry.
            "omni_compactor_runs_total",
            "omni_compactor_chunks_merged_total",
            "omni_compactor_objects_written_total",
            "omni_compactor_duplicates_dropped_total",
            "omni_compactor_retention_deleted_total",
            "omni_compactor_hot_objects",
            "omni_compactor_cold_objects",
            "omni_compactor_cold_bytes",
            "omni_compactor_cold_transient_failures_total",
        ] {
            c.add_scraped_metric(name, &[]);
        }
        // SLO meta-telemetry: burn rates per evaluation window, the
        // objective itself, and the remaining error budget.
        c.add_scraped_metric("omni_slo_burn_rate", &["slo", "window"]);
        c.add_scraped_metric("omni_slo_objective", &["slo"]);
        c.add_scraped_metric("omni_slo_error_budget_remaining", &["slo"]);
        for name in [
            "omni_bus_messages_in_total",
            "omni_bus_bytes_out_total",
            "omni_bus_tail_drops_total",
            "omni_bus_produce_retries_total",
            "omni_bus_consumer_lag",
        ] {
            c.add_scraped_metric(name, &["topic"]);
        }
        // Per-tenant admission/fairness telemetry. Tenant-scoped
        // families MUST carry the `tenant` label (the tenant-label
        // source rule rejects an omni_tenant_* registration without it).
        for name in [
            "omni_tenant_ingest_offered_total",
            "omni_tenant_ingest_accepted_total",
            "omni_tenant_ingest_rejected_total",
            "omni_tenant_queries_offered_total",
            "omni_tenant_queries_rejected_total",
            "omni_tenant_active_streams",
            "omni_tenant_query_wait_rounds",
        ] {
            c.add_scraped_metric(name, &["tenant"]);
        }
        for name in [
            "omni_bridge_fetch_retries_total",
            "omni_bridge_resubscribes_total",
            "omni_bridge_ingest_retries_total",
            "omni_bridge_dead_letter_total",
            "omni_bridge_in_flight",
        ] {
            c.add_scraped_metric(name, &["bridge"]);
        }
        c.add_scraped_metric("omni_notifications_total", &["receiver"]);
        for name in [
            "omni_ingest_batch_size",
            "omni_chunk_fill_ratio",
            "omni_event_to_incident_seconds",
            "omni_frontend_bytes_saved",
            "omni_query_latency_seconds",
        ] {
            c.add_scraped_histogram(name, &[]);
        }
        // Per-tenant scheduler queue wait, in virtual-clock seconds.
        c.add_scraped_histogram("omni_tenant_query_wait_seconds", &["tenant"]);

        // Loki stream labels the LogBridge (and the archive restore
        // path) can attach.
        for l in [
            "Context",
            "cluster",
            "data_type",
            "hostname",
            "pod",
            "app",
            "server",
            "trace_id",
            "restored",
            // Self-ingested telemetry streams (the slow-query log).
            "job",
            "component",
        ] {
            c.stream_labels.insert(l.to_string());
        }
        c
    }

    /// Register a directly ingested family.
    pub fn add_metric(&mut self, name: &str, labels: &[&str]) {
        let labels = labels.iter().map(|l| l.to_string()).collect();
        self.metrics.insert(name.to_string(), MetricInfo { labels });
    }

    /// Register a family that arrives via a vmagent scrape (gains
    /// `job`/`instance`).
    pub fn add_scraped_metric(&mut self, name: &str, labels: &[&str]) {
        let mut all: Vec<&str> = labels.to_vec();
        all.extend_from_slice(SCRAPE_LABELS);
        self.add_metric(name, &all);
    }

    /// Register a scraped histogram: the base name expands to
    /// `_bucket`/`_sum`/`_count`/`_p50`/`_p99` at gather time, with
    /// `_bucket` carrying the extra `le` label.
    pub fn add_scraped_histogram(&mut self, name: &str, labels: &[&str]) {
        for suffix in HISTOGRAM_SUFFIXES {
            let mut all: Vec<&str> = labels.to_vec();
            if *suffix == "_bucket" {
                all.push("le");
            }
            self.add_scraped_metric(&format!("{name}{suffix}"), &all);
        }
    }

    /// Register an allowed Loki stream label.
    pub fn add_stream_label(&mut self, name: &str) {
        self.stream_labels.insert(name.to_string());
    }

    /// Whether a metric family of this name can exist.
    pub fn has_metric(&self, name: &str) -> bool {
        self.metrics.contains_key(name)
    }

    /// Whether the base name of a histogram with this expanded name is
    /// registered (e.g. `omni_ingest_batch_size` for a lexically bare
    /// registration site — the expansion happens at gather time).
    pub fn has_histogram_base(&self, name: &str) -> bool {
        HISTOGRAM_SUFFIXES.iter().any(|s| self.metrics.contains_key(&format!("{name}{s}")))
    }

    /// Label keys a known metric may carry.
    pub fn metric_labels(&self, name: &str) -> Option<&BTreeSet<String>> {
        self.metrics.get(name).map(|m| &m.labels)
    }

    /// Whether a label key can appear on a Loki stream.
    pub fn is_stream_label(&self, name: &str) -> bool {
        self.stream_labels.contains(name)
    }

    /// All registered metric names, sorted.
    pub fn metric_names(&self) -> impl Iterator<Item = &str> {
        self.metrics.keys().map(String::as_str)
    }

    /// All allowed stream labels, sorted.
    pub fn stream_labels(&self) -> impl Iterator<Item = &str> {
        self.stream_labels.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_catalog_covers_the_paper_surfaces() {
        let c = Catalog::shipped();
        assert!(c.has_metric("shasta_temperature_celsius"));
        assert!(c.has_metric("shasta_leak_bool"));
        assert!(c.has_metric("gpfs_longest_waiter_seconds"));
        assert!(c.has_metric("up"));
        assert!(c.has_metric("omni_event_to_incident_seconds_p99"));
        assert!(!c.has_metric("omni_event_to_incident_seconds"));
        assert!(c.has_histogram_base("omni_event_to_incident_seconds"));
        let bucket = c.metric_labels("omni_ingest_batch_size_bucket").unwrap();
        assert!(bucket.contains("le"));
        assert!(c.metric_labels("omni_bus_consumer_lag").unwrap().contains("topic"));
        assert!(c.metric_labels("shasta_temperature_celsius").unwrap().contains("xname"));
        assert!(!c.metric_labels("shasta_temperature_celsius").unwrap().contains("job"));
        assert!(c.is_stream_label("data_type"));
        assert!(c.is_stream_label("trace_id"));
        assert!(!c.is_stream_label("Severity"));
        // Introspection families: SLO gauges, query statistics, and the
        // tenant queue-wait histogram (which must carry `tenant`).
        assert!(c.metric_labels("omni_slo_burn_rate").unwrap().contains("window"));
        assert!(c.has_metric("omni_query_slow_total"));
        // Compaction & tiered retention families.
        assert!(c.has_metric("omni_compactor_runs_total"));
        assert!(c.has_metric("omni_compactor_cold_objects"));
        assert!(c.has_metric("omni_query_cold_chunks_total"));
        assert!(c.has_histogram_base("omni_query_latency_seconds"));
        assert!(c.has_histogram_base("omni_tenant_query_wait_seconds"));
        assert!(c
            .metric_labels("omni_tenant_query_wait_seconds_bucket")
            .unwrap()
            .contains("tenant"));
        assert!(c.is_stream_label("job") && c.is_stream_label("component"));
    }
}

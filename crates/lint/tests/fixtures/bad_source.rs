// Deliberately broken "hot-path" source: every lint rule fires at least
// once, and the golden test pins the exact findings. NOT compiled — read
// as text by tests/golden.rs.

fn read_clock() -> i64 {
    let _t = std::time::Instant::now();
    let _w = SystemTime::now();
    0
}

fn hot_path(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a + b == 0 {
        panic!("impossible");
    }
    a
}

fn suppressed(x: Option<u32>) -> u32 {
    // Invariant: caller checked is_some. lint:allow(no-unwrap)
    x.unwrap()
}

fn registers(r: &Registry) {
    r.counter("bad.metric.name", "dots are not allowed", labels!());
    r.gauge("omni_not_in_catalog", "drifted", labels!());
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        Some(1).unwrap();
    }
}

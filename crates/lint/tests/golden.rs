//! Golden-file tests: the bad fixture produces exactly the pinned
//! findings (byte-identical across runs), and the real workspace plus
//! the shipped configuration produce none.

use omni_lint::{analyze, normalize, render_json, render_text, shipped_config, Catalog};
use std::path::Path;

fn crate_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn bad_fixture_matches_golden_findings_exactly() {
    let src = std::fs::read_to_string(crate_root().join("tests/fixtures/bad_source.rs"))
        .expect("fixture present");
    let golden = std::fs::read_to_string(crate_root().join("tests/fixtures/bad_source.golden"))
        .expect("golden present");

    // The fixture plays a hot-path catalog crate so every rule applies.
    let findings = normalize(omni_lint::lint_source(
        "tests/fixtures/bad_source.rs",
        "core",
        &src,
        &Catalog::shipped(),
    ));
    let text = render_text(&findings);
    assert_eq!(text, golden, "fixture findings drifted from the golden file");

    // Byte-identical across renders, text and JSON alike.
    assert_eq!(render_text(&findings), text);
    assert_eq!(render_json(&findings), render_json(&findings));

    // Every finding survives the JSON round trip.
    let parsed = omni_json::parse(&render_json(&findings)).expect("report is valid JSON");
    let items = parsed.pointer("/findings").and_then(|f| f.as_array().map(|a| a.len()));
    assert_eq!(items, Some(findings.len()));
}

#[test]
fn real_workspace_is_clean() {
    // crates/lint/.. /.. == the workspace root.
    let root = crate_root().join("../..");
    let findings = omni_lint::lint_workspace(&root);
    assert!(findings.is_empty(), "workspace sources must lint clean:\n{}", render_text(&findings));
}

#[test]
fn shipped_configuration_is_clean() {
    let findings = analyze(&shipped_config());
    assert!(findings.is_empty(), "shipped config must lint clean:\n{}", render_text(&findings));
}

#[test]
fn broken_config_produces_exact_sorted_findings() {
    use omni_lint::{LintConfig, NamedQuery, QueryLang, RuleSpec};

    let mut cfg = LintConfig::new(Catalog::shipped());
    // Three distinct defects, pushed out of order on purpose.
    cfg.rules.push(RuleSpec {
        source: "vmalert:Typo".into(),
        lang: QueryLang::PromQl,
        expr: "max by (xname) (shasta_temprature_celsius) > 90".into(),
        for_ns: 60_000_000_000,
    });
    cfg.queries.push(NamedQuery {
        source: "dashboard:X:bad-stream".into(),
        lang: QueryLang::LogQl,
        query: r#"{datatype="syslog"}"#.into(),
    });
    cfg.buckets.push(("stack:bad".into(), vec![1.0, 2.0, 2.0]));

    let findings = analyze(&cfg);
    let rules: Vec<&str> = findings.iter().map(|f| f.rule.as_str()).collect();
    // Already normalized: sorted by (file, line, rule, message).
    assert_eq!(rules, vec!["unknown-label", "bucket-order", "unknown-metric"], "{findings:?}");
    assert_eq!(findings[0].file, "dashboard:X:bad-stream");
    assert_eq!(findings[1].file, "stack:bad");
    assert_eq!(findings[2].file, "vmalert:Typo");
    assert_eq!(analyze(&cfg), findings, "analysis must be deterministic");
}

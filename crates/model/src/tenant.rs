//! Tenant identity and deterministic rate limiting.
//!
//! Real Loki scopes every request with the `X-Scope-OrgID` header and
//! resolves per-tenant override limits on top of the defaults; OMNI serves
//! many NERSC teams from one shared warehouse, so the reproduction carries
//! the same dimension. A [`TenantId`] names the workload owner on every
//! ingest and query path, and a [`TokenBucket`] meters each tenant's
//! admission rate against the virtual clock — fully deterministic, so a
//! chaos seed replays to byte-identical shed decisions.

use crate::time::{Timestamp, NANOS_PER_SEC};
use std::fmt;
use std::sync::{Arc, Mutex};

/// The tenant every unscoped request is attributed to, mirroring Loki's
/// `fake` org-id used when auth is disabled.
pub const ANONYMOUS_TENANT: &str = "anonymous";

/// A tenant identifier (the `X-Scope-OrgID` of the reproduction).
///
/// Cheap to clone (`Arc<str>` inside) and usable as a map key; ordering is
/// lexicographic so snapshots and reports are stable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(Arc<str>);

impl TenantId {
    /// Create a tenant id.
    pub fn new(id: impl AsRef<str>) -> Self {
        Self(Arc::from(id.as_ref()))
    }

    /// The default tenant unscoped requests run as.
    pub fn anonymous() -> Self {
        Self::new(ANONYMOUS_TENANT)
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TenantId {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

impl From<String> for TenantId {
    fn from(s: String) -> Self {
        Self::new(s)
    }
}

#[derive(Debug)]
struct BucketState {
    /// Available capacity in nano-tokens (tokens × 1e9) so refills stay in
    /// integer arithmetic and replay deterministically.
    nano_tokens: u128,
    /// Virtual time of the last refill.
    last_refill: Timestamp,
}

/// A deterministic token bucket over the virtual clock.
///
/// Refill is computed from elapsed virtual nanoseconds — no wall clock, no
/// background thread — so admission decisions depend only on the request
/// sequence and the clock, which is what makes the multi-tenant chaos
/// drill reproducible. A bucket with `rate_per_sec == 0` and `burst == 0`
/// admits nothing (the zero-limit tenant).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: u64,
    burst: u64,
    state: Arc<Mutex<BucketState>>,
}

impl TokenBucket {
    /// A bucket refilling `rate_per_sec` tokens per virtual second with a
    /// capacity of `burst` tokens, starting full at `now`.
    pub fn new(rate_per_sec: u64, burst: u64, now: Timestamp) -> Self {
        Self {
            rate_per_sec,
            burst,
            state: Arc::new(Mutex::new(BucketState {
                nano_tokens: burst as u128 * NANOS_PER_SEC as u128,
                last_refill: now,
            })),
        }
    }

    /// Configured refill rate (tokens per virtual second).
    pub fn rate_per_sec(&self) -> u64 {
        self.rate_per_sec
    }

    /// Configured burst capacity.
    pub fn burst(&self) -> u64 {
        self.burst
    }

    /// Take `tokens` tokens at virtual time `now`; `false` means the caller
    /// must shed the request. Time moving backwards (stale `now` from a
    /// racing reader) refills nothing instead of panicking.
    pub fn try_acquire(&self, now: Timestamp, tokens: u64) -> bool {
        let cap = self.burst as u128 * NANOS_PER_SEC as u128;
        let mut st = match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let elapsed = now.saturating_sub(st.last_refill).max(0) as u128;
        st.nano_tokens = st
            .nano_tokens
            .saturating_add(elapsed.saturating_mul(self.rate_per_sec as u128))
            .min(cap);
        st.last_refill = st.last_refill.max(now);
        let need = tokens as u128 * NANOS_PER_SEC as u128;
        if st.nano_tokens >= need && tokens <= self.burst {
            st.nano_tokens -= need;
            true
        } else {
            false
        }
    }

    /// Whole tokens currently available at `now`, without taking any.
    pub fn available(&self, now: Timestamp) -> u64 {
        let cap = self.burst as u128 * NANOS_PER_SEC as u128;
        let mut st = match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let elapsed = now.saturating_sub(st.last_refill).max(0) as u128;
        st.nano_tokens = st
            .nano_tokens
            .saturating_add(elapsed.saturating_mul(self.rate_per_sec as u128))
            .min(cap);
        st.last_refill = st.last_refill.max(now);
        (st.nano_tokens / NANOS_PER_SEC as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_id_basics() {
        let a = TenantId::new("alice");
        let b: TenantId = "alice".into();
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "alice");
        assert_eq!(a.to_string(), "alice");
        assert_eq!(TenantId::anonymous().as_str(), ANONYMOUS_TENANT);
        assert!(TenantId::new("a") < TenantId::new("b"));
    }

    #[test]
    fn bucket_starts_full_and_drains() {
        let b = TokenBucket::new(10, 5, 0);
        for _ in 0..5 {
            assert!(b.try_acquire(0, 1));
        }
        assert!(!b.try_acquire(0, 1), "burst exhausted");
    }

    #[test]
    fn bucket_refills_with_virtual_time() {
        let b = TokenBucket::new(10, 5, 0);
        assert!(b.try_acquire(0, 5));
        assert!(!b.try_acquire(0, 1));
        // 100ms at 10 tokens/s = 1 token.
        assert!(b.try_acquire(NANOS_PER_SEC / 10, 1));
        assert!(!b.try_acquire(NANOS_PER_SEC / 10, 1));
        // A long idle period refills to the cap, not beyond.
        assert_eq!(b.available(100 * NANOS_PER_SEC), 5);
    }

    #[test]
    fn zero_limit_bucket_admits_nothing() {
        let b = TokenBucket::new(0, 0, 0);
        assert!(!b.try_acquire(0, 1));
        assert!(!b.try_acquire(i64::MAX, 1), "no refill can ever admit");
    }

    #[test]
    fn oversized_request_never_admits() {
        let b = TokenBucket::new(1, 4, 0);
        assert!(!b.try_acquire(0, 5), "request larger than burst");
        assert!(b.try_acquire(0, 4));
    }

    #[test]
    fn backwards_time_is_harmless() {
        let b = TokenBucket::new(1, 1, 1_000);
        assert!(b.try_acquire(1_000, 1));
        // A stale timestamp must not panic or mint tokens.
        assert!(!b.try_acquire(0, 1));
        assert!(b.try_acquire(1_000 + NANOS_PER_SEC, 1));
    }

    #[test]
    fn sentinel_timestamps_do_not_overflow() {
        let b = TokenBucket::new(u64::MAX, u64::MAX, i64::MIN);
        assert!(b.try_acquire(i64::MAX, 1));
        let z = TokenBucket::new(1, 1, i64::MAX);
        assert!(z.try_acquire(i64::MAX, 1));
        assert!(!z.try_acquire(i64::MAX, 1));
    }
}

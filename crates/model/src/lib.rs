//! Shared data model for the shasta-mon monitoring stack.
//!
//! Every subsystem in the reproduction (the bus, the Loki-like log store,
//! the VictoriaMetrics-like TSDB, Alertmanager, ServiceNow) exchanges data
//! in terms of a small set of common types:
//!
//! * [`Timestamp`] — nanoseconds since the Unix epoch, the unit Loki uses
//!   for log entries ("The timestamp in Loki is an unix epoch in
//!   nanoseconds", §IV-A of the paper).
//! * [`LabelSet`] — an ordered set of key/value labels, the Prometheus/Loki
//!   stream identity.
//! * [`LogEntry`] / [`LogRecord`] — a timestamped log line, optionally
//!   paired with its stream labels.
//! * [`Sample`] — a timestamped float, the Prometheus metric sample.
//! * [`Severity`] — the Redfish/alert severity scale.
//! * [`SimClock`] — a virtual, thread-safe clock driving deterministic
//!   simulations.

pub mod clock;
pub mod labels;
pub mod retry;
pub mod severity;
pub mod tenant;
pub mod time;

pub use clock::SimClock;
pub use labels::{LabelSet, LabelSetBuilder};
pub use retry::{CircuitBreaker, CircuitState, RetryPolicy, RetryState};
pub use severity::Severity;
pub use tenant::{TenantId, TokenBucket, ANONYMOUS_TENANT};
pub use time::{format_iso8601, parse_iso8601, Timestamp, NANOS_PER_SEC};

/// A single log line as stored by the log store: a nanosecond timestamp and
/// the raw line content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Nanoseconds since the Unix epoch.
    pub ts: Timestamp,
    /// The log line ("string" in the paper's terminology).
    pub line: String,
}

impl LogEntry {
    /// Create a new entry.
    pub fn new(ts: Timestamp, line: impl Into<String>) -> Self {
        Self { ts, line: line.into() }
    }

    /// Size in bytes of the line content (used for `bytes_over_time` and
    /// ingestion accounting).
    pub fn line_bytes(&self) -> usize {
        self.line.len()
    }
}

/// A log entry together with the labels of the stream it belongs to.
///
/// This is the unit a Loki push request carries and the unit query results
/// return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Stream identity.
    pub labels: LabelSet,
    /// The timestamped line.
    pub entry: LogEntry,
}

impl LogRecord {
    /// Create a record from labels, timestamp and line.
    pub fn new(labels: LabelSet, ts: Timestamp, line: impl Into<String>) -> Self {
        Self { labels, entry: LogEntry::new(ts, line) }
    }
}

/// A single metric sample: millisecond-resolution timestamps are enough for
/// Prometheus-model metrics, but we keep nanoseconds for uniformity with the
/// log path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Nanoseconds since the Unix epoch.
    pub ts: Timestamp,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// Create a new sample.
    pub fn new(ts: Timestamp, value: f64) -> Self {
        Self { ts, value }
    }
}

/// A named metric observation with labels, as scraped from an exporter or
/// pushed by a bridge client.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRecord {
    /// Full label set including the `__name__` label.
    pub labels: LabelSet,
    /// The sample.
    pub sample: Sample,
}

impl MetricRecord {
    /// Create a record, inserting `name` as the `__name__` label.
    pub fn new(name: &str, labels: LabelSet, ts: Timestamp, value: f64) -> Self {
        let mut labels = labels;
        labels.insert("__name__", name);
        Self { labels, sample: Sample::new(ts, value) }
    }

    /// Metric name (the `__name__` label), if present.
    pub fn name(&self) -> Option<&str> {
        self.labels.get("__name__")
    }
}

/// FNV-1a 64-bit hash, used for label fingerprints and shard placement.
///
/// Implemented here so every crate fingerprints identically without an
/// external hashing dependency.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_entry_bytes() {
        let e = LogEntry::new(10, "hello");
        assert_eq!(e.line_bytes(), 5);
        assert_eq!(e.ts, 10);
    }

    #[test]
    fn metric_record_sets_name_label() {
        let r = MetricRecord::new("up", LabelSet::default(), 1, 1.0);
        assert_eq!(r.name(), Some("up"));
        assert_eq!(r.labels.get("__name__"), Some("up"));
    }

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_differs_on_content() {
        assert_ne!(fnv1a64(b"abc"), fnv1a64(b"abd"));
    }
}

//! Label sets: the stream/series identity shared by Loki and the TSDB.
//!
//! The paper: "Every log has one or more labels. If logs share the same
//! combination of unique labels, they are called a log stream." A label set
//! here is an always-sorted list of key/value pairs with a stable 64-bit
//! fingerprint, so that the same combination of labels maps to the same
//! stream (and the same ingester shard) everywhere in the pipeline.

use crate::fnv1a64;
use std::fmt;

/// An ordered set of `key=value` labels.
///
/// Stored as a sorted `Vec` rather than a map: label sets are small (the
/// paper explicitly argues for *few* labels per stream), and a sorted vec
/// is cheaper to hash, compare and iterate.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelSet {
    pairs: Vec<(String, String)>,
}

impl LabelSet {
    /// The empty label set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of pairs; later duplicates overwrite earlier.
    pub fn from_pairs<K: Into<String>, V: Into<String>>(
        pairs: impl IntoIterator<Item = (K, V)>,
    ) -> Self {
        let mut set = Self::new();
        for (k, v) in pairs {
            set.insert(k, v);
        }
        set
    }

    /// Insert or overwrite a label.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        let value = value.into();
        match self.pairs.binary_search_by(|(k, _)| k.as_str().cmp(&key)) {
            Ok(i) => self.pairs[i].1 = value,
            Err(i) => self.pairs.insert(i, (key, value)),
        }
    }

    /// Remove a label, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<String> {
        match self.pairs.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => Some(self.pairs.remove(i).1),
            Err(_) => None,
        }
    }

    /// Look up a label value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.pairs[i].1.as_str())
    }

    /// Whether the label exists.
    pub fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterate over `(key, value)` pairs in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.pairs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Stable 64-bit fingerprint of the whole set. Equal sets have equal
    /// fingerprints on every node, which is what the distributor uses for
    /// shard placement.
    pub fn fingerprint(&self) -> u64 {
        let mut buf =
            Vec::with_capacity(self.pairs.iter().map(|(k, v)| k.len() + v.len() + 2).sum());
        for (k, v) in &self.pairs {
            buf.extend_from_slice(k.as_bytes());
            buf.push(0xfe);
            buf.extend_from_slice(v.as_bytes());
            buf.push(0xff);
        }
        fnv1a64(&buf)
    }

    /// A copy of this set restricted to the given keys (`by` clause).
    pub fn project(&self, keys: &[String]) -> LabelSet {
        let mut out = LabelSet::new();
        for (k, v) in self.iter() {
            if keys.iter().any(|key| key == k) {
                out.insert(k, v);
            }
        }
        out
    }

    /// A copy of this set with the given keys removed (`without` clause).
    pub fn without(&self, keys: &[String]) -> LabelSet {
        let mut out = LabelSet::new();
        for (k, v) in self.iter() {
            if !keys.iter().any(|key| key == k) {
                out.insert(k, v);
            }
        }
        out
    }

    /// Merge `other` into a copy of `self`; labels in `other` win.
    pub fn merged_with(&self, other: &LabelSet) -> LabelSet {
        let mut out = self.clone();
        for (k, v) in other.iter() {
            out.insert(k, v);
        }
        out
    }

    /// Approximate in-memory footprint of the label data in bytes.
    pub fn bytes(&self) -> usize {
        self.pairs.iter().map(|(k, v)| k.len() + v.len()).sum()
    }
}

impl fmt::Display for LabelSet {
    /// Prometheus/Loki selector syntax: `{a="b", c="d"}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v:?}")?;
        }
        write!(f, "}}")
    }
}

impl<K: Into<String>, V: Into<String>> FromIterator<(K, V)> for LabelSet {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        Self::from_pairs(iter)
    }
}

/// Fluent builder for label sets.
///
/// ```
/// use omni_model::LabelSetBuilder;
/// let labels = LabelSetBuilder::new()
///     .label("cluster", "perlmutter")
///     .label("data_type", "redfish_event")
///     .build();
/// assert_eq!(labels.get("cluster"), Some("perlmutter"));
/// ```
#[derive(Debug, Default)]
pub struct LabelSetBuilder {
    set: LabelSet,
}

impl LabelSetBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a label.
    pub fn label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.set.insert(key, value);
        self
    }

    /// Finish and return the set.
    pub fn build(self) -> LabelSet {
        self.set
    }
}

/// Convenience macro for building a [`LabelSet`] literal.
#[macro_export]
macro_rules! labels {
    () => { $crate::LabelSet::new() };
    ($($k:expr => $v:expr),+ $(,)?) => {{
        let mut set = $crate::LabelSet::new();
        $( set.insert($k, $v); )+
        set
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_sorts_and_overwrites() {
        let mut s = LabelSet::new();
        s.insert("z", "1");
        s.insert("a", "2");
        s.insert("z", "3");
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs, vec![("a", "2"), ("z", "3")]);
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let a = LabelSet::from_pairs([("x", "1"), ("y", "2")]);
        let b = LabelSet::from_pairs([("y", "2"), ("x", "1")]);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_key_value_boundary() {
        // ("ab","c") must not collide with ("a","bc").
        let a = LabelSet::from_pairs([("ab", "c")]);
        let b = LabelSet::from_pairs([("a", "bc")]);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn project_and_without() {
        let s = LabelSet::from_pairs([("a", "1"), ("b", "2"), ("c", "3")]);
        let by = s.project(&["a".into(), "c".into()]);
        assert_eq!(by.len(), 2);
        assert_eq!(by.get("b"), None);
        let wo = s.without(&["b".into()]);
        assert_eq!(wo, by);
    }

    #[test]
    fn display_selector_syntax() {
        let s = LabelSet::from_pairs([("cluster", "perlmutter"), ("app", "fm")]);
        assert_eq!(s.to_string(), "{app=\"fm\", cluster=\"perlmutter\"}");
    }

    #[test]
    fn labels_macro() {
        let s = crate::labels!("a" => "1", "b" => "2");
        assert_eq!(s.get("a"), Some("1"));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn merged_with_other_wins() {
        let a = LabelSet::from_pairs([("k", "old"), ("x", "1")]);
        let b = LabelSet::from_pairs([("k", "new")]);
        let m = a.merged_with(&b);
        assert_eq!(m.get("k"), Some("new"));
        assert_eq!(m.get("x"), Some("1"));
    }

    #[test]
    fn remove_returns_value() {
        let mut s = LabelSet::from_pairs([("a", "1")]);
        assert_eq!(s.remove("a"), Some("1".to_string()));
        assert_eq!(s.remove("a"), None);
        assert!(s.is_empty());
    }
}

//! Virtual clock for deterministic simulation.
//!
//! The whole reproduction runs against simulated time so the paper's
//! scenarios (a leak at 2022-03-03T01:47:57Z, a 60-minute
//! `count_over_time` window, a one-minute `for:` hold on the alerting
//! rule) replay deterministically and instantly in tests and benches.

use crate::time::Timestamp;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A shared, thread-safe virtual clock measured in nanoseconds since the
/// Unix epoch.
///
/// Cloning a `SimClock` yields a handle onto the *same* clock; advancing it
/// from any handle is visible to all components holding one.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ns: Arc<AtomicI64>,
}

impl SimClock {
    /// A clock starting at the Unix epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock starting at the given nanosecond timestamp.
    pub fn starting_at(ts: Timestamp) -> Self {
        let clock = Self::new();
        clock.set(ts);
        clock
    }

    /// Current virtual time.
    pub fn now(&self) -> Timestamp {
        self.now_ns.load(Ordering::Acquire)
    }

    /// Jump the clock to an absolute time. Panics if this would move time
    /// backwards — monotonicity is an invariant every store relies on.
    pub fn set(&self, ts: Timestamp) {
        let prev = self.now_ns.swap(ts, Ordering::AcqRel);
        assert!(prev <= ts, "SimClock moved backwards: {prev} -> {ts}");
    }

    /// Advance the clock by a relative number of nanoseconds and return the
    /// new time.
    pub fn advance(&self, delta_ns: i64) -> Timestamp {
        assert!(delta_ns >= 0, "SimClock cannot advance by a negative delta");
        self.now_ns.fetch_add(delta_ns, Ordering::AcqRel) + delta_ns
    }

    /// Advance by whole seconds.
    pub fn advance_secs(&self, secs: i64) -> Timestamp {
        self.advance(secs * crate::time::NANOS_PER_SEC)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::NANOS_PER_SEC;

    #[test]
    fn handles_share_state() {
        let a = SimClock::starting_at(100);
        let b = a.clone();
        a.advance(50);
        assert_eq!(b.now(), 150);
    }

    #[test]
    fn advance_secs() {
        let c = SimClock::new();
        c.advance_secs(2);
        assert_eq!(c.now(), 2 * NANOS_PER_SEC);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn set_backwards_panics() {
        let c = SimClock::starting_at(100);
        c.set(50);
    }

    #[test]
    fn concurrent_advances_sum() {
        let c = SimClock::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.advance(1);
                    }
                });
            }
        });
        assert_eq!(c.now(), 8_000);
    }
}

//! Severity scale shared by Redfish events, alerting rules, Alertmanager
//! and ServiceNow.
//!
//! Redfish's registry defines `OK`, `Warning`, `Critical`; the paper's
//! fabric-manager monitor additionally emits `[critical]`-style bracketed
//! severities. ServiceNow maps these onto its own 1–5 severity scale, which
//! [`Severity::servicenow_code`] reproduces.

use std::fmt;
use std::str::FromStr;

/// Event/alert severity, ordered from least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; no action required.
    Info,
    /// Redfish `OK`: a condition cleared / returned to normal.
    Ok,
    /// Something needs attention soon.
    Warning,
    /// Something is degraded and needs attention now.
    Major,
    /// Service-affecting failure.
    Critical,
}

impl Severity {
    /// Canonical Redfish-style capitalised name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Info => "Info",
            Severity::Ok => "OK",
            Severity::Warning => "Warning",
            Severity::Major => "Major",
            Severity::Critical => "Critical",
        }
    }

    /// ServiceNow event severity code (1 = critical ... 5 = info/OK).
    pub fn servicenow_code(&self) -> u8 {
        match self {
            Severity::Critical => 1,
            Severity::Major => 2,
            Severity::Warning => 3,
            Severity::Ok => 5,
            Severity::Info => 5,
        }
    }

    /// Whether this severity should page the on-call (paper's Slack
    /// `#alerts` channel routing).
    pub fn is_actionable(&self) -> bool {
        matches!(self, Severity::Warning | Severity::Major | Severity::Critical)
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when a severity string is not recognised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeverityParseError(pub String);

impl fmt::Display for SeverityParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown severity {:?}", self.0)
    }
}

impl std::error::Error for SeverityParseError {}

impl FromStr for Severity {
    type Err = SeverityParseError;

    /// Case-insensitive parse accepting both Redfish (`Warning`) and
    /// bracketed log (`critical`) spellings.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "info" | "informational" => Ok(Severity::Info),
            "ok" | "clear" | "resolved" => Ok(Severity::Ok),
            "warning" | "warn" | "minor" => Ok(Severity::Warning),
            "major" | "error" => Ok(Severity::Major),
            "critical" | "crit" | "fatal" => Ok(Severity::Critical),
            other => Err(SeverityParseError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_ascending() {
        assert!(Severity::Critical > Severity::Warning);
        assert!(Severity::Warning > Severity::Ok);
        assert!(Severity::Ok > Severity::Info);
    }

    #[test]
    fn parse_both_spellings() {
        assert_eq!("Warning".parse::<Severity>().unwrap(), Severity::Warning);
        assert_eq!("critical".parse::<Severity>().unwrap(), Severity::Critical);
        assert_eq!("OK".parse::<Severity>().unwrap(), Severity::Ok);
        assert!("fluffy".parse::<Severity>().is_err());
    }

    #[test]
    fn servicenow_mapping() {
        assert_eq!(Severity::Critical.servicenow_code(), 1);
        assert_eq!(Severity::Warning.servicenow_code(), 3);
        assert_eq!(Severity::Ok.servicenow_code(), 5);
    }

    #[test]
    fn actionability() {
        assert!(Severity::Critical.is_actionable());
        assert!(!Severity::Info.is_actionable());
        assert!(!Severity::Ok.is_actionable());
    }

    #[test]
    fn display_roundtrip() {
        for s in
            [Severity::Info, Severity::Ok, Severity::Warning, Severity::Major, Severity::Critical]
        {
            assert_eq!(s.as_str().parse::<Severity>().unwrap(), s);
        }
    }
}

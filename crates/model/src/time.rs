//! Timestamp handling.
//!
//! The paper's bridge clients convert Redfish `EventTimestamp` fields
//! ("2022-03-03T01:47:57+00:00", ISO 8601) into "an unix epoch in
//! nanoseconds" before pushing to Loki. This module implements that
//! conversion (and its inverse) from scratch: civil-date arithmetic via the
//! days-from-civil algorithm, plus fixed-offset parsing.

/// Nanoseconds since the Unix epoch. Signed so pre-1970 arithmetic and
/// differences are well-defined.
pub type Timestamp = i64;

/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: i64 = 1_000_000_000;

/// Errors produced when parsing an ISO 8601 timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimeParseError {
    /// Input was not long enough to hold a date-time.
    TooShort,
    /// A numeric field did not parse.
    BadNumber(&'static str),
    /// A separator (`-`, `:`, `T`) was missing or wrong.
    BadSeparator(&'static str),
    /// The timezone suffix was not `Z` or `±HH:MM`.
    BadZone,
    /// A field was out of range (month 13, minute 61, ...).
    OutOfRange(&'static str),
}

impl std::fmt::Display for TimeParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimeParseError::TooShort => write!(f, "timestamp too short"),
            TimeParseError::BadNumber(what) => write!(f, "invalid number in {what}"),
            TimeParseError::BadSeparator(what) => write!(f, "missing separator before {what}"),
            TimeParseError::BadZone => write!(f, "invalid timezone suffix"),
            TimeParseError::OutOfRange(what) => write!(f, "{what} out of range"),
        }
    }
}

impl std::error::Error for TimeParseError {}

/// Days from the Unix epoch for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn parse_digits(s: &[u8], what: &'static str) -> Result<i64, TimeParseError> {
    if s.is_empty() {
        return Err(TimeParseError::BadNumber(what));
    }
    let mut v: i64 = 0;
    for &b in s {
        if !b.is_ascii_digit() {
            return Err(TimeParseError::BadNumber(what));
        }
        v = v * 10 + (b - b'0') as i64;
    }
    Ok(v)
}

/// Parse an ISO 8601 / RFC 3339 timestamp into nanoseconds since the Unix
/// epoch. Accepts `YYYY-MM-DDTHH:MM:SS`, an optional fractional-second part
/// up to nanosecond precision, and a zone of `Z`, `+HH:MM` or `-HH:MM`
/// (missing zone is treated as UTC).
///
/// ```
/// use omni_model::time::parse_iso8601;
/// // The leak event timestamp from Figure 2 of the paper:
/// let ns = parse_iso8601("2022-03-03T01:47:57+00:00").unwrap();
/// assert_eq!(ns, 1_646_272_077_000_000_000);
/// ```
pub fn parse_iso8601(s: &str) -> Result<Timestamp, TimeParseError> {
    let b = s.as_bytes();
    if b.len() < 19 {
        return Err(TimeParseError::TooShort);
    }
    let year = parse_digits(&b[0..4], "year")?;
    if b[4] != b'-' {
        return Err(TimeParseError::BadSeparator("month"));
    }
    let month = parse_digits(&b[5..7], "month")? as u32;
    if b[7] != b'-' {
        return Err(TimeParseError::BadSeparator("day"));
    }
    let day = parse_digits(&b[8..10], "day")? as u32;
    if b[10] != b'T' && b[10] != b' ' {
        return Err(TimeParseError::BadSeparator("time"));
    }
    let hour = parse_digits(&b[11..13], "hour")?;
    if b[13] != b':' {
        return Err(TimeParseError::BadSeparator("minute"));
    }
    let minute = parse_digits(&b[14..16], "minute")?;
    if b[16] != b':' {
        return Err(TimeParseError::BadSeparator("second"));
    }
    let second = parse_digits(&b[17..19], "second")?;

    if !(1..=12).contains(&month) {
        return Err(TimeParseError::OutOfRange("month"));
    }
    if !(1..=31).contains(&day) {
        return Err(TimeParseError::OutOfRange("day"));
    }
    if hour > 23 {
        return Err(TimeParseError::OutOfRange("hour"));
    }
    if minute > 59 {
        return Err(TimeParseError::OutOfRange("minute"));
    }
    if second > 60 {
        return Err(TimeParseError::OutOfRange("second"));
    }

    let mut idx = 19;
    let mut nanos: i64 = 0;
    if idx < b.len() && b[idx] == b'.' {
        idx += 1;
        let start = idx;
        while idx < b.len() && b[idx].is_ascii_digit() {
            idx += 1;
        }
        if idx == start {
            return Err(TimeParseError::BadNumber("fraction"));
        }
        let frac = &b[start..idx.min(start + 9)];
        let mut v = parse_digits(frac, "fraction")?;
        for _ in frac.len()..9 {
            v *= 10;
        }
        nanos = v;
    }

    // Zone.
    let zone_offset_secs: i64 = if idx >= b.len() {
        0
    } else {
        match b[idx] {
            b'Z' | b'z' => {
                if idx + 1 != b.len() {
                    return Err(TimeParseError::BadZone);
                }
                0
            }
            sign @ (b'+' | b'-') => {
                if b.len() < idx + 6 || b[idx + 3] != b':' {
                    return Err(TimeParseError::BadZone);
                }
                let zh = parse_digits(&b[idx + 1..idx + 3], "zone hour")?;
                let zm = parse_digits(&b[idx + 4..idx + 6], "zone minute")?;
                if zh > 23 || zm > 59 || b.len() != idx + 6 {
                    return Err(TimeParseError::BadZone);
                }
                let off = zh * 3600 + zm * 60;
                if sign == b'+' {
                    off
                } else {
                    -off
                }
            }
            _ => return Err(TimeParseError::BadZone),
        }
    };

    let days = days_from_civil(year, month, day);
    let secs = days * 86_400 + hour * 3600 + minute * 60 + second - zone_offset_secs;
    Ok(secs * NANOS_PER_SEC + nanos)
}

/// Format nanoseconds since the Unix epoch as `YYYY-MM-DDTHH:MM:SS[.fffffffff]Z`.
/// The fractional part is omitted when zero, matching common RFC 3339 output.
pub fn format_iso8601(ts: Timestamp) -> String {
    let (mut secs, mut nanos) = (ts.div_euclid(NANOS_PER_SEC), ts.rem_euclid(NANOS_PER_SEC));
    if nanos < 0 {
        nanos += NANOS_PER_SEC;
        secs -= 1;
    }
    let days = secs.div_euclid(86_400);
    let sod = secs.rem_euclid(86_400);
    let (y, m, d) = civil_from_days(days);
    let (hh, mm, ss) = (sod / 3600, (sod % 3600) / 60, sod % 60);
    if nanos == 0 {
        format!("{y:04}-{m:02}-{d:02}T{hh:02}:{mm:02}:{ss:02}Z")
    } else {
        format!("{y:04}-{m:02}-{d:02}T{hh:02}:{mm:02}:{ss:02}.{nanos:09}Z")
    }
}

/// Parse a Prometheus-style duration string (`90s`, `60m`, `1h30m`, `2d`,
/// `500ms`) into nanoseconds. Used by LogQL range selectors (`[60m]`) and
/// rule `for:` clauses.
pub fn parse_duration(s: &str) -> Result<i64, TimeParseError> {
    let b = s.as_bytes();
    if b.is_empty() {
        return Err(TimeParseError::TooShort);
    }
    let mut total: i64 = 0;
    let mut i = 0;
    while i < b.len() {
        let start = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        if i == start {
            return Err(TimeParseError::BadNumber("duration"));
        }
        let v = parse_digits(&b[start..i], "duration")?;
        let unit_start = i;
        while i < b.len() && !b[i].is_ascii_digit() {
            i += 1;
        }
        let mult = match &s[unit_start..i] {
            "ns" => 1,
            "us" | "µs" => 1_000,
            "ms" => 1_000_000,
            "s" => NANOS_PER_SEC,
            "m" => 60 * NANOS_PER_SEC,
            "h" => 3_600 * NANOS_PER_SEC,
            "d" => 86_400 * NANOS_PER_SEC,
            "w" => 7 * 86_400 * NANOS_PER_SEC,
            "y" => 365 * 86_400 * NANOS_PER_SEC,
            _ => return Err(TimeParseError::BadNumber("duration unit")),
        };
        total += v * mult;
    }
    Ok(total)
}

/// Format a nanosecond duration using the largest exact unit (inverse of
/// [`parse_duration`] for single-unit values).
pub fn format_duration(mut ns: i64) -> String {
    if ns == 0 {
        return "0s".to_string();
    }
    let mut out = String::new();
    for (unit, mult) in [
        ("d", 86_400 * NANOS_PER_SEC),
        ("h", 3_600 * NANOS_PER_SEC),
        ("m", 60 * NANOS_PER_SEC),
        ("s", NANOS_PER_SEC),
        ("ms", 1_000_000),
        ("us", 1_000),
        ("ns", 1),
    ] {
        if ns >= mult {
            out.push_str(&format!("{}{}", ns / mult, unit));
            ns %= mult;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_leak_event_timestamp() {
        // Figure 2 raw event timestamp -> Figure 3 Loki value timestamp.
        let ns = parse_iso8601("2022-03-03T01:47:57+00:00").unwrap();
        assert_eq!(ns, 1_646_272_077_000_000_000);
    }

    #[test]
    fn epoch_roundtrip() {
        assert_eq!(parse_iso8601("1970-01-01T00:00:00Z").unwrap(), 0);
        assert_eq!(format_iso8601(0), "1970-01-01T00:00:00Z");
    }

    #[test]
    fn zone_offsets() {
        let utc = parse_iso8601("2022-03-03T01:47:57Z").unwrap();
        let plus = parse_iso8601("2022-03-03T02:47:57+01:00").unwrap();
        let minus = parse_iso8601("2022-03-02T17:47:57-08:00").unwrap();
        assert_eq!(utc, plus);
        assert_eq!(utc, minus);
    }

    #[test]
    fn fractional_seconds() {
        let ns = parse_iso8601("2022-03-03T01:47:57.5Z").unwrap();
        assert_eq!(ns % NANOS_PER_SEC, 500_000_000);
        let ns = parse_iso8601("2022-03-03T01:47:57.000000001Z").unwrap();
        assert_eq!(ns % NANOS_PER_SEC, 1);
    }

    #[test]
    fn missing_zone_is_utc() {
        assert_eq!(
            parse_iso8601("2022-03-03T01:47:57").unwrap(),
            parse_iso8601("2022-03-03T01:47:57Z").unwrap()
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_iso8601("").is_err());
        assert!(parse_iso8601("2022-13-03T01:47:57Z").is_err());
        assert!(parse_iso8601("2022-03-03X01:47:57Z").is_err());
        assert!(parse_iso8601("2022-03-03T25:47:57Z").is_err());
        assert!(parse_iso8601("2022-03-03T01:47:57+0a:00").is_err());
    }

    #[test]
    fn format_matches_parse() {
        for s in [
            "2022-03-03T01:47:57Z",
            "1999-12-31T23:59:59Z",
            "2000-02-29T12:00:00Z",
            "2038-01-19T03:14:07Z",
        ] {
            let ns = parse_iso8601(s).unwrap();
            assert_eq!(format_iso8601(ns), s);
        }
    }

    #[test]
    fn leap_year_handling() {
        // 2000 was a leap year (divisible by 400), 1900 was not.
        assert!(parse_iso8601("2000-02-29T00:00:00Z").is_ok());
        let feb28 = parse_iso8601("2000-02-28T00:00:00Z").unwrap();
        let mar01 = parse_iso8601("2000-03-01T00:00:00Z").unwrap();
        assert_eq!(mar01 - feb28, 2 * 86_400 * NANOS_PER_SEC);
    }

    #[test]
    fn durations() {
        assert_eq!(parse_duration("60m").unwrap(), 3_600 * NANOS_PER_SEC);
        assert_eq!(parse_duration("1m").unwrap(), 60 * NANOS_PER_SEC);
        assert_eq!(parse_duration("1h30m").unwrap(), 5_400 * NANOS_PER_SEC);
        assert_eq!(parse_duration("500ms").unwrap(), 500_000_000);
        assert_eq!(parse_duration("2y").unwrap(), 2 * 365 * 86_400 * NANOS_PER_SEC);
        assert!(parse_duration("").is_err());
        assert!(parse_duration("10parsecs").is_err());
    }

    #[test]
    fn duration_format_roundtrip() {
        for s in ["60m", "1s", "1d", "500ms", "0s"] {
            let ns = parse_duration(s).unwrap();
            assert_eq!(parse_duration(&format_duration(ns)).unwrap(), ns);
        }
    }
}

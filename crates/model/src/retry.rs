//! Shared retry machinery: exponential backoff with deterministic jitter,
//! per-attempt retry state, and a simple circuit breaker.
//!
//! Every component that talks across a lossy boundary (the bus bridges, the
//! Alertmanager notification queue) shares this policy so chaos runs are
//! reproducible: jitter is derived from [`fnv1a64`] over a caller-provided
//! salt instead of a wall-clock or global RNG, which keeps a given chaos
//! seed byte-identical across runs.

use crate::{fnv1a64, Timestamp};

/// Exponential backoff policy with bounded, deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base_delay_ns: i64,
    /// Cap on the delay of any single retry.
    pub max_delay_ns: i64,
    /// Attempts after which the item is considered permanently failed
    /// (initial attempt included).
    pub max_attempts: u32,
    /// Jitter amplitude in permille of the capped delay: the deterministic
    /// jitter lands in `±jitter_permille/1000` of the exponential delay.
    pub jitter_permille: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base_delay_ns: 500_000_000,   // 500ms
            max_delay_ns: 60_000_000_000, // 60s
            max_attempts: 8,
            jitter_permille: 200, // ±20%
        }
    }
}

impl RetryPolicy {
    /// Whether another attempt is allowed after `attempts` tries so far.
    pub fn allows(&self, attempts: u32) -> bool {
        attempts < self.max_attempts
    }

    /// Backoff delay before retry number `attempt` (1-based: `attempt == 1`
    /// is the first retry). `salt` individualises the jitter per item —
    /// pass something stable like a message offset or receiver hash.
    pub fn delay_ns(&self, attempt: u32, salt: u64) -> i64 {
        let shift = attempt.saturating_sub(1).min(32);
        let exp = self.base_delay_ns.saturating_mul(1i64 << shift);
        let capped = exp.min(self.max_delay_ns).max(0);
        if self.jitter_permille == 0 || capped == 0 {
            return capped;
        }
        let mut material = [0u8; 12];
        material[..8].copy_from_slice(&salt.to_le_bytes());
        material[8..].copy_from_slice(&attempt.to_le_bytes());
        let h = fnv1a64(&material);
        // Deterministic fraction in [-1000, 1000] permille of the amplitude.
        let frac = (h % 2001) as i64 - 1000;
        let amplitude = capped / 1000 * self.jitter_permille as i64;
        capped + amplitude / 1000 * frac
    }

    /// The virtual timestamp at which retry `attempt` becomes due.
    /// Saturates instead of overflowing near the `i64::MAX` sentinel.
    pub fn due_at(&self, now: Timestamp, attempt: u32, salt: u64) -> Timestamp {
        now.saturating_add(self.delay_ns(attempt, salt))
    }
}

/// Per-item retry bookkeeping driven by a [`RetryPolicy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryState {
    /// Attempts made so far (initial attempt included).
    pub attempts: u32,
    /// Virtual time before which the item must not be retried.
    pub due_at: Timestamp,
}

impl RetryState {
    /// Fresh state: due immediately, no attempts recorded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the item may be attempted at `now`.
    pub fn due(&self, now: Timestamp) -> bool {
        now >= self.due_at
    }

    /// Record a failed attempt. Returns `false` when the policy is
    /// exhausted and the item should be dead-lettered.
    pub fn record_failure(&mut self, now: Timestamp, policy: &RetryPolicy, salt: u64) -> bool {
        self.attempts += 1;
        if !policy.allows(self.attempts) {
            return false;
        }
        self.due_at = policy.due_at(now, self.attempts, salt);
        true
    }
}

/// Circuit breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Requests flow normally.
    Closed,
    /// Requests are rejected until the cooldown passes.
    Open,
    /// The cooldown has elapsed but no success has confirmed recovery yet:
    /// probe attempts are allowed through; one success closes the circuit,
    /// one failure re-opens it.
    HalfOpen,
}

/// A consecutive-failure circuit breaker over the virtual clock.
///
/// After `failure_threshold` consecutive failures the circuit opens for
/// `cooldown_ns`; once the cooldown elapses the next attempt is allowed
/// through (half-open probe) and a success closes the circuit again.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    failure_threshold: u32,
    cooldown_ns: i64,
    consecutive_failures: u32,
    open_until: Timestamp,
    opens: u64,
    closes: u64,
}

impl CircuitBreaker {
    /// Create a breaker opening after `failure_threshold` consecutive
    /// failures, for `cooldown_ns` per open.
    pub fn new(failure_threshold: u32, cooldown_ns: i64) -> Self {
        assert!(failure_threshold > 0, "threshold must be positive");
        Self {
            failure_threshold,
            cooldown_ns,
            consecutive_failures: 0,
            open_until: i64::MIN,
            opens: 0,
            closes: 0,
        }
    }

    /// Whether an attempt is allowed at `now`.
    pub fn allows(&self, now: Timestamp) -> bool {
        now >= self.open_until
    }

    /// Current state at `now`: `Closed` while healthy, `Open` inside the
    /// cooldown, `HalfOpen` once the cooldown has elapsed but no success
    /// has confirmed recovery yet.
    pub fn state(&self, now: Timestamp) -> CircuitState {
        if self.open_until == i64::MIN {
            CircuitState::Closed
        } else if now < self.open_until {
            CircuitState::Open
        } else {
            CircuitState::HalfOpen
        }
    }

    /// Record a successful attempt: closes the circuit (counted as a close
    /// when the breaker had tripped, i.e. a half-open probe succeeded).
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        if self.open_until != i64::MIN {
            self.closes += 1;
        }
        self.open_until = i64::MIN;
    }

    /// Record a failed attempt at `now`. Returns `true` when this failure
    /// tripped the breaker open.
    pub fn record_failure(&mut self, now: Timestamp) -> bool {
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.failure_threshold && self.allows(now) {
            self.open_until = now.saturating_add(self.cooldown_ns);
            self.opens += 1;
            return true;
        }
        false
    }

    /// How many times the breaker has opened.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// How many times a successful probe closed a tripped breaker.
    pub fn closes(&self) -> u64 {
        self.closes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            base_delay_ns: 1_000,
            max_delay_ns: 16_000,
            max_attempts: 10,
            jitter_permille: 0,
        };
        assert_eq!(p.delay_ns(1, 0), 1_000);
        assert_eq!(p.delay_ns(2, 0), 2_000);
        assert_eq!(p.delay_ns(3, 0), 4_000);
        assert_eq!(p.delay_ns(10, 0), 16_000); // capped
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            base_delay_ns: 1_000_000,
            max_delay_ns: 1_000_000_000,
            max_attempts: 10,
            jitter_permille: 200,
        };
        for attempt in 1..6 {
            for salt in 0..20u64 {
                let a = p.delay_ns(attempt, salt);
                let b = p.delay_ns(attempt, salt);
                assert_eq!(a, b, "same inputs must give the same delay");
                let nominal = 1_000_000i64 << (attempt - 1);
                let amplitude = nominal / 5; // 20%
                assert!((a - nominal).abs() <= amplitude, "delay {a} vs nominal {nominal}");
            }
        }
        // Different salts actually spread.
        let spread: std::collections::HashSet<i64> = (0..50u64).map(|s| p.delay_ns(1, s)).collect();
        assert!(spread.len() > 10);
    }

    #[test]
    fn retry_state_exhausts() {
        let p = RetryPolicy {
            base_delay_ns: 10,
            max_delay_ns: 100,
            max_attempts: 3,
            jitter_permille: 0,
        };
        let mut st = RetryState::new();
        assert!(st.due(0));
        assert!(st.record_failure(0, &p, 7)); // attempt 1 → retry allowed
        assert!(!st.due(st.due_at - 1));
        assert!(st.due(st.due_at));
        assert!(st.record_failure(st.due_at, &p, 7)); // attempt 2
        assert!(!st.record_failure(st.due_at, &p, 7)); // attempt 3 → exhausted
    }

    #[test]
    fn circuit_state_walks_closed_open_halfopen_closed() {
        let mut cb = CircuitBreaker::new(2, 1_000);
        assert_eq!(cb.state(0), CircuitState::Closed);
        cb.record_failure(0);
        assert_eq!(cb.state(0), CircuitState::Closed); // below threshold
        cb.record_failure(0); // trips
        assert_eq!(cb.state(500), CircuitState::Open);
        assert_eq!(cb.state(1_000), CircuitState::HalfOpen); // cooldown over, unconfirmed
        assert!(cb.allows(1_000)); // the probe is allowed through
        cb.record_success();
        assert_eq!(cb.state(1_001), CircuitState::Closed);
        assert_eq!((cb.opens(), cb.closes()), (1, 1));
        // A failed probe re-opens instead of closing.
        cb.record_failure(2_000);
        cb.record_failure(2_000);
        assert_eq!(cb.state(3_000), CircuitState::HalfOpen);
        assert!(cb.record_failure(3_000), "failed probe must trip again");
        assert_eq!(cb.state(3_500), CircuitState::Open);
        assert_eq!((cb.opens(), cb.closes()), (3, 1));
        // A success on a never-tripped breaker is not a "close".
        let mut fresh = CircuitBreaker::new(2, 1_000);
        fresh.record_success();
        assert_eq!(fresh.closes(), 0);
    }

    #[test]
    fn due_at_saturates_near_sentinel_now() {
        // Regression: `now + delay` used to overflow in debug builds when
        // the caller's clock sat at the `i64::MAX` "never" sentinel.
        let p = RetryPolicy::default();
        assert_eq!(p.due_at(i64::MAX, 1, 7), i64::MAX);
        assert!(p.due_at(i64::MAX - 1, 8, 7) >= i64::MAX - 1);
    }

    #[test]
    fn breaker_cooldown_saturates_near_sentinel_now() {
        // Regression: tripping at a sentinel timestamp used to overflow
        // `now + cooldown_ns`.
        let mut cb = CircuitBreaker::new(1, i64::MAX);
        assert!(cb.record_failure(1));
        assert!(!cb.allows(i64::MAX - 1));
        let mut cb2 = CircuitBreaker::new(1, 1_000);
        assert!(cb2.record_failure(i64::MAX));
        assert!(!cb2.allows(i64::MAX - 1));
    }

    #[test]
    fn circuit_breaker_opens_and_recovers() {
        let mut cb = CircuitBreaker::new(3, 1_000);
        assert!(cb.allows(0));
        assert!(!cb.record_failure(0));
        assert!(!cb.record_failure(0));
        assert!(cb.record_failure(0)); // third consecutive failure trips it
        assert!(!cb.allows(999));
        assert!(cb.allows(1_000)); // half-open probe after cooldown
        cb.record_success();
        assert!(cb.allows(1_001));
        assert_eq!(cb.opens(), 1);
        // Failures while open don't re-open (no double counting).
        let mut cb = CircuitBreaker::new(1, 1_000);
        assert!(cb.record_failure(0));
        assert!(!cb.record_failure(10));
        assert_eq!(cb.opens(), 1);
    }
}

//! Consumer groups with static membership and committed offsets.

use crate::{Broker, BusError, Message};

/// Description of a group's current membership (for introspection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsumerGroupDesc {
    /// Group name.
    pub group: String,
    /// Topic consumed.
    pub topic: String,
    /// Number of members.
    pub members: usize,
}

/// A member of a consumer group.
///
/// Partition assignment is computed dynamically from the group's current
/// membership: member `i` of `n` owns every partition `p` with
/// `p % n == i`. Joining a group therefore rebalances all members without
/// coordination (static, deterministic assignment — the slice of Kafka's
/// group protocol the pipeline needs).
pub struct Consumer {
    broker: Broker,
    group: String,
    topic: String,
    id: u64,
    n_partitions: usize,
}

pub(crate) fn join(
    broker: Broker,
    group: &str,
    topic: &str,
    n_partitions: usize,
) -> Result<Consumer, BusError> {
    let id = broker.register_member(group, topic);
    Ok(Consumer { broker, group: group.to_string(), topic: topic.to_string(), id, n_partitions })
}

impl Consumer {
    /// The group this consumer belongs to.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// Partitions currently assigned to this consumer.
    pub fn assignment(&self) -> Vec<usize> {
        let members = self.broker.group_members(&self.group, &self.topic);
        let Some(my_index) = members.iter().position(|&m| m == self.id) else {
            return Vec::new();
        };
        (0..self.n_partitions).filter(|p| p % members.len() == my_index).collect()
    }

    /// Poll up to `max` messages across assigned partitions, advancing
    /// (committing) offsets as it reads. Returns in partition order.
    pub fn poll(&mut self, max: usize) -> Result<Vec<Message>, BusError> {
        let mut out = Vec::new();
        for p in self.assignment() {
            if out.len() >= max {
                break;
            }
            let next = self.broker.committed(&self.group, &self.topic, p);
            let msgs = self.broker.fetch(&self.topic, p, next, max - out.len())?;
            if let Some(last) = msgs.last() {
                self.broker.commit(&self.group, &self.topic, p, last.offset + 1);
            }
            out.extend(msgs);
        }
        Ok(out)
    }

    /// Leave the group (also happens on drop).
    pub fn leave(&mut self) {
        self.broker.deregister_member(&self.group, &self.topic, self.id);
    }

    /// Group description.
    pub fn describe(&self) -> ConsumerGroupDesc {
        ConsumerGroupDesc {
            group: self.group.clone(),
            topic: self.topic.clone(),
            members: self.broker.group_members(&self.group, &self.topic).len(),
        }
    }
}

impl Drop for Consumer {
    fn drop(&mut self) {
        self.leave();
    }
}

#[cfg(test)]
mod tests {
    use crate::{Broker, TopicConfig};
    use omni_model::SimClock;

    fn broker_with_topic(partitions: usize) -> Broker {
        let b = Broker::new(SimClock::new());
        b.create_topic("t", TopicConfig { partitions, ..Default::default() }).unwrap();
        b
    }

    #[test]
    fn single_consumer_owns_all_partitions() {
        let b = broker_with_topic(4);
        let c = b.join_group("g", "t").unwrap();
        assert_eq!(c.assignment(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn two_consumers_split_partitions() {
        let b = broker_with_topic(4);
        let c1 = b.join_group("g", "t").unwrap();
        let c2 = b.join_group("g", "t").unwrap();
        assert_eq!(c1.assignment(), vec![0, 2]);
        assert_eq!(c2.assignment(), vec![1, 3]);
        assert_eq!(c1.describe().members, 2);
    }

    #[test]
    fn leave_rebalances() {
        let b = broker_with_topic(4);
        let c1 = b.join_group("g", "t").unwrap();
        {
            let _c2 = b.join_group("g", "t").unwrap();
            assert_eq!(c1.assignment().len(), 2);
        }
        // c2 dropped -> c1 owns everything again.
        assert_eq!(c1.assignment(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn poll_advances_committed_offsets() {
        let b = broker_with_topic(1);
        for i in 0..5 {
            b.produce("t", None, format!("{i}")).unwrap();
        }
        let mut c = b.join_group("g", "t").unwrap();
        let first = c.poll(3).unwrap();
        assert_eq!(first.len(), 3);
        let second = c.poll(10).unwrap();
        assert_eq!(second.len(), 2);
        assert_eq!(second[0].offset, 3);
        assert!(c.poll(10).unwrap().is_empty());
    }

    #[test]
    fn groups_are_independent() {
        let b = broker_with_topic(1);
        b.produce("t", None, &b"m"[..]).unwrap();
        let mut c1 = b.join_group("g1", "t").unwrap();
        let mut c2 = b.join_group("g2", "t").unwrap();
        assert_eq!(c1.poll(10).unwrap().len(), 1);
        assert_eq!(c2.poll(10).unwrap().len(), 1);
    }

    #[test]
    fn group_consumes_each_message_once() {
        let b = broker_with_topic(4);
        for i in 0..100 {
            b.produce("t", Some(&format!("k{i}")), format!("{i}")).unwrap();
        }
        let mut c1 = b.join_group("g", "t").unwrap();
        let mut c2 = b.join_group("g", "t").unwrap();
        let mut seen: Vec<String> = Vec::new();
        for c in [&mut c1, &mut c2] {
            for m in c.poll(1000).unwrap() {
                seen.push(String::from_utf8_lossy(&m.payload).into_owned());
            }
        }
        seen.sort_by_key(|s| s.parse::<u32>().unwrap());
        let expected: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        assert_eq!(seen, expected);
    }
}

//! Kafka-like in-process message bus.
//!
//! In the paper's pipeline (Fig 1), Kafka sits between the Shasta data
//! producers and everything downstream: "The HMS collector pushes data to
//! Kafka, where Kafka stores data in different topics by categories and
//! serves them to possible consumers." This crate reproduces the slice of
//! Kafka the pipeline relies on:
//!
//! * named **topics** split into **partitions**, each an append-only,
//!   offset-addressed log;
//! * **producers** that route records by key hash (same key → same
//!   partition → per-key ordering, the property the Telemetry API needs to
//!   keep per-component event order);
//! * **consumer groups** with partition assignment and committed offsets;
//! * **live tail** subscriptions over crossbeam channels (the push mode the
//!   paper's Telemetry API uses: "Kafka pushes data to the client via the
//!   API");
//! * size/age **retention** enforcement and per-topic metering.

mod consumer;
mod partition;
mod stats;

pub use consumer::{Consumer, ConsumerGroupDesc};
pub use partition::{Message, Partition};
pub use stats::{TopicStats, TopicStatsSnapshot};

use bytes::Bytes;
use omni_model::{fnv1a64, SimClock, TenantId, TokenBucket};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-topic configuration.
#[derive(Debug, Clone)]
pub struct TopicConfig {
    /// Number of partitions.
    pub partitions: usize,
    /// Retention horizon: messages older than this (vs the broker clock)
    /// may be dropped by [`Broker::enforce_retention`]. `None` = keep all.
    pub retention_ns: Option<i64>,
    /// Cap on the total retained bytes per partition; oldest messages are
    /// dropped first. `None` = unbounded.
    pub max_partition_bytes: Option<usize>,
}

impl Default for TopicConfig {
    fn default() -> Self {
        Self { partitions: 4, retention_ns: None, max_partition_bytes: None }
    }
}

/// Bus errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusError {
    /// Topic does not exist.
    UnknownTopic(String),
    /// Topic already exists with a different configuration.
    TopicExists(String),
    /// Partition index out of range.
    UnknownPartition(usize),
    /// The broker is inside an injected brownout window; the operation was
    /// rejected and should be retried after backoff.
    Unavailable,
    /// The producing tenant exhausted its admission quota; the record was
    /// shed at the bus handoff (`429`-style, reason `tenant_rejected`) and
    /// nothing was enqueued. Other tenants are unaffected.
    TenantRejected(TenantId),
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::UnknownTopic(t) => write!(f, "unknown topic {t:?}"),
            BusError::TopicExists(t) => write!(f, "topic {t:?} already exists"),
            BusError::UnknownPartition(p) => write!(f, "unknown partition {p}"),
            BusError::Unavailable => write!(f, "broker unavailable (brownout)"),
            BusError::TenantRejected(t) => {
                write!(f, "tenant {t} over produce quota (tenant_rejected)")
            }
        }
    }
}

impl std::error::Error for BusError {}

struct Topic {
    partitions: Vec<Partition>,
    config: TopicConfig,
    stats: TopicStats,
    round_robin: AtomicU64,
    /// Live-tail subscribers; closed channels are pruned on produce.
    tails: Mutex<Vec<crossbeam::channel::Sender<Message>>>,
}

/// Committed offsets per consumer group: (group, topic, partition) → next
/// offset to read.
type GroupOffsets = HashMap<(String, String, usize), u64>;

/// The broker: owner of all topics. Cheap to clone ([`Arc`] inside) and
/// safe to share across producer/consumer threads.
#[derive(Clone)]
pub struct Broker {
    inner: Arc<BrokerInner>,
}

/// One injected availability outage: operations inside `[from, until)`
/// (broker clock) fail with [`BusError::Unavailable`].
#[derive(Debug, Clone, Copy)]
struct Brownout {
    id: u64,
    from: i64,
    until: i64,
}

/// Per-tenant produce admission: the quota bucket plus the
/// offered/accepted/rejected ledger (`offered == accepted + rejected`).
struct TenantQuota {
    bucket: TokenBucket,
    offered: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
}

/// Snapshot of one tenant's produce admission ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantProduceStats {
    /// Produce attempts by the tenant.
    pub offered: u64,
    /// Attempts admitted past the quota.
    pub accepted: u64,
    /// Attempts shed with [`BusError::TenantRejected`].
    pub rejected: u64,
}

struct BrokerInner {
    topics: RwLock<HashMap<String, Arc<Topic>>>,
    offsets: Mutex<GroupOffsets>,
    /// (group, topic) → member ids, in join order.
    members: Mutex<HashMap<(String, String), Vec<u64>>>,
    next_member_id: AtomicU64,
    clock: SimClock,
    brownouts: Mutex<Vec<Brownout>>,
    brownout_seq: AtomicU64,
    /// Per-tenant produce quotas; tenants without one are unmetered.
    quotas: RwLock<HashMap<TenantId, Arc<TenantQuota>>>,
}

impl Broker {
    /// Create a broker on the given virtual clock.
    pub fn new(clock: SimClock) -> Self {
        Self {
            inner: Arc::new(BrokerInner {
                topics: RwLock::new(HashMap::new()),
                offsets: Mutex::new(HashMap::new()),
                members: Mutex::new(HashMap::new()),
                next_member_id: AtomicU64::new(0),
                clock,
                brownouts: Mutex::new(Vec::new()),
                brownout_seq: AtomicU64::new(0),
                quotas: RwLock::new(HashMap::new()),
            }),
        }
    }

    /// The broker's clock.
    pub fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    /// Schedule an availability outage: every produce/fetch whose broker
    /// clock falls in `[from_ns, until_ns)` fails with
    /// [`BusError::Unavailable`]. Windows may be scheduled ahead of time
    /// and overlap; expired windows are pruned lazily.
    pub fn inject_brownout(&self, from_ns: i64, until_ns: i64) {
        assert!(from_ns < until_ns, "brownout window must be non-empty");
        let id = self.inner.brownout_seq.fetch_add(1, Ordering::Relaxed);
        self.inner.brownouts.lock().push(Brownout { id, from: from_ns, until: until_ns });
    }

    /// Whether the broker is currently inside a brownout window.
    pub fn brownout_active(&self) -> bool {
        self.active_brownout().is_some()
    }

    /// The id of the brownout window covering the current clock, if any.
    fn active_brownout(&self) -> Option<u64> {
        let now = self.inner.clock.now();
        let mut windows = self.inner.brownouts.lock();
        windows.retain(|w| w.until > now);
        windows.iter().find(|w| w.from <= now).map(|w| w.id)
    }

    /// Create a topic. Errors if it already exists.
    pub fn create_topic(&self, name: &str, config: TopicConfig) -> Result<(), BusError> {
        assert!(config.partitions > 0, "topics need at least one partition");
        let mut topics = self.inner.topics.write();
        if topics.contains_key(name) {
            return Err(BusError::TopicExists(name.to_string()));
        }
        let topic = Topic {
            partitions: (0..config.partitions).map(|_| Partition::new()).collect(),
            config,
            stats: TopicStats::default(),
            round_robin: AtomicU64::new(0),
            tails: Mutex::new(Vec::new()),
        };
        topics.insert(name.to_string(), Arc::new(topic));
        Ok(())
    }

    /// Create the topic if missing (idempotent convenience).
    pub fn ensure_topic(&self, name: &str, config: TopicConfig) {
        let _ = self.create_topic(name, config);
    }

    /// All topic names, sorted.
    pub fn topics(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.topics.read().keys().cloned().collect();
        names.sort();
        names
    }

    fn topic(&self, name: &str) -> Result<Arc<Topic>, BusError> {
        self.inner
            .topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| BusError::UnknownTopic(name.to_string()))
    }

    /// Install (or hot-reload) a produce quota for `tenant`: at most
    /// `rate_per_sec` records per virtual second with bursts up to `burst`.
    /// A zero/zero quota sheds everything the tenant offers.
    pub fn set_tenant_quota(&self, tenant: &TenantId, rate_per_sec: u64, burst: u64) {
        let now = self.inner.clock.now();
        let mut quotas = self.inner.quotas.write();
        match quotas.get(tenant) {
            // Hot reload keeps the ledger, replaces only the bucket.
            Some(existing) => {
                let fresh = TenantQuota {
                    bucket: TokenBucket::new(rate_per_sec, burst, now),
                    offered: AtomicU64::new(existing.offered.load(Ordering::Relaxed)),
                    accepted: AtomicU64::new(existing.accepted.load(Ordering::Relaxed)),
                    rejected: AtomicU64::new(existing.rejected.load(Ordering::Relaxed)),
                };
                quotas.insert(tenant.clone(), Arc::new(fresh));
            }
            None => {
                quotas.insert(
                    tenant.clone(),
                    Arc::new(TenantQuota {
                        bucket: TokenBucket::new(rate_per_sec, burst, now),
                        offered: AtomicU64::new(0),
                        accepted: AtomicU64::new(0),
                        rejected: AtomicU64::new(0),
                    }),
                );
            }
        }
    }

    /// Remove a tenant's produce quota (back to unmetered).
    pub fn clear_tenant_quota(&self, tenant: &TenantId) {
        self.inner.quotas.write().remove(tenant);
    }

    /// One tenant's produce admission ledger, if a quota is installed.
    pub fn tenant_produce_stats(&self, tenant: &TenantId) -> Option<TenantProduceStats> {
        let quotas = self.inner.quotas.read();
        quotas.get(tenant).map(|q| TenantProduceStats {
            offered: q.offered.load(Ordering::Relaxed),
            accepted: q.accepted.load(Ordering::Relaxed),
            rejected: q.rejected.load(Ordering::Relaxed),
        })
    }

    /// [`Broker::produce`] on behalf of a tenant: the record is admitted
    /// against the tenant's quota first and shed with
    /// [`BusError::TenantRejected`] when the quota is exhausted — a typed
    /// rejection, never a silent drop, and never an error for any other
    /// tenant.
    pub fn produce_as(
        &self,
        tenant: &TenantId,
        topic: &str,
        key: Option<&str>,
        payload: impl Into<Bytes>,
    ) -> Result<(usize, u64), BusError> {
        let quota = self.inner.quotas.read().get(tenant).cloned();
        if let Some(q) = quota {
            q.offered.fetch_add(1, Ordering::Relaxed);
            if !q.bucket.try_acquire(self.inner.clock.now(), 1) {
                q.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(BusError::TenantRejected(tenant.clone()));
            }
            // Admission spent a token; a brownout failure afterwards is an
            // availability error, not an admission rejection, so it still
            // counts as accepted by the quota.
            q.accepted.fetch_add(1, Ordering::Relaxed);
        }
        self.produce_with_headers(topic, key, payload, Vec::new())
    }

    /// Produce a record. Keyed records go to `hash(key) % partitions`
    /// (preserving per-key order); unkeyed records round-robin.
    /// Returns `(partition, offset)`.
    pub fn produce(
        &self,
        topic: &str,
        key: Option<&str>,
        payload: impl Into<Bytes>,
    ) -> Result<(usize, u64), BusError> {
        self.produce_with_headers(topic, key, payload, Vec::new())
    }

    /// [`Broker::produce`] with Kafka-style record headers attached — the
    /// carrier for cross-stage metadata such as the trace-propagation
    /// header, kept out of the payload so consumers that don't care never
    /// see it.
    pub fn produce_with_headers(
        &self,
        topic: &str,
        key: Option<&str>,
        payload: impl Into<Bytes>,
        headers: Vec<(String, String)>,
    ) -> Result<(usize, u64), BusError> {
        let t = self.topic(topic)?;
        if let Some(window) = self.active_brownout() {
            t.stats.record_produce_retry();
            t.stats.record_unavailable(window);
            return Err(BusError::Unavailable);
        }
        let payload: Bytes = payload.into();
        let part_idx = match key {
            Some(k) => (fnv1a64(k.as_bytes()) % t.partitions.len() as u64) as usize,
            None => {
                (t.round_robin.fetch_add(1, Ordering::Relaxed) % t.partitions.len() as u64) as usize
            }
        };
        let ts = self.inner.clock.now();
        let msg = Message {
            partition: part_idx,
            offset: 0, // assigned by the partition
            ts,
            key: key.map(str::to_string),
            payload,
            headers,
        };
        let (offset, bytes) = t.partitions[part_idx].append(msg.clone());
        t.stats.record_in(bytes);
        // Enforce per-partition byte cap eagerly.
        if let Some(cap) = t.config.max_partition_bytes {
            t.partitions[part_idx].truncate_to_bytes(cap);
        }
        // Fan out to live tails, pruning closed ones.
        {
            let mut tails = t.tails.lock();
            if !tails.is_empty() {
                let mut delivered = Message { offset, ..msg };
                tails.retain(|tx| match tx.try_send(delivered.clone()) {
                    Ok(()) => true,
                    Err(crossbeam::channel::TrySendError::Full(m)) => {
                        // Slow subscriber: drop this message for them but
                        // keep the subscription (at-most-once tail).
                        delivered = m;
                        t.stats.record_tail_drop();
                        true
                    }
                    Err(crossbeam::channel::TrySendError::Disconnected(_)) => false,
                });
            }
        }
        Ok((part_idx, offset))
    }

    /// Read up to `max` messages from one partition starting at `offset`.
    pub fn fetch(
        &self,
        topic: &str,
        partition: usize,
        offset: u64,
        max: usize,
    ) -> Result<Vec<Message>, BusError> {
        let t = self.topic(topic)?;
        if let Some(window) = self.active_brownout() {
            t.stats.record_unavailable(window);
            return Err(BusError::Unavailable);
        }
        let p = t.partitions.get(partition).ok_or(BusError::UnknownPartition(partition))?;
        let msgs = p.read_from(offset, max);
        t.stats.record_out(msgs.iter().map(|m| m.payload.len()).sum());
        Ok(msgs)
    }

    /// Number of partitions of a topic.
    pub fn partition_count(&self, topic: &str) -> Result<usize, BusError> {
        Ok(self.topic(topic)?.partitions.len())
    }

    /// Next offset that would be assigned in a partition (the "log end").
    pub fn log_end(&self, topic: &str, partition: usize) -> Result<u64, BusError> {
        let t = self.topic(topic)?;
        let p = t.partitions.get(partition).ok_or(BusError::UnknownPartition(partition))?;
        Ok(p.log_end())
    }

    /// Subscribe a live tail to a topic: every subsequently produced
    /// message is pushed into the returned channel (bounded by
    /// `buffer`; messages overflowing a slow consumer are dropped).
    pub fn tail(
        &self,
        topic: &str,
        buffer: usize,
    ) -> Result<crossbeam::channel::Receiver<Message>, BusError> {
        let t = self.topic(topic)?;
        let (tx, rx) = crossbeam::channel::bounded(buffer);
        t.tails.lock().push(tx);
        Ok(rx)
    }

    /// Join a consumer group on a topic. Each call creates one consumer and
    /// re-balances the group's partition assignment round-robin across the
    /// group's consumers (static membership: rebalancing happens on join).
    pub fn join_group(&self, group: &str, topic: &str) -> Result<Consumer, BusError> {
        let t = self.topic(topic)?;
        consumer::join(self.clone(), group, topic, t.partitions.len())
    }

    /// Committed cursor of a consumer group on a partition: the next
    /// offset the group would read (0 if never committed).
    pub fn committed(&self, group: &str, topic: &str, partition: usize) -> u64 {
        *self
            .inner
            .offsets
            .lock()
            .get(&(group.to_string(), topic.to_string(), partition))
            .unwrap_or(&0)
    }

    /// Commit a consumer group's cursor on a partition: `next` is the next
    /// offset the group will read. Offset-cursor clients (the bridges)
    /// commit here so the broker can meter their lag.
    pub fn commit(&self, group: &str, topic: &str, partition: usize, next: u64) {
        self.inner.offsets.lock().insert((group.to_string(), topic.to_string(), partition), next);
    }

    /// Consumer lag of one group on a topic: high-water mark (log end)
    /// minus committed cursor, summed over partitions. The key backlog
    /// signal for the offset-cursor bridges.
    pub fn group_lag(&self, group: &str, topic: &str) -> Result<u64, BusError> {
        let t = self.topic(topic)?;
        let offsets = self.inner.offsets.lock();
        let mut lag = 0u64;
        for (i, p) in t.partitions.iter().enumerate() {
            let committed = *offsets.get(&(group.to_string(), topic.to_string(), i)).unwrap_or(&0);
            lag += p.log_end().saturating_sub(committed);
        }
        Ok(lag)
    }

    /// Every consumer group that has committed a cursor on a topic, sorted.
    pub fn groups(&self, topic: &str) -> Vec<String> {
        let offsets = self.inner.offsets.lock();
        let mut groups: Vec<String> =
            offsets.keys().filter(|(_, t, _)| t == topic).map(|(g, _, _)| g.clone()).collect();
        groups.sort();
        groups.dedup();
        groups
    }

    pub(crate) fn register_member(&self, group: &str, topic: &str) -> u64 {
        let id = self.inner.next_member_id.fetch_add(1, Ordering::Relaxed);
        self.inner
            .members
            .lock()
            .entry((group.to_string(), topic.to_string()))
            .or_default()
            .push(id);
        id
    }

    pub(crate) fn deregister_member(&self, group: &str, topic: &str, id: u64) {
        if let Some(v) = self.inner.members.lock().get_mut(&(group.to_string(), topic.to_string()))
        {
            v.retain(|&m| m != id);
        }
    }

    pub(crate) fn group_members(&self, group: &str, topic: &str) -> Vec<u64> {
        self.inner
            .members
            .lock()
            .get(&(group.to_string(), topic.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    /// Drop messages older than each topic's retention horizon, relative
    /// to the broker clock. Returns total messages dropped.
    pub fn enforce_retention(&self) -> usize {
        let now = self.inner.clock.now();
        let topics = self.inner.topics.read();
        let mut dropped = 0;
        for t in topics.values() {
            if let Some(ret) = t.config.retention_ns {
                let horizon = now.saturating_sub(ret);
                for p in &t.partitions {
                    dropped += p.truncate_before(horizon);
                }
            }
        }
        dropped
    }

    /// Metering snapshot for one topic, including the worst consumer-group
    /// lag (see [`TopicStatsSnapshot::consumer_lag`]).
    pub fn stats(&self, topic: &str) -> Result<stats::TopicStatsSnapshot, BusError> {
        let mut snap = self.topic(topic)?.stats.snapshot();
        snap.consumer_lag = self
            .groups(topic)
            .iter()
            .map(|g| self.group_lag(g, topic).unwrap_or(0))
            .max()
            .unwrap_or(0);
        Ok(snap)
    }

    /// Total messages currently retained in a topic across partitions.
    pub fn retained(&self, topic: &str) -> Result<usize, BusError> {
        let t = self.topic(topic)?;
        Ok(t.partitions.iter().map(|p| p.len()).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::NANOS_PER_SEC;

    fn broker() -> Broker {
        Broker::new(SimClock::starting_at(1_000 * NANOS_PER_SEC))
    }

    #[test]
    fn produce_and_fetch_roundtrip() {
        let b = broker();
        b.create_topic("redfish-events", TopicConfig { partitions: 1, ..Default::default() })
            .unwrap();
        b.produce("redfish-events", None, &b"hello"[..]).unwrap();
        b.produce("redfish-events", None, &b"world"[..]).unwrap();
        let msgs = b.fetch("redfish-events", 0, 0, 10).unwrap();
        assert_eq!(msgs.len(), 2);
        assert_eq!(&msgs[0].payload[..], b"hello");
        assert_eq!(msgs[0].offset, 0);
        assert_eq!(msgs[1].offset, 1);
    }

    #[test]
    fn keyed_messages_keep_per_key_order_in_one_partition() {
        let b = broker();
        b.create_topic("t", TopicConfig { partitions: 8, ..Default::default() }).unwrap();
        let mut first_partition = None;
        for i in 0..50 {
            let (p, _) = b.produce("t", Some("x1000c0"), format!("{i}")).unwrap();
            let fp = *first_partition.get_or_insert(p);
            assert_eq!(p, fp, "same key must stay on one partition");
        }
        let p = first_partition.unwrap();
        let msgs = b.fetch("t", p, 0, 100).unwrap();
        let bodies: Vec<String> =
            msgs.iter().map(|m| String::from_utf8_lossy(&m.payload).into_owned()).collect();
        assert_eq!(bodies, (0..50).map(|i| i.to_string()).collect::<Vec<_>>());
    }

    #[test]
    fn unkeyed_round_robin_spreads() {
        let b = broker();
        b.create_topic("t", TopicConfig { partitions: 4, ..Default::default() }).unwrap();
        for _ in 0..40 {
            b.produce("t", None, &b"m"[..]).unwrap();
        }
        for p in 0..4 {
            assert_eq!(b.fetch("t", p, 0, 100).unwrap().len(), 10);
        }
    }

    #[test]
    fn unknown_topic_and_partition_error() {
        let b = broker();
        assert!(matches!(b.produce("nope", None, &b"x"[..]), Err(BusError::UnknownTopic(_))));
        b.create_topic("t", TopicConfig { partitions: 1, ..Default::default() }).unwrap();
        assert!(matches!(b.fetch("t", 5, 0, 1), Err(BusError::UnknownPartition(5))));
        assert!(matches!(
            b.create_topic("t", TopicConfig::default()),
            Err(BusError::TopicExists(_))
        ));
    }

    #[test]
    fn tail_receives_live_messages() {
        let b = broker();
        b.create_topic("t", TopicConfig { partitions: 2, ..Default::default() }).unwrap();
        let rx = b.tail("t", 16).unwrap();
        b.produce("t", Some("k"), &b"live"[..]).unwrap();
        let msg = rx.try_recv().unwrap();
        assert_eq!(&msg.payload[..], b"live");
        assert_eq!(msg.key.as_deref(), Some("k"));
    }

    #[test]
    fn slow_tail_drops_but_survives() {
        let b = broker();
        b.create_topic("t", TopicConfig { partitions: 1, ..Default::default() }).unwrap();
        let rx = b.tail("t", 2).unwrap();
        for i in 0..5 {
            b.produce("t", None, format!("{i}")).unwrap();
        }
        // Buffer of 2: the first two arrive, the rest were dropped.
        assert_eq!(rx.try_iter().count(), 2);
        assert_eq!(b.stats("t").unwrap().tail_drops, 3);
        // Subscription still works afterwards.
        b.produce("t", None, &b"after"[..]).unwrap();
        assert_eq!(rx.try_iter().count(), 1);
    }

    #[test]
    fn retention_by_age() {
        let b = broker();
        b.create_topic(
            "t",
            TopicConfig {
                partitions: 1,
                retention_ns: Some(10 * NANOS_PER_SEC),
                ..Default::default()
            },
        )
        .unwrap();
        b.produce("t", None, &b"old"[..]).unwrap();
        b.clock().advance_secs(60);
        b.produce("t", None, &b"new"[..]).unwrap();
        let dropped = b.enforce_retention();
        assert_eq!(dropped, 1);
        let msgs = b.fetch("t", 0, 0, 10).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(&msgs[0].payload[..], b"new");
        // Offsets are preserved across truncation.
        assert_eq!(msgs[0].offset, 1);
    }

    #[test]
    fn retention_by_bytes() {
        let b = broker();
        b.create_topic(
            "t",
            TopicConfig { partitions: 1, max_partition_bytes: Some(10), ..Default::default() },
        )
        .unwrap();
        for _ in 0..10 {
            b.produce("t", None, &b"xxxx"[..]).unwrap(); // 4 bytes each
        }
        // 10-byte cap: at most 2 retained (8 bytes) plus the new one is
        // trimmed to fit.
        assert!(b.retained("t").unwrap() <= 3);
        let end = b.log_end("t", 0).unwrap();
        assert_eq!(end, 10);
    }

    #[test]
    fn concurrent_producers_assign_unique_offsets() {
        let b = broker();
        b.create_topic("t", TopicConfig { partitions: 1, ..Default::default() }).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = b.clone();
                s.spawn(move || {
                    for _ in 0..500 {
                        b.produce("t", None, &b"m"[..]).unwrap();
                    }
                });
            }
        });
        let msgs = b.fetch("t", 0, 0, 10_000).unwrap();
        assert_eq!(msgs.len(), 4_000);
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(m.offset, i as u64);
        }
    }

    #[test]
    fn headers_ride_the_message() {
        let b = broker();
        b.create_topic("t", TopicConfig { partitions: 1, ..Default::default() }).unwrap();
        b.produce_with_headers(
            "t",
            Some("k"),
            &b"x"[..],
            vec![("omni-trace-id".into(), "00000000000000aa".into())],
        )
        .unwrap();
        let msgs = b.fetch("t", 0, 0, 10).unwrap();
        assert_eq!(msgs[0].header("omni-trace-id"), Some("00000000000000aa"));
        // Plain produce carries no headers.
        b.produce("t", None, &b"y"[..]).unwrap();
        assert!(b.fetch("t", 0, 1, 1).unwrap()[0].headers.is_empty());
    }

    #[test]
    fn consumer_lag_tracks_commits() {
        let b = broker();
        b.create_topic("t", TopicConfig { partitions: 2, ..Default::default() }).unwrap();
        for i in 0..10 {
            b.produce("t", Some(&format!("k{i}")), &b"m"[..]).unwrap();
        }
        // No group has committed anything yet: no lag is reported because
        // no group exists.
        assert_eq!(b.stats("t").unwrap().consumer_lag, 0);
        // A group that committed part of one partition owes the rest.
        b.commit("bridge", "t", 0, 1);
        let total: u64 = (0..2).map(|p| b.log_end("t", p).unwrap()).sum();
        assert_eq!(b.group_lag("bridge", "t").unwrap(), total - 1);
        assert_eq!(b.stats("t").unwrap().consumer_lag, total - 1);
        // Fully caught up: zero lag.
        for p in 0..2 {
            b.commit("bridge", "t", p, b.log_end("t", p).unwrap());
        }
        assert_eq!(b.stats("t").unwrap().consumer_lag, 0);
        // The slowest group defines the reported lag.
        b.commit("slow", "t", 0, 0);
        assert_eq!(b.stats("t").unwrap().consumer_lag, total);
        assert_eq!(b.groups("t"), vec!["bridge".to_string(), "slow".to_string()]);
    }

    #[test]
    fn tenant_quota_sheds_only_the_noisy_tenant() {
        let b = broker();
        b.create_topic("t", TopicConfig { partitions: 1, ..Default::default() }).unwrap();
        let noisy = TenantId::new("noisy");
        let calm = TenantId::new("calm");
        b.set_tenant_quota(&noisy, 0, 3); // 3-record burst, no refill
        b.set_tenant_quota(&calm, 1_000, 1_000);
        for i in 0..10 {
            let r = b.produce_as(&noisy, "t", None, format!("n{i}"));
            if i < 3 {
                assert!(r.is_ok());
            } else {
                assert_eq!(r, Err(BusError::TenantRejected(noisy.clone())));
            }
            // The calm tenant is untouched by the noisy tenant's shedding.
            b.produce_as(&calm, "t", None, format!("c{i}")).unwrap();
        }
        let n = b.tenant_produce_stats(&noisy).unwrap();
        assert_eq!((n.offered, n.accepted, n.rejected), (10, 3, 7));
        assert_eq!(n.offered, n.accepted + n.rejected);
        let c = b.tenant_produce_stats(&calm).unwrap();
        assert_eq!((c.offered, c.accepted, c.rejected), (10, 10, 0));
        // Unmetered tenants (no quota installed) are never shed.
        b.produce_as(&TenantId::new("other"), "t", None, &b"x"[..]).unwrap();
        assert!(b.tenant_produce_stats(&TenantId::new("other")).is_none());
    }

    #[test]
    fn tenant_quota_hot_reload_keeps_ledger() {
        let b = broker();
        b.create_topic("t", TopicConfig { partitions: 1, ..Default::default() }).unwrap();
        let tn = TenantId::new("team-a");
        b.set_tenant_quota(&tn, 0, 1);
        b.produce_as(&tn, "t", None, &b"a"[..]).unwrap();
        assert!(matches!(
            b.produce_as(&tn, "t", None, &b"b"[..]),
            Err(BusError::TenantRejected(_))
        ));
        // Mid-burst hot reload: the new bucket applies immediately, the
        // offered/accepted/rejected ledger carries over.
        b.set_tenant_quota(&tn, 0, 5);
        b.produce_as(&tn, "t", None, &b"c"[..]).unwrap();
        let s = b.tenant_produce_stats(&tn).unwrap();
        assert_eq!((s.offered, s.accepted, s.rejected), (3, 2, 1));
        b.clear_tenant_quota(&tn);
        b.produce_as(&tn, "t", None, &b"d"[..]).unwrap();
        assert!(b.tenant_produce_stats(&tn).is_none());
    }

    #[test]
    fn stats_metering() {
        let b = broker();
        b.create_topic("t", TopicConfig { partitions: 1, ..Default::default() }).unwrap();
        b.produce("t", None, &b"12345"[..]).unwrap();
        b.fetch("t", 0, 0, 10).unwrap();
        let s = b.stats("t").unwrap();
        assert_eq!(s.messages_in, 1);
        assert_eq!(s.bytes_in, 5);
        assert_eq!(s.bytes_out, 5);
    }
}

//! A single partition: an append-only, offset-addressed message log.

use bytes::Bytes;
use omni_model::Timestamp;

use parking_lot::RwLock;
use std::collections::VecDeque;

/// One record in a partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Partition this message lives in.
    pub partition: usize,
    /// Offset within the partition (monotone, never reused).
    pub offset: u64,
    /// Broker-assigned timestamp (nanoseconds).
    pub ts: Timestamp,
    /// Optional routing key.
    pub key: Option<String>,
    /// Opaque payload.
    pub payload: Bytes,
    /// Kafka-style record headers: small key/value metadata that rides the
    /// message without touching the payload (e.g. the `omni-trace-id`
    /// propagation header).
    pub headers: Vec<(String, String)>,
}

impl Message {
    /// Look up a header value by key (first match wins).
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

struct Log {
    /// Retained messages; front is oldest.
    messages: VecDeque<Message>,
    /// Offset of the *next* message to be appended.
    next_offset: u64,
    /// Total payload bytes currently retained.
    bytes: usize,
}

/// An append-only log with truncation from the front.
pub struct Partition {
    log: RwLock<Log>,
}

impl Default for Partition {
    fn default() -> Self {
        Self::new()
    }
}

impl Partition {
    /// Empty partition starting at offset 0.
    pub fn new() -> Self {
        Self { log: RwLock::new(Log { messages: VecDeque::new(), next_offset: 0, bytes: 0 }) }
    }

    /// Append a message (its `offset` field is overwritten with the
    /// assigned offset). Returns `(offset, payload_bytes)`.
    pub fn append(&self, mut msg: Message) -> (u64, usize) {
        let mut log = self.log.write();
        let offset = log.next_offset;
        msg.offset = offset;
        log.next_offset += 1;
        let payload_bytes = msg.payload.len();
        log.bytes += payload_bytes;
        log.messages.push_back(msg);
        (offset, payload_bytes)
    }

    /// Read up to `max` messages with `offset >= from`. Offsets below the
    /// retention floor are silently skipped (Kafka's auto-reset-to-earliest
    /// behaviour).
    pub fn read_from(&self, from: u64, max: usize) -> Vec<Message> {
        let log = self.log.read();
        let base = log.messages.front().map(|m| m.offset).unwrap_or(log.next_offset);
        let skip = from.saturating_sub(base) as usize;
        log.messages.iter().skip(skip).take(max).cloned().collect()
    }

    /// Offset the next append will get.
    pub fn log_end(&self) -> u64 {
        self.log.read().next_offset
    }

    /// Retained message count.
    pub fn len(&self) -> usize {
        self.log.read().messages.len()
    }

    /// Whether the partition holds no retained messages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop retained messages with `ts < horizon`. Returns how many were
    /// dropped. Offsets are never reused.
    pub fn truncate_before(&self, horizon: Timestamp) -> usize {
        let mut log = self.log.write();
        let mut dropped = 0;
        while log.messages.front().is_some_and(|m| m.ts < horizon) {
            let Some(m) = log.messages.pop_front() else { break };
            log.bytes -= m.payload.len();
            dropped += 1;
        }
        dropped
    }

    /// Drop oldest messages until retained payload bytes fit `cap`.
    pub fn truncate_to_bytes(&self, cap: usize) -> usize {
        let mut log = self.log.write();
        let mut dropped = 0;
        while log.bytes > cap {
            let Some(m) = log.messages.pop_front() else { break };
            log.bytes -= m.payload.len();
            dropped += 1;
        }
        dropped
    }

    /// Currently retained payload bytes.
    pub fn retained_bytes(&self) -> usize {
        self.log.read().bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(payload: &str, ts: Timestamp) -> Message {
        Message {
            partition: 0,
            offset: 0,
            ts,
            key: None,
            payload: Bytes::from(payload.to_string()),
            headers: Vec::new(),
        }
    }

    #[test]
    fn header_lookup() {
        let mut m = msg("x", 0);
        m.headers.push(("omni-trace-id".into(), "00000000000000ff".into()));
        assert_eq!(m.header("omni-trace-id"), Some("00000000000000ff"));
        assert_eq!(m.header("absent"), None);
    }

    #[test]
    fn append_assigns_monotone_offsets() {
        let p = Partition::new();
        assert_eq!(p.append(msg("a", 1)).0, 0);
        assert_eq!(p.append(msg("b", 2)).0, 1);
        assert_eq!(p.log_end(), 2);
    }

    #[test]
    fn read_from_mid_log() {
        let p = Partition::new();
        for i in 0..10 {
            p.append(msg(&i.to_string(), i));
        }
        let out = p.read_from(7, 10);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].offset, 7);
    }

    #[test]
    fn read_below_retention_floor_resets_to_earliest() {
        let p = Partition::new();
        for i in 0..10 {
            p.append(msg("x", i));
        }
        p.truncate_before(5);
        let out = p.read_from(0, 100);
        assert_eq!(out[0].offset, 5);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn byte_truncation_tracks_sizes() {
        let p = Partition::new();
        for _ in 0..5 {
            p.append(msg("abcd", 0));
        }
        assert_eq!(p.retained_bytes(), 20);
        let dropped = p.truncate_to_bytes(9);
        assert_eq!(dropped, 3);
        assert_eq!(p.retained_bytes(), 8);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn read_past_end_is_empty() {
        let p = Partition::new();
        p.append(msg("a", 1));
        assert!(p.read_from(5, 10).is_empty());
    }
}

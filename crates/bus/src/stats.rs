//! Per-topic metering with relaxed atomic counters (hot path).

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters for one topic.
#[derive(Debug, Default)]
pub struct TopicStats {
    messages_in: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    tail_drops: AtomicU64,
    produce_retries: AtomicU64,
    unavailable_windows: AtomicU64,
    /// `window id + 1` of the last brownout that touched this topic, so a
    /// window is counted once no matter how many operations it rejects.
    last_window: AtomicU64,
}

/// A point-in-time copy of [`TopicStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopicStatsSnapshot {
    /// Messages produced into the topic.
    pub messages_in: u64,
    /// Payload bytes produced.
    pub bytes_in: u64,
    /// Payload bytes served to fetchers.
    pub bytes_out: u64,
    /// Messages dropped on slow live-tail subscribers.
    pub tail_drops: u64,
    /// Produce attempts rejected by a brownout (each one is a retry the
    /// producer owes).
    pub produce_retries: u64,
    /// Distinct brownout windows during which this topic rejected at least
    /// one operation.
    pub unavailable_windows: u64,
    /// Worst consumer-group backlog on the topic: high-water mark minus
    /// committed cursor, summed over partitions, maximised over groups.
    /// Filled in by [`crate::Broker::stats`] (the counters here cannot see
    /// the partitions); 0 straight from [`TopicStats::snapshot`].
    pub consumer_lag: u64,
}

impl TopicStats {
    pub(crate) fn record_in(&self, bytes: usize) {
        self.messages_in.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_out(&self, bytes: usize) {
        self.bytes_out.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_tail_drop(&self) {
        self.tail_drops.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_produce_retry(&self) {
        self.produce_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Note that brownout window `id` rejected an operation on this topic,
    /// counting each window at most once.
    pub(crate) fn record_unavailable(&self, window_id: u64) {
        if self.last_window.swap(window_id + 1, Ordering::Relaxed) != window_id + 1 {
            self.unavailable_windows.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copy the counters.
    pub fn snapshot(&self) -> TopicStatsSnapshot {
        TopicStatsSnapshot {
            messages_in: self.messages_in.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            tail_drops: self.tail_drops.load(Ordering::Relaxed),
            produce_retries: self.produce_retries.load(Ordering::Relaxed),
            unavailable_windows: self.unavailable_windows.load(Ordering::Relaxed),
            consumer_lag: 0,
        }
    }
}

//! Property tests for the bus invariants the pipeline depends on.

use omni_bus::{Broker, BusError, TopicConfig};
use omni_model::{SimClock, NANOS_PER_SEC};
use proptest::prelude::*;

/// Brownout windows reject produce and fetch while active, meter
/// `produce_retries` per rejected produce and `unavailable_windows` once
/// per window, and nothing produced outside the window is lost.
#[test]
fn brownout_rejects_then_recovers_with_counters() {
    let clock = SimClock::starting_at(0);
    let broker = Broker::new(clock.clone());
    broker.create_topic("t", TopicConfig { partitions: 1, ..Default::default() }).unwrap();

    broker.produce("t", None, &b"before"[..]).unwrap();
    broker.inject_brownout(10 * NANOS_PER_SEC, 20 * NANOS_PER_SEC);
    assert!(!broker.brownout_active());

    clock.advance_secs(10);
    assert!(broker.brownout_active());
    for _ in 0..3 {
        assert_eq!(broker.produce("t", None, &b"lost"[..]), Err(BusError::Unavailable));
    }
    assert_eq!(broker.fetch("t", 0, 0, 10), Err(BusError::Unavailable));

    clock.advance_secs(10);
    assert!(!broker.brownout_active());
    broker.produce("t", None, &b"after"[..]).unwrap();

    let s = broker.stats("t").unwrap();
    assert_eq!(s.produce_retries, 3);
    assert_eq!(s.unavailable_windows, 1);
    let msgs = broker.fetch("t", 0, 0, 10).unwrap();
    assert_eq!(msgs.len(), 2);
    assert_eq!(&msgs[0].payload[..], b"before");
    assert_eq!(&msgs[1].payload[..], b"after");

    // A second, separate window bumps the window counter once more.
    broker.inject_brownout(30 * NANOS_PER_SEC, 31 * NANOS_PER_SEC);
    clock.advance_secs(10);
    assert_eq!(broker.produce("t", None, &b"x"[..]), Err(BusError::Unavailable));
    assert_eq!(broker.produce("t", None, &b"x"[..]), Err(BusError::Unavailable));
    let s = broker.stats("t").unwrap();
    assert_eq!(s.produce_retries, 5);
    assert_eq!(s.unavailable_windows, 2);
}

proptest! {
    /// Per-key ordering: however producers interleave keys, each key's
    /// messages come back in production order (this is what keeps one
    /// xname's Redfish events ordered through the pipeline).
    #[test]
    fn per_key_order_preserved(
        keys in prop::collection::vec(0u8..8, 1..200),
        partitions in 1usize..8,
    ) {
        let broker = Broker::new(SimClock::new());
        broker
            .create_topic("t", TopicConfig { partitions, ..Default::default() })
            .unwrap();
        let mut per_key_seq: Vec<Vec<u32>> = vec![Vec::new(); 8];
        for (i, &k) in keys.iter().enumerate() {
            broker.produce("t", Some(&format!("key{k}")), format!("{i}")).unwrap();
            per_key_seq[k as usize].push(i as u32);
        }
        // Drain every partition and reassemble per-key sequences.
        let mut got: Vec<Vec<u32>> = vec![Vec::new(); 8];
        for p in 0..partitions {
            for m in broker.fetch("t", p, 0, usize::MAX).unwrap() {
                let k: usize = m.key.as_ref().unwrap()[3..].parse().unwrap();
                let i: u32 = std::str::from_utf8(&m.payload).unwrap().parse().unwrap();
                got[k].push(i);
            }
        }
        for k in 0..8 {
            prop_assert_eq!(&got[k], &per_key_seq[k], "key {} out of order", k);
        }
    }

    /// Offsets are dense and monotone per partition, and fetch(from)
    /// returns exactly the suffix.
    #[test]
    fn offsets_dense_and_fetch_suffix(
        n in 0usize..300,
        from in 0u64..400,
    ) {
        let broker = Broker::new(SimClock::new());
        broker.create_topic("t", TopicConfig { partitions: 1, ..Default::default() }).unwrap();
        for i in 0..n {
            broker.produce("t", None, format!("{i}")).unwrap();
        }
        let all = broker.fetch("t", 0, 0, usize::MAX).unwrap();
        prop_assert_eq!(all.len(), n);
        for (i, m) in all.iter().enumerate() {
            prop_assert_eq!(m.offset, i as u64);
        }
        let suffix = broker.fetch("t", 0, from, usize::MAX).unwrap();
        prop_assert_eq!(suffix.len(), n.saturating_sub(from as usize));
        if let Some(first) = suffix.first() {
            prop_assert_eq!(first.offset, from);
        }
    }

    /// Consumer groups see every message exactly once regardless of how
    /// members split the partitions.
    #[test]
    fn group_sees_each_message_once(
        n in 1usize..200,
        partitions in 1usize..8,
        members in 1usize..4,
    ) {
        let broker = Broker::new(SimClock::new());
        broker
            .create_topic("t", TopicConfig { partitions, ..Default::default() })
            .unwrap();
        for i in 0..n {
            broker.produce("t", Some(&format!("k{i}")), format!("{i}")).unwrap();
        }
        let mut consumers: Vec<_> =
            (0..members).map(|_| broker.join_group("g", "t").unwrap()).collect();
        let mut seen: Vec<u32> = Vec::new();
        for c in &mut consumers {
            for m in c.poll(usize::MAX).unwrap() {
                seen.push(std::str::from_utf8(&m.payload).unwrap().parse().unwrap());
            }
        }
        seen.sort_unstable();
        let expected: Vec<u32> = (0..n as u32).collect();
        prop_assert_eq!(seen, expected);
    }
}

//! A Prometheus Alertmanager substitute.
//!
//! "Alertmanager receives events, groups them by priority, category,
//! source, etc. and sends alert messages to Slack or ServiceNow." (§IV)
//!
//! * [`route::Route`] — the routing tree deciding which receiver handles
//!   which alert;
//! * [`Alertmanager`] — grouping with `group_wait` / `group_interval` /
//!   `repeat_interval`, inhibition rules and silences (the noise-reduction
//!   machinery of experiment C7);
//! * [`slack`] — the Slack message formatter reproducing Figures 6 and 9.

pub mod delivery;
pub mod route;
pub mod slack;

pub use delivery::{DeliveryQueue, DeliveryStats};
pub use route::{Route, RouteIssue, RouteIssueKind};
pub use slack::{format_slack_message, SlackMessage, SlackSink};

use omni_logql::Matcher;
use omni_model::{LabelSet, Timestamp};
use std::collections::HashMap;

/// Alert status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertStatus {
    /// Active.
    Firing,
    /// Cleared.
    Resolved,
}

/// An alert as received from the Ruler / vmalert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Identity labels (`alertname` + series + rule labels).
    pub labels: LabelSet,
    /// Rendered annotations.
    pub annotations: Vec<(String, String)>,
    /// Current status.
    pub status: AlertStatus,
    /// When it became active.
    pub starts_at: Timestamp,
}

impl Alert {
    /// The `alertname` label (empty if missing).
    pub fn name(&self) -> &str {
        self.labels.get("alertname").unwrap_or("")
    }
}

/// One inhibition rule: a firing source mutes matching targets when the
/// `equal` labels agree.
#[derive(Debug, Clone)]
pub struct InhibitRule {
    /// Matchers selecting source alerts.
    pub source_matchers: Vec<Matcher>,
    /// Matchers selecting target alerts to mute.
    pub target_matchers: Vec<Matcher>,
    /// Labels that must be equal between source and target.
    pub equal: Vec<String>,
}

/// A silence: matching alerts are muted between `starts_at` and `ends_at`.
#[derive(Debug, Clone)]
pub struct Silence {
    /// Matchers.
    pub matchers: Vec<Matcher>,
    /// Activation time.
    pub starts_at: Timestamp,
    /// Expiry time.
    pub ends_at: Timestamp,
    /// Who created it (audit trail).
    pub created_by: String,
}

/// A flushed notification: one receiver, one group, its current alerts.
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    /// Receiver name from the routing tree.
    pub receiver: String,
    /// The labels the group is keyed by.
    pub group_labels: LabelSet,
    /// Alerts in the group (firing and newly-resolved).
    pub alerts: Vec<Alert>,
}

#[derive(Debug)]
struct Group {
    receiver: String,
    group_labels: LabelSet,
    group_wait_ns: i64,
    group_interval_ns: i64,
    repeat_interval_ns: i64,
    /// Alert fingerprint → alert.
    alerts: HashMap<u64, Alert>,
    /// Fingerprints changed since last flush.
    dirty: bool,
    created_at: Timestamp,
    last_flush: Option<Timestamp>,
}

/// The Alertmanager core.
pub struct Alertmanager {
    route: Route,
    inhibit_rules: Vec<InhibitRule>,
    silences: Vec<Silence>,
    groups: HashMap<(String, LabelSet), Group>,
    received: u64,
    notified: u64,
    suppressed: u64,
}

impl Alertmanager {
    /// Build with a routing tree.
    pub fn new(route: Route) -> Self {
        Self {
            route,
            inhibit_rules: Vec::new(),
            silences: Vec::new(),
            groups: HashMap::new(),
            received: 0,
            notified: 0,
            suppressed: 0,
        }
    }

    /// Add an inhibition rule.
    pub fn add_inhibit_rule(&mut self, rule: InhibitRule) {
        self.inhibit_rules.push(rule);
    }

    /// Add a silence.
    pub fn add_silence(&mut self, silence: Silence) {
        self.silences.push(silence);
    }

    /// Receive one alert (firing or resolved) at `now`. Routing decides
    /// the receiver; the group updates and is flushed by [`Self::tick`].
    pub fn receive(&mut self, alert: Alert, now: Timestamp) {
        self.received += 1;
        for matched in self.route.resolve(&alert.labels) {
            let group_labels = alert.labels.project(&matched.group_by);
            let key = (matched.receiver.clone(), group_labels.clone());
            let group = self.groups.entry(key).or_insert_with(|| Group {
                receiver: matched.receiver.clone(),
                group_labels,
                group_wait_ns: matched.group_wait_ns,
                group_interval_ns: matched.group_interval_ns,
                repeat_interval_ns: matched.repeat_interval_ns,
                alerts: HashMap::new(),
                dirty: false,
                created_at: now,
                last_flush: None,
            });
            let fp = alert.labels.fingerprint();
            let changed = match group.alerts.get(&fp) {
                Some(prev) => prev.status != alert.status,
                None => alert.status == AlertStatus::Firing,
            };
            group.alerts.insert(fp, alert.clone());
            if changed {
                group.dirty = true;
            }
        }
    }

    /// Whether an alert is currently muted by a silence or inhibition.
    fn is_muted(&self, alert: &Alert, now: Timestamp) -> bool {
        for s in &self.silences {
            if now >= s.starts_at
                && now < s.ends_at
                && s.matchers.iter().all(|m| m.matches(&alert.labels))
            {
                return true;
            }
        }
        for rule in &self.inhibit_rules {
            if !rule.target_matchers.iter().all(|m| m.matches(&alert.labels)) {
                continue;
            }
            // Any firing source alert (in any group) with equal labels?
            let source_fires = self.groups.values().flat_map(|g| g.alerts.values()).any(|a| {
                a.status == AlertStatus::Firing
                    && rule.source_matchers.iter().all(|m| m.matches(&a.labels))
                    && rule.equal.iter().all(|l| a.labels.get(l) == alert.labels.get(l))
                    && a.labels != alert.labels // don't self-inhibit
            });
            if source_fires {
                return true;
            }
        }
        false
    }

    /// Flush groups that are due at `now`; returns the notifications to
    /// dispatch.
    pub fn tick(&mut self, now: Timestamp) -> Vec<Notification> {
        let keys: Vec<(String, LabelSet)> = self.groups.keys().cloned().collect();
        let mut out = Vec::new();
        for key in keys {
            let g = &self.groups[&key];
            // Saturate the age arithmetic: groups created at sentinel
            // timestamps must not overflow `now - created_at`.
            let due = match g.last_flush {
                None => g.dirty && now.saturating_sub(g.created_at) >= g.group_wait_ns,
                Some(last) => {
                    (g.dirty && now.saturating_sub(last) >= g.group_interval_ns)
                        || (!g.alerts.is_empty()
                            && g.alerts.values().any(|a| a.status == AlertStatus::Firing)
                            && now.saturating_sub(last) >= g.repeat_interval_ns)
                }
            };
            if !due {
                continue;
            }
            // Collect unmuted alerts.
            let alerts: Vec<Alert> = {
                let g = &self.groups[&key];
                let mut alerts: Vec<Alert> =
                    g.alerts.values().filter(|a| !self.is_muted(a, now)).cloned().collect();
                alerts.sort_by(|a, b| a.labels.cmp(&b.labels));
                alerts
            };
            let muted_count = self.groups[&key].alerts.len() - alerts.len();
            self.suppressed += muted_count as u64;
            let g = self.groups.get_mut(&key).unwrap();
            g.dirty = false;
            g.last_flush = Some(now);
            // Resolved alerts leave the group after being notified once.
            let resolved: Vec<u64> = g
                .alerts
                .iter()
                .filter(|(_, a)| a.status == AlertStatus::Resolved)
                .map(|(fp, _)| *fp)
                .collect();
            for fp in resolved {
                g.alerts.remove(&fp);
            }
            if alerts.is_empty() {
                continue;
            }
            self.notified += 1;
            out.push(Notification {
                receiver: g.receiver.clone(),
                group_labels: g.group_labels.clone(),
                alerts,
            });
        }
        out.sort_by(|a, b| {
            a.receiver.cmp(&b.receiver).then_with(|| a.group_labels.cmp(&b.group_labels))
        });
        out
    }

    /// `(alerts received, notifications sent, alerts suppressed)` — the
    /// noise-reduction numbers of experiment C7.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.received, self.notified, self.suppressed)
    }

    /// Number of active groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::{labels, NANOS_PER_SEC};

    fn sec(n: i64) -> i64 {
        n * NANOS_PER_SEC
    }

    fn fast_route() -> Route {
        let mut r = Route::default_route("slack");
        r.group_by = vec!["alertname".into()];
        r.group_wait_ns = sec(5);
        r.group_interval_ns = sec(30);
        r.repeat_interval_ns = sec(3600);
        r
    }

    fn firing(name: &str, extra: &[(&str, &str)], at: Timestamp) -> Alert {
        let mut labels = labels!("alertname" => name);
        for (k, v) in extra {
            labels.insert(*k, *v);
        }
        Alert { labels, annotations: vec![], status: AlertStatus::Firing, starts_at: at }
    }

    #[test]
    fn group_wait_batches_storm_into_one_notification() {
        let mut am = Alertmanager::new(fast_route());
        // A storm: 10 leak alerts from different locations in 2 seconds.
        for i in 0..10 {
            am.receive(firing("CabinetLeak", &[("context", &format!("x{i}"))], sec(1)), sec(1) + i);
        }
        // Before group_wait: nothing.
        assert!(am.tick(sec(2)).is_empty());
        // After group_wait: exactly one notification with all 10 alerts.
        let notifs = am.tick(sec(7));
        assert_eq!(notifs.len(), 1);
        assert_eq!(notifs[0].alerts.len(), 10);
        assert_eq!(notifs[0].receiver, "slack");
        let (received, notified, _) = am.stats();
        assert_eq!(received, 10);
        assert_eq!(notified, 1);
    }

    #[test]
    fn duplicate_alert_does_not_renotify_before_repeat_interval() {
        let mut am = Alertmanager::new(fast_route());
        am.receive(firing("X", &[], sec(0)), sec(0));
        assert_eq!(am.tick(sec(6)).len(), 1);
        // Same alert keeps firing; no state change -> no notification
        // until repeat_interval.
        am.receive(firing("X", &[], sec(0)), sec(10));
        assert!(am.tick(sec(40)).is_empty());
        // repeat_interval elapsed: re-notify.
        assert_eq!(am.tick(sec(3700)).len(), 1);
    }

    #[test]
    fn new_alert_in_group_flushes_after_group_interval() {
        let mut am = Alertmanager::new(fast_route());
        am.receive(firing("X", &[("loc", "a")], sec(0)), sec(0));
        assert_eq!(am.tick(sec(6)).len(), 1);
        am.receive(firing("X", &[("loc", "b")], sec(10)), sec(10));
        // group_interval (30s) not yet elapsed since last flush.
        assert!(am.tick(sec(20)).is_empty());
        let notifs = am.tick(sec(37));
        assert_eq!(notifs.len(), 1);
        assert_eq!(notifs[0].alerts.len(), 2);
    }

    #[test]
    fn resolved_alerts_notified_once_then_dropped() {
        let mut am = Alertmanager::new(fast_route());
        let mut a = firing("X", &[], sec(0));
        am.receive(a.clone(), sec(0));
        am.tick(sec(6));
        a.status = AlertStatus::Resolved;
        am.receive(a, sec(50));
        let notifs = am.tick(sec(80));
        assert_eq!(notifs.len(), 1);
        assert_eq!(notifs[0].alerts[0].status, AlertStatus::Resolved);
        // Group is now empty; nothing further.
        assert!(am.tick(sec(4000)).is_empty());
    }

    #[test]
    fn silence_mutes_matching_alerts() {
        let mut am = Alertmanager::new(fast_route());
        am.add_silence(Silence {
            matchers: vec![Matcher::eq("alertname", "Noisy")],
            starts_at: sec(0),
            ends_at: sec(100),
            created_by: "oncall".into(),
        });
        am.receive(firing("Noisy", &[], sec(1)), sec(1));
        am.receive(firing("Important", &[], sec(1)), sec(1));
        let notifs = am.tick(sec(7));
        // Only the Important group notifies; the Noisy group's alerts are
        // all muted.
        assert_eq!(notifs.len(), 1);
        assert_eq!(notifs[0].alerts[0].name(), "Important");
        assert!(am.stats().2 >= 1);
    }

    #[test]
    fn silence_expires() {
        let mut am = Alertmanager::new(fast_route());
        am.add_silence(Silence {
            matchers: vec![Matcher::eq("alertname", "X")],
            starts_at: sec(0),
            ends_at: sec(10),
            created_by: "oncall".into(),
        });
        am.receive(firing("X", &[], sec(1)), sec(1));
        assert!(am.tick(sec(7)).is_empty());
        // After expiry the still-firing alert notifies on group_interval.
        am.receive(firing("X", &[("extra", "new")], sec(11)), sec(11));
        let notifs = am.tick(sec(45));
        assert_eq!(notifs.len(), 1);
    }

    #[test]
    fn inhibition_mutes_downstream_alerts() {
        let mut am = Alertmanager::new(fast_route());
        // Switch-offline inhibits node-unreachable alerts in the same
        // chassis (the classic noise-reduction rule).
        am.add_inhibit_rule(InhibitRule {
            source_matchers: vec![Matcher::eq("alertname", "SwitchOffline")],
            target_matchers: vec![Matcher::eq("alertname", "NodeUnreachable")],
            equal: vec!["chassis".into()],
        });
        am.receive(firing("SwitchOffline", &[("chassis", "x1002c1")], sec(0)), sec(0));
        for n in 0..8 {
            am.receive(
                firing(
                    "NodeUnreachable",
                    &[("chassis", "x1002c1"), ("node", &format!("n{n}"))],
                    sec(1),
                ),
                sec(1),
            );
        }
        // Different chassis: not inhibited.
        am.receive(firing("NodeUnreachable", &[("chassis", "x1111c0")], sec(1)), sec(1));
        let notifs = am.tick(sec(7));
        let names: Vec<(&str, usize)> =
            notifs.iter().map(|n| (n.alerts[0].name(), n.alerts.len())).collect();
        // SwitchOffline notification + exactly one NodeUnreachable (other
        // chassis); the 8 same-chassis ones are inhibited.
        assert_eq!(names.len(), 2);
        let unreachable = notifs.iter().find(|n| n.alerts[0].name() == "NodeUnreachable").unwrap();
        assert_eq!(unreachable.alerts.len(), 1);
        assert_eq!(unreachable.alerts[0].labels.get("chassis"), Some("x1111c0"));
    }

    #[test]
    fn routing_by_severity() {
        let mut root = Route::default_route("slack");
        root.group_by = vec!["alertname".into()];
        root.group_wait_ns = 0;
        let mut crit = Route::matching("servicenow", vec![Matcher::eq("severity", "critical")]);
        crit.group_by = vec!["alertname".into()];
        crit.group_wait_ns = 0;
        root.routes.push(crit);
        let mut am = Alertmanager::new(root);
        am.receive(firing("Hot", &[("severity", "critical")], 0), 0);
        am.receive(firing("Warm", &[("severity", "warning")], 0), 0);
        let notifs = am.tick(1);
        let receivers: Vec<&str> = notifs.iter().map(|n| n.receiver.as_str()).collect();
        assert!(receivers.contains(&"servicenow"));
        assert!(receivers.contains(&"slack"));
        let sn = notifs.iter().find(|n| n.receiver == "servicenow").unwrap();
        assert_eq!(sn.alerts[0].name(), "Hot");
    }
}

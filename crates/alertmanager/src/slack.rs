//! The Slack receiver.
//!
//! "In Alertmanager, a Slack webhook is added in order for Alertmanager
//! to send alerts to Slack. Further, the Slack alert is enriched with
//! different types of fonts and bullet points." (§IV-A) —
//! [`format_slack_message`] reproduces the Figure 6 / Figure 9 message
//! shape; [`SlackSink`] stands in for the webhook endpoint and captures
//! what would have been posted.

use crate::{AlertStatus, Notification};
use parking_lot::Mutex;
use std::sync::Arc;

/// One message as posted to the Slack webhook.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlackMessage {
    /// Channel the webhook posts to.
    pub channel: String,
    /// mrkdwn-formatted text.
    pub text: String,
}

/// Render a notification the way the paper's Slack alerts look: a bold
/// status/alert line followed by bullet points per detail (Figs 6, 9).
pub fn format_slack_message(channel: &str, notification: &Notification) -> SlackMessage {
    let mut text = String::new();
    for (i, alert) in notification.alerts.iter().enumerate() {
        if i > 0 {
            text.push('\n');
        }
        let (emoji, status) = match alert.status {
            AlertStatus::Firing => (":rotating_light:", "FIRING"),
            AlertStatus::Resolved => (":white_check_mark:", "RESOLVED"),
        };
        text.push_str(&format!("{emoji} *[{status}] {}*\n", alert.name()));
        // Labels as bullet points, alertname first already in the header.
        for (k, v) in alert.labels.iter() {
            if k == "alertname" {
                continue;
            }
            text.push_str(&format!("• *{k}:* {v}\n"));
        }
        for (k, v) in &alert.annotations {
            text.push_str(&format!("• _{k}_: {v}\n"));
        }
    }
    SlackMessage { channel: channel.to_string(), text }
}

/// An in-process Slack webhook endpoint: collects posted messages so
/// tests and examples can assert on them.
#[derive(Debug, Clone, Default)]
pub struct SlackSink {
    channel: String,
    messages: Arc<Mutex<Vec<SlackMessage>>>,
}

impl SlackSink {
    /// Webhook posting into `channel`.
    pub fn new(channel: &str) -> Self {
        Self { channel: channel.to_string(), messages: Arc::new(Mutex::new(Vec::new())) }
    }

    /// Deliver a notification (formats and stores the message).
    pub fn deliver(&self, notification: &Notification) -> SlackMessage {
        let msg = format_slack_message(&self.channel, notification);
        self.messages.lock().push(msg.clone());
        msg
    }

    /// All messages posted so far.
    pub fn messages(&self) -> Vec<SlackMessage> {
        self.messages.lock().clone()
    }

    /// Number of messages posted.
    pub fn len(&self) -> usize {
        self.messages.lock().len()
    }

    /// Whether nothing was posted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Alert;
    use omni_model::labels;

    fn leak_notification() -> Notification {
        Notification {
            receiver: "slack".into(),
            group_labels: labels!("alertname" => "PerlmutterCabinetLeak"),
            alerts: vec![Alert {
                labels: labels!(
                    "alertname" => "PerlmutterCabinetLeak",
                    "severity" => "critical",
                    "cluster" => "perlmutter",
                    "Context" => "x1203c1b0"
                ),
                annotations: vec![(
                    "summary".into(),
                    "Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak.".into(),
                )],
                status: AlertStatus::Firing,
                starts_at: 0,
            }],
        }
    }

    #[test]
    fn figure6_message_shape() {
        let msg = format_slack_message("#alerts", &leak_notification());
        assert_eq!(msg.channel, "#alerts");
        assert!(msg.text.starts_with(":rotating_light: *[FIRING] PerlmutterCabinetLeak*"));
        assert!(msg.text.contains("• *Context:* x1203c1b0"));
        assert!(msg.text.contains("• *cluster:* perlmutter"));
        assert!(msg.text.contains("detected a leak"));
    }

    #[test]
    fn resolved_message_shape() {
        let mut n = leak_notification();
        n.alerts[0].status = AlertStatus::Resolved;
        let msg = format_slack_message("#alerts", &n);
        assert!(msg.text.contains("[RESOLVED]"));
        assert!(msg.text.contains(":white_check_mark:"));
    }

    #[test]
    fn sink_collects_messages() {
        let sink = SlackSink::new("#perlmutter-alerts");
        assert!(sink.is_empty());
        sink.deliver(&leak_notification());
        sink.deliver(&leak_notification());
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.messages()[0].channel, "#perlmutter-alerts");
    }

    #[test]
    fn multiple_alerts_joined() {
        let mut n = leak_notification();
        let mut second = n.alerts[0].clone();
        second.labels.insert("Context", "x1000c7b0");
        n.alerts.push(second);
        let msg = format_slack_message("#alerts", &n);
        assert_eq!(msg.text.matches("[FIRING]").count(), 2);
    }
}

//! The routing tree: which receiver handles which alert, with what
//! grouping and timing.

use omni_logql::Matcher;
use omni_model::{LabelSet, NANOS_PER_SEC};

/// One node of the routing tree.
#[derive(Debug, Clone)]
pub struct Route {
    /// Receiver name for alerts that stop at this node.
    pub receiver: String,
    /// Matchers an alert must satisfy to enter this node (root matches
    /// everything).
    pub matchers: Vec<Matcher>,
    /// Labels to group by.
    pub group_by: Vec<String>,
    /// Wait before the first notification of a new group.
    pub group_wait_ns: i64,
    /// Minimum gap between notifications of a changed group.
    pub group_interval_ns: i64,
    /// Re-notify cadence for unchanged firing groups.
    pub repeat_interval_ns: i64,
    /// Child routes, tried in order.
    pub routes: Vec<Route>,
    /// When true, keep trying siblings after this node matches.
    pub continue_matching: bool,
}

/// The routing decision for one alert.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteMatch {
    /// Receiver to notify.
    pub receiver: String,
    /// Group-by labels in effect.
    pub group_by: Vec<String>,
    /// Effective timings.
    pub group_wait_ns: i64,
    /// See [`Route::group_interval_ns`].
    pub group_interval_ns: i64,
    /// See [`Route::repeat_interval_ns`].
    pub repeat_interval_ns: i64,
}

impl Route {
    /// A catch-all root with Alertmanager's default timings
    /// (30s / 5m / 4h).
    pub fn default_route(receiver: &str) -> Self {
        Self {
            receiver: receiver.to_string(),
            matchers: Vec::new(),
            group_by: vec!["alertname".to_string()],
            group_wait_ns: 30 * NANOS_PER_SEC,
            group_interval_ns: 5 * 60 * NANOS_PER_SEC,
            repeat_interval_ns: 4 * 3600 * NANOS_PER_SEC,
            routes: Vec::new(),
            continue_matching: false,
        }
    }

    /// A child route with matchers, inheriting default timings.
    pub fn matching(receiver: &str, matchers: Vec<Matcher>) -> Self {
        Self { matchers, ..Self::default_route(receiver) }
    }

    fn matches(&self, labels: &LabelSet) -> bool {
        self.matchers.iter().all(|m| m.matches(labels))
    }

    /// Resolve an alert against the tree. Returns every matched terminal
    /// node (more than one when `continue` routes are involved); an empty
    /// vec never happens if the root is a catch-all.
    pub fn resolve(&self, labels: &LabelSet) -> Vec<RouteMatch> {
        let mut out = Vec::new();
        if !self.matches(labels) {
            return out;
        }
        let mut child_matched = false;
        for child in &self.routes {
            let ms = child.resolve(labels);
            if !ms.is_empty() {
                child_matched = true;
                let stop = !child.continue_matching;
                out.extend(ms);
                if stop {
                    break;
                }
            }
        }
        if !child_matched {
            out.push(RouteMatch {
                receiver: self.receiver.clone(),
                group_by: self.group_by.clone(),
                group_wait_ns: self.group_wait_ns,
                group_interval_ns: self.group_interval_ns,
                repeat_interval_ns: self.repeat_interval_ns,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::labels;

    #[test]
    fn root_catches_everything() {
        let r = Route::default_route("slack");
        let m = r.resolve(&labels!("alertname" => "X"));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].receiver, "slack");
        assert_eq!(m[0].group_by, vec!["alertname"]);
    }

    #[test]
    fn first_matching_child_wins() {
        let mut root = Route::default_route("slack");
        root.routes.push(Route::matching("sn", vec![Matcher::eq("severity", "critical")]));
        root.routes.push(Route::matching("email", vec![Matcher::eq("severity", "critical")]));
        let m = root.resolve(&labels!("severity" => "critical"));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].receiver, "sn");
    }

    #[test]
    fn continue_routes_fan_out() {
        let mut root = Route::default_route("slack");
        let mut first = Route::matching("sn", vec![Matcher::eq("severity", "critical")]);
        first.continue_matching = true;
        root.routes.push(first);
        root.routes.push(Route::matching("pager", vec![Matcher::eq("severity", "critical")]));
        let m = root.resolve(&labels!("severity" => "critical"));
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].receiver, "sn");
        assert_eq!(m[1].receiver, "pager");
    }

    #[test]
    fn unmatched_children_fall_back_to_parent() {
        let mut root = Route::default_route("slack");
        root.routes.push(Route::matching("sn", vec![Matcher::eq("severity", "critical")]));
        let m = root.resolve(&labels!("severity" => "warning"));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].receiver, "slack");
    }

    #[test]
    fn nested_routes() {
        let mut root = Route::default_route("slack");
        let mut facility =
            Route::matching("facility-team", vec![Matcher::eq("category", "facility")]);
        facility
            .routes
            .push(Route::matching("facility-pager", vec![Matcher::eq("severity", "critical")]));
        root.routes.push(facility);
        let m = root.resolve(&labels!("category" => "facility", "severity" => "critical"));
        assert_eq!(m[0].receiver, "facility-pager");
        let m = root.resolve(&labels!("category" => "facility", "severity" => "warning"));
        assert_eq!(m[0].receiver, "facility-team");
    }
}

//! The routing tree: which receiver handles which alert, with what
//! grouping and timing.

use omni_logql::Matcher;
use omni_model::{LabelSet, NANOS_PER_SEC};

/// One node of the routing tree.
#[derive(Debug, Clone)]
pub struct Route {
    /// Receiver name for alerts that stop at this node.
    pub receiver: String,
    /// Matchers an alert must satisfy to enter this node (root matches
    /// everything).
    pub matchers: Vec<Matcher>,
    /// Labels to group by.
    pub group_by: Vec<String>,
    /// Wait before the first notification of a new group.
    pub group_wait_ns: i64,
    /// Minimum gap between notifications of a changed group.
    pub group_interval_ns: i64,
    /// Re-notify cadence for unchanged firing groups.
    pub repeat_interval_ns: i64,
    /// Child routes, tried in order.
    pub routes: Vec<Route>,
    /// When true, keep trying siblings after this node matches.
    pub continue_matching: bool,
}

/// The routing decision for one alert.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteMatch {
    /// Receiver to notify.
    pub receiver: String,
    /// Group-by labels in effect.
    pub group_by: Vec<String>,
    /// Effective timings.
    pub group_wait_ns: i64,
    /// See [`Route::group_interval_ns`].
    pub group_interval_ns: i64,
    /// See [`Route::repeat_interval_ns`].
    pub repeat_interval_ns: i64,
}

/// One static defect found by [`Route::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteIssue {
    /// What kind of defect.
    pub kind: RouteIssueKind,
    /// Slash-separated child-index path from the root (`root`, `root/1`).
    pub path: String,
    /// Human-readable description.
    pub detail: String,
}

/// The defect classes [`Route::validate`] detects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteIssueKind {
    /// A node names a receiver that is not in the defined set: alerts
    /// resolving there are silently dropped at notification time.
    UndefinedReceiver,
    /// A sub-route can never match because an earlier sibling is a
    /// catch-all (no matchers) without `continue`: [`Route::resolve`]
    /// stops at the first matching child.
    ShadowedRoute,
}

impl std::fmt::Display for RouteIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.detail)
    }
}

impl Route {
    /// A catch-all root with Alertmanager's default timings
    /// (30s / 5m / 4h).
    pub fn default_route(receiver: &str) -> Self {
        Self {
            receiver: receiver.to_string(),
            matchers: Vec::new(),
            group_by: vec!["alertname".to_string()],
            group_wait_ns: 30 * NANOS_PER_SEC,
            group_interval_ns: 5 * 60 * NANOS_PER_SEC,
            repeat_interval_ns: 4 * 3600 * NANOS_PER_SEC,
            routes: Vec::new(),
            continue_matching: false,
        }
    }

    /// A child route with matchers, inheriting default timings.
    pub fn matching(receiver: &str, matchers: Vec<Matcher>) -> Self {
        Self { matchers, ..Self::default_route(receiver) }
    }

    /// The receivers the shipped stack defines sinks for; the companions
    /// of [`Route::shipped_tree`] when validating.
    pub fn shipped_receivers() -> Vec<String> {
        vec!["slack".to_string(), "servicenow".to_string()]
    }

    /// The paper's routing policy, as `core::stack` wires it: critical
    /// alerts go to ServiceNow AND Slack (`continue: true`), everything
    /// else to Slack only. Grouped by alertname with a short group_wait
    /// so the case studies notify within one simulation step cadence.
    pub fn shipped_tree() -> Self {
        let mut root = Route::default_route("slack");
        root.group_by = vec!["alertname".into()];
        root.group_wait_ns = 10 * NANOS_PER_SEC;
        root.group_interval_ns = 60 * NANOS_PER_SEC;
        root.repeat_interval_ns = 4 * 3600 * NANOS_PER_SEC;
        let mut to_sn = Route::matching("servicenow", vec![Matcher::eq("severity", "critical")]);
        to_sn.group_by = root.group_by.clone();
        to_sn.group_wait_ns = root.group_wait_ns;
        to_sn.group_interval_ns = root.group_interval_ns;
        to_sn.repeat_interval_ns = root.repeat_interval_ns;
        to_sn.continue_matching = true;
        let mut to_slack_all = Route::matching("slack", vec![]);
        to_slack_all.group_by = root.group_by.clone();
        to_slack_all.group_wait_ns = root.group_wait_ns;
        to_slack_all.group_interval_ns = root.group_interval_ns;
        to_slack_all.repeat_interval_ns = root.repeat_interval_ns;
        root.routes.push(to_sn);
        root.routes.push(to_slack_all);
        root
    }

    /// Statically validate the tree against the set of defined receivers.
    /// Detects receivers referenced but never defined and sub-routes
    /// shadowed by an earlier sibling catch-all; returns every defect in
    /// deterministic tree order. Called by the `omni-lint` Layer-1
    /// analyzer and usable standalone.
    pub fn validate(&self, defined_receivers: &[&str]) -> Vec<RouteIssue> {
        let mut issues = Vec::new();
        self.validate_node("root", defined_receivers, &mut issues);
        issues
    }

    fn validate_node(&self, path: &str, defined: &[&str], issues: &mut Vec<RouteIssue>) {
        if !defined.contains(&self.receiver.as_str()) {
            issues.push(RouteIssue {
                kind: RouteIssueKind::UndefinedReceiver,
                path: path.to_string(),
                detail: format!("receiver {:?} is referenced but never defined", self.receiver),
            });
        }
        // A catch-all child without `continue` stops resolve() for every
        // later sibling, whatever their matchers.
        let mut shadowing: Option<usize> = None;
        for (i, child) in self.routes.iter().enumerate() {
            let child_path = format!("{path}/{i}");
            if let Some(by) = shadowing {
                issues.push(RouteIssue {
                    kind: RouteIssueKind::ShadowedRoute,
                    path: child_path.clone(),
                    detail: format!(
                        "route to {:?} is unreachable: sibling {path}/{by} is a catch-all without continue",
                        child.receiver
                    ),
                });
            }
            child.validate_node(&child_path, defined, issues);
            if shadowing.is_none() && child.matchers.is_empty() && !child.continue_matching {
                shadowing = Some(i);
            }
        }
    }

    fn matches(&self, labels: &LabelSet) -> bool {
        self.matchers.iter().all(|m| m.matches(labels))
    }

    /// Resolve an alert against the tree. Returns every matched terminal
    /// node (more than one when `continue` routes are involved); an empty
    /// vec never happens if the root is a catch-all.
    pub fn resolve(&self, labels: &LabelSet) -> Vec<RouteMatch> {
        let mut out = Vec::new();
        if !self.matches(labels) {
            return out;
        }
        let mut child_matched = false;
        for child in &self.routes {
            let ms = child.resolve(labels);
            if !ms.is_empty() {
                child_matched = true;
                let stop = !child.continue_matching;
                out.extend(ms);
                if stop {
                    break;
                }
            }
        }
        if !child_matched {
            out.push(RouteMatch {
                receiver: self.receiver.clone(),
                group_by: self.group_by.clone(),
                group_wait_ns: self.group_wait_ns,
                group_interval_ns: self.group_interval_ns,
                repeat_interval_ns: self.repeat_interval_ns,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::labels;

    #[test]
    fn root_catches_everything() {
        let r = Route::default_route("slack");
        let m = r.resolve(&labels!("alertname" => "X"));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].receiver, "slack");
        assert_eq!(m[0].group_by, vec!["alertname"]);
    }

    #[test]
    fn first_matching_child_wins() {
        let mut root = Route::default_route("slack");
        root.routes.push(Route::matching("sn", vec![Matcher::eq("severity", "critical")]));
        root.routes.push(Route::matching("email", vec![Matcher::eq("severity", "critical")]));
        let m = root.resolve(&labels!("severity" => "critical"));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].receiver, "sn");
    }

    #[test]
    fn continue_routes_fan_out() {
        let mut root = Route::default_route("slack");
        let mut first = Route::matching("sn", vec![Matcher::eq("severity", "critical")]);
        first.continue_matching = true;
        root.routes.push(first);
        root.routes.push(Route::matching("pager", vec![Matcher::eq("severity", "critical")]));
        let m = root.resolve(&labels!("severity" => "critical"));
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].receiver, "sn");
        assert_eq!(m[1].receiver, "pager");
    }

    #[test]
    fn unmatched_children_fall_back_to_parent() {
        let mut root = Route::default_route("slack");
        root.routes.push(Route::matching("sn", vec![Matcher::eq("severity", "critical")]));
        let m = root.resolve(&labels!("severity" => "warning"));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].receiver, "slack");
    }

    #[test]
    fn validate_flags_undefined_receiver() {
        let mut root = Route::default_route("slack");
        root.routes.push(Route::matching("pagerduty", vec![Matcher::eq("severity", "critical")]));
        let issues = root.validate(&["slack", "servicenow"]);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].kind, RouteIssueKind::UndefinedReceiver);
        assert_eq!(issues[0].path, "root/0");
        assert!(issues[0].detail.contains("pagerduty"), "{}", issues[0].detail);
    }

    #[test]
    fn validate_flags_shadowed_sibling() {
        let mut root = Route::default_route("slack");
        // Catch-all without continue: the critical route after it can
        // never be reached.
        root.routes.push(Route::matching("slack", vec![]));
        root.routes.push(Route::matching("servicenow", vec![Matcher::eq("severity", "critical")]));
        let issues = root.validate(&["slack", "servicenow"]);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].kind, RouteIssueKind::ShadowedRoute);
        assert_eq!(issues[0].path, "root/1");
        // Sanity: resolve() really never reaches the shadowed route.
        let m = root.resolve(&labels!("severity" => "critical"));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].receiver, "slack");
    }

    #[test]
    fn validate_allows_continue_before_catch_all() {
        // The shipped tree: continue route, then catch-all. No shadowing,
        // nothing undefined.
        let tree = Route::shipped_tree();
        assert!(tree
            .validate(&Route::shipped_receivers().iter().map(|s| s.as_str()).collect::<Vec<_>>())
            .is_empty());
        // Critical fans out to both receivers; warnings go to slack only.
        let m = tree.resolve(&labels!("severity" => "critical"));
        assert_eq!(m.len(), 2);
        let m = tree.resolve(&labels!("severity" => "warning"));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].receiver, "slack");
    }

    #[test]
    fn validate_recurses_into_children() {
        let mut root = Route::default_route("slack");
        let mut facility = Route::matching("facility-team", vec![Matcher::eq("cat", "facility")]);
        facility.routes.push(Route::matching("ghost", vec![]));
        facility.routes.push(Route::matching("slack", vec![Matcher::eq("severity", "warning")]));
        root.routes.push(facility);
        let issues = root.validate(&["slack", "facility-team"]);
        let kinds: Vec<_> = issues.iter().map(|i| (i.kind, i.path.as_str())).collect();
        assert_eq!(
            kinds,
            vec![
                (RouteIssueKind::UndefinedReceiver, "root/0/0"),
                (RouteIssueKind::ShadowedRoute, "root/0/1"),
            ]
        );
    }

    #[test]
    fn nested_routes() {
        let mut root = Route::default_route("slack");
        let mut facility =
            Route::matching("facility-team", vec![Matcher::eq("category", "facility")]);
        facility
            .routes
            .push(Route::matching("facility-pager", vec![Matcher::eq("severity", "critical")]));
        root.routes.push(facility);
        let m = root.resolve(&labels!("category" => "facility", "severity" => "critical"));
        assert_eq!(m[0].receiver, "facility-pager");
        let m = root.resolve(&labels!("category" => "facility", "severity" => "warning"));
        assert_eq!(m[0].receiver, "facility-team");
    }
}

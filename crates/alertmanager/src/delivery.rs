//! At-least-once notification delivery.
//!
//! [`crate::Alertmanager::tick`] decides *what* to notify; real receivers
//! (a Slack webhook, the ServiceNow API) decide *whether* the send lands,
//! and in practice they flake. The [`DeliveryQueue`] keeps every
//! notification until a send succeeds: failures re-queue with exponential
//! backoff ([`RetryPolicy`]), a per-receiver circuit breaker stops
//! hammering a dead endpoint, and items that exhaust their attempts land
//! in a dead-letter list instead of vanishing silently.
//!
//! All timing runs on the caller's virtual clock and all jitter is
//! salt-derived, so a chaos schedule replays byte-identically.

use crate::Notification;
use omni_model::{fnv1a64, CircuitBreaker, CircuitState, RetryPolicy, RetryState, Timestamp};
use std::collections::HashMap;

/// Counters for the delivery pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Notifications handed to the queue.
    pub enqueued: u64,
    /// Send attempts made (including retries).
    pub attempts: u64,
    /// Notifications that reached their receiver.
    pub delivered: u64,
    /// Failed attempts that were re-queued for a later try.
    pub retried: u64,
    /// Notifications dead-lettered after exhausting the retry policy.
    pub permanently_failed: u64,
    /// Times any receiver's circuit breaker opened.
    pub circuit_opens: u64,
    /// Times a half-open probe succeeded and closed a tripped breaker.
    pub circuit_closes: u64,
    /// Notifications currently waiting (due or backing off).
    pub queue_depth: usize,
}

struct Pending {
    notification: Notification,
    state: RetryState,
    /// Stable per-item jitter salt: receiver + group identity + sequence.
    salt: u64,
}

/// The at-least-once notification queue.
pub struct DeliveryQueue {
    policy: RetryPolicy,
    failure_threshold: u32,
    cooldown_ns: i64,
    pending: Vec<Pending>,
    breakers: HashMap<String, CircuitBreaker>,
    dead: Vec<Notification>,
    seq: u64,
    enqueued: u64,
    attempts: u64,
    delivered: u64,
    retried: u64,
    permanently_failed: u64,
}

impl DeliveryQueue {
    /// Queue with the given retry policy and a per-receiver breaker that
    /// opens after `failure_threshold` consecutive failures for
    /// `cooldown_ns`.
    pub fn new(policy: RetryPolicy, failure_threshold: u32, cooldown_ns: i64) -> Self {
        Self {
            policy,
            failure_threshold,
            cooldown_ns,
            pending: Vec::new(),
            breakers: HashMap::new(),
            dead: Vec::new(),
            seq: 0,
            enqueued: 0,
            attempts: 0,
            delivered: 0,
            retried: 0,
            permanently_failed: 0,
        }
    }

    /// Queue with the default policy (500ms base, 60s cap, 8 attempts) and
    /// a 5-failure / 30s-cooldown breaker.
    pub fn with_defaults() -> Self {
        Self::new(RetryPolicy::default(), 5, 30_000_000_000)
    }

    /// Accept a notification for delivery; it is due immediately.
    pub fn enqueue(&mut self, notification: Notification) {
        let salt = fnv1a64(notification.receiver.as_bytes())
            ^ notification.group_labels.fingerprint()
            ^ self.seq;
        self.seq += 1;
        self.enqueued += 1;
        self.pending.push(Pending { notification, state: RetryState::new(), salt });
    }

    /// Attempt every due delivery at `now`. `send` returns `true` when the
    /// receiver accepted the notification. Returns how many were delivered
    /// in this pump.
    pub fn pump<F>(&mut self, now: Timestamp, mut send: F) -> usize
    where
        F: FnMut(&Notification) -> bool,
    {
        let mut delivered_now = 0;
        let mut i = 0;
        while i < self.pending.len() {
            let due = {
                let p = &self.pending[i];
                let breaker =
                    self.breakers.entry(p.notification.receiver.clone()).or_insert_with(|| {
                        CircuitBreaker::new(self.failure_threshold, self.cooldown_ns)
                    });
                p.state.due(now) && breaker.allows(now)
            };
            if !due {
                i += 1;
                continue;
            }
            self.attempts += 1;
            let ok = send(&self.pending[i].notification);
            let receiver = self.pending[i].notification.receiver.clone();
            let breaker = self.breakers.get_mut(&receiver).expect("breaker created above");
            if ok {
                breaker.record_success();
                self.delivered += 1;
                delivered_now += 1;
                self.pending.remove(i);
            } else {
                breaker.record_failure(now);
                let p = &mut self.pending[i];
                if p.state.record_failure(now, &self.policy, p.salt) {
                    self.retried += 1;
                    i += 1;
                } else {
                    self.permanently_failed += 1;
                    let p = self.pending.remove(i);
                    self.dead.push(p.notification);
                }
            }
        }
        delivered_now
    }

    /// Earliest virtual time at which any pending item becomes due, if any
    /// (lets a simulation step straight to the next interesting instant).
    pub fn next_due(&self) -> Option<Timestamp> {
        self.pending.iter().map(|p| p.state.due_at).min()
    }

    /// Notifications still in flight.
    pub fn queue_depth(&self) -> usize {
        self.pending.len()
    }

    /// Notifications that exhausted the retry policy, in failure order.
    pub fn dead_letters(&self) -> &[Notification] {
        &self.dead
    }

    /// A receiver's circuit state at `now` (`Closed` if never seen).
    pub fn circuit_state(&self, receiver: &str, now: Timestamp) -> CircuitState {
        self.breakers.get(receiver).map_or(CircuitState::Closed, |b| b.state(now))
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> DeliveryStats {
        DeliveryStats {
            enqueued: self.enqueued,
            attempts: self.attempts,
            delivered: self.delivered,
            retried: self.retried,
            permanently_failed: self.permanently_failed,
            circuit_opens: self.breakers.values().map(|b| b.opens()).sum(),
            circuit_closes: self.breakers.values().map(|b| b.closes()).sum(),
            queue_depth: self.pending.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::labels;

    fn notif(receiver: &str, group: &str) -> Notification {
        Notification {
            receiver: receiver.into(),
            group_labels: labels!("alertname" => group),
            alerts: vec![],
        }
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy { base_delay_ns: 100, max_delay_ns: 1_000, max_attempts: 4, jitter_permille: 0 }
    }

    #[test]
    fn delivers_on_first_attempt() {
        let mut q = DeliveryQueue::new(fast_policy(), 5, 1_000);
        q.enqueue(notif("slack", "X"));
        let mut sent = Vec::new();
        assert_eq!(
            q.pump(0, |n| {
                sent.push(n.receiver.clone());
                true
            }),
            1
        );
        assert_eq!(sent, vec!["slack"]);
        let st = q.stats();
        assert_eq!((st.attempts, st.delivered, st.queue_depth), (1, 1, 0));
    }

    #[test]
    fn failed_send_retries_after_backoff_until_success() {
        let mut q = DeliveryQueue::new(fast_policy(), 10, 1_000_000);
        q.enqueue(notif("slack", "X"));
        // First two attempts fail.
        assert_eq!(q.pump(0, |_| false), 0);
        let due = q.next_due().unwrap();
        assert_eq!(due, 100); // base delay, no jitter
                              // Before backoff elapses, no attempt is made.
        assert_eq!(q.stats().attempts, 1);
        q.pump(due - 1, |_| panic!("not due yet"));
        assert_eq!(q.pump(due, |_| false), 0);
        // Second retry doubles the delay.
        assert_eq!(q.next_due().unwrap(), due + 200);
        assert_eq!(q.pump(q.next_due().unwrap(), |_| true), 1);
        let st = q.stats();
        assert_eq!((st.attempts, st.delivered, st.retried, st.queue_depth), (3, 1, 2, 0));
        assert_eq!(st.permanently_failed, 0);
    }

    #[test]
    fn exhausted_items_are_dead_lettered() {
        let mut q = DeliveryQueue::new(fast_policy(), 100, 1);
        q.enqueue(notif("servicenow", "Y"));
        let mut now = 0;
        for _ in 0..10 {
            q.pump(now, |_| false);
            now = q.next_due().unwrap_or(now + 1);
        }
        let st = q.stats();
        assert_eq!(st.permanently_failed, 1);
        assert_eq!(st.attempts, 4); // max_attempts
        assert_eq!(st.queue_depth, 0);
        assert_eq!(q.dead_letters().len(), 1);
        assert_eq!(q.dead_letters()[0].receiver, "servicenow");
    }

    #[test]
    fn circuit_breaker_gates_a_dead_receiver() {
        // Breaker opens after 2 consecutive failures for 10_000 ns.
        let mut q = DeliveryQueue::new(
            RetryPolicy {
                base_delay_ns: 1,
                max_delay_ns: 1,
                max_attempts: 100,
                jitter_permille: 0,
            },
            2,
            10_000,
        );
        q.enqueue(notif("slack", "A"));
        q.enqueue(notif("slack", "B"));
        // Both attempts fail -> breaker trips.
        q.pump(0, |_| false);
        assert_eq!(q.stats().attempts, 2);
        assert_eq!(q.stats().circuit_opens, 1);
        assert_eq!(q.circuit_state("slack", 1), CircuitState::Open);
        // While open: retries are due but nothing is attempted.
        q.pump(5, |_: &Notification| panic!("breaker is open"));
        assert_eq!(q.stats().attempts, 2);
        // After cooldown the half-open probe goes through and recovery
        // drains the queue.
        assert_eq!(q.pump(10_000, |_| true), 2);
        assert_eq!(q.circuit_state("slack", 10_001), CircuitState::Closed);
        assert_eq!(q.stats().queue_depth, 0);
    }

    #[test]
    fn circuit_transitions_closed_open_halfopen_closed() {
        // Breaker opens after 2 consecutive failures for 10_000 ns; retries
        // are due almost immediately so the breaker is the only gate.
        let mut q = DeliveryQueue::new(
            RetryPolicy {
                base_delay_ns: 1,
                max_delay_ns: 1,
                max_attempts: 100,
                jitter_permille: 0,
            },
            2,
            10_000,
        );
        q.enqueue(notif("slack", "A"));
        q.enqueue(notif("slack", "B"));
        let mut observed = vec![q.circuit_state("slack", 0)];

        // Two failures trip the breaker: Closed -> Open.
        q.pump(0, |_| false);
        observed.push(q.circuit_state("slack", 1));
        // Cooldown elapsed, recovery unconfirmed: Open -> HalfOpen.
        observed.push(q.circuit_state("slack", 10_000));
        // A successful probe confirms recovery: HalfOpen -> Closed.
        q.pump(10_000, |_| true);
        observed.push(q.circuit_state("slack", 10_001));
        assert_eq!(
            observed,
            vec![
                CircuitState::Closed,
                CircuitState::Open,
                CircuitState::HalfOpen,
                CircuitState::Closed
            ]
        );

        // Stats counted each state change: one open, one probe-close.
        let st = q.stats();
        assert_eq!((st.circuit_opens, st.circuit_closes), (1, 1));
        assert_eq!(st.queue_depth, 0);

        // A failed probe re-opens instead: Open is re-entered and counted.
        q.enqueue(notif("slack", "C"));
        q.pump(20_000, |_| false);
        q.pump(20_001, |_| false);
        assert_eq!(q.circuit_state("slack", 20_002), CircuitState::Open);
        q.pump(30_001, |_| false); // half-open probe fails
        assert_eq!(q.circuit_state("slack", 30_002), CircuitState::Open);
        assert_eq!(q.stats().circuit_opens, 3);
        assert_eq!(q.stats().circuit_closes, 1);
    }

    #[test]
    fn breaker_is_per_receiver() {
        let mut q = DeliveryQueue::new(
            RetryPolicy {
                base_delay_ns: 1,
                max_delay_ns: 1,
                max_attempts: 100,
                jitter_permille: 0,
            },
            1,
            1_000_000,
        );
        q.enqueue(notif("slack", "A"));
        q.enqueue(notif("servicenow", "B"));
        // Slack fails (tripping its breaker); ServiceNow succeeds.
        q.pump(0, |n| n.receiver == "servicenow");
        assert_eq!(q.circuit_state("slack", 1), CircuitState::Open);
        assert_eq!(q.circuit_state("servicenow", 1), CircuitState::Closed);
        assert_eq!(q.stats().delivered, 1);
        assert_eq!(q.stats().queue_depth, 1);
    }

    #[test]
    fn identical_runs_produce_identical_stats() {
        let run = || {
            let mut q = DeliveryQueue::new(RetryPolicy::default(), 3, 5_000_000_000);
            for i in 0..5 {
                q.enqueue(notif(if i % 2 == 0 { "slack" } else { "servicenow" }, "G"));
            }
            let mut now = 0;
            let mut calls = 0u32;
            for _ in 0..50 {
                q.pump(now, |_| {
                    calls += 1;
                    calls.is_multiple_of(3) // every third send succeeds
                });
                now = q.next_due().unwrap_or(now) + 1;
            }
            q.stats()
        };
        assert_eq!(run(), run());
    }
}

//! The Shasta Telemetry API.
//!
//! "The telemetry API server acts as a middleman between Kafka and data
//! consumers and is responsible for authentication and balancing income
//! requests. The telemetry API client then sends a request to the API
//! server and creates a subscription to a Kafka topic. Kafka pushes data
//! to the client via the API." — §IV.
//!
//! The API fronts the bus with:
//!
//! * **token authentication** — clients must present a token issued by
//!   [`TelemetryApi::issue_token`];
//! * **gateway balancing** — subscriptions land on the least-loaded of the
//!   configured gateway servers (the paper's cluster runs 4 VM gateways);
//! * **push subscriptions** — [`Subscription`] streams messages from a
//!   topic tail;
//! * **pull fetches** — offset-addressed reads for catch-up consumers.

use omni_bus::{Broker, BusError, Message};
use omni_model::fnv1a64;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An opaque bearer token.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token(String);

impl Token {
    /// The wire form.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// Telemetry API errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// Token missing, revoked or unknown.
    Unauthorized,
    /// Underlying bus problem.
    Bus(BusError),
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::Unauthorized => write!(f, "unauthorized"),
            ApiError::Bus(e) => write!(f, "bus error: {e}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<BusError> for ApiError {
    fn from(e: BusError) -> Self {
        ApiError::Bus(e)
    }
}

/// One gateway server's live state.
#[derive(Debug, Default)]
struct Gateway {
    active_subscriptions: AtomicU64,
    total_requests: AtomicU64,
}

/// Gateway load snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayLoad {
    /// Gateway index.
    pub gateway: usize,
    /// Currently active subscriptions.
    pub active_subscriptions: u64,
    /// Requests handled since start.
    pub total_requests: u64,
}

struct ApiInner {
    broker: Broker,
    tokens: Mutex<HashMap<String, String>>, // token -> client id
    gateways: Vec<Gateway>,
    token_counter: AtomicU64,
}

/// The API server (all gateways share one logical instance).
#[derive(Clone)]
pub struct TelemetryApi {
    inner: Arc<ApiInner>,
}

impl TelemetryApi {
    /// Front a broker with `gateways` gateway servers.
    pub fn new(broker: Broker, gateways: usize) -> Self {
        assert!(gateways > 0, "need at least one gateway");
        Self {
            inner: Arc::new(ApiInner {
                broker,
                tokens: Mutex::new(HashMap::new()),
                gateways: (0..gateways).map(|_| Gateway::default()).collect(),
                token_counter: AtomicU64::new(0),
            }),
        }
    }

    /// Issue a bearer token for a client.
    pub fn issue_token(&self, client_id: &str) -> Token {
        let n = self.inner.token_counter.fetch_add(1, Ordering::Relaxed);
        let raw = format!("sma-{:016x}-{n}", fnv1a64(client_id.as_bytes()));
        self.inner.tokens.lock().insert(raw.clone(), client_id.to_string());
        Token(raw)
    }

    /// Revoke a token.
    pub fn revoke_token(&self, token: &Token) {
        self.inner.tokens.lock().remove(&token.0);
    }

    fn authenticate(&self, token: &Token) -> Result<String, ApiError> {
        self.inner.tokens.lock().get(&token.0).cloned().ok_or(ApiError::Unauthorized)
    }

    /// Pick the least-loaded gateway: fewest live subscriptions first,
    /// then fewest requests served (so offset-pull clients, which hold no
    /// subscriptions, still spread), ties to the lowest index.
    fn pick_gateway(&self) -> usize {
        self.inner
            .gateways
            .iter()
            .enumerate()
            .min_by_key(|(i, g)| {
                (
                    g.active_subscriptions.load(Ordering::Relaxed),
                    g.total_requests.load(Ordering::Relaxed),
                    *i,
                )
            })
            .map(|(i, _)| i)
            .unwrap()
    }

    /// Create a push subscription to a topic. Messages produced after this
    /// call stream into the subscription.
    pub fn subscribe(&self, token: &Token, topic: &str) -> Result<Subscription, ApiError> {
        self.authenticate(token)?;
        let gw = self.pick_gateway();
        let rx = self.inner.broker.tail(topic, 65_536)?;
        self.inner.gateways[gw].active_subscriptions.fetch_add(1, Ordering::Relaxed);
        self.inner.gateways[gw].total_requests.fetch_add(1, Ordering::Relaxed);
        Ok(Subscription { api: self.clone(), gateway: gw, topic: topic.to_string(), rx })
    }

    /// Offset-addressed pull (catch-up reads).
    pub fn fetch(
        &self,
        token: &Token,
        topic: &str,
        partition: usize,
        offset: u64,
        max: usize,
    ) -> Result<Vec<Message>, ApiError> {
        self.authenticate(token)?;
        let gw = self.pick_gateway();
        self.inner.gateways[gw].total_requests.fetch_add(1, Ordering::Relaxed);
        Ok(self.inner.broker.fetch(topic, partition, offset, max)?)
    }

    /// Partition count for a topic (subscription planning).
    pub fn partition_count(&self, token: &Token, topic: &str) -> Result<usize, ApiError> {
        self.authenticate(token)?;
        Ok(self.inner.broker.partition_count(topic)?)
    }

    /// Commit an offset cursor on behalf of a consumer group, so the
    /// broker can meter the group's lag (high-water mark minus cursor).
    /// `next` is the next offset the group will read.
    pub fn commit(
        &self,
        token: &Token,
        group: &str,
        topic: &str,
        partition: usize,
        next: u64,
    ) -> Result<(), ApiError> {
        self.authenticate(token)?;
        self.inner.broker.commit(group, topic, partition, next);
        Ok(())
    }

    /// Load snapshot across gateways.
    pub fn gateway_loads(&self) -> Vec<GatewayLoad> {
        self.inner
            .gateways
            .iter()
            .enumerate()
            .map(|(i, g)| GatewayLoad {
                gateway: i,
                active_subscriptions: g.active_subscriptions.load(Ordering::Relaxed),
                total_requests: g.total_requests.load(Ordering::Relaxed),
            })
            .collect()
    }

    fn release(&self, gateway: usize) {
        self.inner.gateways[gateway].active_subscriptions.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A live push subscription.
pub struct Subscription {
    api: TelemetryApi,
    gateway: usize,
    topic: String,
    rx: crossbeam::channel::Receiver<Message>,
}

impl Subscription {
    /// Gateway serving this subscription.
    pub fn gateway(&self) -> usize {
        self.gateway
    }

    /// Topic subscribed.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// Non-blocking drain of everything currently queued.
    pub fn drain(&self) -> Vec<Message> {
        self.rx.try_iter().collect()
    }

    /// Non-blocking single receive.
    pub fn try_next(&self) -> Option<Message> {
        self.rx.try_recv().ok()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.api.release(self.gateway);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_bus::TopicConfig;
    use omni_model::SimClock;

    fn api() -> TelemetryApi {
        let broker = Broker::new(SimClock::new());
        broker.ensure_topic("cray-dmtf-resource-event", TopicConfig::default());
        TelemetryApi::new(broker, 4)
    }

    #[test]
    fn subscription_requires_valid_token() {
        let a = api();
        let bogus = Token("nope".to_string());
        assert_eq!(
            a.subscribe(&bogus, "cray-dmtf-resource-event").err(),
            Some(ApiError::Unauthorized)
        );
        let t = a.issue_token("bridge");
        assert!(a.subscribe(&t, "cray-dmtf-resource-event").is_ok());
    }

    #[test]
    fn revoked_token_stops_working() {
        let a = api();
        let t = a.issue_token("bridge");
        a.revoke_token(&t);
        assert_eq!(
            a.fetch(&t, "cray-dmtf-resource-event", 0, 0, 1).err(),
            Some(ApiError::Unauthorized)
        );
    }

    #[test]
    fn subscription_streams_messages() {
        let a = api();
        let t = a.issue_token("bridge");
        let sub = a.subscribe(&t, "cray-dmtf-resource-event").unwrap();
        // Note: the broker behind the api; produce directly.
        a.inner.broker.produce("cray-dmtf-resource-event", Some("x1"), "payload").unwrap();
        let msgs = sub.drain();
        assert_eq!(msgs.len(), 1);
        assert_eq!(&msgs[0].payload[..], b"payload");
    }

    #[test]
    fn subscriptions_balance_across_gateways() {
        let a = api();
        let t = a.issue_token("bridge");
        let subs: Vec<Subscription> =
            (0..8).map(|_| a.subscribe(&t, "cray-dmtf-resource-event").unwrap()).collect();
        let loads = a.gateway_loads();
        assert!(loads.iter().all(|l| l.active_subscriptions == 2), "{loads:?}");
        drop(subs);
        let loads = a.gateway_loads();
        assert!(loads.iter().all(|l| l.active_subscriptions == 0), "{loads:?}");
    }

    #[test]
    fn fetch_reads_history() {
        let a = api();
        let t = a.issue_token("bridge");
        for i in 0..5 {
            a.inner.broker.produce("cray-dmtf-resource-event", Some("k"), format!("{i}")).unwrap();
        }
        let part = (0..4)
            .find(|&p| {
                !a.inner.broker.fetch("cray-dmtf-resource-event", p, 0, 1).unwrap().is_empty()
            })
            .expect("keyed messages must land somewhere");
        let msgs = a.fetch(&t, "cray-dmtf-resource-event", part, 0, 3).unwrap();
        assert_eq!(msgs.len(), 3);
    }

    #[test]
    fn unknown_topic_surfaces_bus_error() {
        let a = api();
        let t = a.issue_token("bridge");
        assert!(matches!(a.subscribe(&t, "nope"), Err(ApiError::Bus(BusError::UnknownTopic(_)))));
    }

    #[test]
    fn commit_requires_auth_and_reaches_the_broker() {
        let a = api();
        let t = a.issue_token("bridge");
        a.inner.broker.produce("cray-dmtf-resource-event", Some("k"), "m").unwrap();
        let bogus = Token("nope".to_string());
        assert_eq!(
            a.commit(&bogus, "log-bridge", "cray-dmtf-resource-event", 0, 1).err(),
            Some(ApiError::Unauthorized)
        );
        a.commit(&t, "log-bridge", "cray-dmtf-resource-event", 0, 1).unwrap();
        assert_eq!(a.inner.broker.committed("log-bridge", "cray-dmtf-resource-event", 0), 1);
    }

    #[test]
    fn tokens_are_unique_per_issue() {
        let a = api();
        let t1 = a.issue_token("same");
        let t2 = a.issue_token("same");
        assert_ne!(t1, t2);
    }
}

//! The "single pane of glass": one query surface over logs and metrics.
//!
//! "Even though metrics and logs are stored separately, they are unified
//! in the stage of visualization and alerting" (§III). [`Pane`] is the
//! Grafana stand-in: LogQL goes to Loki, PromQL to the TSDB, and
//! [`Dashboard`] renders a text view of both — what the paper's Figures
//! 4, 5 and 7 show as Grafana panels.

use crate::omni::Omni;
use omni_logql::{InstantVector, Matrix};
use omni_model::{format_iso8601, LogRecord, Timestamp};
use omni_tsdb::{eval_instant, eval_range, parse_promql};

/// A query against the pane.
#[derive(Debug, Clone)]
pub enum PaneQuery {
    /// LogQL log query → log lines (Figure 4 / Figure 7 panels).
    Logs(String),
    /// LogQL metric query → series (Figure 5's graph).
    LogMetric(String),
    /// PromQL metric query → series.
    Metric(String),
}

/// One dashboard panel.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Panel title.
    pub title: String,
    /// The query.
    pub query: PaneQuery,
}

/// A dashboard: titled panels on one screen.
#[derive(Debug, Clone)]
pub struct Dashboard {
    /// Dashboard title.
    pub title: String,
    /// The panels.
    pub panels: Vec<Panel>,
}

/// Errors surfaced by the pane.
#[derive(Debug)]
pub enum PaneError {
    /// LogQL-side error.
    Loki(omni_loki::QueryError),
    /// PromQL-side error.
    Prom(omni_tsdb::promql::PromParseError),
}

impl std::fmt::Display for PaneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PaneError::Loki(e) => write!(f, "{e}"),
            PaneError::Prom(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PaneError {}

/// Result of one panel evaluation.
#[derive(Debug, Clone)]
pub enum PanelData {
    /// Log lines.
    Logs(Vec<LogRecord>),
    /// Time series.
    Series(Matrix),
}

impl Dashboard {
    /// Serialize to a Grafana-style dashboard JSON model (the format
    /// NERSC provisions dashboards in — "a single location to view all
    /// relevant dashboards").
    pub fn to_json(&self) -> omni_json::Json {
        use omni_json::Json;
        let panels: Vec<Json> = self
            .panels
            .iter()
            .map(|p| {
                let (panel_type, query_type, expr) = match &p.query {
                    PaneQuery::Logs(q) => ("logs", "range", q.clone()),
                    PaneQuery::LogMetric(q) => ("timeseries", "loki_metric", q.clone()),
                    PaneQuery::Metric(q) => ("timeseries", "prometheus", q.clone()),
                };
                omni_json::jsonv!({
                    "title": (p.title.clone()),
                    "type": (panel_type),
                    "targets": [{"expr": (expr), "queryType": (query_type)}],
                })
            })
            .collect();
        omni_json::jsonv!({
            "title": (self.title.clone()),
            "schemaVersion": 36,
            "panels": (Json::Array(panels)),
        })
    }

    /// Parse a dashboard back from its JSON model.
    pub fn from_json(v: &omni_json::Json) -> Option<Dashboard> {
        use omni_json::Json;
        let title = v.get("title")?.as_str()?.to_string();
        let mut panels = Vec::new();
        for p in v.get("panels")?.as_array()? {
            let ptitle = p.get("title")?.as_str()?.to_string();
            let target = p.get("targets")?.idx(0)?;
            let expr = target.get("expr")?.as_str()?.to_string();
            let query = match target.get("queryType").and_then(Json::as_str)? {
                "range" => PaneQuery::Logs(expr),
                "loki_metric" => PaneQuery::LogMetric(expr),
                "prometheus" => PaneQuery::Metric(expr),
                _ => return None,
            };
            panels.push(Panel { title: ptitle, query });
        }
        Some(Dashboard { title, panels })
    }

    /// The provisioned leak-detection dashboard (case study A's panels).
    pub fn leak_detection() -> Dashboard {
        Dashboard {
            title: "Perlmutter — Leak Detection".into(),
            panels: vec![
                Panel {
                    title: "Redfish events".into(),
                    query: PaneQuery::Logs(r#"{data_type="redfish_event"}"#.into()),
                },
                Panel {
                    title: "Leaks (60m window)".into(),
                    query: PaneQuery::LogMetric(
                        r#"sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (Severity, cluster, Context, MessageId)"#.into(),
                    ),
                },
                Panel {
                    title: "Leak sensors (metric)".into(),
                    query: PaneQuery::Metric("max by (xname) (shasta_leak_bool)".into()),
                },
            ],
        }
    }

    /// The self-telemetry dashboard: the monitor monitoring itself.
    /// Every panel queries metrics the pipeline scraped from its *own*
    /// registry (the `omni-self` job), fed back through the same
    /// vmagent → TSDB → pane path as any hardware metric. The latency
    /// panel uses the registry's precomputed `_p99` gauge because the
    /// PromQL subset has no `histogram_quantile`.
    pub fn pipeline_health() -> Dashboard {
        Dashboard {
            title: "OMNI — Pipeline Health".into(),
            panels: vec![
                Panel {
                    title: "Bus availability (1 = browned out)".into(),
                    query: PaneQuery::Metric("omni_bus_unavailable".into()),
                },
                Panel {
                    title: "Consumer lag by topic".into(),
                    query: PaneQuery::Metric("max by (topic) (omni_bus_consumer_lag)".into()),
                },
                Panel {
                    title: "Loki ingester shards down".into(),
                    query: PaneQuery::Metric("omni_loki_shards_down".into()),
                },
                Panel {
                    title: "Bridge records in flight".into(),
                    query: PaneQuery::Metric("max by (bridge) (omni_bridge_in_flight)".into()),
                },
                Panel {
                    title: "Notification queue depth".into(),
                    query: PaneQuery::Metric("omni_delivery_queue_depth".into()),
                },
                Panel {
                    title: "Event → incident latency p99 (s)".into(),
                    query: PaneQuery::Metric("omni_event_to_incident_seconds_p99".into()),
                },
                Panel {
                    title: "Query-frontend cache hits".into(),
                    query: PaneQuery::Metric("omni_frontend_cache_hits_total".into()),
                },
                Panel {
                    title: "Queries rejected by per-query limits".into(),
                    query: PaneQuery::Metric("omni_frontend_rejected_total".into()),
                },
            ],
        }
    }

    /// The provisioned fabric dashboard (case study B's panels).
    pub fn fabric_health() -> Dashboard {
        Dashboard {
            title: "Perlmutter — Fabric Health".into(),
            panels: vec![
                Panel {
                    title: "Switch events".into(),
                    query: PaneQuery::Logs(
                        r#"{app="fabric_manager_monitor"} |= "fm_switch_offline""#.into(),
                    ),
                },
                Panel {
                    title: "Offline switches (5m window)".into(),
                    query: PaneQuery::LogMetric(
                        r#"sum(count_over_time({app="fabric_manager_monitor"} |= "fm_switch_offline" [5m])) by (cluster)"#.into(),
                    ),
                },
            ],
        }
    }

    /// The provisioned pipeline-SLO dashboard: burn rates and error
    /// budgets for the monitor's own objectives, the modeled query
    /// latency, and the self-ingested slow-query log.
    pub fn pipeline_slo() -> Dashboard {
        Dashboard {
            title: "OMNI — Pipeline SLOs".into(),
            panels: vec![
                Panel {
                    title: "Fast-window burn rate".into(),
                    query: PaneQuery::Metric(
                        r#"max by (slo) (omni_slo_burn_rate{window="fast"})"#.into(),
                    ),
                },
                Panel {
                    title: "Slow-window burn rate".into(),
                    query: PaneQuery::Metric(
                        r#"max by (slo) (omni_slo_burn_rate{window="slow"})"#.into(),
                    ),
                },
                Panel {
                    title: "Error budget remaining".into(),
                    query: PaneQuery::Metric(
                        "max by (slo) (omni_slo_error_budget_remaining)".into(),
                    ),
                },
                Panel {
                    title: "Query latency p99 (modeled seconds)".into(),
                    query: PaneQuery::Metric("omni_query_latency_seconds_p99".into()),
                },
                Panel {
                    title: "Slow queries".into(),
                    query: PaneQuery::Logs(r#"{job="omni-self", component="slowlog"}"#.into()),
                },
                Panel {
                    title: "Slow queries (15m window)".into(),
                    query: PaneQuery::LogMetric(
                        r#"sum(count_over_time({job="omni-self", component="slowlog"} [15m])) by (component)"#.into(),
                    ),
                },
            ],
        }
    }
}

/// The query surface.
#[derive(Clone)]
pub struct Pane {
    omni: Omni,
}

impl Pane {
    /// A pane over a warehouse.
    pub fn new(omni: Omni) -> Self {
        Self { omni }
    }

    /// Evaluate a log query.
    pub fn logs(
        &self,
        query: &str,
        start: Timestamp,
        end: Timestamp,
        limit: usize,
    ) -> Result<Vec<LogRecord>, PaneError> {
        self.omni.loki().query_logs(query, start, end, limit).map_err(PaneError::Loki)
    }

    /// Evaluate a LogQL metric query over a range (Figure 5's graph).
    pub fn log_metric_range(
        &self,
        query: &str,
        start: Timestamp,
        end: Timestamp,
        step_ns: i64,
    ) -> Result<Matrix, PaneError> {
        self.omni.loki().query_range(query, start, end, step_ns).map_err(PaneError::Loki)
    }

    /// Evaluate a LogQL metric query at one instant.
    pub fn log_metric_instant(
        &self,
        query: &str,
        at: Timestamp,
    ) -> Result<InstantVector, PaneError> {
        self.omni.loki().query_instant(query, at).map_err(PaneError::Loki)
    }

    /// Evaluate a PromQL query at one instant.
    pub fn metric_instant(&self, query: &str, at: Timestamp) -> Result<InstantVector, PaneError> {
        let expr = parse_promql(query).map_err(PaneError::Prom)?;
        Ok(eval_instant(self.omni.tsdb(), &expr, at))
    }

    /// Evaluate a PromQL query over a range.
    pub fn metric_range(
        &self,
        query: &str,
        start: Timestamp,
        end: Timestamp,
        step_ns: i64,
    ) -> Result<Matrix, PaneError> {
        let expr = parse_promql(query).map_err(PaneError::Prom)?;
        Ok(eval_range(self.omni.tsdb(), &expr, start, end, step_ns))
    }

    /// Evaluate one panel over a window.
    pub fn panel(
        &self,
        panel: &Panel,
        start: Timestamp,
        end: Timestamp,
        step_ns: i64,
    ) -> Result<PanelData, PaneError> {
        match &panel.query {
            PaneQuery::Logs(q) => Ok(PanelData::Logs(self.logs(q, start, end, 100)?)),
            PaneQuery::LogMetric(q) => {
                Ok(PanelData::Series(self.log_metric_range(q, start, end, step_ns)?))
            }
            PaneQuery::Metric(q) => {
                Ok(PanelData::Series(self.metric_range(q, start, end, step_ns)?))
            }
        }
    }

    /// Render a whole dashboard as text (the examples' output).
    pub fn render_dashboard(
        &self,
        dashboard: &Dashboard,
        start: Timestamp,
        end: Timestamp,
        step_ns: i64,
    ) -> Result<String, PaneError> {
        let mut out = String::new();
        out.push_str(&format!("══ {} ══\n", dashboard.title));
        for panel in &dashboard.panels {
            out.push_str(&format!("\n── {} ──\n", panel.title));
            match self.panel(panel, start, end, step_ns)? {
                PanelData::Logs(records) => {
                    if records.is_empty() {
                        out.push_str("  (no matching log lines)\n");
                    }
                    for r in records.iter().take(20) {
                        out.push_str(&format!(
                            "  {}  {}  {}\n",
                            format_iso8601(r.entry.ts),
                            r.labels,
                            r.entry.line
                        ));
                    }
                }
                PanelData::Series(matrix) => {
                    if matrix.is_empty() {
                        out.push_str("  (no series)\n");
                    }
                    for (labels, samples) in matrix.iter().take(10) {
                        let spark: String =
                            samples.iter().map(|s| if s.value > 0.0 { '#' } else { '_' }).collect();
                        let max = samples.iter().map(|s| s.value).fold(f64::NEG_INFINITY, f64::max);
                        out.push_str(&format!("  {labels} max={max} {spark}\n"));
                    }
                }
            }
        }
        Ok(out)
    }
}

/// One-screen summary of how the stack weathered its failures: the
/// operator panel next to the dashboards. Assembled by
/// [`crate::stack::MonitoringStack::resilience_report`]; every input runs
/// on the virtual clock and seeded jitter, so the same chaos schedule
/// renders byte-identically across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// Loki crash/recovery and WAL counters.
    pub loki: omni_loki::ResilienceStats,
    /// Per-topic bus counters, sorted by topic name.
    pub bus: Vec<(String, omni_bus::TopicStatsSnapshot)>,
    /// Log-bridge redelivery counters.
    pub log_bridge: crate::bridge::BridgeResilience,
    /// Metric-bridge redelivery counters.
    pub metric_bridge: crate::bridge::BridgeResilience,
    /// Notification at-least-once delivery counters.
    pub delivery: omni_alertmanager::DeliveryStats,
    /// What the chaos engine actually injected (None when no engine).
    pub chaos: Option<crate::chaos::ChaosStats>,
}

impl ResilienceReport {
    /// Deterministic text rendering (stable field order, no wall clock).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== resilience report ==\n");
        let l = &self.loki;
        out.push_str(&format!(
            "loki: shards {}/{} up, crashes {}, replayed {}, rerouted {}, wal records {} ({} bytes), checkpoint drops {}\n",
            l.shards_up,
            l.shards_total,
            l.crashes,
            l.replayed_records,
            l.rerouted_records,
            l.wal_records,
            l.wal_bytes,
            l.wal_checkpoint_drops,
        ));
        for (name, b) in [("log bridge", &self.log_bridge), ("metric bridge", &self.metric_bridge)]
        {
            out.push_str(&format!(
                "{name}: fetch retries {}, resubscribes {}, ingest retries {}, dead-lettered {}, in-flight {}\n",
                b.fetch_retries, b.resubscribes, b.ingest_retries, b.dead_lettered, b.in_flight,
            ));
        }
        let d = &self.delivery;
        out.push_str(&format!(
            "delivery: enqueued {}, attempts {}, delivered {}, retried {}, dead-lettered {}, circuit opens {}, queue depth {}\n",
            d.enqueued,
            d.attempts,
            d.delivered,
            d.retried,
            d.permanently_failed,
            d.circuit_opens,
            d.queue_depth,
        ));
        if let Some(c) = &self.chaos {
            out.push_str(&format!(
                "chaos: actions {}, flaky rolls {}, flaky failures {}\n",
                c.actions_fired, c.flaky_rolls, c.flaky_failures,
            ));
        }
        out.push_str("bus:\n");
        for (topic, s) in &self.bus {
            out.push_str(&format!(
                "  {topic}: in {} msgs, out {} bytes, tail drops {}, produce retries {}, unavailable windows {}, lag {}\n",
                s.messages_in, s.bytes_out, s.tail_drops, s.produce_retries, s.unavailable_windows, s.consumer_lag,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_loki::Limits;
    use omni_model::{labels, SimClock, NANOS_PER_SEC};

    fn setup() -> (Omni, Pane) {
        let omni = Omni::new(2, Limits::default(), SimClock::starting_at(0));
        let pane = Pane::new(omni.clone());
        (omni, pane)
    }

    #[test]
    fn unified_logs_and_metrics() {
        let (omni, pane) = setup();
        let ts = 60 * NANOS_PER_SEC;
        omni.ingest_log(labels!("app" => "fm"), ts, "[critical] problem:fm_switch_offline")
            .unwrap();
        omni.ingest_metric("node_temp", labels!("node" => "x1"), ts, 55.0);
        let logs = pane.logs(r#"{app="fm"}"#, 0, 2 * ts, 10).unwrap();
        assert_eq!(logs.len(), 1);
        let metrics = pane.metric_instant("node_temp", ts + 1).unwrap();
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].1, 55.0);
    }

    #[test]
    fn dashboard_renders_both_kinds() {
        let (omni, pane) = setup();
        let ts = 3600 * NANOS_PER_SEC;
        omni.ingest_log(
            labels!("data_type" => "redfish_event", "Context" => "x1203c1b0"),
            ts,
            r#"{"Severity":"Warning","MessageId":"CrayAlerts.1.0.CabinetLeakDetected"}"#,
        )
        .unwrap();
        omni.ingest_metric("node_temp", labels!("node" => "x1"), ts, 44.0);
        let dash = Dashboard {
            title: "Perlmutter Health".into(),
            panels: vec![
                Panel {
                    title: "Redfish events".into(),
                    query: PaneQuery::Logs(r#"{data_type="redfish_event"}"#.into()),
                },
                Panel {
                    title: "Leak count".into(),
                    query: PaneQuery::LogMetric(
                        r#"sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" [60m])) by (Context)"#.into(),
                    ),
                },
                Panel {
                    title: "Node temperature".into(),
                    query: PaneQuery::Metric("max_over_time(node_temp[60m])".into()),
                },
            ],
        };
        let text = pane.render_dashboard(&dash, 0, 2 * ts, 600 * NANOS_PER_SEC).unwrap();
        assert!(text.contains("Perlmutter Health"));
        assert!(text.contains("Redfish events"));
        assert!(text.contains("x1203c1b0"));
        assert!(text.contains("max=1"));
        assert!(text.contains("max=44"));
    }

    #[test]
    fn dashboard_json_roundtrip() {
        let dash = Dashboard::leak_detection();
        let json = dash.to_json();
        assert_eq!(json.get("schemaVersion").and_then(omni_json::Json::as_f64), Some(36.0));
        let text = json.pretty(2);
        let parsed = omni_json::parse(&text).unwrap();
        let back = Dashboard::from_json(&parsed).unwrap();
        assert_eq!(back.title, dash.title);
        assert_eq!(back.panels.len(), dash.panels.len());
        for (a, b) in back.panels.iter().zip(dash.panels.iter()) {
            assert_eq!(a.title, b.title);
        }
    }

    #[test]
    fn provisioned_dashboards_render() {
        let (omni, pane) = setup();
        let ts = 3600 * NANOS_PER_SEC;
        omni.ingest_log(
            labels!("app" => "fabric_manager_monitor"),
            ts,
            "[critical] problem:fm_switch_offline, xname:x1002c1r7b0, state:UNKNOWN",
        )
        .unwrap();
        let text = pane
            .render_dashboard(&Dashboard::fabric_health(), 0, 2 * ts, 600 * NANOS_PER_SEC)
            .unwrap();
        assert!(text.contains("Fabric Health"));
        assert!(text.contains("x1002c1r7b0"));
    }

    #[test]
    fn bad_queries_error_cleanly() {
        let (_, pane) = setup();
        assert!(pane.logs("{oops", 0, 1, 1).is_err());
        assert!(pane.metric_instant("rate(", 0).is_err());
    }
}

//! The bridge clients: "K3s python pods ... read data in different Kafka
//! topics via the Telemetry API and send them to either Victoriametrics
//! or Loki" (§III).
//!
//! [`redfish_to_loki`] is the paper's §IV-A data-cleaning recipe,
//! reproduced decision by decision:
//!
//! * the ISO 8601 `EventTimestamp` becomes a Unix epoch in nanoseconds;
//! * `OriginOfCondition` ("a link ... which is not useful") and
//!   `MessageArgs` ("duplicate information in the Message field") are
//!   removed;
//! * two labels are added: `cluster="perlmutter"` and
//!   `data_type="redfish_event"`;
//! * `Context` is "critical for filtering events from a specific
//!   location, so it should be sent as a label";
//! * `Severity`, `MessageId` and `Message` "describe what the event was
//!   and should be sent as log content", wrapped as a JSON string so
//!   Grafana's `json` stage can re-extract them.
//!
//! # Delivery semantics
//!
//! The bridges consume at-least-once. Each keeps an explicit
//! `(topic, partition) → offset` cursor and advances it only after a
//! message has been handled, so a bus brownout (`BusError::Unavailable`)
//! or a revoked API token simply pauses consumption — the next pump picks
//! up at the same offset. Records that Loki rejects transiently (all
//! shards down) park in a bounded in-flight buffer with exponential
//! backoff; poison messages (unparseable payloads, permanent ingest
//! rejects, exhausted retries) are produced to [`DEAD_LETTER_TOPIC`]
//! instead of vanishing.

use crate::omni::Omni;
use omni_bus::{Broker, BusError, TopicConfig};
use omni_json::jsonv;
use omni_loki::IngestError;
use omni_model::{fnv1a64, LabelSet, LogRecord, RetryPolicy, RetryState, Timestamp};
use omni_obs::{format_trace_id, parse_trace_id, Histogram, TraceStore, TRACE_HEADER};
use omni_redfish::{topics, RedfishEvent, SensorReading};
use omni_telemetry::{ApiError, TelemetryApi, Token};
use omni_tsdb::Tsdb;

/// Topic where the bridges park poison messages: unparseable payloads,
/// records Loki permanently rejects, and retries that exhausted their
/// policy. The message key carries the reason.
pub const DEAD_LETTER_TOPIC: &str = "omni-bridge-dead-letter";

/// Messages fetched per `(topic, partition)` round.
const FETCH_BATCH: usize = 512;

/// Resilience counters common to both bridges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BridgeResilience {
    /// Fetch rounds abandoned because the bus was browned out (the cursor
    /// stays put, so nothing is lost — just deferred).
    pub fetch_retries: u64,
    /// Times the bridge re-issued credentials after an `Unauthorized`.
    pub resubscribes: u64,
    /// Transient ingest failures re-queued into the in-flight buffer.
    pub ingest_retries: u64,
    /// Messages produced to [`DEAD_LETTER_TOPIC`].
    pub dead_lettered: u64,
    /// Records currently parked awaiting an ingest retry.
    pub in_flight: usize,
}

/// Convert one Redfish event into the Loki record of Figure 3.
pub fn redfish_to_loki(event: &RedfishEvent, cluster: &str) -> LogRecord {
    let labels = LabelSet::from_pairs([
        ("Context", event.context.to_string()),
        ("cluster", cluster.to_string()),
        ("data_type", "redfish_event".to_string()),
    ]);
    let content = jsonv!({
        "Severity": (event.severity.as_str()),
        "MessageId": (event.message_id.clone()),
        "Message": (event.message.clone()),
    });
    LogRecord::new(labels, event.timestamp, content.dump())
}

/// Parse a Telemetry-API payload (possibly carrying several events) and
/// convert each into a Loki record.
pub fn telemetry_payload_to_loki(payload: &str, cluster: &str) -> Vec<LogRecord> {
    let Ok(json) = omni_json::parse(payload) else { return Vec::new() };
    let Ok(events) = RedfishEvent::from_telemetry_json(&json) else { return Vec::new() };
    events.iter().map(|e| redfish_to_loki(e, cluster)).collect()
}

/// Per-topic consumption cursor: offset of the next unread message in
/// each partition.
struct Cursor {
    topic: &'static str,
    offsets: Vec<u64>,
}

/// A record whose Loki push failed transiently, awaiting its backoff.
struct InFlight {
    record: LogRecord,
    state: RetryState,
    salt: u64,
}

/// The log-side bridge: pulls the log-bearing topics through the
/// Telemetry API into Loki via the OMNI facade, at-least-once.
pub struct LogBridge {
    cluster_name: String,
    omni: Omni,
    api: TelemetryApi,
    token: Token,
    client_id: String,
    broker: Broker,
    tracer: Option<TraceStore>,
    batch_hist: Option<Histogram>,
    cursors: Vec<Cursor>,
    in_flight: Vec<InFlight>,
    dead_backlog: Vec<(String, String)>,
    policy: RetryPolicy,
    max_in_flight: usize,
    salt_seq: u64,
    pushed: u64,
    errors: u64,
    fetch_retries: u64,
    resubscribes: u64,
    ingest_retries: u64,
    dead_lettered: u64,
}

const LOG_TOPICS: &[&str] = &[
    topics::RESOURCE_EVENTS,
    topics::SYSLOG,
    topics::CONTAINER_LOGS,
    topics::FABRIC_HEALTH,
    topics::GPFS_HEALTH,
];

impl LogBridge {
    /// Attach to the log-bearing topics through the Telemetry API. The
    /// broker handle is for the dead-letter topic.
    pub fn new(
        api: &TelemetryApi,
        token: &Token,
        omni: Omni,
        cluster_name: &str,
        broker: &Broker,
    ) -> Result<Self, ApiError> {
        broker.ensure_topic(DEAD_LETTER_TOPIC, TopicConfig { partitions: 1, ..Default::default() });
        let cursors = cursors_for(api, token, LOG_TOPICS)?;
        Ok(Self {
            cluster_name: cluster_name.to_string(),
            omni,
            api: api.clone(),
            token: token.clone(),
            client_id: "log-bridge".to_string(),
            broker: broker.clone(),
            tracer: None,
            batch_hist: None,
            cursors,
            in_flight: Vec::new(),
            dead_backlog: Vec::new(),
            policy: RetryPolicy::default(),
            max_in_flight: 4_096,
            salt_seq: 0,
            pushed: 0,
            errors: 0,
            fetch_retries: 0,
            resubscribes: 0,
            ingest_retries: 0,
            dead_lettered: 0,
        })
    }

    /// Attach a trace store: Redfish messages carrying the
    /// [`TRACE_HEADER`] get a `kafka` span, a `trace_id` record label and
    /// a `loki_ingest` span that stretches across park/retry cycles.
    pub fn set_tracer(&mut self, tracer: TraceStore) {
        self.tracer = Some(tracer);
    }

    /// Attach a histogram that observes the size of every batch pushed to
    /// Loki — the operator-facing view of how well the bridge amortises
    /// its ingest locking.
    pub fn set_batch_histogram(&mut self, hist: Histogram) {
        self.batch_hist = Some(hist);
    }

    /// One consumption round at virtual time `now`: retry parked records
    /// that are due, then pull every topic forward. Returns records pushed
    /// to Loki in this pump.
    ///
    /// Records converted from the fetched messages accumulate in a pending
    /// buffer and go to Loki as one batch per `(topic, partition)` fetch
    /// round, so the ingesters take one lock per round instead of one per
    /// record. Outcomes stay per-record: each entry in the batch result is
    /// stored, parked, or dead-lettered exactly as the per-record path did.
    pub fn pump(&mut self, now: Timestamp) -> u64 {
        let mut pushed = 0;
        self.flush_dead_backlog();
        self.retry_in_flight(now, &mut pushed);
        let mut pending: Vec<LogRecord> = Vec::new();
        'fetch: for c in 0..self.cursors.len() {
            let topic = self.cursors[c].topic;
            for part in 0..self.cursors[c].offsets.len() {
                loop {
                    if self.in_flight.len() + pending.len() >= self.max_in_flight {
                        // Backpressure: stop consuming until retries drain.
                        break 'fetch;
                    }
                    let offset = self.cursors[c].offsets[part];
                    let msgs = match self.api.fetch(&self.token, topic, part, offset, FETCH_BATCH) {
                        Ok(msgs) => msgs,
                        Err(ApiError::Unauthorized) => {
                            // Credentials were revoked out from under
                            // us: re-issue and resume right away.
                            self.token = self.api.issue_token(&self.client_id);
                            self.resubscribes += 1;
                            continue;
                        }
                        Err(ApiError::Bus(BusError::Unavailable)) => {
                            // Brownout: the cursor stays put, so the
                            // next pump re-reads from here.
                            self.fetch_retries += 1;
                            break 'fetch;
                        }
                        Err(ApiError::Bus(_)) => break,
                    };
                    if msgs.is_empty() {
                        break;
                    }
                    for msg in msgs {
                        if self.in_flight.len() + pending.len() >= self.max_in_flight {
                            // Unconsumed messages re-fetch next pump.
                            break 'fetch;
                        }
                        let next = msg.offset + 1;
                        self.handle_message(topic, msg, now, &mut pending);
                        self.cursors[c].offsets[part] = next;
                    }
                    // One batched push per fetch round keeps the pending
                    // buffer bounded by FETCH_BATCH plus a few multi-event
                    // payloads.
                    self.flush_pending(&mut pending, now, &mut pushed);
                }
            }
        }
        self.flush_pending(&mut pending, now, &mut pushed);
        self.commit_cursors();
        self.pushed += pushed;
        pushed
    }

    /// Commit every advanced cursor under the bridge's consumer group so
    /// the broker can report consumer lag for it.
    fn commit_cursors(&self) {
        for c in &self.cursors {
            for (part, &next) in c.offsets.iter().enumerate() {
                if next > 0 {
                    let _ = self.api.commit(&self.token, &self.client_id, c.topic, part, next);
                }
            }
        }
    }

    fn handle_message(
        &mut self,
        topic: &str,
        msg: omni_bus::Message,
        now: Timestamp,
        pending: &mut Vec<LogRecord>,
    ) {
        let payload = String::from_utf8_lossy(&msg.payload).into_owned();
        if topic == topics::RESOURCE_EVENTS {
            // Redfish events: the Figure 2 → Figure 3 transformation.
            let trace = self
                .tracer
                .as_ref()
                .and_then(|_| msg.header(TRACE_HEADER))
                .and_then(parse_trace_id);
            if let (Some(tracer), Some(id)) = (self.tracer.clone(), trace) {
                // Time spent on the bus: produced at msg.ts, fetched now.
                tracer.span_once(
                    id,
                    "kafka",
                    msg.ts,
                    now,
                    &format!("{topic} offset {}", msg.offset),
                );
            }
            let records = telemetry_payload_to_loki(&payload, &self.cluster_name);
            if records.is_empty() {
                self.dead_letter("malformed-redfish", &payload);
            }
            for mut record in records {
                // The trace id rides as a stream label, attached *after*
                // the byte-exact Figure 3 transformation.
                if let Some(id) = trace {
                    record.labels.insert("trace_id", format_trace_id(id));
                }
                pending.push(record);
            }
            return;
        }
        let key = msg.key.as_deref().unwrap_or("unknown");
        let labels = match topic {
            // Syslog: host key becomes the hostname label.
            t if t == topics::SYSLOG => LabelSet::from_pairs([
                ("cluster", self.cluster_name.as_str()),
                ("data_type", "syslog"),
                ("hostname", key),
            ]),
            // Container logs: pod name label.
            t if t == topics::CONTAINER_LOGS => LabelSet::from_pairs([
                ("cluster", self.cluster_name.as_str()),
                ("data_type", "container_log"),
                ("pod", key),
            ]),
            // Fabric-manager monitor events (Figure 7's stream).
            t if t == topics::FABRIC_HEALTH => LabelSet::from_pairs([
                ("cluster", self.cluster_name.as_str()),
                ("app", "fabric_manager_monitor"),
            ]),
            // GPFS monitor events (§V future work), keyed by NSD server.
            t if t == topics::GPFS_HEALTH => LabelSet::from_pairs([
                ("cluster", self.cluster_name.as_str()),
                ("app", "gpfs_monitor"),
                ("server", key),
            ]),
            _ => return,
        };
        pending.push(LogRecord::new(labels, msg.ts, payload));
    }

    /// The trace id a record carries (attached in [`Self::handle_message`]).
    fn record_trace(&self, record: &LogRecord) -> Option<(TraceStore, u64)> {
        let tracer = self.tracer.clone()?;
        let id = record.labels.get("trace_id").and_then(parse_trace_id)?;
        Some((tracer, id))
    }

    /// Push the pending records as one batch; per-record outcomes keep
    /// the per-record semantics: transient failures park the record,
    /// permanent ones dead-letter it.
    fn flush_pending(&mut self, pending: &mut Vec<LogRecord>, now: Timestamp, pushed: &mut u64) {
        if pending.is_empty() {
            return;
        }
        let batch = std::mem::take(pending);
        if let Some(hist) = &self.batch_hist {
            hist.observe(batch.len() as f64);
        }
        for record in &batch {
            if let Some((tracer, id)) = self.record_trace(record) {
                // Idempotent while open: a parked record keeps its
                // original start, so the closed span shows the full
                // retry window.
                tracer.begin_span(id, "loki_ingest", now, "");
            }
        }
        let results = self.omni.ingest_batch(batch.clone());
        for (record, result) in batch.into_iter().zip(results) {
            match result {
                Ok(()) => {
                    *pushed += 1;
                    if let Some((tracer, id)) = self.record_trace(&record) {
                        tracer.end_span(id, "loki_ingest", now, "stored");
                    }
                }
                Err(IngestError::AllShardsDown) => self.park(record, now),
                Err(_) => {
                    self.errors += 1;
                    self.dead_letter("rejected-ingest", &record.entry.line);
                }
            }
        }
    }

    fn park(&mut self, record: LogRecord, now: Timestamp) {
        let salt = fnv1a64(&self.salt_seq.to_le_bytes()) ^ record.labels.fingerprint();
        self.salt_seq += 1;
        let mut state = RetryState::new();
        if state.record_failure(now, &self.policy, salt) {
            self.ingest_retries += 1;
            self.in_flight.push(InFlight { record, state, salt });
        } else {
            self.dead_letter("retries-exhausted", &record.entry.line);
        }
    }

    fn retry_in_flight(&mut self, now: Timestamp, pushed: &mut u64) {
        let mut i = 0;
        while i < self.in_flight.len() {
            if !self.in_flight[i].state.due(now) {
                i += 1;
                continue;
            }
            match self.omni.ingest_record(self.in_flight[i].record.clone()) {
                Ok(()) => {
                    *pushed += 1;
                    let item = self.in_flight.remove(i);
                    if let Some((tracer, id)) = self.record_trace(&item.record) {
                        tracer.end_span(id, "loki_ingest", now, "stored after retry");
                    }
                }
                Err(IngestError::AllShardsDown) => {
                    let item = &mut self.in_flight[i];
                    if item.state.record_failure(now, &self.policy, item.salt) {
                        self.ingest_retries += 1;
                        i += 1;
                    } else {
                        let item = self.in_flight.remove(i);
                        self.dead_letter("retries-exhausted", &item.record.entry.line);
                    }
                }
                Err(_) => {
                    self.errors += 1;
                    let item = self.in_flight.remove(i);
                    self.dead_letter("rejected-ingest", &item.record.entry.line);
                }
            }
        }
    }

    fn dead_letter(&mut self, reason: &str, payload: &str) {
        self.dead_lettered += 1;
        if self.broker.produce(DEAD_LETTER_TOPIC, Some(reason), payload.to_string()).is_err() {
            // Bus is browned out too: hold locally, re-produce next pump.
            self.dead_backlog.push((reason.to_string(), payload.to_string()));
        }
    }

    fn flush_dead_backlog(&mut self) {
        let backlog = std::mem::take(&mut self.dead_backlog);
        for (reason, payload) in backlog {
            if self.broker.produce(DEAD_LETTER_TOPIC, Some(&reason), payload.clone()).is_err() {
                self.dead_backlog.push((reason, payload));
            }
        }
    }

    /// Revoke the bridge's current API token (chaos hook); the next pump
    /// hits `Unauthorized` and re-subscribes.
    pub fn chaos_revoke_token(&self) {
        self.api.revoke_token(&self.token);
    }

    /// `(records pushed, permanent push errors)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.pushed, self.errors)
    }

    /// Resilience counters.
    pub fn resilience(&self) -> BridgeResilience {
        BridgeResilience {
            fetch_retries: self.fetch_retries,
            resubscribes: self.resubscribes,
            ingest_retries: self.ingest_retries,
            dead_lettered: self.dead_lettered,
            in_flight: self.in_flight.len(),
        }
    }
}

const METRIC_TOPICS: &[&str] = &[
    topics::TELEMETRY_TEMPERATURE,
    topics::TELEMETRY_HUMIDITY,
    topics::TELEMETRY_POWER,
    topics::TELEMETRY_FAN,
    topics::TELEMETRY_LEAK,
    topics::TELEMETRY_FLOW,
];

/// The metric-side bridge: pulls sensor telemetry topics into the TSDB,
/// at-least-once (TSDB ingest cannot fail, so no in-flight buffer).
pub struct MetricBridge {
    cluster_name: String,
    tsdb: Tsdb,
    api: TelemetryApi,
    token: Token,
    client_id: String,
    broker: Broker,
    cursors: Vec<Cursor>,
    pushed: u64,
    fetch_retries: u64,
    resubscribes: u64,
    dead_lettered: u64,
}

impl MetricBridge {
    /// Attach to every numeric telemetry topic.
    pub fn new(
        api: &TelemetryApi,
        token: &Token,
        tsdb: Tsdb,
        cluster_name: &str,
        broker: &Broker,
    ) -> Result<Self, ApiError> {
        broker.ensure_topic(DEAD_LETTER_TOPIC, TopicConfig { partitions: 1, ..Default::default() });
        let cursors = cursors_for(api, token, METRIC_TOPICS)?;
        Ok(Self {
            cluster_name: cluster_name.to_string(),
            tsdb,
            api: api.clone(),
            token: token.clone(),
            client_id: "metric-bridge".to_string(),
            broker: broker.clone(),
            cursors,
            pushed: 0,
            fetch_retries: 0,
            resubscribes: 0,
            dead_lettered: 0,
        })
    }

    /// Pull every telemetry topic into the TSDB. Metric names follow the
    /// `shasta_<kind>_<unit>` convention.
    pub fn pump(&mut self) -> u64 {
        let mut pushed = 0;
        'fetch: for c in 0..self.cursors.len() {
            let topic = self.cursors[c].topic;
            for part in 0..self.cursors[c].offsets.len() {
                loop {
                    let offset = self.cursors[c].offsets[part];
                    let msgs = match self.api.fetch(&self.token, topic, part, offset, FETCH_BATCH) {
                        Ok(msgs) => msgs,
                        Err(ApiError::Unauthorized) => {
                            self.token = self.api.issue_token(&self.client_id);
                            self.resubscribes += 1;
                            continue;
                        }
                        Err(ApiError::Bus(BusError::Unavailable)) => {
                            self.fetch_retries += 1;
                            break 'fetch;
                        }
                        Err(ApiError::Bus(_)) => break,
                    };
                    if msgs.is_empty() {
                        break;
                    }
                    for msg in msgs {
                        let next = msg.offset + 1;
                        let payload = String::from_utf8_lossy(&msg.payload).into_owned();
                        match omni_json::parse(&payload)
                            .ok()
                            .as_ref()
                            .and_then(SensorReading::from_json)
                        {
                            Some(reading) => {
                                let name = format!(
                                    "shasta_{}_{}",
                                    reading.kind.as_str(),
                                    reading.kind.unit()
                                );
                                let labels = LabelSet::from_pairs([
                                    ("xname", reading.xname.to_string()),
                                    ("sensor", reading.sensor_id.clone()),
                                    ("cluster", self.cluster_name.clone()),
                                ]);
                                self.tsdb.ingest_sample(&name, labels, reading.ts, reading.value);
                                pushed += 1;
                            }
                            None => {
                                self.dead_lettered += 1;
                                let _ = self.broker.produce(
                                    DEAD_LETTER_TOPIC,
                                    Some("malformed-sensor"),
                                    payload,
                                );
                            }
                        }
                        self.cursors[c].offsets[part] = next;
                    }
                }
            }
        }
        self.commit_cursors();
        self.pushed += pushed;
        pushed
    }

    /// Commit every advanced cursor under the bridge's consumer group.
    fn commit_cursors(&self) {
        for c in &self.cursors {
            for (part, &next) in c.offsets.iter().enumerate() {
                if next > 0 {
                    let _ = self.api.commit(&self.token, &self.client_id, c.topic, part, next);
                }
            }
        }
    }

    /// Revoke the bridge's current API token (chaos hook).
    pub fn chaos_revoke_token(&self) {
        self.api.revoke_token(&self.token);
    }

    /// Records pushed so far.
    pub fn stats(&self) -> u64 {
        self.pushed
    }

    /// Resilience counters (this bridge never parks records).
    pub fn resilience(&self) -> BridgeResilience {
        BridgeResilience {
            fetch_retries: self.fetch_retries,
            resubscribes: self.resubscribes,
            ingest_retries: 0,
            dead_lettered: self.dead_lettered,
            in_flight: 0,
        }
    }
}

fn cursors_for(
    api: &TelemetryApi,
    token: &Token,
    names: &[&'static str],
) -> Result<Vec<Cursor>, ApiError> {
    names
        .iter()
        .map(|&topic| {
            let parts = api.partition_count(token, topic)?;
            Ok(Cursor { topic, offsets: vec![0; parts] })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_json::Json;
    use omni_loki::Limits;
    use omni_model::{parse_iso8601, SimClock, NANOS_PER_SEC};

    #[test]
    fn figure3_transformation_exact() {
        let event = RedfishEvent::paper_leak_event();
        let record = redfish_to_loki(&event, "perlmutter");
        // Labels: Context + cluster + data_type, exactly (Fig 3).
        assert_eq!(record.labels.len(), 3);
        assert_eq!(record.labels.get("Context"), Some("x1203c1b0"));
        assert_eq!(record.labels.get("cluster"), Some("perlmutter"));
        assert_eq!(record.labels.get("data_type"), Some("redfish_event"));
        // Timestamp: "an unix epoch in nanoseconds" (Fig 3 shows
        // 1646272077000000000).
        assert_eq!(record.entry.ts, 1_646_272_077_000_000_000);
        assert_eq!(record.entry.ts, parse_iso8601("2022-03-03T01:47:57+00:00").unwrap());
        // Content: Severity/MessageId/Message wrapped as JSON, nothing else.
        let content = omni_json::parse(&record.entry.line).unwrap();
        let fields = content.as_object().unwrap();
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["Severity", "MessageId", "Message"]);
        assert_eq!(content.get("Severity").and_then(Json::as_str), Some("Warning"));
        assert_eq!(
            content.get("MessageId").and_then(Json::as_str),
            Some("CrayAlerts.1.0.CabinetLeakDetected")
        );
        assert_eq!(
            content.get("Message").and_then(Json::as_str),
            Some("Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak.")
        );
        // The dropped fields must not sneak into the content.
        assert!(content.get("OriginOfCondition").is_none());
        assert!(content.get("MessageArgs").is_none());
        assert!(content.get("EventTimestamp").is_none());
    }

    #[test]
    fn figure3_payload_text_matches_paper() {
        // The paper's Fig 3 content string, byte-for-byte.
        let record = redfish_to_loki(&RedfishEvent::paper_leak_event(), "perlmutter");
        assert_eq!(
            record.entry.line,
            r#"{"Severity":"Warning","MessageId":"CrayAlerts.1.0.CabinetLeakDetected","Message":"Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak."}"#
        );
    }

    #[test]
    fn telemetry_payload_roundtrip() {
        let event = RedfishEvent::paper_leak_event();
        let payload = event.to_telemetry_json().dump();
        let records = telemetry_payload_to_loki(&payload, "perlmutter");
        assert_eq!(records.len(), 1);
        assert_eq!(records[0], redfish_to_loki(&event, "perlmutter"));
    }

    #[test]
    fn malformed_payload_yields_nothing() {
        assert!(telemetry_payload_to_loki("not json", "perlmutter").is_empty());
        assert!(telemetry_payload_to_loki("{}", "perlmutter").is_empty());
    }

    fn rig() -> (SimClock, Broker, TelemetryApi, Omni, LogBridge) {
        let clock = SimClock::starting_at(0);
        let broker = Broker::new(clock.clone());
        for t in topics::ALL {
            broker.ensure_topic(t, TopicConfig { partitions: 2, ..Default::default() });
        }
        let api = TelemetryApi::new(broker.clone(), 2);
        let omni = Omni::new(2, Limits::default(), clock.clone());
        let token = api.issue_token("test-bridge");
        let bridge = LogBridge::new(&api, &token, omni.clone(), "perlmutter", &broker).unwrap();
        (clock, broker, api, omni, bridge)
    }

    fn count_syslog(omni: &Omni, now: Timestamp) -> usize {
        // Loki ranges are (start, end]: start at -1 to include ts=0.
        omni.loki().query_logs(r#"{data_type="syslog"}"#, -1, now + 1, usize::MAX).unwrap().len()
    }

    #[test]
    fn log_bridge_redelivers_after_brownout() {
        let (clock, broker, _api, omni, mut bridge) = rig();
        for i in 0..10 {
            broker.produce(topics::SYSLOG, Some("nid0001"), format!("line {i}")).unwrap();
        }
        // Brownout covers the first pump: nothing moves, nothing is lost.
        let now = clock.advance(NANOS_PER_SEC);
        broker.inject_brownout(now, now + 2 * NANOS_PER_SEC);
        assert_eq!(bridge.pump(now), 0);
        assert!(bridge.resilience().fetch_retries > 0);
        // Past the window the cursor resumes from offset 0.
        let later = clock.advance(5 * NANOS_PER_SEC);
        assert_eq!(bridge.pump(later), 10);
        assert_eq!(count_syslog(&omni, later), 10);
    }

    #[test]
    fn log_bridge_reissues_revoked_token() {
        let (clock, broker, _api, omni, mut bridge) = rig();
        broker.produce(topics::SYSLOG, Some("nid0001"), "hello".to_string()).unwrap();
        bridge.chaos_revoke_token();
        let now = clock.advance(NANOS_PER_SEC);
        assert_eq!(bridge.pump(now), 1);
        assert_eq!(bridge.resilience().resubscribes, 1);
        assert_eq!(count_syslog(&omni, now), 1);
    }

    #[test]
    fn poison_payload_lands_in_dead_letter_topic() {
        let (clock, broker, _api, _omni, mut bridge) = rig();
        broker.produce(topics::RESOURCE_EVENTS, Some("x0"), "not json at all".to_string()).unwrap();
        let now = clock.advance(NANOS_PER_SEC);
        assert_eq!(bridge.pump(now), 0);
        assert_eq!(bridge.resilience().dead_lettered, 1);
        let dead = broker.fetch(DEAD_LETTER_TOPIC, 0, 0, 10).unwrap();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].key.as_deref(), Some("malformed-redfish"));
        assert_eq!(dead[0].payload.as_ref(), b"not json at all");
    }

    #[test]
    fn ingest_retry_buffer_drains_after_shards_recover() {
        let (clock, broker, _api, omni, mut bridge) = rig();
        broker.produce(topics::SYSLOG, Some("nid0001"), "parked line".to_string()).unwrap();
        // Every Loki shard down: the record parks instead of dropping.
        omni.loki().crash_shard(0);
        omni.loki().crash_shard(1);
        let now = clock.advance(NANOS_PER_SEC);
        assert_eq!(bridge.pump(now), 0);
        let r = bridge.resilience();
        assert_eq!((r.in_flight, r.ingest_retries), (1, 1));
        // Shards come back; once the backoff elapses the record lands.
        omni.loki().recover_shard(0);
        omni.loki().recover_shard(1);
        let later = clock.advance(120 * NANOS_PER_SEC);
        assert_eq!(bridge.pump(later), 1);
        assert_eq!(bridge.resilience().in_flight, 0);
        assert_eq!(count_syslog(&omni, later), 1);
        assert_eq!(bridge.stats(), (1, 0));
    }

    #[test]
    fn bridge_commits_cursors_for_lag_metering() {
        let (clock, broker, _api, _omni, mut bridge) = rig();
        for i in 0..5 {
            broker.produce(topics::SYSLOG, Some("nid0001"), format!("line {i}")).unwrap();
        }
        let now = clock.advance(NANOS_PER_SEC);
        assert_eq!(bridge.pump(now), 5);
        // Everything consumed and committed: zero lag for the group.
        assert_eq!(broker.group_lag("log-bridge", topics::SYSLOG).unwrap(), 0);
        // New messages the bridge has not pumped yet show up as lag.
        broker.produce(topics::SYSLOG, Some("nid0001"), "late".to_string()).unwrap();
        assert_eq!(broker.group_lag("log-bridge", topics::SYSLOG).unwrap(), 1);
        assert_eq!(broker.stats(topics::SYSLOG).unwrap().consumer_lag, 1);
    }

    #[test]
    fn trace_header_becomes_spans_and_record_label() {
        let (clock, broker, _api, omni, mut bridge) = rig();
        let tracer = TraceStore::new(42);
        bridge.set_tracer(tracer.clone());
        let event = RedfishEvent::paper_leak_event();
        let ctx = tracer.begin_trace(&event.context.to_string(), &event.message_id, 0);
        broker
            .produce_with_headers(
                topics::RESOURCE_EVENTS,
                Some(&event.context.to_string()),
                event.to_telemetry_json().dump(),
                vec![(TRACE_HEADER.to_string(), ctx.encode())],
            )
            .unwrap();
        let now = clock.advance(NANOS_PER_SEC);
        assert_eq!(bridge.pump(now), 1);
        // Both bridge-side stages closed their spans.
        assert!(tracer.has_stage(ctx.trace_id, "kafka"));
        assert!(tracer.has_stage(ctx.trace_id, "loki_ingest"));
        // The stored record carries the trace id as a label, on top of
        // the exact Figure 3 labels.
        let got =
            omni.loki().query_logs(r#"{data_type="redfish_event"}"#, -1, i64::MAX, 10).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].labels.get("trace_id"), Some(ctx.encode().as_str()));
    }

    #[test]
    fn parked_record_stretches_ingest_span_across_retries() {
        let (clock, broker, _api, omni, mut bridge) = rig();
        let tracer = TraceStore::new(7);
        bridge.set_tracer(tracer.clone());
        let event = RedfishEvent::paper_leak_event();
        let ctx = tracer.begin_trace(&event.context.to_string(), &event.message_id, 0);
        broker
            .produce_with_headers(
                topics::RESOURCE_EVENTS,
                None,
                event.to_telemetry_json().dump(),
                vec![(TRACE_HEADER.to_string(), ctx.encode())],
            )
            .unwrap();
        omni.loki().crash_shard(0);
        omni.loki().crash_shard(1);
        let first = clock.advance(NANOS_PER_SEC);
        assert_eq!(bridge.pump(first), 0);
        assert!(!tracer.has_stage(ctx.trace_id, "loki_ingest"), "span must stay open");
        omni.loki().recover_shard(0);
        omni.loki().recover_shard(1);
        let later = clock.advance(120 * NANOS_PER_SEC);
        assert_eq!(bridge.pump(later), 1);
        let span = tracer
            .spans(ctx.trace_id)
            .into_iter()
            .find(|s| s.stage == "loki_ingest")
            .expect("span closed after retry");
        // The span covers the whole outage: first attempt to final store.
        assert_eq!((span.start, span.end), (first, later));
        assert_eq!(span.note, "stored after retry");
    }

    #[test]
    fn metric_bridge_survives_brownout_and_revocation() {
        let clock = SimClock::starting_at(0);
        let broker = Broker::new(clock.clone());
        for t in topics::ALL {
            broker.ensure_topic(t, TopicConfig { partitions: 2, ..Default::default() });
        }
        let api = TelemetryApi::new(broker.clone(), 2);
        let tsdb = Tsdb::default_config();
        let token = api.issue_token("test-metrics");
        let mut bridge = MetricBridge::new(&api, &token, tsdb, "perlmutter", &broker).unwrap();
        let reading = SensorReading {
            xname: "x1000c0s0b0n0".parse().unwrap(),
            sensor_id: "t0".into(),
            kind: omni_redfish::SensorKind::Temperature,
            value: 55.0,
            ts: 5,
        };
        broker
            .produce(topics::TELEMETRY_TEMPERATURE, Some("x1000c0s0b0n0"), reading.to_json().dump())
            .unwrap();
        let now = clock.advance(NANOS_PER_SEC);
        broker.inject_brownout(now, now + NANOS_PER_SEC);
        assert_eq!(bridge.pump(), 0);
        assert!(bridge.resilience().fetch_retries > 0);
        clock.advance(2 * NANOS_PER_SEC);
        bridge.chaos_revoke_token();
        assert_eq!(bridge.pump(), 1);
        assert_eq!(bridge.resilience().resubscribes, 1);
    }
}

//! The bridge clients: "K3s python pods ... read data in different Kafka
//! topics via the Telemetry API and send them to either Victoriametrics
//! or Loki" (§III).
//!
//! [`redfish_to_loki`] is the paper's §IV-A data-cleaning recipe,
//! reproduced decision by decision:
//!
//! * the ISO 8601 `EventTimestamp` becomes a Unix epoch in nanoseconds;
//! * `OriginOfCondition` ("a link ... which is not useful") and
//!   `MessageArgs` ("duplicate information in the Message field") are
//!   removed;
//! * two labels are added: `cluster="perlmutter"` and
//!   `data_type="redfish_event"`;
//! * `Context` is "critical for filtering events from a specific
//!   location, so it should be sent as a label";
//! * `Severity`, `MessageId` and `Message` "describe what the event was
//!   and should be sent as log content", wrapped as a JSON string so
//!   Grafana's `json` stage can re-extract them.

use crate::omni::Omni;
use omni_json::jsonv;
use omni_model::{LabelSet, LogRecord};
use omni_redfish::{RedfishEvent, SensorReading};
use omni_telemetry::{Subscription, TelemetryApi, Token};
use omni_tsdb::Tsdb;

/// Convert one Redfish event into the Loki record of Figure 3.
pub fn redfish_to_loki(event: &RedfishEvent, cluster: &str) -> LogRecord {
    let labels = LabelSet::from_pairs([
        ("Context", event.context.to_string()),
        ("cluster", cluster.to_string()),
        ("data_type", "redfish_event".to_string()),
    ]);
    let content = jsonv!({
        "Severity": (event.severity.as_str()),
        "MessageId": (event.message_id.clone()),
        "Message": (event.message.clone()),
    });
    LogRecord::new(labels, event.timestamp, content.dump())
}

/// Parse a Telemetry-API payload (possibly carrying several events) and
/// convert each into a Loki record.
pub fn telemetry_payload_to_loki(payload: &str, cluster: &str) -> Vec<LogRecord> {
    let Ok(json) = omni_json::parse(payload) else { return Vec::new() };
    let Ok(events) = RedfishEvent::from_telemetry_json(&json) else { return Vec::new() };
    events.iter().map(|e| redfish_to_loki(e, cluster)).collect()
}

/// The log-side bridge: drains Telemetry-API subscriptions into Loki
/// through the OMNI facade (metering + optional discovery tier).
pub struct LogBridge {
    cluster_name: String,
    omni: Omni,
    redfish_sub: Subscription,
    syslog_sub: Subscription,
    container_sub: Subscription,
    fabric_sub: Subscription,
    gpfs_sub: Subscription,
    pushed: u64,
    errors: u64,
}

impl LogBridge {
    /// Subscribe to the log-bearing topics through the Telemetry API.
    pub fn new(
        api: &TelemetryApi,
        token: &Token,
        omni: Omni,
        cluster_name: &str,
    ) -> Result<Self, omni_telemetry::ApiError> {
        Ok(Self {
            cluster_name: cluster_name.to_string(),
            omni,
            redfish_sub: api.subscribe(token, omni_redfish::topics::RESOURCE_EVENTS)?,
            syslog_sub: api.subscribe(token, omni_redfish::topics::SYSLOG)?,
            container_sub: api.subscribe(token, omni_redfish::topics::CONTAINER_LOGS)?,
            fabric_sub: api.subscribe(token, omni_redfish::topics::FABRIC_HEALTH)?,
            gpfs_sub: api.subscribe(token, omni_redfish::topics::GPFS_HEALTH)?,
            pushed: 0,
            errors: 0,
        })
    }

    /// Drain all subscriptions once, pushing everything to Loki. Returns
    /// records pushed in this pump.
    pub fn pump(&mut self) -> u64 {
        let mut pushed = 0;
        // Redfish events: the Figure 2 → Figure 3 transformation.
        for msg in self.redfish_sub.drain() {
            let payload = String::from_utf8_lossy(&msg.payload);
            for record in telemetry_payload_to_loki(&payload, &self.cluster_name) {
                match self.omni.ingest_record(record) {
                    Ok(()) => pushed += 1,
                    Err(_) => self.errors += 1,
                }
            }
        }
        // Syslog: host key becomes the hostname label.
        for msg in self.syslog_sub.drain() {
            let labels = LabelSet::from_pairs([
                ("cluster", self.cluster_name.as_str()),
                ("data_type", "syslog"),
                ("hostname", msg.key.as_deref().unwrap_or("unknown")),
            ]);
            let line = String::from_utf8_lossy(&msg.payload).into_owned();
            match self.omni.ingest_log(labels, msg.ts, line) {
                Ok(()) => pushed += 1,
                Err(_) => self.errors += 1,
            }
        }
        // Container logs: pod name label.
        for msg in self.container_sub.drain() {
            let labels = LabelSet::from_pairs([
                ("cluster", self.cluster_name.as_str()),
                ("data_type", "container_log"),
                ("pod", msg.key.as_deref().unwrap_or("unknown")),
            ]);
            let line = String::from_utf8_lossy(&msg.payload).into_owned();
            match self.omni.ingest_log(labels, msg.ts, line) {
                Ok(()) => pushed += 1,
                Err(_) => self.errors += 1,
            }
        }
        // Fabric-manager monitor events (Figure 7's stream).
        for msg in self.fabric_sub.drain() {
            let labels = LabelSet::from_pairs([
                ("cluster", self.cluster_name.as_str()),
                ("app", "fabric_manager_monitor"),
            ]);
            let line = String::from_utf8_lossy(&msg.payload).into_owned();
            match self.omni.ingest_log(labels, msg.ts, line) {
                Ok(()) => pushed += 1,
                Err(_) => self.errors += 1,
            }
        }
        // GPFS monitor events (§V future work), keyed by NSD server.
        for msg in self.gpfs_sub.drain() {
            let labels = LabelSet::from_pairs([
                ("cluster", self.cluster_name.as_str()),
                ("app", "gpfs_monitor"),
                ("server", msg.key.as_deref().unwrap_or("unknown")),
            ]);
            let line = String::from_utf8_lossy(&msg.payload).into_owned();
            match self.omni.ingest_log(labels, msg.ts, line) {
                Ok(()) => pushed += 1,
                Err(_) => self.errors += 1,
            }
        }
        self.pushed += pushed;
        pushed
    }

    /// `(records pushed, push errors)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.pushed, self.errors)
    }
}

/// The metric-side bridge: drains sensor telemetry topics into the TSDB.
pub struct MetricBridge {
    cluster_name: String,
    tsdb: Tsdb,
    subs: Vec<Subscription>,
    pushed: u64,
}

impl MetricBridge {
    /// Subscribe to every numeric telemetry topic.
    pub fn new(
        api: &TelemetryApi,
        token: &Token,
        tsdb: Tsdb,
        cluster_name: &str,
    ) -> Result<Self, omni_telemetry::ApiError> {
        let topics = [
            omni_redfish::topics::TELEMETRY_TEMPERATURE,
            omni_redfish::topics::TELEMETRY_HUMIDITY,
            omni_redfish::topics::TELEMETRY_POWER,
            omni_redfish::topics::TELEMETRY_FAN,
            omni_redfish::topics::TELEMETRY_LEAK,
            omni_redfish::topics::TELEMETRY_FLOW,
        ];
        let mut subs = Vec::with_capacity(topics.len());
        for t in topics {
            subs.push(api.subscribe(token, t)?);
        }
        Ok(Self { cluster_name: cluster_name.to_string(), tsdb, subs, pushed: 0 })
    }

    /// Drain all subscriptions into the TSDB. Metric names follow the
    /// `shasta_<kind>_<unit>` convention.
    pub fn pump(&mut self) -> u64 {
        let mut pushed = 0;
        for sub in &self.subs {
            for msg in sub.drain() {
                let payload = String::from_utf8_lossy(&msg.payload);
                let Ok(json) = omni_json::parse(&payload) else { continue };
                let Some(reading) = SensorReading::from_json(&json) else { continue };
                let name = format!("shasta_{}_{}", reading.kind.as_str(), reading.kind.unit());
                let labels = LabelSet::from_pairs([
                    ("xname", reading.xname.to_string()),
                    ("sensor", reading.sensor_id.clone()),
                    ("cluster", self.cluster_name.clone()),
                ]);
                self.tsdb.ingest_sample(&name, labels, reading.ts, reading.value);
                pushed += 1;
            }
        }
        self.pushed += pushed;
        pushed
    }

    /// Records pushed so far.
    pub fn stats(&self) -> u64 {
        self.pushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_json::Json;
    use omni_model::parse_iso8601;

    #[test]
    fn figure3_transformation_exact() {
        let event = RedfishEvent::paper_leak_event();
        let record = redfish_to_loki(&event, "perlmutter");
        // Labels: Context + cluster + data_type, exactly (Fig 3).
        assert_eq!(record.labels.len(), 3);
        assert_eq!(record.labels.get("Context"), Some("x1203c1b0"));
        assert_eq!(record.labels.get("cluster"), Some("perlmutter"));
        assert_eq!(record.labels.get("data_type"), Some("redfish_event"));
        // Timestamp: "an unix epoch in nanoseconds" (Fig 3 shows
        // 1646272077000000000).
        assert_eq!(record.entry.ts, 1_646_272_077_000_000_000);
        assert_eq!(record.entry.ts, parse_iso8601("2022-03-03T01:47:57+00:00").unwrap());
        // Content: Severity/MessageId/Message wrapped as JSON, nothing else.
        let content = omni_json::parse(&record.entry.line).unwrap();
        let fields = content.as_object().unwrap();
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["Severity", "MessageId", "Message"]);
        assert_eq!(content.get("Severity").and_then(Json::as_str), Some("Warning"));
        assert_eq!(
            content.get("MessageId").and_then(Json::as_str),
            Some("CrayAlerts.1.0.CabinetLeakDetected")
        );
        assert_eq!(
            content.get("Message").and_then(Json::as_str),
            Some("Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak.")
        );
        // The dropped fields must not sneak into the content.
        assert!(content.get("OriginOfCondition").is_none());
        assert!(content.get("MessageArgs").is_none());
        assert!(content.get("EventTimestamp").is_none());
    }

    #[test]
    fn figure3_payload_text_matches_paper() {
        // The paper's Fig 3 content string, byte-for-byte.
        let record = redfish_to_loki(&RedfishEvent::paper_leak_event(), "perlmutter");
        assert_eq!(
            record.entry.line,
            r#"{"Severity":"Warning","MessageId":"CrayAlerts.1.0.CabinetLeakDetected","Message":"Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak."}"#
        );
    }

    #[test]
    fn telemetry_payload_roundtrip() {
        let event = RedfishEvent::paper_leak_event();
        let payload = event.to_telemetry_json().dump();
        let records = telemetry_payload_to_loki(&payload, "perlmutter");
        assert_eq!(records.len(), 1);
        assert_eq!(records[0], redfish_to_loki(&event, "perlmutter"));
    }

    #[test]
    fn malformed_payload_yields_nothing() {
        assert!(telemetry_payload_to_loki("not json", "perlmutter").is_empty());
        assert!(telemetry_payload_to_loki("{}", "perlmutter").is_empty());
    }
}

//! The deterministic chaos engine.
//!
//! Production taught the paper's authors that the monitoring stack itself
//! fails: Loki workers OOM, Kafka goes dark during network maintenance,
//! and the Slack webhook times out exactly when a cabinet is leaking. The
//! [`ChaosEngine`] injects those failures on a *scripted, virtual-time*
//! schedule so the recovery machinery (WAL replay, bridge redelivery,
//! at-least-once notification delivery) can be exercised in tests.
//!
//! Everything is deterministic: faults fire at fixed [`SimClock`] instants
//! and the flaky-receiver coin is an FNV hash of `(seed, receiver, send
//! sequence)`. Two runs with the same seed and schedule produce the same
//! failures in the same order, so resilience reports compare byte-for-byte.
//!
//! [`SimClock`]: omni_model::SimClock

use omni_model::{fnv1a64, Timestamp};

/// One scripted failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosFault {
    /// Kill one Loki ingester shard at `at`, bring a fresh one up (with
    /// WAL replay) at `recover_at`.
    IngesterCrash {
        /// Virtual instant of the crash.
        at: Timestamp,
        /// Which shard dies.
        shard: usize,
        /// Virtual instant of the restart.
        recover_at: Timestamp,
    },
    /// The bus rejects every produce and fetch inside the window.
    BusBrownout {
        /// Window start.
        from: Timestamp,
        /// Window end (exclusive).
        until: Timestamp,
    },
    /// Revoke the bridges' Telemetry-API credentials at `at`; they must
    /// notice the `Unauthorized` and re-subscribe without losing data.
    SubscriptionDrop {
        /// Virtual instant of the revocation.
        at: Timestamp,
    },
    /// A receiver (Slack webhook, ServiceNow API) drops sends inside the
    /// window with probability `fail_permille / 1000`.
    FlakyReceiver {
        /// Receiver name as routed by the Alertmanager.
        receiver: String,
        /// Window start.
        from: Timestamp,
        /// Window end (exclusive).
        until: Timestamp,
        /// Failure probability in permille (500 = 50%).
        fail_permille: u32,
    },
}

/// What the stack must do right now, as decided by [`ChaosEngine::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Kill this ingester shard (in-memory state is lost, WAL survives).
    CrashShard(usize),
    /// Restart this shard and replay its WAL.
    RecoverShard(usize),
    /// Open a bus brownout window.
    StartBrownout {
        /// Window start.
        from: Timestamp,
        /// Window end (exclusive).
        until: Timestamp,
    },
    /// Revoke the bridge clients' API tokens.
    DropSubscriptions,
}

/// Counters describing what the engine actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Scheduled actions fired so far.
    pub actions_fired: u64,
    /// Flaky-receiver coin flips taken (sends inside an active window).
    pub flaky_rolls: u64,
    /// Coin flips that came up "fail".
    pub flaky_failures: u64,
}

struct Scheduled {
    fault: ChaosFault,
    /// Crash / brownout-start / drop fired.
    fired_primary: bool,
    /// Recovery fired (only meaningful for `IngesterCrash`).
    fired_secondary: bool,
}

/// Seeded, scripted fault injector driven off the simulation clock.
pub struct ChaosEngine {
    seed: u64,
    schedule: Vec<Scheduled>,
    send_seq: u64,
    actions_fired: u64,
    flaky_rolls: u64,
    flaky_failures: u64,
}

impl ChaosEngine {
    /// Engine with no faults scheduled; the seed feeds the flaky coin.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            schedule: Vec::new(),
            send_seq: 0,
            actions_fired: 0,
            flaky_rolls: 0,
            flaky_failures: 0,
        }
    }

    /// Add a fault to the schedule (builder style).
    pub fn inject(mut self, fault: ChaosFault) -> Self {
        self.schedule.push(fault_slot(fault));
        self
    }

    /// Add a fault to an engine already installed in a stack.
    pub fn push(&mut self, fault: ChaosFault) {
        self.schedule.push(fault_slot(fault));
    }

    /// Actions whose instant has arrived, in schedule order. Each fires
    /// exactly once no matter how often `poll` is called.
    pub fn poll(&mut self, now: Timestamp) -> Vec<ChaosAction> {
        let mut actions = Vec::new();
        for slot in &mut self.schedule {
            match &slot.fault {
                ChaosFault::IngesterCrash { at, shard, recover_at } => {
                    if !slot.fired_primary && now >= *at {
                        slot.fired_primary = true;
                        actions.push(ChaosAction::CrashShard(*shard));
                    }
                    if slot.fired_primary && !slot.fired_secondary && now >= *recover_at {
                        slot.fired_secondary = true;
                        actions.push(ChaosAction::RecoverShard(*shard));
                    }
                }
                ChaosFault::BusBrownout { from, until } => {
                    if !slot.fired_primary && now >= *from {
                        slot.fired_primary = true;
                        // A window the clock already stepped past is moot.
                        if now < *until {
                            actions.push(ChaosAction::StartBrownout { from: *from, until: *until });
                        }
                    }
                }
                ChaosFault::SubscriptionDrop { at } => {
                    if !slot.fired_primary && now >= *at {
                        slot.fired_primary = true;
                        actions.push(ChaosAction::DropSubscriptions);
                    }
                }
                // Queried per send via `should_fail_send`, never polled.
                ChaosFault::FlakyReceiver { .. } => {}
            }
        }
        self.actions_fired += actions.len() as u64;
        actions
    }

    /// Whether the next send to `receiver` at `now` should be dropped.
    /// Deterministic: the coin is `fnv1a64(seed ‖ receiver ‖ seq)`.
    pub fn should_fail_send(&mut self, receiver: &str, now: Timestamp) -> bool {
        let permille = self.schedule.iter().find_map(|s| match &s.fault {
            ChaosFault::FlakyReceiver { receiver: r, from, until, fail_permille }
                if r == receiver && now >= *from && now < *until =>
            {
                Some(*fail_permille)
            }
            _ => None,
        });
        let Some(permille) = permille else { return false };
        self.flaky_rolls += 1;
        let mut bytes = Vec::with_capacity(16 + receiver.len());
        bytes.extend_from_slice(&self.seed.to_le_bytes());
        bytes.extend_from_slice(receiver.as_bytes());
        bytes.extend_from_slice(&self.send_seq.to_le_bytes());
        self.send_seq += 1;
        let fail = fnv1a64(&bytes) % 1000 < u64::from(permille);
        if fail {
            self.flaky_failures += 1;
        }
        fail
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            actions_fired: self.actions_fired,
            flaky_rolls: self.flaky_rolls,
            flaky_failures: self.flaky_failures,
        }
    }
}

fn fault_slot(fault: ChaosFault) -> Scheduled {
    Scheduled { fault, fired_primary: false, fired_secondary: false }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_fires_once_then_recovers_once() {
        let mut e = ChaosEngine::new(1).inject(ChaosFault::IngesterCrash {
            at: 100,
            shard: 3,
            recover_at: 200,
        });
        assert!(e.poll(50).is_empty());
        assert_eq!(e.poll(100), vec![ChaosAction::CrashShard(3)]);
        assert!(e.poll(150).is_empty(), "crash must not re-fire");
        assert_eq!(e.poll(250), vec![ChaosAction::RecoverShard(3)]);
        assert!(e.poll(300).is_empty());
        assert_eq!(e.stats().actions_fired, 2);
    }

    #[test]
    fn coarse_polling_fires_crash_and_recovery_together() {
        // A big step past both instants still yields both actions, in order.
        let mut e = ChaosEngine::new(1).inject(ChaosFault::IngesterCrash {
            at: 100,
            shard: 0,
            recover_at: 200,
        });
        assert_eq!(e.poll(1_000), vec![ChaosAction::CrashShard(0), ChaosAction::RecoverShard(0)]);
    }

    #[test]
    fn brownout_fires_inside_window_only() {
        let mut e = ChaosEngine::new(1)
            .inject(ChaosFault::BusBrownout { from: 100, until: 200 })
            .inject(ChaosFault::BusBrownout { from: 300, until: 400 });
        assert_eq!(e.poll(150), vec![ChaosAction::StartBrownout { from: 100, until: 200 }]);
        // The second window was stepped over entirely: moot, never fires.
        assert!(e.poll(500).is_empty());
    }

    #[test]
    fn flaky_receiver_is_windowed_and_deterministic() {
        let run = || {
            let mut e = ChaosEngine::new(7).inject(ChaosFault::FlakyReceiver {
                receiver: "slack".into(),
                from: 100,
                until: 200,
                fail_permille: 500,
            });
            let mut outcomes = Vec::new();
            // Outside the window: never fails.
            assert!(!e.should_fail_send("slack", 50));
            assert!(!e.should_fail_send("slack", 250));
            // Other receivers unaffected inside the window.
            assert!(!e.should_fail_send("servicenow", 150));
            for _ in 0..32 {
                outcomes.push(e.should_fail_send("slack", 150));
            }
            (outcomes, e.stats())
        };
        let (a, stats_a) = run();
        let (b, stats_b) = run();
        assert_eq!(a, b, "same seed must flip the same coins");
        assert_eq!(stats_a, stats_b);
        assert_eq!(stats_a.flaky_rolls, 32);
        // At 50% over 32 rolls both outcomes must appear.
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
        assert_eq!(stats_a.flaky_failures, a.iter().filter(|&&f| f).count() as u64);
    }

    #[test]
    fn different_seeds_flip_different_coins() {
        let flips = |seed| {
            let mut e = ChaosEngine::new(seed).inject(ChaosFault::FlakyReceiver {
                receiver: "slack".into(),
                from: 0,
                until: 100,
                fail_permille: 500,
            });
            (0..64).map(|_| e.should_fail_send("slack", 10)).collect::<Vec<_>>()
        };
        assert_ne!(flips(1), flips(2));
    }
}

//! The fully-wired monitoring stack: every box of Figure 1 connected,
//! driven by one virtual clock. The case-study examples and the
//! integration tests run scenarios through this.

use crate::bridge::{LogBridge, MetricBridge};
use crate::chaos::{ChaosAction, ChaosEngine};
use crate::omni::Omni;
use crate::pane::{Pane, ResilienceReport};
use crate::remediation::RemediationEngine;
use omni_alertmanager::{
    Alert, Alertmanager, AlertStatus, DeliveryQueue, DeliveryStats, Notification, Route, SlackSink,
};
use omni_bus::Broker;
use omni_exporters::{
    parse_exposition, ArubaExporter, BlackboxExporter, Exporter, GpfsExporter, KafkaExporter,
    NodeExporter,
};
use omni_logql::Matcher;
use omni_loki::{AlertState, AlertingRule, Limits, RuleGroup, Ruler};
use omni_model::{SimClock, NANOS_PER_SEC};
use omni_redfish::{HmsCollector, RedfishEvent};
use omni_servicenow::{IncidentRule, ServiceNow};
use omni_shasta::{
    ContainerLogGenerator, FabricManager, FabricManagerMonitor, GpfsCluster, GpfsMonitor,
    GpfsState, LeakZone, ShastaMachine, SwitchState, SyslogGenerator,
};
use omni_telemetry::TelemetryApi;
use omni_tsdb::{MetricRule, VmAgent, VmAlert, VmAlertState};
use omni_xname::{TopologySpec, XName};
use std::sync::Arc;

/// Stack construction parameters.
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// Machine layout.
    pub topology: TopologySpec,
    /// Loki ingester shards (the paper's cluster runs 8 workers).
    pub loki_shards: usize,
    /// Loki limits.
    pub limits: Limits,
    /// Telemetry API gateway count (the paper's cluster runs 4 VMs).
    pub gateways: usize,
    /// Bus partitions per topic.
    pub bus_partitions: usize,
    /// Deterministic seed.
    pub seed: u64,
    /// Cluster label value.
    pub cluster_name: String,
    /// Syslog lines generated per simulation step.
    pub syslog_per_step: usize,
    /// Container-log lines generated per simulation step.
    pub container_per_step: usize,
    /// Run the remediation playbooks automatically on firing alerts.
    pub auto_remediate: bool,
    /// Enable OMNI's Elasticsearch-style discovery tier.
    pub enable_discovery: bool,
}

impl Default for StackConfig {
    fn default() -> Self {
        Self {
            topology: TopologySpec::tiny(),
            loki_shards: 8,
            limits: Limits::default(),
            gateways: 4,
            bus_partitions: 4,
            seed: 42,
            cluster_name: "perlmutter".into(),
            syslog_per_step: 20,
            container_per_step: 10,
            auto_remediate: false,
            enable_discovery: true,
        }
    }
}

/// The assembled pipeline.
pub struct MonitoringStack {
    /// Shared virtual clock.
    pub clock: SimClock,
    /// The simulated machine.
    pub machine: Arc<ShastaMachine>,
    /// HMS collector (publishes onto the bus).
    pub collector: HmsCollector,
    /// The Telemetry API fronting the bus.
    pub api: TelemetryApi,
    /// The Slingshot fabric manager.
    pub fabric: FabricManager,
    /// The GPFS scratch filesystem (§V future work).
    pub gpfs: Arc<GpfsCluster>,
    /// The OMNI warehouse (Loki + TSDB).
    pub omni: Omni,
    /// The single pane of glass.
    pub pane: Pane,
    /// Slack webhook capture.
    pub slack: SlackSink,
    /// ServiceNow instance.
    pub servicenow: ServiceNow,
    broker: Broker,
    fabric_monitor: FabricManagerMonitor,
    gpfs_monitor: GpfsMonitor,
    log_bridge: LogBridge,
    metric_bridge: MetricBridge,
    ruler: Ruler,
    vmalert: VmAlert,
    vmagent: VmAgent,
    alertmanager: Alertmanager,
    remediation: Option<RemediationEngine>,
    delivery: DeliveryQueue,
    chaos: Option<ChaosEngine>,
    syslog_gen: SyslogGenerator,
    container_gen: ContainerLogGenerator,
    notifications_dispatched: u64,
    /// Publishes a brownout bounced at the producer, replayed next step.
    publish_backlog: parking_lot::Mutex<Vec<PendingPublish>>,
}

/// A bus publish the collector could not complete (brownout), held for
/// replay so producer-side data survives too.
enum PendingPublish {
    Event(RedfishEvent),
    Log { topic: String, key: String, line: String },
}

impl MonitoringStack {
    /// Wire up the whole Figure 1 pipeline.
    pub fn new(config: StackConfig) -> Self {
        let clock = SimClock::starting_at(0);
        let machine =
            Arc::new(ShastaMachine::new(config.topology.clone(), clock.clone(), config.seed));
        let broker = omni_bus::Broker::new(clock.clone());
        let collector = HmsCollector::new(broker.clone(), config.bus_partitions);
        let api = TelemetryApi::new(broker.clone(), config.gateways);
        let fabric = FabricManager::new(machine.topology());
        let fabric_monitor = FabricManagerMonitor::new(fabric.clone());
        let gpfs = GpfsCluster::new("scratch", 8, 12, clock.clone(), config.seed ^ 0x6f5);
        let gpfs_monitor = GpfsMonitor::new(Arc::clone(&gpfs));
        let mut omni = Omni::new(config.loki_shards, config.limits.clone(), clock.clone());
        if config.enable_discovery {
            omni = omni.with_discovery();
        }
        let pane = Pane::new(omni.clone());

        // Bridges (the K3s pods).
        let token = api.issue_token("bridge-clients");
        let log_bridge =
            LogBridge::new(&api, &token, omni.clone(), &config.cluster_name, &broker).unwrap();
        let metric_bridge =
            MetricBridge::new(&api, &token, omni.tsdb().clone(), &config.cluster_name, &broker)
                .unwrap();

        // The Ruler carries both paper case-study rules.
        let mut ruler = Ruler::new(omni.loki().clone());
        ruler
            .add_group(RuleGroup {
                name: "perlmutter-alerts".into(),
                interval_ns: 60 * NANOS_PER_SEC,
                rules: vec![
                    AlertingRule::paper_leak_rule(),
                    AlertingRule::paper_switch_rule(),
                    AlertingRule::gpfs_server_rule(),
                ],
            })
            .expect("paper rules must parse");

        // vmalert: thermal + leak-sensor metric rules.
        let mut vmalert = VmAlert::new(omni.tsdb().clone());
        vmalert
            .add_rule(MetricRule {
                name: "NodeTemperatureCritical".into(),
                expr: "max by (xname) (shasta_temperature_celsius) > 90".into(),
                for_ns: 60 * NANOS_PER_SEC,
                labels: omni_model::LabelSet::from_pairs([("severity", "critical")]),
                annotations: vec![("summary".into(), "node {{.xname}} above 90C".into())],
            })
            .unwrap();
        vmalert
            .add_rule(MetricRule {
                name: "GpfsLongWaiters".into(),
                expr: "max by (fs, server) (gpfs_longest_waiter_seconds) > 300".into(),
                for_ns: 60 * NANOS_PER_SEC,
                labels: omni_model::LabelSet::from_pairs([("severity", "critical")]),
                annotations: vec![(
                    "summary".into(),
                    "GPFS {{.fs}}/{{.server}} has waiters over 300s".into(),
                )],
            })
            .unwrap();
        vmalert
            .add_rule(MetricRule {
                name: "LeakSensorWet".into(),
                expr: "max by (xname) (shasta_leak_bool) > 0".into(),
                for_ns: 0,
                labels: omni_model::LabelSet::from_pairs([("severity", "warning")]),
                annotations: vec![("summary".into(), "leak sensor wet at {{.xname}}".into())],
            })
            .unwrap();

        // vmagent scraping the exporter fleet.
        let mut vmagent = VmAgent::new(omni.tsdb().clone());
        {
            let node_exp = NodeExporter::new(Arc::clone(&machine));
            vmagent.add_target(
                "node-exporter",
                &config.cluster_name,
                Box::new(move |_| parse_exposition(&node_exp.render()).map_err(|e| e.to_string())),
            );
            let kafka_exp = KafkaExporter::new(broker.clone());
            vmagent.add_target(
                "kafka-exporter",
                "sma-kafka",
                Box::new(move |_| parse_exposition(&kafka_exp.render()).map_err(|e| e.to_string())),
            );
            let blackbox = BlackboxExporter::new(
                vec!["https://telemetry-api".into(), "https://grafana".into()],
                clock.clone(),
            );
            vmagent.add_target(
                "blackbox-exporter",
                "probes",
                Box::new(move |_| parse_exposition(&blackbox.render()).map_err(|e| e.to_string())),
            );
            let aruba = ArubaExporter::new(vec!["mgmt-sw1".into(), "mgmt-sw2".into()], clock.clone());
            vmagent.add_target(
                "aruba-exporter",
                "mgmt",
                Box::new(move |_| parse_exposition(&aruba.render()).map_err(|e| e.to_string())),
            );
            let gpfs_exp = GpfsExporter::new(Arc::clone(&gpfs));
            vmagent.add_target(
                "gpfs-exporter",
                "scratch",
                Box::new(move |_| parse_exposition(&gpfs_exp.render()).map_err(|e| e.to_string())),
            );
        }

        // Alertmanager routing: critical alerts go to ServiceNow AND
        // Slack; everything else to Slack only.
        let mut root = Route::default_route("slack");
        root.group_by = vec!["alertname".into()];
        root.group_wait_ns = 10 * NANOS_PER_SEC;
        root.group_interval_ns = 60 * NANOS_PER_SEC;
        root.repeat_interval_ns = 4 * 3600 * NANOS_PER_SEC;
        let mut to_sn = Route::matching(
            "servicenow",
            vec![Matcher::eq("severity", "critical")],
        );
        to_sn.group_by = root.group_by.clone();
        to_sn.group_wait_ns = root.group_wait_ns;
        to_sn.group_interval_ns = root.group_interval_ns;
        to_sn.repeat_interval_ns = root.repeat_interval_ns;
        to_sn.continue_matching = true;
        let mut to_slack_all = Route::matching("slack", vec![]);
        to_slack_all.group_by = root.group_by.clone();
        to_slack_all.group_wait_ns = root.group_wait_ns;
        to_slack_all.group_interval_ns = root.group_interval_ns;
        to_slack_all.repeat_interval_ns = root.repeat_interval_ns;
        root.routes.push(to_sn);
        root.routes.push(to_slack_all);
        let alertmanager = Alertmanager::new(root);

        // ServiceNow: CMDB from the machine, incidents for critical alerts.
        let servicenow = ServiceNow::new();
        servicenow.with_cmdb(|cmdb| cmdb.load_topology(&config.cluster_name, machine.topology()));
        // Category-aware assignment: storage and fabric alerts route to
        // their teams; any other critical goes to operations.
        servicenow.add_incident_rule(IncidentRule {
            name: "storage-to-storage-team".into(),
            max_severity: 2,
            node_contains: None,
            resource: Some("storage".into()),
            assignment_group: "nersc-storage".into(),
        });
        servicenow.add_incident_rule(IncidentRule {
            name: "fabric-to-network-team".into(),
            max_severity: 2,
            node_contains: None,
            resource: Some("fabric".into()),
            assignment_group: "nersc-network".into(),
        });
        servicenow.add_incident_rule(IncidentRule {
            name: "critical-to-ops".into(),
            max_severity: 2,
            node_contains: None,
            resource: None,
            assignment_group: "nersc-ops".into(),
        });

        let remediation = config.auto_remediate.then(|| {
            RemediationEngine::with_default_playbooks(fabric.clone(), Arc::clone(&gpfs))
        });
        let syslog_gen =
            SyslogGenerator::new(machine.topology().nodes(), clock.clone(), config.seed ^ 0xa5);
        let container_gen = ContainerLogGenerator::k3s_services(config.seed ^ 0x5a);

        Self {
            clock,
            machine,
            collector,
            api,
            fabric,
            gpfs,
            omni,
            pane,
            slack: SlackSink::new("#perlmutter-alerts"),
            servicenow,
            broker,
            fabric_monitor,
            gpfs_monitor,
            log_bridge,
            metric_bridge,
            ruler,
            vmalert,
            vmagent,
            alertmanager,
            remediation,
            delivery: DeliveryQueue::with_defaults(),
            chaos: None,
            syslog_gen,
            container_gen,
            notifications_dispatched: 0,
            publish_backlog: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// Install a scripted chaos engine; its faults fire inside [`step`]
    /// and its flaky-receiver coin gates every notification send.
    ///
    /// [`step`]: MonitoringStack::step
    pub fn install_chaos(&mut self, engine: ChaosEngine) {
        self.chaos = Some(engine);
    }

    /// Config-driven generation counts are stored in the generators; the
    /// per-step volumes come from the config at construction. Advance the
    /// simulation by `dt_ns`, running one full pipeline cycle; returns the
    /// Alertmanager notifications dispatched during this step.
    pub fn step(&mut self, dt_ns: i64, syslog_lines: usize, container_lines: usize) -> Vec<Notification> {
        let now = self.clock.advance(dt_ns);

        // 0. Scheduled chaos fires before anything else this step.
        if let Some(chaos) = &mut self.chaos {
            for action in chaos.poll(now) {
                match action {
                    ChaosAction::CrashShard(i) => self.omni.loki().crash_shard(i),
                    ChaosAction::RecoverShard(i) => {
                        self.omni.loki().recover_shard(i);
                    }
                    ChaosAction::StartBrownout { from, until } => {
                        self.broker.inject_brownout(from, until);
                    }
                    ChaosAction::DropSubscriptions => {
                        self.log_bridge.chaos_revoke_token();
                        self.metric_bridge.chaos_revoke_token();
                    }
                }
            }
        }

        // 1. Producer-side at-least-once: replay publishes an earlier
        // brownout bounced, then the new data. Sensor readings are
        // periodic samples and regenerate next step, so they are the one
        // stream allowed a brownout gap.
        let backlog = std::mem::take(&mut *self.publish_backlog.lock());
        for item in backlog {
            self.publish_or_buffer(item);
        }
        for reading in self.machine.sample_sensors() {
            let _ = self.collector.publish_reading(&reading);
        }
        // 2. Logs → bus.
        for (host, line) in self.syslog_gen.batch(syslog_lines) {
            self.publish_or_buffer(PendingPublish::Log {
                topic: omni_redfish::topics::SYSLOG.to_string(),
                key: host,
                line,
            });
        }
        for (pod, line) in self.container_gen.batch(container_lines) {
            self.publish_or_buffer(PendingPublish::Log {
                topic: omni_redfish::topics::CONTAINER_LOGS.to_string(),
                key: pod,
                line,
            });
        }
        // 3. Fabric monitor poll → event lines (Figure 7).
        for change in self.fabric_monitor.poll() {
            self.publish_or_buffer(PendingPublish::Log {
                topic: omni_redfish::topics::FABRIC_HEALTH.to_string(),
                key: change.xname.to_string(),
                line: change.to_event_line(),
            });
        }
        // 3b. GPFS monitor poll (the §V future-work path).
        for change in self.gpfs_monitor.poll() {
            self.publish_or_buffer(PendingPublish::Log {
                topic: omni_redfish::topics::GPFS_HEALTH.to_string(),
                key: change.server.clone(),
                line: change.to_event_line(),
            });
        }
        // 4. Bridges pull the Telemetry API forward into the stores.
        self.log_bridge.pump(now);
        self.metric_bridge.pump();
        // 5. vmagent scrape.
        self.vmagent.scrape_once(now);
        // 6. Store maintenance: seal aged heads, then move sealed chunks
        // older than an hour to the disk tier ("chunks are first stored
        // in memory, and then moved to disk").
        self.omni.loki().tick();
        self.omni.loki().offload(3_600 * NANOS_PER_SEC);
        // 7. Rule evaluation → Alertmanager.
        for n in self.ruler.evaluate(now) {
            self.alertmanager.receive(ruler_to_alert(&n), now);
        }
        for n in self.vmalert.evaluate(now) {
            self.alertmanager.receive(vmalert_to_alert(&n), now);
        }
        // 8. Alertmanager flush → at-least-once delivery to receivers.
        let notifications = self.alertmanager.tick(now);
        for n in &notifications {
            self.notifications_dispatched += 1;
            if let Some(engine) = &mut self.remediation {
                engine.handle(n, now);
            }
            self.delivery.enqueue(n.clone());
        }
        self.pump_delivery(now);
        notifications
    }

    /// Attempt every due notification send, with the chaos engine's flaky
    /// receivers deciding which attempts fail.
    fn pump_delivery(&mut self, now: i64) -> usize {
        let MonitoringStack { delivery, chaos, slack, servicenow, .. } = self;
        delivery.pump(now, |n| {
            if let Some(c) = chaos.as_mut() {
                if c.should_fail_send(&n.receiver, now) {
                    return false;
                }
            }
            match n.receiver.as_str() {
                "slack" => {
                    slack.deliver(n);
                }
                "servicenow" => {
                    servicenow.receive_notification(n, now);
                }
                _ => {}
            }
            true
        })
    }

    fn publish_or_buffer(&self, item: PendingPublish) {
        let result = match &item {
            PendingPublish::Event(ev) => self.collector.publish_event(ev).map(|_| ()),
            PendingPublish::Log { topic, key, line } => {
                self.collector.publish_log(topic, key, line.clone()).map(|_| ())
            }
        };
        if result.is_err() {
            self.publish_backlog.lock().push(item);
        }
    }

    /// Inject the paper's case-study-A fault: a cabinet leak. The Redfish
    /// event is published through the HMS collector like the real firmware
    /// would.
    pub fn inject_leak(&self, chassis: XName, sensor: char, zone: LeakZone) -> RedfishEvent {
        let event = self.machine.inject_leak(chassis, sensor, zone);
        // Buffered like every other publish: a brownout delays the event,
        // it never loses it.
        self.publish_or_buffer(PendingPublish::Event(event.clone()));
        event
    }

    /// Inject the case-study-B fault: a switch going offline/unknown.
    pub fn take_switch_offline(&self, switch: XName, state: SwitchState) {
        self.fabric.set_switch_state(switch, state);
    }

    /// Inject a GPFS fault: degrade or fail an NSD server.
    pub fn fail_gpfs_server(&self, server: &str, state: GpfsState) {
        self.gpfs.set_server_state(server, state);
    }

    /// Notifications dispatched so far.
    pub fn notifications_dispatched(&self) -> u64 {
        self.notifications_dispatched
    }

    /// Alertmanager `(received, notified, suppressed)`.
    pub fn alertmanager_stats(&self) -> (u64, u64, u64) {
        self.alertmanager.stats()
    }

    /// The alertmanager (for silences / inhibition configuration).
    pub fn alertmanager_mut(&mut self) -> &mut Alertmanager {
        &mut self.alertmanager
    }

    /// The remediation journal (empty unless `auto_remediate` is on).
    pub fn remediation_journal(&self) -> &[crate::remediation::RemediationEvent] {
        self.remediation.as_ref().map(|e| e.journal()).unwrap_or(&[])
    }

    /// Bridge statistics `(log records pushed, log errors, metric records)`.
    pub fn bridge_stats(&self) -> (u64, u64, u64) {
        let (pushed, errors) = self.log_bridge.stats();
        (pushed, errors, self.metric_bridge.stats())
    }

    /// At-least-once notification delivery counters.
    pub fn delivery_stats(&self) -> DeliveryStats {
        self.delivery.stats()
    }

    /// Notifications that exhausted their delivery retries.
    pub fn dead_letter_notifications(&self) -> &[Notification] {
        self.delivery.dead_letters()
    }

    /// The broker (for bus-level inspection and manual fault injection).
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// Assemble the operator resilience panel: Loki crash/WAL counters,
    /// per-topic bus stats, bridge redelivery counters, notification
    /// delivery counters and what the chaos engine injected.
    pub fn resilience_report(&self) -> ResilienceReport {
        let bus = self
            .broker
            .topics()
            .into_iter()
            .filter_map(|t| self.broker.stats(&t).ok().map(|s| (t, s)))
            .collect();
        ResilienceReport {
            loki: self.omni.loki().resilience(),
            bus,
            log_bridge: self.log_bridge.resilience(),
            metric_bridge: self.metric_bridge.resilience(),
            delivery: self.delivery.stats(),
            chaos: self.chaos.as_ref().map(|c| c.stats()),
        }
    }
}

/// Convert a Loki Ruler notification into an Alertmanager alert.
pub fn ruler_to_alert(n: &omni_loki::RuleNotification) -> Alert {
    Alert {
        labels: n.labels.clone(),
        annotations: n.annotations.clone(),
        status: match n.state {
            AlertState::Resolved => AlertStatus::Resolved,
            _ => AlertStatus::Firing,
        },
        starts_at: n.active_at,
    }
}

/// Convert a vmalert notification into an Alertmanager alert.
pub fn vmalert_to_alert(n: &omni_tsdb::VmAlertNotification) -> Alert {
    Alert {
        labels: n.labels.clone(),
        annotations: n.annotations.clone(),
        status: match n.state {
            VmAlertState::Resolved => AlertStatus::Resolved,
            _ => AlertStatus::Firing,
        },
        starts_at: n.active_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minute() -> i64 {
        60 * NANOS_PER_SEC
    }

    #[test]
    fn quiet_stack_stays_quiet() {
        let mut stack = MonitoringStack::new(StackConfig::default());
        for _ in 0..5 {
            let notifs = stack.step(minute(), 5, 5);
            assert!(notifs.is_empty(), "healthy machine must not alert");
        }
        // But data flowed: logs and metrics are queryable.
        let (pushed, errors, metrics) = stack.bridge_stats();
        assert!(pushed > 0);
        assert_eq!(errors, 0);
        assert!(metrics > 0);
        let logs = stack
            .pane
            .logs(r#"{data_type="syslog"}"#, 0, stack.clock.now(), 1000)
            .unwrap();
        assert!(!logs.is_empty());
    }

    #[test]
    fn leak_reaches_slack_and_servicenow() {
        let mut stack = MonitoringStack::new(StackConfig::default());
        stack.step(minute(), 0, 0);
        let chassis = stack.machine.topology().chassis()[3];
        stack.inject_leak(chassis, 'A', LeakZone::Front);
        // Run the pipeline long enough for the 1-minute `for:` hold and
        // the group_wait to elapse.
        for _ in 0..6 {
            stack.step(minute(), 0, 0);
        }
        assert!(!stack.slack.is_empty(), "slack should have the leak alert");
        let text = &stack.slack.messages()[0].text;
        assert!(text.contains("FIRING"), "{text}");
        assert!(text.contains("Leak") || text.contains("leak"), "{text}");
        // Critical severity routed to ServiceNow too -> incident open.
        assert!(!stack.servicenow.incidents().is_empty());
    }

    #[test]
    fn switch_offline_reaches_slack() {
        let mut stack = MonitoringStack::new(StackConfig::default());
        stack.step(minute(), 0, 0);
        let switch = stack.machine.topology().switches()[1];
        stack.take_switch_offline(switch, SwitchState::Unknown);
        for _ in 0..6 {
            stack.step(minute(), 0, 0);
        }
        let msgs = stack.slack.messages();
        assert!(
            msgs.iter().any(|m| m.text.contains("PerlmutterSwitchOffline")),
            "slack messages: {msgs:?}"
        );
        assert!(msgs.iter().any(|m| m.text.contains(&switch.to_string())));
    }

    #[test]
    fn figure5_graph_reproduced_through_stack() {
        let mut stack = MonitoringStack::new(StackConfig::default());
        stack.step(3600 * NANOS_PER_SEC, 0, 0);
        let chassis = stack.machine.topology().chassis()[0];
        stack.inject_leak(chassis, 'A', LeakZone::Front);
        let event_time = stack.clock.now();
        stack.step(minute(), 0, 0);
        let matrix = stack
            .pane
            .log_metric_range(
                r#"sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (Severity, cluster, Context, MessageId)"#,
                0,
                stack.clock.now(),
                10 * minute(),
            )
            .unwrap();
        assert_eq!(matrix.len(), 1);
        let (labels, samples) = &matrix[0];
        assert_eq!(labels.get("Severity"), Some("Warning"));
        assert_eq!(labels.get("cluster"), Some("perlmutter"));
        // 0 before the event, 1 after (within the 60m window).
        assert!(samples.iter().any(|s| s.ts < event_time && s.value == 0.0)
            || samples.iter().all(|s| s.ts >= event_time || s.value == 0.0));
        assert!(samples.iter().any(|s| s.value == 1.0));
    }
}

//! The fully-wired monitoring stack: every box of Figure 1 connected,
//! driven by one virtual clock. The case-study examples and the
//! integration tests run scenarios through this.

use crate::bridge::{LogBridge, MetricBridge};
use crate::chaos::{ChaosAction, ChaosEngine};
use crate::omni::Omni;
use crate::pane::{Pane, ResilienceReport};
use crate::remediation::RemediationEngine;
use omni_alertmanager::{
    Alert, AlertStatus, Alertmanager, DeliveryQueue, DeliveryStats, Notification, Route, SlackSink,
};
use omni_bus::Broker;
use omni_exporters::{
    parse_exposition, ArubaExporter, BlackboxExporter, Exporter, GpfsExporter, KafkaExporter,
    NodeExporter, SelfExporter,
};
use omni_loki::{AlertState, AlertingRule, Limits, QueryRecord, QueryReport, RuleGroup, Ruler};
use omni_model::{labels, SimClock, Timestamp, NANOS_PER_SEC};
use omni_obs::{
    format_trace_id, parse_trace_id, FamilySnapshot, InstrumentKind, Registry, Slo, SloBoard,
    TailSampling, TraceContext, TraceStore, DEFAULT_LATENCY_BUCKETS, FAST_WINDOW, SLOW_WINDOW,
    TRACE_HEADER,
};
use omni_redfish::{HmsCollector, RedfishEvent};
use omni_servicenow::{IncidentRule, ServiceNow};
use omni_shasta::{
    ContainerLogGenerator, FabricManager, FabricManagerMonitor, GpfsCluster, GpfsMonitor,
    GpfsState, LeakZone, ShastaMachine, SwitchState, SyslogGenerator,
};
use omni_telemetry::TelemetryApi;
use omni_tsdb::{MetricRule, VmAgent, VmAlert, VmAlertState};
use omni_xname::{TopologySpec, XName};
use std::sync::Arc;

/// Stack construction parameters.
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// Machine layout.
    pub topology: TopologySpec,
    /// Loki ingester shards (the paper's cluster runs 8 workers).
    pub loki_shards: usize,
    /// Loki limits.
    pub limits: Limits,
    /// Telemetry API gateway count (the paper's cluster runs 4 VMs).
    pub gateways: usize,
    /// Bus partitions per topic.
    pub bus_partitions: usize,
    /// Deterministic seed.
    pub seed: u64,
    /// Cluster label value.
    pub cluster_name: String,
    /// Syslog lines generated per simulation step.
    pub syslog_per_step: usize,
    /// Container-log lines generated per simulation step.
    pub container_per_step: usize,
    /// Run the remediation playbooks automatically on firing alerts.
    pub auto_remediate: bool,
    /// Enable OMNI's Elasticsearch-style discovery tier.
    pub enable_discovery: bool,
    /// Extra vmalert rules wired in addition to the shipped set. Linted
    /// at boot like everything else: a typo'd metric name here fails
    /// [`MonitoringStack::try_new`] instead of silently never firing.
    pub extra_metric_rules: Vec<MetricRule>,
    /// Extra Loki ruler (LogQL) rules, linted the same way.
    pub extra_logql_rules: Vec<AlertingRule>,
    /// Modeled query latency at or above which a query lands in the
    /// self-ingested slow-query log (and counts as bad for the
    /// `query-latency` SLO). The virtual clock is frozen while a query
    /// runs, so latency is priced from the query's execution statistics
    /// (see `modeled_query_latency_ns`).
    pub slow_query_threshold_ns: i64,
    /// Tail-sampling policy for the trace store. The default keeps every
    /// finished trace; drills tighten it to bound retention under load.
    pub trace_sampling: TailSampling,
}

impl Default for StackConfig {
    fn default() -> Self {
        Self {
            topology: TopologySpec::tiny(),
            loki_shards: 8,
            limits: Limits::default(),
            gateways: 4,
            bus_partitions: 4,
            seed: 42,
            cluster_name: "perlmutter".into(),
            syslog_per_step: 20,
            container_per_step: 10,
            auto_remediate: false,
            enable_discovery: true,
            extra_metric_rules: Vec::new(),
            extra_logql_rules: Vec::new(),
            slow_query_threshold_ns: 100_000_000, // 100ms of modeled work
            trace_sampling: TailSampling::default(),
        }
    }
}

/// Why the stack refused to come up.
#[derive(Debug)]
pub enum StackError {
    /// Static validation (omni-lint layer 1) rejected the configuration:
    /// a rule, dashboard query, route or bucket layout is wrong. The
    /// findings say exactly what and where.
    Lint(Vec<omni_lint::Finding>),
    /// A component failed while wiring (should not happen for configs
    /// that passed the lint; kept separate so the two failure classes
    /// stay distinguishable).
    Wire(String),
}

impl std::fmt::Display for StackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StackError::Lint(findings) => {
                writeln!(f, "stack config failed static validation:")?;
                for finding in findings {
                    writeln!(f, "  {finding}")?;
                }
                Ok(())
            }
            StackError::Wire(msg) => write!(f, "stack wiring failed: {msg}"),
        }
    }
}

impl std::error::Error for StackError {}

/// Bucket bounds for the ingest batch-size histogram (records per
/// batched Loki push): powers of two up to the bridge's fetch batch.
const INGEST_BATCH_BUCKETS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0];

/// Bucket bounds for the chunk fill-ratio histogram (uncompressed bytes
/// at seal time over the configured chunk target). Ratios near 1.0 are
/// full, size-triggered seals; low ratios are age-triggered seals.
const CHUNK_FILL_BUCKETS: &[f64] = &[0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0];

/// Bucket bounds for the query-frontend bytes-saved histogram (line
/// bytes a cached split avoided re-scanning): powers of four from 1 KiB
/// to 16 MiB.
const FRONTEND_BYTES_SAVED_BUCKETS: &[f64] =
    &[1_024.0, 4_096.0, 16_384.0, 65_536.0, 262_144.0, 1_048_576.0, 4_194_304.0, 16_777_216.0];

/// Bucket bounds for the modeled query-latency histogram (seconds).
/// Modeled latencies live in the sub-millisecond-to-seconds range, well
/// below alert-pipeline latencies, so this layout is much finer than
/// [`DEFAULT_LATENCY_BUCKETS`].
const QUERY_LATENCY_BUCKETS: &[f64] = &[0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5];

/// Bucket bounds for the per-tenant fair-scheduler queue-wait histogram
/// (virtual-clock seconds; one grant round is microseconds of virtual
/// time, so the layout starts at 100µs).
const QUERY_WAIT_BUCKETS: &[f64] = &[0.000_1, 0.000_5, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0];

/// Modeled query execution pricing. The virtual clock does not advance
/// while a query runs (queries are instantaneous in simulation time), so
/// the slow-query log and the `query-latency` SLO price a query from the
/// statistics its execution actually produced: blocks decompressed,
/// bytes inflated, entries scanned, plus the scheduler queue wait the
/// fair scheduler measured in virtual nanoseconds.
const QUERY_COST_PER_BLOCK_NS: i64 = 200_000; // 0.2ms per decoded block
const QUERY_COST_PER_KIB_NS: i64 = 50_000; // 0.05ms per decompressed KiB
const QUERY_COST_PER_ENTRY_NS: i64 = 2_000; // 2µs per scanned entry
const QUERY_COST_PER_COLD_CHUNK_NS: i64 = 8_000_000; // 8ms per cold-tier object GET

/// Price one split's scan from its statistics (cached splits cost zero).
fn modeled_scan_cost_ns(s: &omni_loki::QueryStats) -> i64 {
    s.blocks_decoded as i64 * QUERY_COST_PER_BLOCK_NS
        + (s.decompressed_bytes as i64 / 1024) * QUERY_COST_PER_KIB_NS
        + s.entries_scanned as i64 * QUERY_COST_PER_ENTRY_NS
        + s.cold_chunks_touched as i64 * QUERY_COST_PER_COLD_CHUNK_NS
}

/// Price a whole query: scheduler queue wait plus the scan cost of every
/// split that actually executed (cache hits are free).
fn modeled_query_latency_ns(report: &QueryReport) -> i64 {
    report.queue_wait_vns as i64
        + report
            .splits
            .iter()
            .filter(|sp| !sp.cached)
            .map(|sp| modeled_scan_cost_ns(&sp.stats))
            .sum::<i64>()
}

/// Event→incident latency at or under this is "good" for the
/// `event-to-incident` SLO: ten virtual minutes, comfortably above the
/// `for:` hold plus Alertmanager group_wait of a healthy pipeline.
const EVENT_TO_INCIDENT_TARGET_NS: i64 = 600 * NANOS_PER_SEC;

/// The shipped pipeline SLOs, evaluated as multi-window burn rates:
/// event→incident latency, modeled query latency, and alert-delivery
/// success. Objectives leave enough error budget that a healthy pipeline
/// never pages, while a forced regression burns fast enough to trip the
/// fast-window rule within its `for:` hold.
fn slo_specs() -> Vec<Slo> {
    let minute = 60 * NANOS_PER_SEC;
    vec![
        Slo {
            name: "event-to-incident".into(),
            objective: 0.99,
            fast_window_ns: 5 * minute,
            slow_window_ns: 60 * minute,
        },
        Slo {
            name: "query-latency".into(),
            objective: 0.95,
            fast_window_ns: 5 * minute,
            slow_window_ns: 60 * minute,
        },
        Slo {
            name: "alert-delivery".into(),
            objective: 0.99,
            fast_window_ns: 5 * minute,
            slow_window_ns: 60 * minute,
        },
    ]
}

/// Multi-window burn-rate meta-alerts over the `omni_slo_*` gauges the
/// registry exports: the monitor alerting on its own service levels. The
/// fast window pages (critical → ServiceNow) on a budget-torching burn;
/// the slow window warns on a sustained simmer.
fn slo_burn_rules() -> Vec<MetricRule> {
    let minute = 60 * NANOS_PER_SEC;
    vec![
        MetricRule {
            name: "SloFastBurn".into(),
            expr: r#"max by (slo) (omni_slo_burn_rate{window="fast"}) > 14"#.into(),
            for_ns: minute,
            labels: omni_model::LabelSet::from_pairs([("severity", "critical")]),
            annotations: vec![(
                "summary".into(),
                "SLO {{.slo}} is burning error budget 14x too fast".into(),
            )],
        },
        MetricRule {
            name: "SloSlowBurn".into(),
            expr: r#"max by (slo) (omni_slo_burn_rate{window="slow"}) > 2"#.into(),
            for_ns: 5 * minute,
            labels: omni_model::LabelSet::from_pairs([("severity", "warning")]),
            annotations: vec![("summary".into(), "SLO {{.slo}} burn is sustained above 2x".into())],
        },
    ]
}

/// The assembled pipeline.
pub struct MonitoringStack {
    /// Shared virtual clock.
    pub clock: SimClock,
    /// The simulated machine.
    pub machine: Arc<ShastaMachine>,
    /// HMS collector (publishes onto the bus).
    pub collector: HmsCollector,
    /// The Telemetry API fronting the bus.
    pub api: TelemetryApi,
    /// The Slingshot fabric manager.
    pub fabric: FabricManager,
    /// The GPFS scratch filesystem (§V future work).
    pub gpfs: Arc<GpfsCluster>,
    /// The OMNI warehouse (Loki + TSDB).
    pub omni: Omni,
    /// The single pane of glass.
    pub pane: Pane,
    /// Slack webhook capture.
    pub slack: SlackSink,
    /// ServiceNow instance.
    pub servicenow: ServiceNow,
    broker: Broker,
    fabric_monitor: FabricManagerMonitor,
    gpfs_monitor: GpfsMonitor,
    log_bridge: Arc<parking_lot::Mutex<LogBridge>>,
    metric_bridge: Arc<parking_lot::Mutex<MetricBridge>>,
    ruler: Ruler,
    vmalert: VmAlert,
    vmagent: VmAgent,
    alertmanager: Alertmanager,
    remediation: Option<RemediationEngine>,
    delivery: Arc<parking_lot::Mutex<DeliveryQueue>>,
    chaos: Arc<parking_lot::Mutex<Option<ChaosEngine>>>,
    syslog_gen: SyslogGenerator,
    container_gen: ContainerLogGenerator,
    registry: Registry,
    traces: TraceStore,
    slo: SloBoard,
    slow_query_threshold_ns: i64,
    /// Monotonic counter giving every query trace a unique context key.
    query_trace_seq: u64,
    /// Dead-lettered notifications already charged to the
    /// `alert-delivery` SLO.
    delivery_failures_seen: u64,
    notifications_dispatched: u64,
    /// Publishes a brownout bounced at the producer, replayed next step.
    publish_backlog: parking_lot::Mutex<Vec<PendingPublish>>,
}

/// A bus publish the collector could not complete (brownout), held for
/// replay so producer-side data survives too.
enum PendingPublish {
    Event {
        event: RedfishEvent,
        trace: Option<TraceContext>,
        /// When the firmware emitted the event — the `collect` span's
        /// start, so a brownout-delayed publish shows up as a gap.
        created_at: Timestamp,
    },
    Log {
        topic: String,
        key: String,
        line: String,
    },
}

impl MonitoringStack {
    /// Wire up the whole Figure 1 pipeline.
    ///
    /// Panics if the config fails static validation — the shipped
    /// default always passes (`omni-lint`'s own tests pin that), so this
    /// is the convenient constructor for tests and examples. Use
    /// [`try_new`] when wiring user-supplied rules.
    ///
    /// [`try_new`]: MonitoringStack::try_new
    pub fn new(config: StackConfig) -> Self {
        // Invariant: only reachable with a config that fails the lint,
        // which the shipped defaults cannot. lint:allow(no-unwrap)
        Self::try_new(config).expect("stack config failed static validation")
    }

    /// The layer-1 lint configuration for this stack: everything
    /// [`omni_lint::shipped_config`] covers, plus the provisioned
    /// dashboards, the stack's extra histogram layouts, and any extra
    /// rules the config carries.
    fn lint_config(config: &StackConfig) -> omni_lint::LintConfig {
        use crate::pane::{Dashboard, PaneQuery};
        use omni_lint::{NamedQuery, QueryLang, RuleSpec};

        let mut lint = omni_lint::shipped_config();
        for dash in [
            Dashboard::leak_detection(),
            Dashboard::pipeline_health(),
            Dashboard::fabric_health(),
            Dashboard::pipeline_slo(),
        ] {
            for panel in &dash.panels {
                let (lang, query) = match &panel.query {
                    PaneQuery::Logs(q) | PaneQuery::LogMetric(q) => (QueryLang::LogQl, q.clone()),
                    PaneQuery::Metric(q) => (QueryLang::PromQl, q.clone()),
                };
                lint.queries.push(NamedQuery {
                    source: format!("dashboard:{}:{}", dash.title, panel.title),
                    lang,
                    query,
                });
            }
        }
        lint.buckets.push(("stack:ingest-batch-size".to_string(), INGEST_BATCH_BUCKETS.to_vec()));
        lint.buckets.push(("stack:chunk-fill-ratio".to_string(), CHUNK_FILL_BUCKETS.to_vec()));
        lint.buckets.push((
            "stack:frontend-bytes-saved".to_string(),
            FRONTEND_BYTES_SAVED_BUCKETS.to_vec(),
        ));
        lint.buckets.push(("stack:query-latency".to_string(), QUERY_LATENCY_BUCKETS.to_vec()));
        lint.buckets.push(("stack:query-wait".to_string(), QUERY_WAIT_BUCKETS.to_vec()));
        // The SLO burn-rate meta-alerts go through the same gate as
        // every other rule: a drifted gauge name fails the boot.
        for r in &slo_burn_rules() {
            lint.rules.push(RuleSpec {
                source: format!("vmalert:{}", r.name),
                lang: QueryLang::PromQl,
                expr: r.expr.clone(),
                for_ns: r.for_ns,
            });
        }
        for r in &config.extra_metric_rules {
            lint.rules.push(RuleSpec {
                source: format!("vmalert:{}", r.name),
                lang: QueryLang::PromQl,
                expr: r.expr.clone(),
                for_ns: r.for_ns,
            });
        }
        for r in &config.extra_logql_rules {
            lint.rules.push(RuleSpec {
                source: format!("ruler:{}", r.name),
                lang: QueryLang::LogQl,
                expr: r.expr.clone(),
                for_ns: r.for_ns,
            });
        }
        lint
    }

    /// Statically validate the configuration, then wire up the pipeline.
    ///
    /// Runs `omni-lint`'s layer-1 analysis over everything this stack is
    /// about to wire — the shipped vmalert and ruler rules, the routing
    /// tree, the provisioned dashboards, the histogram bucket layouts and
    /// the config's extra rules — and refuses to boot on any finding
    /// ([`StackError::Lint`]). A misspelled metric in an alert rule is an
    /// error at construction, not an alert that never fires.
    pub fn try_new(config: StackConfig) -> Result<Self, StackError> {
        let findings = omni_lint::analyze(&Self::lint_config(&config));
        if !findings.is_empty() {
            return Err(StackError::Lint(findings));
        }

        let clock = SimClock::starting_at(0);
        // Self-telemetry: one registry on the shared clock, one trace
        // store seeded like everything else so ids replay byte-identically.
        let registry = Registry::new(clock.clone());
        let traces = TraceStore::with_sampling(config.seed, config.trace_sampling);
        // The pipeline's service-level objectives, fed from the step loop
        // and delivery pump, exported as burn-rate gauges at gather time.
        let slo = SloBoard::new();
        for spec in slo_specs() {
            slo.add(spec);
        }
        let machine =
            Arc::new(ShastaMachine::new(config.topology.clone(), clock.clone(), config.seed));
        let broker = omni_bus::Broker::new(clock.clone());
        let collector = HmsCollector::new(broker.clone(), config.bus_partitions);
        let api = TelemetryApi::new(broker.clone(), config.gateways);
        let fabric = FabricManager::new(machine.topology());
        let fabric_monitor = FabricManagerMonitor::new(fabric.clone());
        let gpfs = GpfsCluster::new("scratch", 8, 12, clock.clone(), config.seed ^ 0x6f5);
        let gpfs_monitor = GpfsMonitor::new(Arc::clone(&gpfs));
        let mut omni = Omni::new(config.loki_shards, config.limits.clone(), clock.clone());
        if config.enable_discovery {
            omni = omni.with_discovery();
        }
        let pane = Pane::new(omni.clone());

        // Bridges (the K3s pods), shared with the registry's collectors.
        let token = api.issue_token("bridge-clients");
        let mut log_bridge =
            LogBridge::new(&api, &token, omni.clone(), &config.cluster_name, &broker)
                .map_err(|e| StackError::Wire(format!("log bridge: {e}")))?;
        log_bridge.set_tracer(traces.clone());
        log_bridge.set_batch_histogram(registry.histogram(
            "omni_ingest_batch_size",
            "Records per batched Loki push from the log bridge.",
            labels!(),
            INGEST_BATCH_BUCKETS,
        ));
        let log_bridge = Arc::new(parking_lot::Mutex::new(log_bridge));
        let metric_bridge = Arc::new(parking_lot::Mutex::new(
            MetricBridge::new(&api, &token, omni.tsdb().clone(), &config.cluster_name, &broker)
                .map_err(|e| StackError::Wire(format!("metric bridge: {e}")))?,
        ));
        let delivery = Arc::new(parking_lot::Mutex::new(DeliveryQueue::with_defaults()));
        let chaos: Arc<parking_lot::Mutex<Option<ChaosEngine>>> =
            Arc::new(parking_lot::Mutex::new(None));

        // The Ruler carries both paper case-study rules, plus any extra
        // LogQL rules the config brings (already linted above).
        let mut ruler = Ruler::new(omni.loki().clone());
        let mut logql_rules = vec![
            AlertingRule::paper_leak_rule(),
            AlertingRule::paper_switch_rule(),
            AlertingRule::gpfs_server_rule(),
        ];
        logql_rules.extend(config.extra_logql_rules.iter().cloned());
        ruler
            .add_group(RuleGroup {
                name: "perlmutter-alerts".into(),
                interval_ns: 60 * NANOS_PER_SEC,
                rules: logql_rules,
            })
            .map_err(|e| StackError::Wire(format!("ruler group: {e}")))?;

        // vmalert: the shipped thermal / leak-sensor / GPFS metric rules
        // (the same set omni-lint validates), plus the config's extras.
        let mut vmalert = VmAlert::new(omni.tsdb().clone());
        for rule in MetricRule::shipped_rules()
            .into_iter()
            .chain(slo_burn_rules())
            .chain(config.extra_metric_rules.iter().cloned())
        {
            let name = rule.name.clone();
            vmalert
                .add_rule(rule)
                .map_err(|e| StackError::Wire(format!("vmalert rule {name}: {e}")))?;
        }

        // vmagent scraping the exporter fleet.
        let mut vmagent = VmAgent::new(omni.tsdb().clone());
        {
            let node_exp = NodeExporter::new(Arc::clone(&machine));
            vmagent.add_target(
                "node-exporter",
                &config.cluster_name,
                Box::new(move |_| parse_exposition(&node_exp.render()).map_err(|e| e.to_string())),
            );
            let kafka_exp = KafkaExporter::new(broker.clone());
            vmagent.add_target(
                "kafka-exporter",
                "sma-kafka",
                Box::new(move |_| parse_exposition(&kafka_exp.render()).map_err(|e| e.to_string())),
            );
            let blackbox = BlackboxExporter::new(
                vec!["https://telemetry-api".into(), "https://grafana".into()],
                clock.clone(),
            );
            vmagent.add_target(
                "blackbox-exporter",
                "probes",
                Box::new(move |_| parse_exposition(&blackbox.render()).map_err(|e| e.to_string())),
            );
            let aruba =
                ArubaExporter::new(vec!["mgmt-sw1".into(), "mgmt-sw2".into()], clock.clone());
            vmagent.add_target(
                "aruba-exporter",
                "mgmt",
                Box::new(move |_| parse_exposition(&aruba.render()).map_err(|e| e.to_string())),
            );
            let gpfs_exp = GpfsExporter::new(Arc::clone(&gpfs));
            vmagent.add_target(
                "gpfs-exporter",
                "scratch",
                Box::new(move |_| parse_exposition(&gpfs_exp.render()).map_err(|e| e.to_string())),
            );
            // The monitor monitoring itself: the registry rendered in the
            // same exposition format and scraped through the same path.
            let self_exp = SelfExporter::new(registry.clone());
            vmagent.add_target(
                "omni-self",
                &config.cluster_name,
                Box::new(move |_| parse_exposition(&self_exp.render()).map_err(|e| e.to_string())),
            );
        }

        // Alertmanager routing: critical alerts go to ServiceNow AND
        // Slack; everything else to Slack only. The tree lives next to
        // the Route type so omni-lint validates the exact object we wire.
        let alertmanager = Alertmanager::new(Route::shipped_tree());

        // ServiceNow: CMDB from the machine, incidents for critical alerts.
        let servicenow = ServiceNow::new();
        servicenow.with_cmdb(|cmdb| cmdb.load_topology(&config.cluster_name, machine.topology()));
        // Category-aware assignment: storage and fabric alerts route to
        // their teams; any other critical goes to operations.
        servicenow.add_incident_rule(IncidentRule {
            name: "storage-to-storage-team".into(),
            max_severity: 2,
            node_contains: None,
            resource: Some("storage".into()),
            assignment_group: "nersc-storage".into(),
        });
        servicenow.add_incident_rule(IncidentRule {
            name: "fabric-to-network-team".into(),
            max_severity: 2,
            node_contains: None,
            resource: Some("fabric".into()),
            assignment_group: "nersc-network".into(),
        });
        servicenow.add_incident_rule(IncidentRule {
            name: "critical-to-ops".into(),
            max_severity: 2,
            node_contains: None,
            resource: None,
            assignment_group: "nersc-ops".into(),
        });

        let remediation = config
            .auto_remediate
            .then(|| RemediationEngine::with_default_playbooks(fabric.clone(), Arc::clone(&gpfs)));
        let syslog_gen =
            SyslogGenerator::new(machine.topology().nodes(), clock.clone(), config.seed ^ 0xa5);
        let container_gen = ContainerLogGenerator::k3s_services(config.seed ^ 0x5a);

        // Absorb every component's ad-hoc counters behind the registry.
        register_self_collectors(
            &registry,
            &broker,
            &omni,
            &log_bridge,
            &metric_bridge,
            &delivery,
            &chaos,
            &servicenow,
        );
        register_introspection_collectors(&registry, &slo, &traces, &clock);

        Ok(Self {
            clock,
            machine,
            collector,
            api,
            fabric,
            gpfs,
            omni,
            pane,
            slack: SlackSink::new("#perlmutter-alerts"),
            servicenow,
            broker,
            fabric_monitor,
            gpfs_monitor,
            log_bridge,
            metric_bridge,
            ruler,
            vmalert,
            vmagent,
            alertmanager,
            remediation,
            delivery,
            chaos,
            syslog_gen,
            container_gen,
            registry,
            traces,
            slo,
            slow_query_threshold_ns: config.slow_query_threshold_ns,
            query_trace_seq: 0,
            delivery_failures_seen: 0,
            notifications_dispatched: 0,
            publish_backlog: parking_lot::Mutex::new(Vec::new()),
        })
    }

    /// Install a scripted chaos engine; its faults fire inside [`step`]
    /// and its flaky-receiver coin gates every notification send.
    ///
    /// [`step`]: MonitoringStack::step
    pub fn install_chaos(&mut self, engine: ChaosEngine) {
        *self.chaos.lock() = Some(engine);
    }

    /// Config-driven generation counts are stored in the generators; the
    /// per-step volumes come from the config at construction. Advance the
    /// simulation by `dt_ns`, running one full pipeline cycle; returns the
    /// Alertmanager notifications dispatched during this step.
    pub fn step(
        &mut self,
        dt_ns: i64,
        syslog_lines: usize,
        container_lines: usize,
    ) -> Vec<Notification> {
        let now = self.clock.advance(dt_ns);
        self.registry.counter("omni_steps_total", "Pipeline steps driven.", labels!()).inc();

        // 0. Scheduled chaos fires before anything else this step.
        let actions = self.chaos.lock().as_mut().map(|c| c.poll(now)).unwrap_or_default();
        for action in actions {
            match action {
                ChaosAction::CrashShard(i) => self.omni.loki().crash_shard(i),
                ChaosAction::RecoverShard(i) => {
                    self.omni.loki().recover_shard(i);
                }
                ChaosAction::StartBrownout { from, until } => {
                    self.broker.inject_brownout(from, until);
                }
                ChaosAction::DropSubscriptions => {
                    self.log_bridge.lock().chaos_revoke_token();
                    self.metric_bridge.lock().chaos_revoke_token();
                }
            }
        }

        // 1. Producer-side at-least-once: replay publishes an earlier
        // brownout bounced, then the new data. Sensor readings are
        // periodic samples and regenerate next step, so they are the one
        // stream allowed a brownout gap.
        let backlog = std::mem::take(&mut *self.publish_backlog.lock());
        for item in backlog {
            self.publish_or_buffer(item);
        }
        for reading in self.machine.sample_sensors() {
            let _ = self.collector.publish_reading(&reading);
        }
        // 2. Logs → bus.
        for (host, line) in self.syslog_gen.batch(syslog_lines) {
            self.publish_or_buffer(PendingPublish::Log {
                topic: omni_redfish::topics::SYSLOG.to_string(),
                key: host,
                line,
            });
        }
        for (pod, line) in self.container_gen.batch(container_lines) {
            self.publish_or_buffer(PendingPublish::Log {
                topic: omni_redfish::topics::CONTAINER_LOGS.to_string(),
                key: pod,
                line,
            });
        }
        // 3. Fabric monitor poll → event lines (Figure 7).
        for change in self.fabric_monitor.poll() {
            self.publish_or_buffer(PendingPublish::Log {
                topic: omni_redfish::topics::FABRIC_HEALTH.to_string(),
                key: change.xname.to_string(),
                line: change.to_event_line(),
            });
        }
        // 3b. GPFS monitor poll (the §V future-work path).
        for change in self.gpfs_monitor.poll() {
            self.publish_or_buffer(PendingPublish::Log {
                topic: omni_redfish::topics::GPFS_HEALTH.to_string(),
                key: change.server.clone(),
                line: change.to_event_line(),
            });
        }
        // 4. Bridges pull the Telemetry API forward into the stores.
        self.log_bridge.lock().pump(now);
        self.metric_bridge.lock().pump();
        // 5. vmagent scrape.
        self.vmagent.scrape_once(now);
        // 6. Store maintenance: seal aged heads, then move sealed chunks
        // older than an hour to the disk tier ("chunks are first stored
        // in memory, and then moved to disk").
        self.omni.loki().tick();
        let fill = self.registry.histogram(
            "omni_chunk_fill_ratio",
            "Uncompressed size of sealed chunks relative to the chunk target.",
            labels!(),
            CHUNK_FILL_BUCKETS,
        );
        for ratio in self.omni.loki().take_seal_fill_ratios() {
            fill.observe(ratio);
        }
        // Query-frontend cache effectiveness: every cache hit since the
        // last step contributes the bytes it avoided re-scanning.
        let saved = self.registry.histogram(
            "omni_frontend_bytes_saved",
            "Line bytes a query-frontend cache hit avoided re-scanning.",
            labels!(),
            FRONTEND_BYTES_SAVED_BUCKETS,
        );
        for bytes in self.omni.loki().frontend().take_bytes_saved() {
            saved.observe(bytes as f64);
        }
        self.omni.loki().offload(3_600 * NANOS_PER_SEC);
        // The compactor wakes on its own virtual-clock cadence
        // (`compaction_interval_ns`): merges cold sealed chunks into the
        // compacted tier, dedups replayed duplicates, executes retention
        // deletes.
        self.omni.loki().maybe_compact();
        // 6b. Query introspection: price every query the frontend
        // finished since the last step, build its span tree, feed the
        // latency histogram (trace id as exemplar) and the query-latency
        // SLO, and self-ingest slow queries as a Loki stream.
        self.introspect_queries(now);
        // 7. Rule evaluation → Alertmanager, correlating alerts back to
        // their traces via the Context label the pipeline carries.
        for n in self.ruler.evaluate(now) {
            let mut alert = ruler_to_alert(&n);
            self.correlate_alert(&mut alert, now);
            self.alertmanager.receive(alert, now);
        }
        for n in self.vmalert.evaluate(now) {
            self.alertmanager.receive(vmalert_to_alert(&n), now);
        }
        // 8. Alertmanager flush → at-least-once delivery to receivers.
        let notifications = self.alertmanager.tick(now);
        for n in &notifications {
            self.notifications_dispatched += 1;
            self.registry
                .counter(
                    "omni_notifications_total",
                    "Alertmanager notifications dispatched, by receiver.",
                    labels!("receiver" => n.receiver.clone()),
                )
                .inc();
            for id in notification_trace_ids(n) {
                self.traces.end_span(
                    id,
                    "alertmanager",
                    now,
                    &format!("grouped, notified {}", n.receiver),
                );
                // Closed on delivery success; retries stretch the span.
                self.traces.begin_span(id, &format!("deliver_{}", n.receiver), now, "enqueued");
            }
            if let Some(engine) = &mut self.remediation {
                engine.handle(n, now);
            }
            self.delivery.lock().enqueue(n.clone());
        }
        self.pump_delivery(now);
        notifications
    }

    /// Drain the frontend's per-query reports and scheduler queue-wait
    /// samples into the introspection surfaces: the modeled-latency
    /// histogram (with the query's trace as exemplar), per-tenant wait
    /// histograms, scan-volume counters, the `query-latency` SLO, and —
    /// for queries at or over the slow threshold — a JSON line in the
    /// self-ingested `{job="omni-self", component="slowlog"}` stream.
    fn introspect_queries(&mut self, now: Timestamp) {
        for (tenant, wait_vns) in self.omni.loki().frontend().take_scheduler_waits() {
            self.registry
                .histogram(
                    "omni_tenant_query_wait_seconds",
                    "Fair-scheduler queue wait per split grant, by tenant (virtual-clock seconds).",
                    labels!("tenant" => tenant.as_str()),
                    QUERY_WAIT_BUCKETS,
                )
                .observe(wait_vns as f64 / NANOS_PER_SEC as f64);
        }
        let records = self.omni.loki().frontend().take_query_records();
        if records.is_empty() {
            return;
        }
        let latency_hist = self.registry.histogram(
            "omni_query_latency_seconds",
            "Modeled query latency priced from execution statistics.",
            labels!(),
            QUERY_LATENCY_BUCKETS,
        );
        for record in records {
            let latency_ns = modeled_query_latency_ns(&record.report);
            let slow = latency_ns >= self.slow_query_threshold_ns;
            let trace_id = self.trace_query(&record, latency_ns, now);
            latency_hist.observe_with_exemplar(latency_ns as f64 / NANOS_PER_SEC as f64, trace_id);
            let s = &record.report.stats;
            for (name, help, delta) in [
                ("omni_query_records_total", "Queries the frontend completed and recorded.", 1u64),
                (
                    "omni_query_chunks_touched_total",
                    "Sealed chunks overlapping recorded query windows.",
                    s.chunks_touched as u64,
                ),
                (
                    "omni_query_blocks_decoded_total",
                    "Chunk blocks decompressed for recorded queries.",
                    s.blocks_decoded as u64,
                ),
                (
                    "omni_query_blocks_skipped_total",
                    "Chunk blocks skipped via timestamp headers for recorded queries.",
                    s.blocks_skipped as u64,
                ),
                (
                    "omni_query_bytes_decompressed_total",
                    "Uncompressed bytes produced by recorded queries' block decodes.",
                    s.decompressed_bytes as u64,
                ),
                (
                    "omni_query_cold_chunks_total",
                    "Cold-tier (compacted) chunks fetched for recorded queries.",
                    s.cold_chunks_touched as u64,
                ),
            ] {
                self.registry.counter(name, help, labels!()).add(delta);
            }
            self.slo.record("query-latency", now, !slow);
            if slow {
                self.registry
                    .counter(
                        "omni_query_slow_total",
                        "Recorded queries at or over the slow-query threshold.",
                        labels!(),
                    )
                    .inc();
                // Best-effort: with every shard down the line is lost,
                // never the query itself.
                let _ = self.omni.loki().push(
                    labels!("job" => "omni-self", "component" => "slowlog"),
                    now,
                    slow_query_line(&record, latency_ns, trace_id),
                );
            }
        }
    }

    /// Build the span tree for one completed query — a `query` root with
    /// a `queue_wait` child and one `split_execute`/`split_cache_hit`
    /// child per planned split, laid out on modeled time ending at `now`
    /// — then finish the trace so tail sampling decides its fate.
    fn trace_query(&mut self, record: &QueryRecord, latency_ns: i64, now: Timestamp) -> u64 {
        self.query_trace_seq += 1;
        let key = format!("query-{}", self.query_trace_seq);
        let started = now.saturating_sub(latency_ns);
        let ctx = self.traces.begin_trace(&key, &record.query, started);
        let root = self.traces.span(
            ctx.trace_id,
            "query",
            started,
            now,
            &format!(
                "{} [{}..{}] tenant={} ({} splits: {} cached, {} executed)",
                record.query,
                record.start,
                record.end,
                record.tenant.as_str(),
                record.report.splits.len(),
                record.report.cache_hits,
                record.report.cache_misses,
            ),
        );
        let mut cursor = started;
        if record.report.queue_wait_vns > 0 {
            let end = cursor.saturating_add(record.report.queue_wait_vns as i64).min(now);
            self.traces.span_child(
                ctx.trace_id,
                root,
                "queue_wait",
                cursor,
                end,
                &format!("{} vns behind the fair scheduler", record.report.queue_wait_vns),
            );
            cursor = end;
        }
        for (i, sp) in record.report.splits.iter().enumerate() {
            if sp.cached {
                self.traces.span_child(
                    ctx.trace_id,
                    root,
                    "split_cache_hit",
                    cursor,
                    cursor,
                    &format!("split {i} [{}..{}] served from the results cache", sp.start, sp.end),
                );
            } else {
                let end = cursor.saturating_add(modeled_scan_cost_ns(&sp.stats)).min(now);
                self.traces.span_child(
                    ctx.trace_id,
                    root,
                    "split_execute",
                    cursor,
                    end,
                    &format!(
                        "split {i} [{}..{}]: {} entries, {} blocks decoded, {} skipped",
                        sp.start,
                        sp.end,
                        sp.stats.entries_scanned,
                        sp.stats.blocks_decoded,
                        sp.stats.blocks_skipped,
                    ),
                );
                cursor = end;
            }
        }
        self.traces.finish(ctx.trace_id);
        ctx.trace_id
    }

    /// Tie an alert back to the trace of the event that raised it: the
    /// Redfish `Context` xname is the correlation key. Adds the
    /// `alert_rule` span (held `for:` window included) and a `trace_id`
    /// annotation that rides to every receiver.
    fn correlate_alert(&self, alert: &mut Alert, now: Timestamp) {
        let Some(context) = alert.labels.get("Context").map(str::to_string) else { return };
        let Some(id) = self.traces.lookup(&context) else { return };
        let rule = alert.name().to_string();
        self.traces.span_once(
            id,
            "alert_rule",
            alert.starts_at,
            now,
            &format!("rule {rule} firing"),
        );
        // Open until the alertmanager flushes the group (group_wait).
        self.traces.begin_span(id, "alertmanager", now, "received");
        if !alert.annotations.iter().any(|(k, _)| k == "trace_id") {
            alert.annotations.push(("trace_id".into(), format_trace_id(id)));
        }
    }

    /// Attempt every due notification send, with the chaos engine's flaky
    /// receivers deciding which attempts fail. Successful sends close the
    /// per-receiver delivery spans; an opened ServiceNow incident closes
    /// the trace and feeds the event→incident latency histogram.
    fn pump_delivery(&mut self, now: i64) -> usize {
        let chaos = Arc::clone(&self.chaos);
        let slack = self.slack.clone();
        let servicenow = self.servicenow.clone();
        let traces = self.traces.clone();
        let slo = self.slo.clone();
        let latency = self.registry.histogram(
            "omni_event_to_incident_seconds",
            "End-to-end latency from hardware event to ServiceNow incident.",
            labels!(),
            DEFAULT_LATENCY_BUCKETS,
        );
        let delivered = self.delivery.lock().pump(now, |n| {
            if let Some(c) = chaos.lock().as_mut() {
                if c.should_fail_send(&n.receiver, now) {
                    return false;
                }
            }
            let ids = notification_trace_ids(n);
            match n.receiver.as_str() {
                "slack" => {
                    slack.deliver(n);
                }
                "servicenow" => {
                    servicenow.receive_notification(n, now);
                    let incident = servicenow
                        .incidents()
                        .last()
                        .map(|i| i.number.clone())
                        .unwrap_or_else(|| "no incident".to_string());
                    for &id in &ids {
                        traces.span_once(id, "servicenow_incident", now, now, &incident);
                        if let Some(ns) = traces.latency_ns(id) {
                            // The event's trace rides along as the
                            // exemplar for the latency bucket it lands in.
                            latency.observe_with_exemplar(ns as f64 / NANOS_PER_SEC as f64, id);
                            slo.record("event-to-incident", now, ns <= EVENT_TO_INCIDENT_TARGET_NS);
                        }
                    }
                }
                _ => {}
            }
            for &id in &ids {
                traces.end_span(id, &format!("deliver_{}", n.receiver), now, "delivered");
            }
            slo.record("alert-delivery", now, true);
            true
        });
        // At-least-once semantics: a failed attempt that will retry is
        // not an SLO violation — exhausting the retry budget is. Charge
        // only freshly dead-lettered notifications as bad events.
        let failed = self.delivery.lock().stats().permanently_failed;
        if failed > self.delivery_failures_seen {
            self.slo.record_many("alert-delivery", now, 0, failed - self.delivery_failures_seen);
            self.delivery_failures_seen = failed;
        }
        delivered
    }

    fn publish_or_buffer(&self, item: PendingPublish) {
        let result = match &item {
            PendingPublish::Event { event, trace, created_at } => {
                let headers =
                    trace.map(|t| vec![(TRACE_HEADER.to_string(), t.encode())]).unwrap_or_default();
                let published =
                    self.collector.publish_event_with_headers(event, headers).map(|_| ());
                if published.is_ok() {
                    if let Some(t) = trace {
                        // First emission to eventual publish: a brownout
                        // that buffered the event shows as a gap here.
                        self.traces.span_once(
                            t.trace_id,
                            "collect",
                            *created_at,
                            self.clock.now(),
                            "redfish event published to bus",
                        );
                    }
                }
                published
            }
            PendingPublish::Log { topic, key, line } => {
                self.collector.publish_log(topic, key, line.clone()).map(|_| ())
            }
        };
        if result.is_err() {
            self.publish_backlog.lock().push(item);
        }
    }

    /// Inject the paper's case-study-A fault: a cabinet leak. The Redfish
    /// event is published through the HMS collector like the real firmware
    /// would, carrying a fresh trace context as a message header.
    pub fn inject_leak(&self, chassis: XName, sensor: char, zone: LeakZone) -> RedfishEvent {
        let event = self.machine.inject_leak(chassis, sensor, zone);
        let trace = self.traces.begin_trace(
            &event.context.to_string(),
            &event.message_id,
            self.clock.now(),
        );
        // Buffered like every other publish: a brownout delays the event,
        // it never loses it.
        self.publish_or_buffer(PendingPublish::Event {
            event: event.clone(),
            trace: Some(trace),
            created_at: self.clock.now(),
        });
        event
    }

    /// Inject the case-study-B fault: a switch going offline/unknown.
    pub fn take_switch_offline(&self, switch: XName, state: SwitchState) {
        self.fabric.set_switch_state(switch, state);
    }

    /// Inject a GPFS fault: degrade or fail an NSD server.
    pub fn fail_gpfs_server(&self, server: &str, state: GpfsState) {
        self.gpfs.set_server_state(server, state);
    }

    /// Notifications dispatched so far.
    pub fn notifications_dispatched(&self) -> u64 {
        self.notifications_dispatched
    }

    /// Alertmanager `(received, notified, suppressed)`.
    pub fn alertmanager_stats(&self) -> (u64, u64, u64) {
        self.alertmanager.stats()
    }

    /// The alertmanager (for silences / inhibition configuration).
    pub fn alertmanager_mut(&mut self) -> &mut Alertmanager {
        &mut self.alertmanager
    }

    /// The remediation journal (empty unless `auto_remediate` is on).
    pub fn remediation_journal(&self) -> &[crate::remediation::RemediationEvent] {
        self.remediation.as_ref().map(|e| e.journal()).unwrap_or(&[])
    }

    /// Bridge statistics `(log records pushed, log errors, metric records)`.
    pub fn bridge_stats(&self) -> (u64, u64, u64) {
        let (pushed, errors) = self.log_bridge.lock().stats();
        (pushed, errors, self.metric_bridge.lock().stats())
    }

    /// At-least-once notification delivery counters.
    pub fn delivery_stats(&self) -> DeliveryStats {
        self.delivery.lock().stats()
    }

    /// Notifications that exhausted their delivery retries.
    pub fn dead_letter_notifications(&self) -> Vec<Notification> {
        self.delivery.lock().dead_letters().to_vec()
    }

    /// The broker (for bus-level inspection and manual fault injection).
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// The self-telemetry registry — rendered by the `omni-self` scrape
    /// job and queryable directly for tests and tooling.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The trace store holding every traced event's journey.
    pub fn traces(&self) -> &TraceStore {
        &self.traces
    }

    /// The SLO board — snapshot it for burn rates and budgets.
    pub fn slos(&self) -> &SloBoard {
        &self.slo
    }

    /// Assemble the operator resilience panel: Loki crash/WAL counters,
    /// per-topic bus stats, bridge redelivery counters, notification
    /// delivery counters and what the chaos engine injected.
    pub fn resilience_report(&self) -> ResilienceReport {
        let bus = self
            .broker
            .topics()
            .into_iter()
            .filter_map(|t| self.broker.stats(&t).ok().map(|s| (t, s)))
            .collect();
        ResilienceReport {
            loki: self.omni.loki().resilience(),
            bus,
            log_bridge: self.log_bridge.lock().resilience(),
            metric_bridge: self.metric_bridge.lock().resilience(),
            delivery: self.delivery.lock().stats(),
            chaos: self.chaos.lock().as_ref().map(|c| c.stats()),
        }
    }
}

/// Trace ids carried by a notification's alerts (the `trace_id`
/// annotation attached at rule-correlation time), deduplicated.
fn notification_trace_ids(n: &Notification) -> Vec<u64> {
    let mut ids: Vec<u64> = n
        .alerts
        .iter()
        .flat_map(|a| a.annotations.iter())
        .filter(|(k, _)| k == "trace_id")
        .filter_map(|(_, v)| parse_trace_id(v))
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Render one slow-query log line: compact JSON carrying the query, its
/// tenant, the modeled latency, the trace id and the full statistics
/// breakdown — shaped for LogQL `| json` pipelines over the
/// `{job="omni-self", component="slowlog"}` stream.
fn slow_query_line(record: &QueryRecord, latency_ns: i64, trace_id: u64) -> String {
    let r = &record.report;
    let s = &r.stats;
    omni_json::jsonv!({
        "query": (record.query.as_str()),
        "tenant": (record.tenant.as_str()),
        "start": (record.start),
        "end": (record.end),
        "latency_ms": (latency_ns as f64 / 1e6),
        "trace_id": (format_trace_id(trace_id)),
        "splits": (r.splits.len()),
        "cache_hits": (r.cache_hits),
        "cache_misses": (r.cache_misses),
        "queue_wait_vns": (r.queue_wait_vns),
        "streams_matched": (s.streams_matched),
        "entries_scanned": (s.entries_scanned),
        "bytes_scanned": (s.bytes_scanned),
        "chunks_touched": (s.chunks_touched),
        "blocks_decoded": (s.blocks_decoded),
        "blocks_skipped": (s.blocks_skipped),
        "decompressed_bytes": (s.decompressed_bytes),
    })
    .dump()
}

/// Register the introspection collectors: SLO burn-rate/budget gauges
/// snapshotted from the board at gather time, and the trace store's
/// tail-sampling outcome counters.
fn register_introspection_collectors(
    registry: &Registry,
    slo: &SloBoard,
    traces: &TraceStore,
    clock: &SimClock,
) {
    use InstrumentKind::{Counter, Gauge};
    {
        let slo = slo.clone();
        let clock = clock.clone();
        registry.register_collector(move || {
            let mut burn = FamilySnapshot::new(
                "omni_slo_burn_rate",
                "Error-budget burn rate relative to the objective, by SLO and window.",
                Gauge,
            );
            let mut objective = FamilySnapshot::new(
                "omni_slo_objective",
                "Configured good-fraction objective, by SLO.",
                Gauge,
            );
            let mut budget = FamilySnapshot::new(
                "omni_slo_error_budget_remaining",
                "Fraction of the slow-window error budget unspent, by SLO.",
                Gauge,
            );
            for s in slo.snapshot(clock.now()) {
                burn.push(labels!("slo" => s.name.clone(), "window" => FAST_WINDOW), s.fast_burn);
                burn.push(labels!("slo" => s.name.clone(), "window" => SLOW_WINDOW), s.slow_burn);
                objective.push(labels!("slo" => s.name.clone()), s.objective);
                budget.push(labels!("slo" => s.name), s.budget_remaining);
            }
            vec![burn, objective, budget]
        });
    }
    {
        let traces = traces.clone();
        registry.register_collector(move || {
            let s = traces.sample_stats();
            vec![
                single(
                    "omni_trace_kept_total",
                    "Finished traces tail sampling retained (errored, slow, or sampled in).",
                    Counter,
                    (s.kept_error + s.kept_slow + s.kept_sampled) as f64,
                ),
                single(
                    "omni_trace_dropped_total",
                    "Finished traces tail sampling dropped, plus cap evictions.",
                    Counter,
                    (s.dropped + s.evicted) as f64,
                ),
            ]
        });
    }
}

/// One single-sample family with empty labels — collector shorthand.
fn single(name: &str, help: &str, kind: InstrumentKind, value: f64) -> FamilySnapshot {
    let mut f = FamilySnapshot::new(name, help, kind);
    f.push(labels!(), value);
    f
}

/// Register gather-time collectors that absorb every component's ad-hoc
/// counters (bus topic stats, Loki resilience, bridge redelivery,
/// delivery-queue stats, chaos stats, ServiceNow totals) into the one
/// registry, without those components knowing about it.
#[allow(clippy::too_many_arguments)]
fn register_self_collectors(
    registry: &Registry,
    broker: &Broker,
    omni: &Omni,
    log_bridge: &Arc<parking_lot::Mutex<LogBridge>>,
    metric_bridge: &Arc<parking_lot::Mutex<MetricBridge>>,
    delivery: &Arc<parking_lot::Mutex<DeliveryQueue>>,
    chaos: &Arc<parking_lot::Mutex<Option<ChaosEngine>>>,
    servicenow: &ServiceNow,
) {
    use InstrumentKind::{Counter, Gauge};
    {
        let broker = broker.clone();
        registry.register_collector(move || {
            let mut msgs = FamilySnapshot::new(
                "omni_bus_messages_in_total",
                "Messages produced, by topic.",
                Counter,
            );
            let mut bytes = FamilySnapshot::new(
                "omni_bus_bytes_out_total",
                "Bytes fetched by consumers, by topic.",
                Counter,
            );
            let mut drops = FamilySnapshot::new(
                "omni_bus_tail_drops_total",
                "Messages dropped by retention, by topic.",
                Counter,
            );
            let mut retries = FamilySnapshot::new(
                "omni_bus_produce_retries_total",
                "Produces bounced by a brownout, by topic.",
                Counter,
            );
            let mut lag = FamilySnapshot::new(
                "omni_bus_consumer_lag",
                "Worst consumer-group lag, by topic.",
                Gauge,
            );
            for topic in broker.topics() {
                let Ok(s) = broker.stats(&topic) else { continue };
                let l = labels!("topic" => topic.clone());
                msgs.push(l.clone(), s.messages_in as f64);
                bytes.push(l.clone(), s.bytes_out as f64);
                drops.push(l.clone(), s.tail_drops as f64);
                retries.push(l.clone(), s.produce_retries as f64);
                lag.push(l, s.consumer_lag as f64);
            }
            let mut unavailable = FamilySnapshot::new(
                "omni_bus_unavailable",
                "1 while a brownout window is rejecting bus traffic.",
                Gauge,
            );
            unavailable.push(labels!(), if broker.brownout_active() { 1.0 } else { 0.0 });
            vec![msgs, bytes, drops, retries, lag, unavailable]
        });
    }
    {
        let omni = omni.clone();
        registry.register_collector(move || {
            let r = omni.loki().resilience();
            vec![
                single(
                    "omni_loki_shards_up",
                    "Ingester shards currently up.",
                    Gauge,
                    r.shards_up as f64,
                ),
                single(
                    "omni_loki_shards_down",
                    "Ingester shards currently down.",
                    Gauge,
                    (r.shards_total - r.shards_up) as f64,
                ),
                single("omni_loki_crashes_total", "Ingester crashes.", Counter, r.crashes as f64),
                single(
                    "omni_loki_wal_replayed_total",
                    "Records replayed from the WAL after crashes.",
                    Counter,
                    r.replayed_records as f64,
                ),
                single(
                    "omni_loki_rerouted_total",
                    "Records rerouted around downed shards.",
                    Counter,
                    r.rerouted_records as f64,
                ),
                single(
                    "omni_loki_wal_records_total",
                    "Records appended to the WAL.",
                    Counter,
                    r.wal_records as f64,
                ),
            ]
        });
    }
    {
        // Compactor + tiered-storage telemetry: how the background job is
        // reshaping the store, and what the cold tier costs queries.
        let omni = omni.clone();
        registry.register_collector(move || {
            let c = omni.loki().compactor().stats();
            let store = omni.loki().chunk_store();
            vec![
                single(
                    "omni_compactor_runs_total",
                    "Completed compaction runs.",
                    Counter,
                    c.runs as f64,
                ),
                single(
                    "omni_compactor_chunks_merged_total",
                    "Source sealed chunks merged into compacted objects.",
                    Counter,
                    c.chunks_merged as f64,
                ),
                single(
                    "omni_compactor_objects_written_total",
                    "Compacted objects written to the cold tier.",
                    Counter,
                    c.objects_written as f64,
                ),
                single(
                    "omni_compactor_duplicates_dropped_total",
                    "Byte-identical replayed chunks deduplicated away.",
                    Counter,
                    c.duplicates_dropped as f64,
                ),
                single(
                    "omni_compactor_retention_deleted_total",
                    "Objects deleted by compactor-executed retention.",
                    Counter,
                    c.retention_deleted as f64,
                ),
                single(
                    "omni_compactor_hot_objects",
                    "Objects currently in the hot (sealed) store tier.",
                    Gauge,
                    store.objects().object_count() as f64,
                ),
                single(
                    "omni_compactor_cold_objects",
                    "Objects currently in the cold (compacted) tier.",
                    Gauge,
                    store.cold().object_count() as f64,
                ),
                single(
                    "omni_compactor_cold_bytes",
                    "Bytes currently stored in the cold (compacted) tier.",
                    Gauge,
                    store.cold().stored_bytes() as f64,
                ),
                single(
                    "omni_compactor_cold_transient_failures_total",
                    "Cold-tier GETs that failed transiently and were retried.",
                    Counter,
                    store.cold().transient_failures() as f64,
                ),
            ]
        });
    }
    {
        let omni = omni.clone();
        registry.register_collector(move || {
            let f = omni.loki().frontend().stats();
            vec![
                single(
                    "omni_frontend_splits_total",
                    "Sub-queries the query frontend planned.",
                    Counter,
                    f.splits_total as f64,
                ),
                single(
                    "omni_frontend_cache_hits_total",
                    "Query splits served from the results cache.",
                    Counter,
                    f.cache_hits as f64,
                ),
                single(
                    "omni_frontend_cache_misses_total",
                    "Query splits executed against the ingester shards.",
                    Counter,
                    f.cache_misses as f64,
                ),
                single(
                    "omni_frontend_rejected_total",
                    "Queries rejected by per-query limits.",
                    Counter,
                    f.rejected_total as f64,
                ),
                single(
                    "omni_frontend_cached_entries",
                    "Split results currently held in the cache.",
                    Gauge,
                    f.cached_entries as f64,
                ),
            ]
        });
    }
    {
        // Per-tenant admission ledger and fairness telemetry. Every
        // family carries the `tenant` label (omni-lint's tenant-label
        // rule enforces this for all omni_tenant_* metrics), which is
        // what lets one Grafana panel show who is being shed and why.
        let omni = omni.clone();
        registry.register_collector(move || {
            let mut offered = FamilySnapshot::new(
                "omni_tenant_ingest_offered_total",
                "Records offered for tenant admission, by tenant.",
                Counter,
            );
            let mut accepted = FamilySnapshot::new(
                "omni_tenant_ingest_accepted_total",
                "Records past tenant admission, by tenant.",
                Counter,
            );
            let mut rejected = FamilySnapshot::new(
                "omni_tenant_ingest_rejected_total",
                "Records shed by tenant admission control, by tenant.",
                Counter,
            );
            let mut q_offered = FamilySnapshot::new(
                "omni_tenant_queries_offered_total",
                "Queries offered for tenant admission, by tenant.",
                Counter,
            );
            let mut q_rejected = FamilySnapshot::new(
                "omni_tenant_queries_rejected_total",
                "Queries shed by tenant admission control, by tenant.",
                Counter,
            );
            let mut streams = FamilySnapshot::new(
                "omni_tenant_active_streams",
                "Active streams attributed to the tenant.",
                Gauge,
            );
            for s in omni.loki().tenant_snapshots() {
                let l = labels!("tenant" => s.tenant.as_str());
                offered.push(l.clone(), s.ingest_offered as f64);
                accepted.push(l.clone(), s.ingest_accepted as f64);
                rejected.push(l.clone(), s.ingest_rejected as f64);
                q_offered.push(l.clone(), s.queries_offered as f64);
                q_rejected.push(l.clone(), s.queries_rejected as f64);
                streams.push(l, s.active_streams as f64);
            }
            let mut waits = FamilySnapshot::new(
                "omni_tenant_query_wait_rounds",
                "Peak fair-scheduler queue wait (grant rounds), by tenant.",
                Gauge,
            );
            for (tenant, wait) in omni.loki().frontend().scheduler_stats().max_wait_rounds {
                waits.push(labels!("tenant" => tenant.as_str()), wait as f64);
            }
            vec![offered, accepted, rejected, q_offered, q_rejected, streams, waits]
        });
    }
    {
        let log = Arc::clone(log_bridge);
        let metric = Arc::clone(metric_bridge);
        registry.register_collector(move || {
            let mut fetch = FamilySnapshot::new(
                "omni_bridge_fetch_retries_total",
                "Fetch rounds deferred by a brownout, by bridge.",
                Counter,
            );
            let mut resub = FamilySnapshot::new(
                "omni_bridge_resubscribes_total",
                "Credential re-issues after an Unauthorized, by bridge.",
                Counter,
            );
            let mut ingest = FamilySnapshot::new(
                "omni_bridge_ingest_retries_total",
                "Transient ingest failures parked for retry, by bridge.",
                Counter,
            );
            let mut dead = FamilySnapshot::new(
                "omni_bridge_dead_letter_total",
                "Messages produced to the dead-letter topic, by bridge.",
                Counter,
            );
            let mut in_flight = FamilySnapshot::new(
                "omni_bridge_in_flight",
                "Records parked awaiting an ingest retry, by bridge.",
                Gauge,
            );
            let pairs = [("log", log.lock().resilience()), ("metric", metric.lock().resilience())];
            for (name, r) in pairs {
                let l = labels!("bridge" => name);
                fetch.push(l.clone(), r.fetch_retries as f64);
                resub.push(l.clone(), r.resubscribes as f64);
                ingest.push(l.clone(), r.ingest_retries as f64);
                dead.push(l.clone(), r.dead_lettered as f64);
                in_flight.push(l, r.in_flight as f64);
            }
            vec![fetch, resub, ingest, dead, in_flight]
        });
    }
    {
        let delivery = Arc::clone(delivery);
        registry.register_collector(move || {
            let d = delivery.lock().stats();
            vec![
                single(
                    "omni_delivery_enqueued_total",
                    "Notifications enqueued.",
                    Counter,
                    d.enqueued as f64,
                ),
                single(
                    "omni_delivery_attempts_total",
                    "Send attempts, retries included.",
                    Counter,
                    d.attempts as f64,
                ),
                single(
                    "omni_delivery_delivered_total",
                    "Notifications delivered.",
                    Counter,
                    d.delivered as f64,
                ),
                single(
                    "omni_delivery_retried_total",
                    "Failed attempts re-queued.",
                    Counter,
                    d.retried as f64,
                ),
                single(
                    "omni_delivery_failed_total",
                    "Notifications dead-lettered after exhausting retries.",
                    Counter,
                    d.permanently_failed as f64,
                ),
                single(
                    "omni_delivery_circuit_opens_total",
                    "Receiver circuit-breaker opens.",
                    Counter,
                    d.circuit_opens as f64,
                ),
                single(
                    "omni_delivery_circuit_closes_total",
                    "Successful half-open probes that closed a breaker.",
                    Counter,
                    d.circuit_closes as f64,
                ),
                single(
                    "omni_delivery_queue_depth",
                    "Notifications waiting (due or backing off).",
                    Gauge,
                    d.queue_depth as f64,
                ),
            ]
        });
    }
    {
        let chaos = Arc::clone(chaos);
        registry.register_collector(move || {
            let Some(s) = chaos.lock().as_ref().map(|c| c.stats()) else { return Vec::new() };
            vec![
                single(
                    "omni_chaos_actions_total",
                    "Scheduled chaos actions fired.",
                    Counter,
                    s.actions_fired as f64,
                ),
                single(
                    "omni_chaos_flaky_rolls_total",
                    "Flaky-receiver coin flips.",
                    Counter,
                    s.flaky_rolls as f64,
                ),
                single(
                    "omni_chaos_flaky_failures_total",
                    "Coin flips that failed a send.",
                    Counter,
                    s.flaky_failures as f64,
                ),
            ]
        });
    }
    {
        let sn = servicenow.clone();
        registry.register_collector(move || {
            vec![
                single(
                    "omni_servicenow_events_total",
                    "ServiceNow events received.",
                    Counter,
                    sn.events_received() as f64,
                ),
                single(
                    "omni_servicenow_incidents",
                    "ServiceNow incidents ever opened.",
                    Gauge,
                    sn.incidents().len() as f64,
                ),
            ]
        });
    }
}

/// Convert a Loki Ruler notification into an Alertmanager alert.
pub fn ruler_to_alert(n: &omni_loki::RuleNotification) -> Alert {
    Alert {
        labels: n.labels.clone(),
        annotations: n.annotations.clone(),
        status: match n.state {
            AlertState::Resolved => AlertStatus::Resolved,
            _ => AlertStatus::Firing,
        },
        starts_at: n.active_at,
    }
}

/// Convert a vmalert notification into an Alertmanager alert.
pub fn vmalert_to_alert(n: &omni_tsdb::VmAlertNotification) -> Alert {
    Alert {
        labels: n.labels.clone(),
        annotations: n.annotations.clone(),
        status: match n.state {
            VmAlertState::Resolved => AlertStatus::Resolved,
            _ => AlertStatus::Firing,
        },
        starts_at: n.active_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minute() -> i64 {
        60 * NANOS_PER_SEC
    }

    #[test]
    fn boot_fails_fast_on_invalid_extra_rule() {
        let mut config = StackConfig::default();
        config.extra_metric_rules.push(MetricRule {
            name: "TypoAlert".into(),
            // "temprature" is not an emittable metric — the catalog
            // cross-check must catch the typo at boot.
            expr: "max by (xname) (shasta_temprature_celsius) > 90".into(),
            for_ns: 60 * NANOS_PER_SEC,
            labels: omni_model::LabelSet::from_pairs([("severity", "critical")]),
            annotations: vec![],
        });
        let err = match MonitoringStack::try_new(config) {
            Err(e) => e,
            Ok(_) => panic!("typo'd rule must not boot"),
        };
        let StackError::Lint(findings) = &err else {
            panic!("expected a lint error, got: {err}");
        };
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "unknown-metric");
        assert_eq!(findings[0].file, "vmalert:TypoAlert");
        assert!(err.to_string().contains("shasta_temprature_celsius"), "{err}");
    }

    #[test]
    fn shipped_stack_config_boots_clean() {
        // The full boot-time lint surface — shipped rules, dashboards,
        // routes, bucket layouts — must stay clean.
        assert!(MonitoringStack::try_new(StackConfig::default()).is_ok());
    }

    #[test]
    fn quiet_stack_stays_quiet() {
        let mut stack = MonitoringStack::new(StackConfig::default());
        for _ in 0..5 {
            let notifs = stack.step(minute(), 5, 5);
            assert!(notifs.is_empty(), "healthy machine must not alert");
        }
        // But data flowed: logs and metrics are queryable.
        let (pushed, errors, metrics) = stack.bridge_stats();
        assert!(pushed > 0);
        assert_eq!(errors, 0);
        assert!(metrics > 0);
        let logs = stack.pane.logs(r#"{data_type="syslog"}"#, 0, stack.clock.now(), 1000).unwrap();
        assert!(!logs.is_empty());
    }

    #[test]
    fn leak_reaches_slack_and_servicenow() {
        let mut stack = MonitoringStack::new(StackConfig::default());
        stack.step(minute(), 0, 0);
        let chassis = stack.machine.topology().chassis()[3];
        stack.inject_leak(chassis, 'A', LeakZone::Front);
        // Run the pipeline long enough for the 1-minute `for:` hold and
        // the group_wait to elapse.
        for _ in 0..6 {
            stack.step(minute(), 0, 0);
        }
        assert!(!stack.slack.is_empty(), "slack should have the leak alert");
        let text = &stack.slack.messages()[0].text;
        assert!(text.contains("FIRING"), "{text}");
        assert!(text.contains("Leak") || text.contains("leak"), "{text}");
        // Critical severity routed to ServiceNow too -> incident open.
        assert!(!stack.servicenow.incidents().is_empty());
    }

    #[test]
    fn switch_offline_reaches_slack() {
        let mut stack = MonitoringStack::new(StackConfig::default());
        stack.step(minute(), 0, 0);
        let switch = stack.machine.topology().switches()[1];
        stack.take_switch_offline(switch, SwitchState::Unknown);
        for _ in 0..6 {
            stack.step(minute(), 0, 0);
        }
        let msgs = stack.slack.messages();
        assert!(
            msgs.iter().any(|m| m.text.contains("PerlmutterSwitchOffline")),
            "slack messages: {msgs:?}"
        );
        assert!(msgs.iter().any(|m| m.text.contains(&switch.to_string())));
    }

    #[test]
    fn batching_self_telemetry_populates() {
        // Small chunk target so seals happen within a few steps.
        let config = StackConfig {
            limits: Limits { chunk_target_bytes: 512, ..Default::default() },
            ..StackConfig::default()
        };
        let mut stack = MonitoringStack::new(config);
        for _ in 0..3 {
            stack.step(minute(), 200, 50);
        }
        let batch = stack.registry().histogram(
            "omni_ingest_batch_size",
            "Records per batched Loki push from the log bridge.",
            labels!(),
            INGEST_BATCH_BUCKETS,
        );
        assert!(batch.count() > 0, "log bridge pushed batches");
        assert!(batch.sum() > batch.count() as f64, "batches carry more than one record");
        let fill = stack.registry().histogram(
            "omni_chunk_fill_ratio",
            "Uncompressed size of sealed chunks relative to the chunk target.",
            labels!(),
            CHUNK_FILL_BUCKETS,
        );
        assert!(fill.count() > 0, "sealed chunks fed the fill-ratio histogram");
    }

    #[test]
    fn slow_queries_self_ingest_with_traces_and_slo() {
        // Threshold of one modeled nanosecond: every recorded query is
        // slow, so the introspection path is fully exercised.
        let config = StackConfig { slow_query_threshold_ns: 1, ..StackConfig::default() };
        let mut stack = MonitoringStack::new(config);
        for _ in 0..3 {
            stack.step(minute(), 50, 10);
        }
        // A pane log query goes through the frontend's recording path…
        let logs = stack.pane.logs(r#"{data_type="syslog"}"#, 0, stack.clock.now(), 1000).unwrap();
        assert!(!logs.is_empty());
        // …and the next step drains it into the introspection surfaces.
        stack.step(minute(), 0, 0);
        let now = stack.clock.now();
        let slowlog =
            stack.pane.logs(r#"{job="omni-self", component="slowlog"}"#, 0, now, 100).unwrap();
        assert!(!slowlog.is_empty(), "the slow query must self-ingest");
        // The line is JSON whose trace_id resolves to a retained span
        // tree with the scheduler wait / split breakdown.
        let parsed = omni_json::parse(&slowlog[0].entry.line).unwrap();
        assert_eq!(parsed.pointer("/tenant").and_then(omni_json::Json::as_str), Some("anonymous"));
        let trace_id = parsed
            .pointer("/trace_id")
            .and_then(omni_json::Json::as_str)
            .and_then(parse_trace_id)
            .expect("slow-query line carries a parseable trace id");
        let timeline = stack.traces().render_timeline(trace_id);
        assert!(!timeline.is_empty(), "trace retained");
        assert!(timeline.contains("query"), "{timeline}");
        assert!(timeline.contains("split_execute"), "{timeline}");
        // The query-latency SLO saw only bad events: its burn rate is
        // pinned at the objective's ceiling.
        let snap = stack
            .slos()
            .snapshot(now)
            .into_iter()
            .find(|s| s.name == "query-latency")
            .expect("query-latency SLO registered");
        assert!(snap.slow_total > 0);
        assert!(snap.fast_burn > 14.0, "all-bad events must torch the budget: {snap:?}");
        // The latency histogram carries the trace as an exemplar on the
        // scraped page.
        let page = SelfExporter::new(stack.registry().clone()).render();
        assert!(page.contains("# EXEMPLAR omni_query_latency_seconds_bucket"), "exemplar missing");
        assert!(page.contains(&format_trace_id(trace_id)), "exemplar links the same trace");
    }

    #[test]
    fn figure5_graph_reproduced_through_stack() {
        let mut stack = MonitoringStack::new(StackConfig::default());
        stack.step(3600 * NANOS_PER_SEC, 0, 0);
        let chassis = stack.machine.topology().chassis()[0];
        stack.inject_leak(chassis, 'A', LeakZone::Front);
        let event_time = stack.clock.now();
        stack.step(minute(), 0, 0);
        let matrix = stack
            .pane
            .log_metric_range(
                r#"sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (Severity, cluster, Context, MessageId)"#,
                0,
                stack.clock.now(),
                10 * minute(),
            )
            .unwrap();
        assert_eq!(matrix.len(), 1);
        let (labels, samples) = &matrix[0];
        assert_eq!(labels.get("Severity"), Some("Warning"));
        assert_eq!(labels.get("cluster"), Some("perlmutter"));
        // 0 before the event, 1 after (within the 60m window).
        assert!(
            samples.iter().any(|s| s.ts < event_time && s.value == 0.0)
                || samples.iter().all(|s| s.ts >= event_time || s.value == 0.0)
        );
        assert!(samples.iter().any(|s| s.value == 1.0));
    }
}

//! The fully-wired monitoring stack: every box of Figure 1 connected,
//! driven by one virtual clock. The case-study examples and the
//! integration tests run scenarios through this.

use crate::bridge::{LogBridge, MetricBridge};
use crate::omni::Omni;
use crate::pane::Pane;
use crate::remediation::RemediationEngine;
use omni_alertmanager::{Alert, Alertmanager, AlertStatus, Notification, Route, SlackSink};
use omni_exporters::{
    parse_exposition, ArubaExporter, BlackboxExporter, Exporter, GpfsExporter, KafkaExporter,
    NodeExporter,
};
use omni_logql::Matcher;
use omni_loki::{AlertState, AlertingRule, Limits, RuleGroup, Ruler};
use omni_model::{SimClock, NANOS_PER_SEC};
use omni_redfish::{HmsCollector, RedfishEvent};
use omni_servicenow::{IncidentRule, ServiceNow};
use omni_shasta::{
    ContainerLogGenerator, FabricManager, FabricManagerMonitor, GpfsCluster, GpfsMonitor,
    GpfsState, LeakZone, ShastaMachine, SwitchState, SyslogGenerator,
};
use omni_telemetry::TelemetryApi;
use omni_tsdb::{MetricRule, VmAgent, VmAlert, VmAlertState};
use omni_xname::{TopologySpec, XName};
use std::sync::Arc;

/// Stack construction parameters.
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// Machine layout.
    pub topology: TopologySpec,
    /// Loki ingester shards (the paper's cluster runs 8 workers).
    pub loki_shards: usize,
    /// Loki limits.
    pub limits: Limits,
    /// Telemetry API gateway count (the paper's cluster runs 4 VMs).
    pub gateways: usize,
    /// Bus partitions per topic.
    pub bus_partitions: usize,
    /// Deterministic seed.
    pub seed: u64,
    /// Cluster label value.
    pub cluster_name: String,
    /// Syslog lines generated per simulation step.
    pub syslog_per_step: usize,
    /// Container-log lines generated per simulation step.
    pub container_per_step: usize,
    /// Run the remediation playbooks automatically on firing alerts.
    pub auto_remediate: bool,
    /// Enable OMNI's Elasticsearch-style discovery tier.
    pub enable_discovery: bool,
}

impl Default for StackConfig {
    fn default() -> Self {
        Self {
            topology: TopologySpec::tiny(),
            loki_shards: 8,
            limits: Limits::default(),
            gateways: 4,
            bus_partitions: 4,
            seed: 42,
            cluster_name: "perlmutter".into(),
            syslog_per_step: 20,
            container_per_step: 10,
            auto_remediate: false,
            enable_discovery: true,
        }
    }
}

/// The assembled pipeline.
pub struct MonitoringStack {
    /// Shared virtual clock.
    pub clock: SimClock,
    /// The simulated machine.
    pub machine: Arc<ShastaMachine>,
    /// HMS collector (publishes onto the bus).
    pub collector: HmsCollector,
    /// The Telemetry API fronting the bus.
    pub api: TelemetryApi,
    /// The Slingshot fabric manager.
    pub fabric: FabricManager,
    /// The GPFS scratch filesystem (§V future work).
    pub gpfs: Arc<GpfsCluster>,
    /// The OMNI warehouse (Loki + TSDB).
    pub omni: Omni,
    /// The single pane of glass.
    pub pane: Pane,
    /// Slack webhook capture.
    pub slack: SlackSink,
    /// ServiceNow instance.
    pub servicenow: ServiceNow,
    fabric_monitor: FabricManagerMonitor,
    gpfs_monitor: GpfsMonitor,
    log_bridge: LogBridge,
    metric_bridge: MetricBridge,
    ruler: Ruler,
    vmalert: VmAlert,
    vmagent: VmAgent,
    alertmanager: Alertmanager,
    remediation: Option<RemediationEngine>,
    syslog_gen: SyslogGenerator,
    container_gen: ContainerLogGenerator,
    notifications_dispatched: u64,
}

impl MonitoringStack {
    /// Wire up the whole Figure 1 pipeline.
    pub fn new(config: StackConfig) -> Self {
        let clock = SimClock::starting_at(0);
        let machine =
            Arc::new(ShastaMachine::new(config.topology.clone(), clock.clone(), config.seed));
        let broker = omni_bus::Broker::new(clock.clone());
        let collector = HmsCollector::new(broker.clone(), config.bus_partitions);
        let api = TelemetryApi::new(broker.clone(), config.gateways);
        let fabric = FabricManager::new(machine.topology());
        let fabric_monitor = FabricManagerMonitor::new(fabric.clone());
        let gpfs = GpfsCluster::new("scratch", 8, 12, clock.clone(), config.seed ^ 0x6f5);
        let gpfs_monitor = GpfsMonitor::new(Arc::clone(&gpfs));
        let mut omni = Omni::new(config.loki_shards, config.limits.clone(), clock.clone());
        if config.enable_discovery {
            omni = omni.with_discovery();
        }
        let pane = Pane::new(omni.clone());

        // Bridges (the K3s pods).
        let token = api.issue_token("bridge-clients");
        let log_bridge =
            LogBridge::new(&api, &token, omni.clone(), &config.cluster_name).unwrap();
        let metric_bridge =
            MetricBridge::new(&api, &token, omni.tsdb().clone(), &config.cluster_name).unwrap();

        // The Ruler carries both paper case-study rules.
        let mut ruler = Ruler::new(omni.loki().clone());
        ruler
            .add_group(RuleGroup {
                name: "perlmutter-alerts".into(),
                interval_ns: 60 * NANOS_PER_SEC,
                rules: vec![
                    AlertingRule::paper_leak_rule(),
                    AlertingRule::paper_switch_rule(),
                    AlertingRule::gpfs_server_rule(),
                ],
            })
            .expect("paper rules must parse");

        // vmalert: thermal + leak-sensor metric rules.
        let mut vmalert = VmAlert::new(omni.tsdb().clone());
        vmalert
            .add_rule(MetricRule {
                name: "NodeTemperatureCritical".into(),
                expr: "max by (xname) (shasta_temperature_celsius) > 90".into(),
                for_ns: 60 * NANOS_PER_SEC,
                labels: omni_model::LabelSet::from_pairs([("severity", "critical")]),
                annotations: vec![("summary".into(), "node {{.xname}} above 90C".into())],
            })
            .unwrap();
        vmalert
            .add_rule(MetricRule {
                name: "GpfsLongWaiters".into(),
                expr: "max by (fs, server) (gpfs_longest_waiter_seconds) > 300".into(),
                for_ns: 60 * NANOS_PER_SEC,
                labels: omni_model::LabelSet::from_pairs([("severity", "critical")]),
                annotations: vec![(
                    "summary".into(),
                    "GPFS {{.fs}}/{{.server}} has waiters over 300s".into(),
                )],
            })
            .unwrap();
        vmalert
            .add_rule(MetricRule {
                name: "LeakSensorWet".into(),
                expr: "max by (xname) (shasta_leak_bool) > 0".into(),
                for_ns: 0,
                labels: omni_model::LabelSet::from_pairs([("severity", "warning")]),
                annotations: vec![("summary".into(), "leak sensor wet at {{.xname}}".into())],
            })
            .unwrap();

        // vmagent scraping the exporter fleet.
        let mut vmagent = VmAgent::new(omni.tsdb().clone());
        {
            let node_exp = NodeExporter::new(Arc::clone(&machine));
            vmagent.add_target(
                "node-exporter",
                &config.cluster_name,
                Box::new(move |_| parse_exposition(&node_exp.render()).map_err(|e| e.to_string())),
            );
            let kafka_exp = KafkaExporter::new(broker.clone());
            vmagent.add_target(
                "kafka-exporter",
                "sma-kafka",
                Box::new(move |_| parse_exposition(&kafka_exp.render()).map_err(|e| e.to_string())),
            );
            let blackbox = BlackboxExporter::new(
                vec!["https://telemetry-api".into(), "https://grafana".into()],
                clock.clone(),
            );
            vmagent.add_target(
                "blackbox-exporter",
                "probes",
                Box::new(move |_| parse_exposition(&blackbox.render()).map_err(|e| e.to_string())),
            );
            let aruba = ArubaExporter::new(vec!["mgmt-sw1".into(), "mgmt-sw2".into()], clock.clone());
            vmagent.add_target(
                "aruba-exporter",
                "mgmt",
                Box::new(move |_| parse_exposition(&aruba.render()).map_err(|e| e.to_string())),
            );
            let gpfs_exp = GpfsExporter::new(Arc::clone(&gpfs));
            vmagent.add_target(
                "gpfs-exporter",
                "scratch",
                Box::new(move |_| parse_exposition(&gpfs_exp.render()).map_err(|e| e.to_string())),
            );
        }

        // Alertmanager routing: critical alerts go to ServiceNow AND
        // Slack; everything else to Slack only.
        let mut root = Route::default_route("slack");
        root.group_by = vec!["alertname".into()];
        root.group_wait_ns = 10 * NANOS_PER_SEC;
        root.group_interval_ns = 60 * NANOS_PER_SEC;
        root.repeat_interval_ns = 4 * 3600 * NANOS_PER_SEC;
        let mut to_sn = Route::matching(
            "servicenow",
            vec![Matcher::eq("severity", "critical")],
        );
        to_sn.group_by = root.group_by.clone();
        to_sn.group_wait_ns = root.group_wait_ns;
        to_sn.group_interval_ns = root.group_interval_ns;
        to_sn.repeat_interval_ns = root.repeat_interval_ns;
        to_sn.continue_matching = true;
        let mut to_slack_all = Route::matching("slack", vec![]);
        to_slack_all.group_by = root.group_by.clone();
        to_slack_all.group_wait_ns = root.group_wait_ns;
        to_slack_all.group_interval_ns = root.group_interval_ns;
        to_slack_all.repeat_interval_ns = root.repeat_interval_ns;
        root.routes.push(to_sn);
        root.routes.push(to_slack_all);
        let alertmanager = Alertmanager::new(root);

        // ServiceNow: CMDB from the machine, incidents for critical alerts.
        let servicenow = ServiceNow::new();
        servicenow.with_cmdb(|cmdb| cmdb.load_topology(&config.cluster_name, machine.topology()));
        // Category-aware assignment: storage and fabric alerts route to
        // their teams; any other critical goes to operations.
        servicenow.add_incident_rule(IncidentRule {
            name: "storage-to-storage-team".into(),
            max_severity: 2,
            node_contains: None,
            resource: Some("storage".into()),
            assignment_group: "nersc-storage".into(),
        });
        servicenow.add_incident_rule(IncidentRule {
            name: "fabric-to-network-team".into(),
            max_severity: 2,
            node_contains: None,
            resource: Some("fabric".into()),
            assignment_group: "nersc-network".into(),
        });
        servicenow.add_incident_rule(IncidentRule {
            name: "critical-to-ops".into(),
            max_severity: 2,
            node_contains: None,
            resource: None,
            assignment_group: "nersc-ops".into(),
        });

        let remediation = config.auto_remediate.then(|| {
            RemediationEngine::with_default_playbooks(fabric.clone(), Arc::clone(&gpfs))
        });
        let syslog_gen =
            SyslogGenerator::new(machine.topology().nodes(), clock.clone(), config.seed ^ 0xa5);
        let container_gen = ContainerLogGenerator::k3s_services(config.seed ^ 0x5a);

        Self {
            clock,
            machine,
            collector,
            api,
            fabric,
            gpfs,
            omni,
            pane,
            slack: SlackSink::new("#perlmutter-alerts"),
            servicenow,
            fabric_monitor,
            gpfs_monitor,
            log_bridge,
            metric_bridge,
            ruler,
            vmalert,
            vmagent,
            alertmanager,
            remediation,
            syslog_gen,
            container_gen,
            notifications_dispatched: 0,
        }
    }

    /// Config-driven generation counts are stored in the generators; the
    /// per-step volumes come from the config at construction. Advance the
    /// simulation by `dt_ns`, running one full pipeline cycle; returns the
    /// Alertmanager notifications dispatched during this step.
    pub fn step(&mut self, dt_ns: i64, syslog_lines: usize, container_lines: usize) -> Vec<Notification> {
        let now = self.clock.advance(dt_ns);

        // 1. Sensors → HMS collector → bus telemetry topics.
        for reading in self.machine.sample_sensors() {
            let _ = self.collector.publish_reading(&reading);
        }
        // 2. Logs → bus.
        for (host, line) in self.syslog_gen.batch(syslog_lines) {
            let _ = self.collector.publish_log(omni_redfish::topics::SYSLOG, &host, line);
        }
        for (pod, line) in self.container_gen.batch(container_lines) {
            let _ = self.collector.publish_log(omni_redfish::topics::CONTAINER_LOGS, &pod, line);
        }
        // 3. Fabric monitor poll → event lines (Figure 7).
        for change in self.fabric_monitor.poll() {
            let _ = self.collector.publish_log(
                omni_redfish::topics::FABRIC_HEALTH,
                &change.xname.to_string(),
                change.to_event_line(),
            );
        }
        // 3b. GPFS monitor poll (the §V future-work path).
        for change in self.gpfs_monitor.poll() {
            let _ = self.collector.publish_log(
                omni_redfish::topics::GPFS_HEALTH,
                &change.server,
                change.to_event_line(),
            );
        }
        // 4. Bridges pump Telemetry-API subscriptions into the stores.
        self.log_bridge.pump();
        self.metric_bridge.pump();
        // 5. vmagent scrape.
        self.vmagent.scrape_once(now);
        // 6. Store maintenance: seal aged heads, then move sealed chunks
        // older than an hour to the disk tier ("chunks are first stored
        // in memory, and then moved to disk").
        self.omni.loki().tick();
        self.omni.loki().offload(3_600 * NANOS_PER_SEC);
        // 7. Rule evaluation → Alertmanager.
        for n in self.ruler.evaluate(now) {
            self.alertmanager.receive(ruler_to_alert(&n), now);
        }
        for n in self.vmalert.evaluate(now) {
            self.alertmanager.receive(vmalert_to_alert(&n), now);
        }
        // 8. Alertmanager flush → receivers.
        let notifications = self.alertmanager.tick(now);
        for n in &notifications {
            self.notifications_dispatched += 1;
            if let Some(engine) = &mut self.remediation {
                engine.handle(n, now);
            }
            match n.receiver.as_str() {
                "slack" => {
                    self.slack.deliver(n);
                }
                "servicenow" => {
                    self.servicenow.receive_notification(n, now);
                }
                _ => {}
            }
        }
        notifications
    }

    /// Inject the paper's case-study-A fault: a cabinet leak. The Redfish
    /// event is published through the HMS collector like the real firmware
    /// would.
    pub fn inject_leak(&self, chassis: XName, sensor: char, zone: LeakZone) -> RedfishEvent {
        let event = self.machine.inject_leak(chassis, sensor, zone);
        self.collector.publish_event(&event).expect("resource-event topic exists");
        event
    }

    /// Inject the case-study-B fault: a switch going offline/unknown.
    pub fn take_switch_offline(&self, switch: XName, state: SwitchState) {
        self.fabric.set_switch_state(switch, state);
    }

    /// Inject a GPFS fault: degrade or fail an NSD server.
    pub fn fail_gpfs_server(&self, server: &str, state: GpfsState) {
        self.gpfs.set_server_state(server, state);
    }

    /// Notifications dispatched so far.
    pub fn notifications_dispatched(&self) -> u64 {
        self.notifications_dispatched
    }

    /// Alertmanager `(received, notified, suppressed)`.
    pub fn alertmanager_stats(&self) -> (u64, u64, u64) {
        self.alertmanager.stats()
    }

    /// The alertmanager (for silences / inhibition configuration).
    pub fn alertmanager_mut(&mut self) -> &mut Alertmanager {
        &mut self.alertmanager
    }

    /// The remediation journal (empty unless `auto_remediate` is on).
    pub fn remediation_journal(&self) -> &[crate::remediation::RemediationEvent] {
        self.remediation.as_ref().map(|e| e.journal()).unwrap_or(&[])
    }

    /// Bridge statistics `(log records pushed, log errors, metric records)`.
    pub fn bridge_stats(&self) -> (u64, u64, u64) {
        let (pushed, errors) = self.log_bridge.stats();
        (pushed, errors, self.metric_bridge.stats())
    }
}

/// Convert a Loki Ruler notification into an Alertmanager alert.
pub fn ruler_to_alert(n: &omni_loki::RuleNotification) -> Alert {
    Alert {
        labels: n.labels.clone(),
        annotations: n.annotations.clone(),
        status: match n.state {
            AlertState::Resolved => AlertStatus::Resolved,
            _ => AlertStatus::Firing,
        },
        starts_at: n.active_at,
    }
}

/// Convert a vmalert notification into an Alertmanager alert.
pub fn vmalert_to_alert(n: &omni_tsdb::VmAlertNotification) -> Alert {
    Alert {
        labels: n.labels.clone(),
        annotations: n.annotations.clone(),
        status: match n.state {
            VmAlertState::Resolved => AlertStatus::Resolved,
            _ => AlertStatus::Firing,
        },
        starts_at: n.active_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minute() -> i64 {
        60 * NANOS_PER_SEC
    }

    #[test]
    fn quiet_stack_stays_quiet() {
        let mut stack = MonitoringStack::new(StackConfig::default());
        for _ in 0..5 {
            let notifs = stack.step(minute(), 5, 5);
            assert!(notifs.is_empty(), "healthy machine must not alert");
        }
        // But data flowed: logs and metrics are queryable.
        let (pushed, errors, metrics) = stack.bridge_stats();
        assert!(pushed > 0);
        assert_eq!(errors, 0);
        assert!(metrics > 0);
        let logs = stack
            .pane
            .logs(r#"{data_type="syslog"}"#, 0, stack.clock.now(), 1000)
            .unwrap();
        assert!(!logs.is_empty());
    }

    #[test]
    fn leak_reaches_slack_and_servicenow() {
        let mut stack = MonitoringStack::new(StackConfig::default());
        stack.step(minute(), 0, 0);
        let chassis = stack.machine.topology().chassis()[3];
        stack.inject_leak(chassis, 'A', LeakZone::Front);
        // Run the pipeline long enough for the 1-minute `for:` hold and
        // the group_wait to elapse.
        for _ in 0..6 {
            stack.step(minute(), 0, 0);
        }
        assert!(!stack.slack.is_empty(), "slack should have the leak alert");
        let text = &stack.slack.messages()[0].text;
        assert!(text.contains("FIRING"), "{text}");
        assert!(text.contains("Leak") || text.contains("leak"), "{text}");
        // Critical severity routed to ServiceNow too -> incident open.
        assert!(!stack.servicenow.incidents().is_empty());
    }

    #[test]
    fn switch_offline_reaches_slack() {
        let mut stack = MonitoringStack::new(StackConfig::default());
        stack.step(minute(), 0, 0);
        let switch = stack.machine.topology().switches()[1];
        stack.take_switch_offline(switch, SwitchState::Unknown);
        for _ in 0..6 {
            stack.step(minute(), 0, 0);
        }
        let msgs = stack.slack.messages();
        assert!(
            msgs.iter().any(|m| m.text.contains("PerlmutterSwitchOffline")),
            "slack messages: {msgs:?}"
        );
        assert!(msgs.iter().any(|m| m.text.contains(&switch.to_string())));
    }

    #[test]
    fn figure5_graph_reproduced_through_stack() {
        let mut stack = MonitoringStack::new(StackConfig::default());
        stack.step(3600 * NANOS_PER_SEC, 0, 0);
        let chassis = stack.machine.topology().chassis()[0];
        stack.inject_leak(chassis, 'A', LeakZone::Front);
        let event_time = stack.clock.now();
        stack.step(minute(), 0, 0);
        let matrix = stack
            .pane
            .log_metric_range(
                r#"sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (Severity, cluster, Context, MessageId)"#,
                0,
                stack.clock.now(),
                10 * minute(),
            )
            .unwrap();
        assert_eq!(matrix.len(), 1);
        let (labels, samples) = &matrix[0];
        assert_eq!(labels.get("Severity"), Some("Warning"));
        assert_eq!(labels.get("cluster"), Some("perlmutter"));
        // 0 before the event, 1 after (within the 60m window).
        assert!(samples.iter().any(|s| s.ts < event_time && s.value == 0.0)
            || samples.iter().all(|s| s.ts >= event_time || s.value == 0.0));
        assert!(samples.iter().any(|s| s.value == 1.0));
    }
}

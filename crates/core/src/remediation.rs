//! Automated remediation workflows.
//!
//! The paper's framework exists to drive "automated remediation
//! workflows" (§IV) — alerts should not just page a human but trigger
//! actions. This module implements the playbook layer: a notification
//! matching a playbook's trigger runs its action against the machine
//! (restart a switch, repair a filesystem server) or records an operator
//! task, and everything is journaled for audit.

use omni_alertmanager::Notification;
use omni_model::{LabelSet, Timestamp};
use omni_shasta::{FabricManager, GpfsCluster, SwitchState};
use omni_xname::XName;
use std::sync::Arc;

/// An action a playbook can take.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemediationAction {
    /// Ask the fabric manager to restart the switch named by the alert's
    /// `xname` label (models `fmctl restart`).
    RestartSwitch,
    /// Repair the GPFS server named by the alert's `server` label
    /// (models `mmchdisk start` + `mmstartup`).
    RepairGpfsServer,
    /// No automation possible (a leak needs a human with a wrench);
    /// journal an operator task with this instruction.
    OperatorTask(String),
}

/// One playbook: run `action` when an alert named `alertname` fires.
#[derive(Debug, Clone)]
pub struct Playbook {
    /// Matching alertname.
    pub alertname: String,
    /// The action.
    pub action: RemediationAction,
}

/// Journal entry for one executed remediation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemediationEvent {
    /// When it ran.
    pub ts: Timestamp,
    /// Alert that triggered it.
    pub alertname: String,
    /// Alert labels (for audit).
    pub labels: LabelSet,
    /// What was done, human-readable.
    pub outcome: String,
}

/// The playbook engine.
pub struct RemediationEngine {
    fabric: FabricManager,
    gpfs: Arc<GpfsCluster>,
    playbooks: Vec<Playbook>,
    journal: Vec<RemediationEvent>,
}

impl RemediationEngine {
    /// Engine bound to the machine's control surfaces.
    pub fn new(fabric: FabricManager, gpfs: Arc<GpfsCluster>) -> Self {
        Self { fabric, gpfs, playbooks: Vec::new(), journal: Vec::new() }
    }

    /// The default NERSC-style playbook set for the paper's case studies.
    pub fn with_default_playbooks(fabric: FabricManager, gpfs: Arc<GpfsCluster>) -> Self {
        let mut engine = Self::new(fabric, gpfs);
        engine.add_playbook(Playbook {
            alertname: "PerlmutterSwitchOffline".into(),
            action: RemediationAction::RestartSwitch,
        });
        engine.add_playbook(Playbook {
            alertname: "GpfsServerUnhealthy".into(),
            action: RemediationAction::RepairGpfsServer,
        });
        engine.add_playbook(Playbook {
            alertname: "PerlmutterCabinetLeak".into(),
            action: RemediationAction::OperatorTask(
                "Dispatch facilities to inspect the cabinet cooling loop".into(),
            ),
        });
        engine
    }

    /// Register a playbook.
    pub fn add_playbook(&mut self, playbook: Playbook) {
        self.playbooks.push(playbook);
    }

    /// Handle one Alertmanager notification: run the matching playbook
    /// for each firing alert. Returns how many actions ran.
    pub fn handle(&mut self, notification: &Notification, now: Timestamp) -> usize {
        let mut ran = 0;
        for alert in &notification.alerts {
            if alert.status != omni_alertmanager::AlertStatus::Firing {
                continue;
            }
            let name = alert.name().to_string();
            let Some(playbook) = self.playbooks.iter().find(|p| p.alertname == name) else {
                continue;
            };
            let outcome = match &playbook.action {
                RemediationAction::RestartSwitch => {
                    match alert.labels.get("xname").and_then(|x| x.parse::<XName>().ok()) {
                        Some(xname) => {
                            self.fabric.set_switch_state(xname, SwitchState::Online);
                            format!("restarted switch {xname}")
                        }
                        None => "skipped: alert carried no parsable xname".to_string(),
                    }
                }
                RemediationAction::RepairGpfsServer => match alert.labels.get("server") {
                    Some(server) => {
                        self.gpfs.repair_server(server);
                        format!("repaired GPFS server {server}")
                    }
                    None => "skipped: alert carried no server label".to_string(),
                },
                RemediationAction::OperatorTask(instruction) => {
                    format!("operator task filed: {instruction}")
                }
            };
            self.journal.push(RemediationEvent {
                ts: now,
                alertname: name,
                labels: alert.labels.clone(),
                outcome,
            });
            ran += 1;
        }
        ran
    }

    /// The audit journal.
    pub fn journal(&self) -> &[RemediationEvent] {
        &self.journal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_alertmanager::{Alert, AlertStatus};
    use omni_model::labels;
    use omni_model::SimClock;
    use omni_xname::{MachineTopology, TopologySpec};

    fn engine() -> (MachineTopology, FabricManager, Arc<GpfsCluster>, RemediationEngine) {
        let topo = MachineTopology::new(TopologySpec::tiny());
        let fabric = FabricManager::new(&topo);
        let gpfs = GpfsCluster::new("scratch", 2, 4, SimClock::new(), 1);
        let engine = RemediationEngine::with_default_playbooks(fabric.clone(), Arc::clone(&gpfs));
        (topo, fabric, gpfs, engine)
    }

    fn notification(alerts: Vec<Alert>) -> Notification {
        Notification { receiver: "remediation".into(), group_labels: LabelSet::new(), alerts }
    }

    #[test]
    fn switch_playbook_restarts_switch() {
        let (topo, fabric, _, mut engine) = engine();
        let victim = topo.switches()[1];
        fabric.set_switch_state(victim, SwitchState::Unknown);
        let n = notification(vec![Alert {
            labels: labels!(
                "alertname" => "PerlmutterSwitchOffline",
                "xname" => victim.to_string()
            ),
            annotations: vec![],
            status: AlertStatus::Firing,
            starts_at: 0,
        }]);
        assert_eq!(engine.handle(&n, 5), 1);
        assert_eq!(fabric.switch_state(&victim), Some(SwitchState::Online));
        assert_eq!(engine.journal().len(), 1);
        assert!(engine.journal()[0].outcome.contains("restarted switch"));
    }

    #[test]
    fn gpfs_playbook_repairs_server() {
        let (_, _, gpfs, mut engine) = engine();
        gpfs.set_server_state("nsd01", omni_shasta::GpfsState::Failed);
        let n = notification(vec![Alert {
            labels: labels!("alertname" => "GpfsServerUnhealthy", "server" => "nsd01"),
            annotations: vec![],
            status: AlertStatus::Firing,
            starts_at: 0,
        }]);
        engine.handle(&n, 5);
        let healthy = gpfs.sample().into_iter().find(|s| s.server == "nsd01").unwrap();
        assert_eq!(healthy.state, omni_shasta::GpfsState::Healthy);
    }

    #[test]
    fn leak_playbook_files_operator_task() {
        let (_, _, _, mut engine) = engine();
        let n = notification(vec![Alert {
            labels: labels!("alertname" => "PerlmutterCabinetLeak", "Context" => "x1203c1b0"),
            annotations: vec![],
            status: AlertStatus::Firing,
            starts_at: 0,
        }]);
        engine.handle(&n, 5);
        assert!(engine.journal()[0].outcome.contains("operator task filed"));
    }

    #[test]
    fn resolved_alerts_and_unknown_names_skipped() {
        let (_, _, _, mut engine) = engine();
        let n = notification(vec![
            Alert {
                labels: labels!("alertname" => "PerlmutterSwitchOffline", "xname" => "x1000c0r0b0"),
                annotations: vec![],
                status: AlertStatus::Resolved,
                starts_at: 0,
            },
            Alert {
                labels: labels!("alertname" => "SomethingUnplaybooked"),
                annotations: vec![],
                status: AlertStatus::Firing,
                starts_at: 0,
            },
        ]);
        assert_eq!(engine.handle(&n, 5), 0);
        assert!(engine.journal().is_empty());
    }

    #[test]
    fn malformed_labels_are_journaled_not_fatal() {
        let (_, _, _, mut engine) = engine();
        let n = notification(vec![Alert {
            labels: labels!("alertname" => "PerlmutterSwitchOffline", "xname" => "not-an-xname"),
            annotations: vec![],
            status: AlertStatus::Firing,
            starts_at: 0,
        }]);
        assert_eq!(engine.handle(&n, 5), 1);
        assert!(engine.journal()[0].outcome.contains("skipped"));
    }
}

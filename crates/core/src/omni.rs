//! OMNI: "a data warehouse to collect, manage and analyze data related to
//! monitoring of extreme scale computing systems ... up to two years of
//! operational data is immediately available and more can be restored."
//!
//! The facade owns both stores (logs in Loki, metrics in the TSDB),
//! meters ingest rate (the 400k msg/s capability claim, experiment C1),
//! and implements the archive/restore cycle behind the two-year hot
//! window (experiment C6).

use omni_baseline::{Document, FullTextStore};
use omni_loki::{IngestError, Limits, LokiCluster};
use omni_model::{LabelSet, LogRecord, SimClock, Timestamp};
use omni_tsdb::{Tsdb, TsdbConfig};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cold storage: archived log records, restorable on demand. Stands in
/// for the tape/object tier behind OMNI's two-year hot window.
#[derive(Default)]
pub struct ArchiveStore {
    batches: Mutex<Vec<(Timestamp, Vec<LogRecord>)>>,
}

impl ArchiveStore {
    /// Empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a batch archived at `archived_at`.
    pub fn store(&self, archived_at: Timestamp, records: Vec<LogRecord>) {
        self.batches.lock().push((archived_at, records));
    }

    /// Restore every archived record overlapping `(start, end]`.
    pub fn restore(&self, start: Timestamp, end: Timestamp) -> Vec<LogRecord> {
        self.batches
            .lock()
            .iter()
            .flat_map(|(_, records)| records.iter())
            .filter(|r| r.entry.ts > start && r.entry.ts <= end)
            .cloned()
            .collect()
    }

    /// Number of archived batches.
    pub fn batch_count(&self) -> usize {
        self.batches.lock().len()
    }

    /// Total archived records.
    pub fn record_count(&self) -> usize {
        self.batches.lock().iter().map(|(_, r)| r.len()).sum()
    }
}

/// The warehouse.
///
/// OMNI "is backed by a scalable and parallel time-series database,
/// Elasticsearch and VictoriaMetrics" — logs live in Loki, metrics in the
/// TSDB, and an optional Elasticsearch-style full-text tier serves
/// Kibana-style term discovery over the same log traffic.
#[derive(Clone)]
pub struct Omni {
    loki: LokiCluster,
    tsdb: Tsdb,
    clock: SimClock,
    archive: Arc<ArchiveStore>,
    discovery: Option<Arc<Mutex<FullTextStore>>>,
    messages_in: Arc<AtomicU64>,
    bytes_in: Arc<AtomicU64>,
}

impl Omni {
    /// Build a warehouse: `shards` Loki ingesters (the paper's cluster has
    /// 8 workers), default TSDB config, two-year retention.
    pub fn new(shards: usize, limits: Limits, clock: SimClock) -> Self {
        Self {
            loki: LokiCluster::new(shards, limits, clock.clone()),
            tsdb: Tsdb::new(TsdbConfig::default()),
            clock: clock.clone(),
            archive: Arc::new(ArchiveStore::new()),
            discovery: None,
            messages_in: Arc::new(AtomicU64::new(0)),
            bytes_in: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Enable the Elasticsearch-style discovery tier: every metered log
    /// line is additionally tokenized into a full-text index so operators
    /// can run Kibana-style term searches.
    pub fn with_discovery(mut self) -> Self {
        self.discovery = Some(Arc::new(Mutex::new(FullTextStore::new())));
        self
    }

    /// The log store.
    pub fn loki(&self) -> &LokiCluster {
        &self.loki
    }

    /// The metric store.
    pub fn tsdb(&self) -> &Tsdb {
        &self.tsdb
    }

    /// The warehouse clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The cold tier.
    pub fn archive(&self) -> &ArchiveStore {
        &self.archive
    }

    /// Metered log ingest (counts toward the C1 throughput number).
    pub fn ingest_log(
        &self,
        labels: LabelSet,
        ts: Timestamp,
        line: impl Into<String>,
    ) -> Result<(), IngestError> {
        let line = line.into();
        self.messages_in.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(line.len() as u64, Ordering::Relaxed);
        if let Some(discovery) = &self.discovery {
            discovery.lock().ingest(labels.clone(), ts, line.clone());
        }
        self.loki.push(labels, ts, line)
    }

    /// Metered record ingest (the bridge clients' path).
    pub fn ingest_record(&self, record: LogRecord) -> Result<(), IngestError> {
        self.messages_in.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(record.entry.line.len() as u64, Ordering::Relaxed);
        if let Some(discovery) = &self.discovery {
            discovery.lock().ingest(
                record.labels.clone(),
                record.entry.ts,
                record.entry.line.clone(),
            );
        }
        self.loki.push_record(record)
    }

    /// Metered batch ingest: one metering pass, one batched Loki push.
    /// Returns per-record outcomes in input order, so callers keep their
    /// per-record retry/dead-letter handling.
    pub fn ingest_batch(&self, records: Vec<LogRecord>) -> Vec<Result<(), IngestError>> {
        self.messages_in.fetch_add(records.len() as u64, Ordering::Relaxed);
        let bytes: u64 = records.iter().map(|r| r.entry.line.len() as u64).sum();
        self.bytes_in.fetch_add(bytes, Ordering::Relaxed);
        if let Some(discovery) = &self.discovery {
            let mut store = discovery.lock();
            for record in &records {
                store.ingest(record.labels.clone(), record.entry.ts, record.entry.line.clone());
            }
        }
        self.loki.push_record_batch(records)
    }

    /// Kibana-style term discovery over `(start, end]`. Returns matching
    /// documents, or an empty vec when the discovery tier is disabled.
    pub fn discover(&self, term: &str, start: Timestamp, end: Timestamp) -> Vec<Document> {
        match &self.discovery {
            Some(store) => {
                store.lock().search_term_in_range(term, start, end).into_iter().cloned().collect()
            }
            None => Vec::new(),
        }
    }

    /// `(documents, distinct terms, index bytes)` of the discovery tier.
    pub fn discovery_stats(&self) -> (usize, usize, usize) {
        match &self.discovery {
            Some(store) => {
                let s = store.lock();
                (s.len(), s.term_count(), s.index_bytes())
            }
            None => (0, 0, 0),
        }
    }

    /// Metered metric ingest.
    pub fn ingest_metric(&self, name: &str, labels: LabelSet, ts: Timestamp, value: f64) {
        self.messages_in.fetch_add(1, Ordering::Relaxed);
        self.tsdb.ingest_sample(name, labels, ts, value);
    }

    /// `(messages, bytes)` ingested so far.
    pub fn ingest_totals(&self) -> (u64, u64) {
        (self.messages_in.load(Ordering::Relaxed), self.bytes_in.load(Ordering::Relaxed))
    }

    /// Archive log records in `(start, end]` matching `query` to the cold
    /// tier, then drop anything beyond Loki's retention horizon. Returns
    /// how many records were archived.
    pub fn archive_window(
        &self,
        query: &str,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<usize, omni_loki::QueryError> {
        // Forward direction: the archive preserves oldest-first order so
        // a later restore can re-push records without tripping each
        // stream's ordering enforcement.
        let records = self.loki.query_logs_directed(
            query,
            start,
            end,
            usize::MAX,
            omni_loki::Direction::Forward,
        )?;
        let n = records.len();
        if n > 0 {
            self.archive.store(self.clock.now(), records);
        }
        self.loki.enforce_retention();
        Ok(n)
    }

    /// Restore archived records overlapping `(start, end]` back into the
    /// hot store ("more can be restored"). Returns records restored.
    pub fn restore_window(&self, start: Timestamp, end: Timestamp) -> usize {
        let records = self.archive.restore(start, end);
        let n = records.len();
        for r in records {
            // Restored data is historical; bypass ordering enforcement by
            // re-labelling it as restored so it forms fresh streams.
            let mut labels = r.labels.clone();
            labels.insert("restored", "true");
            let _ = self.loki.push(labels, r.entry.ts, r.entry.line);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::{labels, NANOS_PER_SEC};

    fn omni() -> Omni {
        let day = 86_400 * NANOS_PER_SEC;
        let limits = Limits { retention_ns: 730 * day, ..Default::default() };
        Omni::new(2, limits, SimClock::starting_at(0))
    }

    #[test]
    fn metered_ingest() {
        let o = omni();
        o.ingest_log(labels!("a" => "1"), 1, "0123456789").unwrap();
        o.ingest_metric("m", labels!("a" => "1"), 1, 5.0);
        let (msgs, bytes) = o.ingest_totals();
        assert_eq!(msgs, 2);
        assert_eq!(bytes, 10);
    }

    #[test]
    fn batch_ingest_meters_and_stores() {
        let o = omni().with_discovery();
        let records: Vec<LogRecord> =
            (0..10).map(|i| LogRecord::new(labels!("app" => "b"), i, "0123456789")).collect();
        let results = o.ingest_batch(records);
        assert!(results.iter().all(|r| r.is_ok()));
        let (msgs, bytes) = o.ingest_totals();
        assert_eq!(msgs, 10);
        assert_eq!(bytes, 100);
        assert_eq!(o.loki().query_logs(r#"{app="b"}"#, -1, 100, usize::MAX).unwrap().len(), 10);
        let (docs, _, _) = o.discovery_stats();
        assert_eq!(docs, 10, "discovery tier sees every batched record");
    }

    #[test]
    fn two_year_retention_then_restore() {
        let day = 86_400 * NANOS_PER_SEC;
        let o = omni();
        // Write a multi-record stream on day 1: the restore path pushes
        // sequentially, so the archive must hold records oldest-first or
        // every record after the newest would bounce off ordering
        // enforcement.
        for i in 0..5 {
            o.ingest_log(labels!("app" => "old"), day + i, format!("ancient event {i}")).unwrap();
        }
        o.loki().flush();
        // Archive it, then advance past two years and expire.
        let archived = o.archive_window(r#"{app="old"}"#, 0, 2 * day).unwrap();
        assert_eq!(archived, 5);
        o.clock().set(800 * day);
        o.loki().enforce_retention();
        assert!(o.loki().query_logs(r#"{app="old"}"#, 0, 2 * day, 10).unwrap().is_empty());
        // Restore from the archive: every record comes back, not just the
        // first one the per-stream ordering check happens to accept.
        let restored = o.restore_window(0, 2 * day);
        assert_eq!(restored, 5);
        let back = o.loki().query_logs(r#"{app="old", restored="true"}"#, 0, 2 * day, 10).unwrap();
        assert_eq!(back.len(), 5, "all restored records must be queryable");
        assert_eq!(back[0].entry.line, "ancient event 4", "backward query: newest first");
    }

    #[test]
    fn discovery_tier_serves_term_search() {
        let day = 86_400 * NANOS_PER_SEC;
        let limits = Limits { retention_ns: 730 * day, ..Default::default() };
        let o = Omni::new(2, limits, SimClock::starting_at(0)).with_discovery();
        o.ingest_log(labels!("host" => "x1"), 10, "kernel panic on boot").unwrap();
        o.ingest_log(labels!("host" => "x2"), 20, "all quiet").unwrap();
        let hits = o.discover("panic", 0, 100);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].labels.get("host"), Some("x1"));
        assert!(o.discover("panic", 15, 100).is_empty()); // range filter
        let (docs, terms, bytes) = o.discovery_stats();
        assert_eq!(docs, 2);
        assert!(terms >= 6);
        assert!(bytes > 0);
        // Disabled tier answers empty.
        let plain = Omni::new(1, Limits::default(), SimClock::starting_at(0));
        plain.ingest_log(labels!("a" => "1"), 1, "panic").unwrap();
        assert!(plain.discover("panic", 0, 10).is_empty());
    }

    #[test]
    fn archive_is_cumulative() {
        let o = omni();
        o.ingest_log(labels!("app" => "x"), 10, "one").unwrap();
        o.ingest_log(labels!("app" => "x"), 20, "two").unwrap();
        o.archive_window(r#"{app="x"}"#, 0, 15).unwrap();
        o.archive_window(r#"{app="x"}"#, 15, 30).unwrap();
        assert_eq!(o.archive().batch_count(), 2);
        assert_eq!(o.archive().record_count(), 2);
        assert_eq!(o.archive().restore(0, 100).len(), 2);
    }
}

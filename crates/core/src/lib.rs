//! The paper's primary contribution: the integrated log aggregation,
//! monitoring and alerting framework (Figure 1).
//!
//! ```text
//! Shasta machine ─ Redfish/HMS ─→ bus (Kafka) ─→ Telemetry API
//!      │                                             │
//!      └─ exporters ─→ vmagent ─→ tsdb (metrics)     └─ bridges ─→ loki (logs)
//!                          │                                │
//!                       vmalert                           Ruler
//!                          └────────→ Alertmanager ←───────┘
//!                                      │        │
//!                                    Slack   ServiceNow (events→alerts→incidents)
//! ```
//!
//! * [`bridge`] — the "K3s python pods" converting Telemetry-API payloads
//!   into Loki pushes and TSDB samples (the Figure 2 → Figure 3
//!   transformation lives here);
//! * [`chaos`] — the deterministic fault injector: scripted ingester
//!   crashes, bus brownouts, credential drops and flaky receivers, all on
//!   the virtual clock so recovery tests replay byte-identically;
//! * [`omni`] — the OMNI warehouse facade: both stores, ingest metering,
//!   two-year retention with archive/restore;
//! * [`pane`] — the "single pane of glass": one query surface over logs
//!   and metrics, with a dashboard renderer;
//! * [`stack`] — [`stack::MonitoringStack`], the fully-wired pipeline the
//!   case-study examples and integration tests drive.

pub mod bridge;
pub mod chaos;
pub mod omni;
pub mod pane;
pub mod remediation;
pub mod stack;

pub use bridge::{redfish_to_loki, BridgeResilience, LogBridge, MetricBridge, DEAD_LETTER_TOPIC};
pub use chaos::{ChaosAction, ChaosEngine, ChaosFault, ChaosStats};
pub use omni::{ArchiveStore, Omni};
pub use pane::{Dashboard, Pane, PaneQuery, Panel, ResilienceReport};
pub use remediation::{Playbook, RemediationAction, RemediationEngine, RemediationEvent};
pub use stack::{MonitoringStack, StackConfig, StackError};

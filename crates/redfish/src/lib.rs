//! Redfish events and telemetry for the Shasta simulator.
//!
//! "Redfish (RESTful interface for the infrastructure management) endpoint
//! on each controller push metrics and events (e.g. power down) to an HMS
//! (hardware management service) collector" — §IV of the paper. This crate
//! provides:
//!
//! * [`RedfishEvent`] — the event model, serializing to/from the exact
//!   nested JSON shape the Telemetry API publishes (Figure 2);
//! * [`registry`] — the `CrayAlerts.1.0.*` message registry with severity
//!   and message templates (leak detection among them);
//! * [`SensorReading`] — numeric telemetry (temperature, power, fan, leak
//!   sensor state, humidity);
//! * [`HmsCollector`] — the collector pushing both onto bus topics, keyed
//!   by xname so per-component ordering survives partitioning.

pub mod collector;
pub mod event;
pub mod registry;
pub mod sensor;

pub use collector::{topics, HmsCollector};
pub use event::RedfishEvent;
pub use registry::{registry_entry, MessageRegistryEntry};
pub use sensor::{SensorKind, SensorReading};

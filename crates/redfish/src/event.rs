//! The Redfish event model and its Telemetry-API JSON wire shape.

use crate::registry::registry_entry;
use omni_json::{jsonv, Json};
use omni_model::{format_iso8601, parse_iso8601, Severity, Timestamp};
use omni_xname::XName;
use std::fmt;

/// A Redfish event as seen by the monitoring pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct RedfishEvent {
    /// Where the event happened (the `Context` field, an xname).
    pub context: XName,
    /// Event time (nanoseconds; serialized as ISO 8601).
    pub timestamp: Timestamp,
    /// Severity as reported by the controller.
    pub severity: Severity,
    /// Rendered human-readable message.
    pub message: String,
    /// Registry id, e.g. `CrayAlerts.1.0.CabinetLeakDetected`.
    pub message_id: String,
    /// Raw message args. The Shasta firmware joins them with `", "` into a
    /// single element, a quirk Figure 2 shows (`"MessageArgs": ["A, Front"]`)
    /// and we reproduce.
    pub message_args: Vec<String>,
    /// Redfish resource link (`OriginOfCondition/@odata.id`).
    pub origin_of_condition: String,
}

/// Error when decoding a Telemetry-API payload into events.
#[derive(Debug, Clone, PartialEq)]
pub struct EventDecodeError(pub String);

impl fmt::Display for EventDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode redfish event: {}", self.0)
    }
}

impl std::error::Error for EventDecodeError {}

impl RedfishEvent {
    /// Build an event from a registry entry, rendering its message.
    pub fn from_registry(
        context: XName,
        timestamp: Timestamp,
        message_id: &str,
        args: &[&str],
        origin: &str,
    ) -> Self {
        let entry = registry_entry(message_id)
            .unwrap_or_else(|| panic!("unknown registry id {message_id}"));
        Self {
            context,
            timestamp,
            severity: entry.severity,
            message: entry.render(args),
            message_id: message_id.to_string(),
            // Firmware quirk: args arrive comma-joined as one element.
            message_args: vec![args.join(", ")],
            origin_of_condition: origin.to_string(),
        }
    }

    /// The leak event of Figures 2–6, reconstructed exactly.
    pub fn paper_leak_event() -> Self {
        Self::from_registry(
            "x1203c1b0".parse().unwrap(),
            parse_iso8601("2022-03-03T01:47:57+00:00").unwrap(),
            "CrayAlerts.1.0.CabinetLeakDetected",
            &["A", "Front"],
            "/redfish/v1/Chassis/Enclosure",
        )
    }

    /// Serialize to the nested Telemetry-API shape of Figure 2:
    ///
    /// ```json
    /// {"metrics":{"messages":[{"Context":...,"Events":[{...}]}]}}
    /// ```
    pub fn to_telemetry_json(&self) -> Json {
        let ts = format_iso8601_with_offset(self.timestamp);
        jsonv!({
            "metrics": {
                "messages": [
                    {
                        "Context": (self.context.to_string()),
                        "Events": [
                            {
                                "EventTimestamp": (ts),
                                "Severity": (self.severity.as_str()),
                                "Message": (self.message.clone()),
                                "MessageId": (self.message_id.clone()),
                                "MessageArgs": (self.message_args.clone()),
                                "OriginOfCondition": {
                                    "@odata.id": (self.origin_of_condition.clone())
                                },
                            }
                        ],
                    }
                ],
            },
        })
    }

    /// Decode every event in a Telemetry-API payload (one payload can carry
    /// several messages, each with several events).
    pub fn from_telemetry_json(v: &Json) -> Result<Vec<RedfishEvent>, EventDecodeError> {
        let messages = v
            .pointer("/metrics/messages")
            .and_then(Json::as_array)
            .ok_or_else(|| EventDecodeError("missing metrics.messages".into()))?;
        let mut out = Vec::new();
        for msg in messages {
            let context: XName = msg
                .get("Context")
                .and_then(Json::as_str)
                .ok_or_else(|| EventDecodeError("missing Context".into()))?
                .parse()
                .map_err(|e| EventDecodeError(format!("bad Context: {e}")))?;
            let events = msg
                .get("Events")
                .and_then(Json::as_array)
                .ok_or_else(|| EventDecodeError("missing Events".into()))?;
            for ev in events {
                let ts_str = ev
                    .get("EventTimestamp")
                    .and_then(Json::as_str)
                    .ok_or_else(|| EventDecodeError("missing EventTimestamp".into()))?;
                let timestamp = parse_iso8601(ts_str)
                    .map_err(|e| EventDecodeError(format!("bad EventTimestamp: {e}")))?;
                let severity: Severity = ev
                    .get("Severity")
                    .and_then(Json::as_str)
                    .unwrap_or("Info")
                    .parse()
                    .map_err(|_| EventDecodeError("bad Severity".into()))?;
                let message_args = ev
                    .get("MessageArgs")
                    .and_then(Json::as_array)
                    .map(|a| {
                        a.iter().filter_map(Json::as_str).map(str::to_string).collect::<Vec<_>>()
                    })
                    .unwrap_or_default();
                out.push(RedfishEvent {
                    context,
                    timestamp,
                    severity,
                    message: ev
                        .get("Message")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    message_id: ev
                        .get("MessageId")
                        .and_then(Json::as_str)
                        .ok_or_else(|| EventDecodeError("missing MessageId".into()))?
                        .to_string(),
                    message_args,
                    origin_of_condition: ev
                        .pointer("/OriginOfCondition/@odata.id")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                });
            }
        }
        Ok(out)
    }

    /// Registry short name, e.g. `CabinetLeakDetected`.
    pub fn short_name(&self) -> &str {
        self.message_id.rsplit('.').next().unwrap_or(&self.message_id)
    }
}

/// Format like the paper's `EventTimestamp`: `2022-03-03T01:47:57+00:00`
/// (explicit `+00:00` offset instead of `Z`).
fn format_iso8601_with_offset(ts: Timestamp) -> String {
    let z = format_iso8601(ts);
    z.strip_suffix('Z').map(|s| format!("{s}+00:00")).unwrap_or(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_event_serializes_to_figure2_shape() {
        let ev = RedfishEvent::paper_leak_event();
        let v = ev.to_telemetry_json();
        assert_eq!(
            v.pointer("/metrics/messages/0/Context").and_then(Json::as_str),
            Some("x1203c1b0")
        );
        let e0 = v.pointer("/metrics/messages/0/Events/0").unwrap();
        assert_eq!(
            e0.get("EventTimestamp").and_then(Json::as_str),
            Some("2022-03-03T01:47:57+00:00")
        );
        assert_eq!(e0.get("Severity").and_then(Json::as_str), Some("Warning"));
        assert_eq!(
            e0.get("Message").and_then(Json::as_str),
            Some("Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak.")
        );
        assert_eq!(
            e0.get("MessageId").and_then(Json::as_str),
            Some("CrayAlerts.1.0.CabinetLeakDetected")
        );
        assert_eq!(e0.pointer("/MessageArgs/0").and_then(Json::as_str), Some("A, Front"));
        assert_eq!(
            e0.pointer("/OriginOfCondition/@odata.id").and_then(Json::as_str),
            Some("/redfish/v1/Chassis/Enclosure")
        );
    }

    #[test]
    fn json_roundtrip() {
        let ev = RedfishEvent::paper_leak_event();
        let v = ev.to_telemetry_json();
        let back = RedfishEvent::from_telemetry_json(&v).unwrap();
        assert_eq!(back, vec![ev]);
    }

    #[test]
    fn roundtrip_via_text() {
        let ev = RedfishEvent::paper_leak_event();
        let text = ev.to_telemetry_json().dump();
        let parsed = omni_json::parse(&text).unwrap();
        let back = RedfishEvent::from_telemetry_json(&parsed).unwrap();
        assert_eq!(back[0], ev);
    }

    #[test]
    fn decode_rejects_malformed() {
        for t in [
            r#"{}"#,
            r#"{"metrics":{}}"#,
            r#"{"metrics":{"messages":[{"Events":[]}]}}"#,
            r#"{"metrics":{"messages":[{"Context":"notanxname","Events":[]}]}}"#,
        ] {
            let v = omni_json::parse(t).unwrap();
            assert!(RedfishEvent::from_telemetry_json(&v).is_err(), "should reject {t}");
        }
    }

    #[test]
    fn decode_multiple_events_in_one_payload() {
        let ev = RedfishEvent::paper_leak_event();
        let mut v = ev.to_telemetry_json();
        // Duplicate the event inside the same message.
        let events =
            v.pointer("/metrics/messages/0/Events").and_then(Json::as_array).unwrap().to_vec();
        let doubled = Json::Array([events.clone(), events].concat());
        let msgs = v.pointer("/metrics/messages").unwrap().clone();
        if let Json::Array(mut m) = msgs {
            m[0].set("Events", doubled).unwrap();
            if let Json::Object(fields) = &mut v {
                if let Some(metrics) = fields.iter_mut().find(|(k, _)| k == "metrics") {
                    metrics.1.set("messages", Json::Array(m)).unwrap();
                }
            }
        }
        let back = RedfishEvent::from_telemetry_json(&v).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn short_name() {
        assert_eq!(RedfishEvent::paper_leak_event().short_name(), "CabinetLeakDetected");
    }

    #[test]
    fn from_registry_panics_on_unknown_id() {
        let result = std::panic::catch_unwind(|| {
            RedfishEvent::from_registry(
                "x0".parse().unwrap(),
                0,
                "CrayAlerts.1.0.DoesNotExist",
                &[],
                "",
            )
        });
        assert!(result.is_err());
    }
}

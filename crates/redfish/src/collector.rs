//! The HMS (Hardware Management Service) collector.
//!
//! "The HMS collector pushes data to Kafka, where Kafka stores data in
//! different topics by categories and serves them to possible consumers."
//! Events and each telemetry kind get their own topic (the real SMA names),
//! keyed by xname so one component's stream stays ordered.

use crate::event::RedfishEvent;
use crate::sensor::SensorReading;
use omni_bus::{Broker, BusError, TopicConfig};

/// The Shasta Monitoring Framework Kafka topic names.
pub mod topics {
    /// Redfish resource events (leaks, power, ECC, ...).
    pub const RESOURCE_EVENTS: &str = "cray-dmtf-resource-event";
    /// Temperature telemetry.
    pub const TELEMETRY_TEMPERATURE: &str = "cray-telemetry-temperature";
    /// Humidity telemetry.
    pub const TELEMETRY_HUMIDITY: &str = "cray-telemetry-humidity";
    /// Power telemetry.
    pub const TELEMETRY_POWER: &str = "cray-telemetry-power";
    /// Fan telemetry.
    pub const TELEMETRY_FAN: &str = "cray-telemetry-fan";
    /// Leak-sensor state telemetry.
    pub const TELEMETRY_LEAK: &str = "cray-telemetry-pressure";
    /// Coolant-flow telemetry from the CDUs.
    pub const TELEMETRY_FLOW: &str = "cray-telemetry-flow";
    /// Fabric (Slingshot) health events from the fabric manager.
    pub const FABRIC_HEALTH: &str = "cray-fabric-health";
    /// GPFS health events from the filesystem monitor (§V future work).
    pub const GPFS_HEALTH: &str = "cray-gpfs-health";
    /// Node syslog stream.
    pub const SYSLOG: &str = "cray-syslog";
    /// Kubernetes container logs.
    pub const CONTAINER_LOGS: &str = "cray-container-logs";

    /// Every topic the collector creates.
    pub const ALL: &[&str] = &[
        RESOURCE_EVENTS,
        TELEMETRY_TEMPERATURE,
        TELEMETRY_HUMIDITY,
        TELEMETRY_POWER,
        TELEMETRY_FAN,
        TELEMETRY_LEAK,
        TELEMETRY_FLOW,
        FABRIC_HEALTH,
        GPFS_HEALTH,
        SYSLOG,
        CONTAINER_LOGS,
    ];
}

/// Publishes Redfish events and sensor telemetry onto the bus.
#[derive(Clone)]
pub struct HmsCollector {
    broker: Broker,
}

impl HmsCollector {
    /// Attach a collector to a broker, creating the Shasta topic set.
    pub fn new(broker: Broker, partitions: usize) -> Self {
        for t in topics::ALL {
            broker.ensure_topic(t, TopicConfig { partitions, ..Default::default() });
        }
        Self { broker }
    }

    /// The underlying broker.
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// Publish a Redfish event to [`topics::RESOURCE_EVENTS`].
    pub fn publish_event(&self, event: &RedfishEvent) -> Result<(usize, u64), BusError> {
        let payload = event.to_telemetry_json().dump();
        self.broker.produce(topics::RESOURCE_EVENTS, Some(&event.context.to_string()), payload)
    }

    /// Publish a Redfish event with message headers attached (e.g. the
    /// `omni-trace-id` propagation header). The payload is identical to
    /// [`Self::publish_event`] — headers ride beside it, invisible to
    /// consumers that don't look for them.
    pub fn publish_event_with_headers(
        &self,
        event: &RedfishEvent,
        headers: Vec<(String, String)>,
    ) -> Result<(usize, u64), BusError> {
        let payload = event.to_telemetry_json().dump();
        self.broker.produce_with_headers(
            topics::RESOURCE_EVENTS,
            Some(&event.context.to_string()),
            payload,
            headers,
        )
    }

    /// Publish a sensor reading to its kind's telemetry topic.
    pub fn publish_reading(&self, reading: &SensorReading) -> Result<(usize, u64), BusError> {
        let payload = reading.to_json().dump();
        self.broker.produce(reading.kind.topic(), Some(&reading.xname.to_string()), payload)
    }

    /// Publish a raw log line (syslog / container logs / fabric health).
    pub fn publish_log(
        &self,
        topic: &str,
        key: &str,
        line: impl Into<String>,
    ) -> Result<(usize, u64), BusError> {
        self.broker.produce(topic, Some(key), line.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor::SensorKind;
    use omni_model::SimClock;

    fn collector() -> HmsCollector {
        HmsCollector::new(Broker::new(SimClock::new()), 4)
    }

    #[test]
    fn creates_all_topics() {
        let c = collector();
        let names = c.broker().topics();
        for t in topics::ALL {
            assert!(names.contains(&t.to_string()), "missing topic {t}");
        }
    }

    #[test]
    fn event_lands_on_resource_topic_and_decodes() {
        let c = collector();
        let ev = RedfishEvent::paper_leak_event();
        let (p, o) = c.publish_event(&ev).unwrap();
        let msgs = c.broker().fetch(topics::RESOURCE_EVENTS, p, o, 1).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].key.as_deref(), Some("x1203c1b0"));
        let v = omni_json::parse(std::str::from_utf8(&msgs[0].payload).unwrap()).unwrap();
        let back = RedfishEvent::from_telemetry_json(&v).unwrap();
        assert_eq!(back[0], ev);
    }

    #[test]
    fn readings_route_by_kind() {
        let c = collector();
        let r = SensorReading {
            xname: "x1000c0s0b0n0".parse().unwrap(),
            sensor_id: "t0".into(),
            kind: SensorKind::Power,
            value: 900.0,
            ts: 5,
        };
        c.publish_reading(&r).unwrap();
        let total: usize = (0..4)
            .map(|p| c.broker().fetch(topics::TELEMETRY_POWER, p, 0, 10).unwrap().len())
            .sum();
        assert_eq!(total, 1);
        let none: usize = (0..4)
            .map(|p| c.broker().fetch(topics::TELEMETRY_TEMPERATURE, p, 0, 10).unwrap().len())
            .sum();
        assert_eq!(none, 0);
    }

    #[test]
    fn same_component_events_stay_ordered() {
        let c = collector();
        let base = RedfishEvent::paper_leak_event();
        for i in 0..20 {
            let mut ev = base.clone();
            ev.timestamp += i;
            c.publish_event(&ev).unwrap();
        }
        // All share the key x1203c1b0, so they sit in one partition in order.
        let mut found = Vec::new();
        for p in 0..4 {
            let msgs = c.broker().fetch(topics::RESOURCE_EVENTS, p, 0, 100).unwrap();
            if !msgs.is_empty() {
                found = msgs;
            }
        }
        assert_eq!(found.len(), 20);
    }
}

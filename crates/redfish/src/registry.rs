//! The `CrayAlerts.1.0` Redfish message registry.
//!
//! Redfish events carry a `MessageId` naming a registry entry plus
//! `MessageArgs` that fill its template. The paper's leak event uses
//! `CrayAlerts.1.0.CabinetLeakDetected`; this module defines that entry and
//! the rest of the alert vocabulary the simulator emits.

use omni_model::Severity;

/// One registry entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageRegistryEntry {
    /// Fully qualified id, e.g. `CrayAlerts.1.0.CabinetLeakDetected`.
    pub id: &'static str,
    /// Message template with `%1`, `%2`, ... argument slots.
    pub template: &'static str,
    /// Default severity of events using this entry.
    pub severity: Severity,
}

/// All registry entries the simulator knows.
pub const REGISTRY: &[MessageRegistryEntry] = &[
    MessageRegistryEntry {
        id: "CrayAlerts.1.0.CabinetLeakDetected",
        template: "Sensor '%1' of the redundant leak sensors in the '%2' cabinet zone has detected a leak.",
        severity: Severity::Warning,
    },
    MessageRegistryEntry {
        id: "CrayAlerts.1.0.CabinetLeakCleared",
        template: "Sensor '%1' of the redundant leak sensors in the '%2' cabinet zone no longer detects a leak.",
        severity: Severity::Ok,
    },
    MessageRegistryEntry {
        id: "CrayAlerts.1.0.PowerSupplyFailure",
        template: "Power supply '%1' has failed.",
        severity: Severity::Critical,
    },
    MessageRegistryEntry {
        id: "CrayAlerts.1.0.PowerSupplyRestored",
        template: "Power supply '%1' has been restored.",
        severity: Severity::Ok,
    },
    MessageRegistryEntry {
        id: "CrayAlerts.1.0.TemperatureCritical",
        template: "Temperature sensor '%1' reads %2 degrees C, above the critical threshold.",
        severity: Severity::Critical,
    },
    MessageRegistryEntry {
        id: "CrayAlerts.1.0.TemperatureWarning",
        template: "Temperature sensor '%1' reads %2 degrees C, above the warning threshold.",
        severity: Severity::Warning,
    },
    MessageRegistryEntry {
        id: "CrayAlerts.1.0.TemperatureNormal",
        template: "Temperature sensor '%1' returned to the normal range.",
        severity: Severity::Ok,
    },
    MessageRegistryEntry {
        id: "CrayAlerts.1.0.FanSpeedCritical",
        template: "Fan '%1' speed %2 RPM is outside the operating range.",
        severity: Severity::Critical,
    },
    MessageRegistryEntry {
        id: "CrayAlerts.1.0.NodePowerOff",
        template: "Node '%1' has powered off unexpectedly.",
        severity: Severity::Critical,
    },
    MessageRegistryEntry {
        id: "CrayAlerts.1.0.NodePowerOn",
        template: "Node '%1' has powered on.",
        severity: Severity::Info,
    },
    MessageRegistryEntry {
        id: "CrayAlerts.1.0.MemoryECCError",
        template: "Correctable memory errors on node '%1' DIMM '%2' exceeded the reporting threshold.",
        severity: Severity::Warning,
    },
];

/// Look up a registry entry by id.
pub fn registry_entry(id: &str) -> Option<&'static MessageRegistryEntry> {
    REGISTRY.iter().find(|e| e.id == id)
}

impl MessageRegistryEntry {
    /// Render the template with the given args (`%1` ← `args[0]`, ...).
    pub fn render(&self, args: &[&str]) -> String {
        let mut out = self.template.to_string();
        for (i, arg) in args.iter().enumerate() {
            out = out.replace(&format!("%{}", i + 1), arg);
        }
        out
    }

    /// Short name (the id's last segment), e.g. `CabinetLeakDetected`.
    pub fn short_name(&self) -> &'static str {
        self.id.rsplit('.').next().unwrap_or(self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_leak_message_renders_exactly() {
        let e = registry_entry("CrayAlerts.1.0.CabinetLeakDetected").unwrap();
        assert_eq!(
            e.render(&["A", "Front"]),
            "Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak."
        );
        assert_eq!(e.severity, Severity::Warning);
    }

    #[test]
    fn lookup_miss() {
        assert!(registry_entry("CrayAlerts.1.0.Nope").is_none());
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<&str> = REGISTRY.iter().map(|e| e.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), REGISTRY.len());
    }

    #[test]
    fn short_names() {
        let e = registry_entry("CrayAlerts.1.0.NodePowerOff").unwrap();
        assert_eq!(e.short_name(), "NodePowerOff");
    }

    #[test]
    fn render_with_missing_args_leaves_slot() {
        let e = registry_entry("CrayAlerts.1.0.TemperatureCritical").unwrap();
        let s = e.render(&["t0"]);
        assert!(s.contains("t0"));
        assert!(s.contains("%2"));
    }
}

//! Numeric sensor telemetry.
//!
//! "Sensors in each cabinet, chassis, node, switch, cooling unit collect
//! data like temperature, humidity, power, fan speed" — §IV.

use omni_json::{jsonv, Json};
use omni_model::Timestamp;
use omni_xname::XName;

/// What a sensor measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensorKind {
    /// Degrees Celsius.
    Temperature,
    /// Relative humidity percent.
    Humidity,
    /// Watts.
    Power,
    /// RPM.
    FanSpeed,
    /// 0.0 = dry, 1.0 = leak detected (per redundant sensor).
    Leak,
    /// Coolant flow in litres per minute (CDU loops).
    Flow,
}

impl SensorKind {
    /// Telemetry field name.
    pub fn as_str(&self) -> &'static str {
        match self {
            SensorKind::Temperature => "temperature",
            SensorKind::Humidity => "humidity",
            SensorKind::Power => "power",
            SensorKind::FanSpeed => "fan_speed",
            SensorKind::Leak => "leak",
            SensorKind::Flow => "flow",
        }
    }

    /// Measurement unit.
    pub fn unit(&self) -> &'static str {
        match self {
            SensorKind::Temperature => "celsius",
            SensorKind::Humidity => "percent",
            SensorKind::Power => "watts",
            SensorKind::FanSpeed => "rpm",
            SensorKind::Leak => "bool",
            SensorKind::Flow => "lpm",
        }
    }

    /// Which Kafka telemetry topic carries this kind.
    pub fn topic(&self) -> &'static str {
        match self {
            SensorKind::Temperature => crate::collector::topics::TELEMETRY_TEMPERATURE,
            SensorKind::Humidity => crate::collector::topics::TELEMETRY_HUMIDITY,
            SensorKind::Power => crate::collector::topics::TELEMETRY_POWER,
            SensorKind::FanSpeed => crate::collector::topics::TELEMETRY_FAN,
            SensorKind::Leak => crate::collector::topics::TELEMETRY_LEAK,
            SensorKind::Flow => crate::collector::topics::TELEMETRY_FLOW,
        }
    }
}

/// One numeric sample from one physical sensor.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorReading {
    /// Component carrying the sensor.
    pub xname: XName,
    /// Sensor id within the component (e.g. `t0`, `fan3`, leak sensor `A`).
    pub sensor_id: String,
    /// Measurement kind.
    pub kind: SensorKind,
    /// Value in the kind's unit.
    pub value: f64,
    /// Sample time (nanoseconds).
    pub ts: Timestamp,
}

impl SensorReading {
    /// Telemetry wire shape (flat JSON; numeric telemetry is not nested the
    /// way events are).
    pub fn to_json(&self) -> Json {
        jsonv!({
            "Context": (self.xname.to_string()),
            "Sensor": (self.sensor_id.clone()),
            "PhysicalContext": (self.kind.as_str()),
            "Reading": (self.value),
            "Units": (self.kind.unit()),
            "Timestamp": (self.ts),
        })
    }

    /// Decode the wire shape.
    pub fn from_json(v: &Json) -> Option<SensorReading> {
        Some(SensorReading {
            xname: v.get("Context")?.as_str()?.parse().ok()?,
            sensor_id: v.get("Sensor")?.as_str()?.to_string(),
            kind: match v.get("PhysicalContext")?.as_str()? {
                "temperature" => SensorKind::Temperature,
                "humidity" => SensorKind::Humidity,
                "power" => SensorKind::Power,
                "fan_speed" => SensorKind::FanSpeed,
                "leak" => SensorKind::Leak,
                "flow" => SensorKind::Flow,
                _ => return None,
            },
            value: v.get("Reading")?.as_f64()?,
            ts: v.get("Timestamp")?.as_f64()? as Timestamp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reading() -> SensorReading {
        SensorReading {
            xname: "x1000c0s0b0n0".parse().unwrap(),
            sensor_id: "t0".into(),
            kind: SensorKind::Temperature,
            value: 42.5,
            ts: 123,
        }
    }

    #[test]
    fn json_roundtrip() {
        let r = reading();
        let back = SensorReading::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn text_roundtrip() {
        let r = reading();
        let text = r.to_json().dump();
        let back = SensorReading::from_json(&omni_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn decode_rejects_unknown_kind() {
        let mut v = reading().to_json();
        v.set("PhysicalContext", Json::from("vibes")).unwrap();
        assert!(SensorReading::from_json(&v).is_none());
    }

    #[test]
    fn kinds_have_distinct_topics() {
        let kinds = [
            SensorKind::Temperature,
            SensorKind::Humidity,
            SensorKind::Power,
            SensorKind::FanSpeed,
            SensorKind::Leak,
            SensorKind::Flow,
        ];
        let mut topics: Vec<&str> = kinds.iter().map(|k| k.topic()).collect();
        topics.sort();
        topics.dedup();
        assert_eq!(topics.len(), kinds.len());
    }
}

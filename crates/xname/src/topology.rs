//! Machine topology enumeration.
//!
//! Builds the component inventory of a Perlmutter-like Shasta machine so the
//! simulator, the CMDB and the workload generators all agree on which
//! components exist. The paper's machine: liquid-cooled cabinets with
//! redundant leak sensors per chassis, and Rosetta switches each connecting
//! eight compute nodes.

use crate::XName;

/// Parameters describing a machine layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologySpec {
    /// Cabinet numbers (e.g. `[1000, 1001, 1002, ...]`). Shasta numbers
    /// cabinets as `1000 + 100*row + column`.
    pub cabinets: Vec<u32>,
    /// Chassis per cabinet (Olympus cabinets have 8).
    pub chassis_per_cabinet: u8,
    /// Compute blade slots per chassis.
    pub slots_per_chassis: u8,
    /// Node BMCs per blade slot.
    pub bmcs_per_slot: u8,
    /// Nodes per node BMC.
    pub nodes_per_bmc: u8,
    /// Router (switch) slots per chassis.
    pub routers_per_chassis: u8,
    /// Cabinets served by one cooling distribution unit.
    pub cabinets_per_cdu: usize,
}

impl TopologySpec {
    /// A Perlmutter-like layout: 12 cabinets across two rows, 8 chassis per
    /// cabinet, 8 blade slots per chassis, 1 BMC per slot, 2 nodes per BMC,
    /// 4 Rosetta switch slots per chassis. With this spec each switch
    /// serves `8*1*2/4 = ...` — we keep the paper's invariant explicit in
    /// [`MachineTopology::nodes_per_switch`] instead.
    pub fn perlmutter_like() -> Self {
        let mut cabinets = Vec::new();
        for row in 0..2u32 {
            for col in 0..6u32 {
                cabinets.push(1000 + 100 * row + col);
            }
        }
        Self {
            cabinets,
            chassis_per_cabinet: 8,
            slots_per_chassis: 8,
            bmcs_per_slot: 1,
            nodes_per_bmc: 2,
            routers_per_chassis: 4,
            cabinets_per_cdu: 4,
        }
    }

    /// A small layout for unit tests: 2 cabinets, 2 chassis each, 4 slots,
    /// 2 routers.
    pub fn tiny() -> Self {
        Self {
            cabinets: vec![1000, 1001],
            chassis_per_cabinet: 2,
            slots_per_chassis: 4,
            bmcs_per_slot: 1,
            nodes_per_bmc: 2,
            routers_per_chassis: 2,
            cabinets_per_cdu: 2,
        }
    }
}

/// The fully enumerated inventory of one machine.
#[derive(Debug, Clone)]
pub struct MachineTopology {
    spec: TopologySpec,
    cabinets: Vec<XName>,
    chassis: Vec<XName>,
    chassis_bmcs: Vec<XName>,
    nodes: Vec<XName>,
    node_bmcs: Vec<XName>,
    switches: Vec<XName>,
    cdus: Vec<XName>,
}

impl MachineTopology {
    /// Enumerate a machine from its spec.
    pub fn new(spec: TopologySpec) -> Self {
        let mut cabinets = Vec::new();
        let mut chassis = Vec::new();
        let mut chassis_bmcs = Vec::new();
        let mut nodes = Vec::new();
        let mut node_bmcs = Vec::new();
        let mut switches = Vec::new();
        for &cab in &spec.cabinets {
            cabinets.push(XName::Cabinet { cabinet: cab });
            for ch in 0..spec.chassis_per_cabinet {
                chassis.push(XName::Chassis { cabinet: cab, chassis: ch });
                chassis_bmcs.push(XName::ChassisBmc { cabinet: cab, chassis: ch, bmc: 0 });
                for slot in 0..spec.slots_per_chassis {
                    for bmc in 0..spec.bmcs_per_slot {
                        node_bmcs.push(XName::NodeBmc { cabinet: cab, chassis: ch, slot, bmc });
                        for n in 0..spec.nodes_per_bmc {
                            nodes.push(XName::Node {
                                cabinet: cab,
                                chassis: ch,
                                slot,
                                bmc,
                                node: n,
                            });
                        }
                    }
                }
                for r in 0..spec.routers_per_chassis {
                    switches.push(XName::RouterBmc { cabinet: cab, chassis: ch, slot: r, bmc: 0 });
                }
            }
        }
        let n_cdus = spec.cabinets.len().div_ceil(spec.cabinets_per_cdu.max(1));
        let cdus = (0..n_cdus as u32).map(|cdu| XName::Cdu { cdu }).collect();
        Self { spec, cabinets, chassis, chassis_bmcs, nodes, node_bmcs, switches, cdus }
    }

    /// Perlmutter-like machine.
    pub fn perlmutter_like() -> Self {
        Self::new(TopologySpec::perlmutter_like())
    }

    /// The spec this topology was enumerated from.
    pub fn spec(&self) -> &TopologySpec {
        &self.spec
    }

    /// All cabinets.
    pub fn cabinets(&self) -> &[XName] {
        &self.cabinets
    }

    /// All chassis.
    pub fn chassis(&self) -> &[XName] {
        &self.chassis
    }

    /// All chassis BMCs (leak sensors report here).
    pub fn chassis_bmcs(&self) -> &[XName] {
        &self.chassis_bmcs
    }

    /// All compute nodes.
    pub fn nodes(&self) -> &[XName] {
        &self.nodes
    }

    /// All node BMCs.
    pub fn node_bmcs(&self) -> &[XName] {
        &self.node_bmcs
    }

    /// All Rosetta switch BMCs.
    pub fn switches(&self) -> &[XName] {
        &self.switches
    }

    /// All cooling distribution units.
    pub fn cdus(&self) -> &[XName] {
        &self.cdus
    }

    /// Total addressable component count.
    pub fn component_count(&self) -> usize {
        self.cabinets.len()
            + self.chassis.len()
            + self.chassis_bmcs.len()
            + self.node_bmcs.len()
            + self.nodes.len()
            + self.switches.len()
            + self.cdus.len()
    }

    /// The compute nodes connected to a given switch.
    ///
    /// The paper: "Each Rosetta switch connects eight compute nodes. If one
    /// switch goes offline, the connection of the group of eight compute
    /// nodes goes down." We model that by assigning each chassis' nodes to
    /// its router slots round-robin in groups, so with the Perlmutter-like
    /// spec (16 nodes, 4 switches per chassis) each switch carries a
    /// contiguous group; with 32 nodes/4 switches it carries eight.
    pub fn nodes_on_switch(&self, switch: &XName) -> Vec<XName> {
        let XName::RouterBmc { cabinet, chassis, slot, .. } = *switch else {
            return Vec::new();
        };
        let per_chassis: Vec<&XName> = self
            .nodes
            .iter()
            .filter(|n| n.cabinet() == cabinet && n.chassis() == Some(chassis))
            .collect();
        let groups = self.spec.routers_per_chassis.max(1) as usize;
        let group_size = per_chassis.len().div_ceil(groups);
        per_chassis
            .chunks(group_size.max(1))
            .nth(slot as usize)
            .map(|c| c.iter().map(|x| **x).collect())
            .unwrap_or_default()
    }

    /// Nodes served per switch for this spec.
    pub fn nodes_per_switch(&self) -> usize {
        self.switches.first().map(|s| self.nodes_on_switch(s).len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_counts() {
        let t = MachineTopology::new(TopologySpec::tiny());
        assert_eq!(t.cabinets().len(), 2);
        assert_eq!(t.chassis().len(), 4);
        assert_eq!(t.chassis_bmcs().len(), 4);
        assert_eq!(t.nodes().len(), 2 * 2 * 4 * 2); // cab * chassis * slots * nodes
        assert_eq!(t.switches().len(), 2 * 2 * 2);
        assert_eq!(t.cdus().len(), 1); // 2 cabinets / 2 per CDU
    }

    #[test]
    fn perlmutter_like_scale() {
        let t = MachineTopology::perlmutter_like();
        assert_eq!(t.cabinets().len(), 12);
        // 12 cabinets * 8 chassis * 8 slots * 2 nodes = 1536 nodes,
        // matching Perlmutter phase 1's GPU node count.
        assert_eq!(t.nodes().len(), 1536);
        assert_eq!(t.switches().len(), 12 * 8 * 4);
        assert_eq!(t.cdus().len(), 3); // 12 cabinets / 4 per CDU
    }

    #[test]
    fn every_node_has_exactly_one_switch() {
        let t = MachineTopology::new(TopologySpec::tiny());
        let mut seen = std::collections::HashMap::new();
        for sw in t.switches() {
            for n in t.nodes_on_switch(sw) {
                *seen.entry(n).or_insert(0) += 1;
            }
        }
        assert_eq!(seen.len(), t.nodes().len());
        assert!(seen.values().all(|&c| c == 1));
    }

    #[test]
    fn switch_group_sizes_match_spec() {
        let t = MachineTopology::perlmutter_like();
        // 16 nodes per chassis across 4 switches = 4 nodes per switch here;
        // the grouping invariant (equal, disjoint groups) is what matters.
        let sizes: Vec<usize> = t.switches().iter().map(|s| t.nodes_on_switch(s).len()).collect();
        assert!(sizes.iter().all(|&s| s == sizes[0]));
        assert_eq!(sizes[0], t.nodes_per_switch());
    }

    #[test]
    fn nodes_on_non_switch_is_empty() {
        let t = MachineTopology::new(TopologySpec::tiny());
        let cab = t.cabinets()[0];
        assert!(t.nodes_on_switch(&cab).is_empty());
    }

    #[test]
    fn paper_switch_arity_with_eight_node_groups() {
        // A spec where each switch serves exactly eight nodes, the
        // configuration the paper describes.
        let spec = TopologySpec {
            cabinets: vec![1002],
            chassis_per_cabinet: 2,
            slots_per_chassis: 8,
            bmcs_per_slot: 1,
            nodes_per_bmc: 2,
            routers_per_chassis: 2,
            cabinets_per_cdu: 4,
        };
        let t = MachineTopology::new(spec);
        assert_eq!(t.nodes_per_switch(), 8);
    }
}

//! HPE Shasta xname component naming.
//!
//! Every physical component of a Shasta machine is addressed by an *xname*
//! encoding its position in the hardware hierarchy. The paper's two case
//! studies hinge on them: the Figure 2 leak event carries
//! `Context: x1203c1b0` (a chassis BMC) and the Figure 7 switch-offline
//! event names `xname: x1002c1r7b0` (a Rosetta switch BMC).
//!
//! Grammar implemented here (the subset of the Shasta naming scheme the
//! monitoring pipeline sees):
//!
//! ```text
//! xC                cabinet               x1203
//! xCcH              chassis               x1203c1
//! xCcHbB            chassis BMC           x1203c1b0
//! xCcHsS            compute slot/blade    x1102c4s0
//! xCcHsSbB          node BMC              x1102c4s0b0
//! xCcHsSbBnN        node                  x1102c4s0b0n0
//! xCcHrR            router slot           x1002c1r7
//! xCcHrRbB          router (switch) BMC   x1002c1r7b0
//! ```

pub mod topology;

pub use topology::{MachineTopology, TopologySpec};

use std::fmt;
use std::str::FromStr;

/// A parsed xname: the position of one hardware component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum XName {
    /// `xC` — a full cabinet.
    Cabinet { cabinet: u32 },
    /// `xCcH` — one chassis in a cabinet.
    Chassis { cabinet: u32, chassis: u8 },
    /// `xCcHbB` — the chassis-level BMC (where the leak sensors report).
    ChassisBmc { cabinet: u32, chassis: u8, bmc: u8 },
    /// `xCcHsS` — a compute blade slot.
    ComputeSlot { cabinet: u32, chassis: u8, slot: u8 },
    /// `xCcHsSbB` — a node BMC on a blade.
    NodeBmc { cabinet: u32, chassis: u8, slot: u8, bmc: u8 },
    /// `xCcHsSbBnN` — a compute node.
    Node { cabinet: u32, chassis: u8, slot: u8, bmc: u8, node: u8 },
    /// `xCcHrR` — a router (switch) slot.
    RouterSlot { cabinet: u32, chassis: u8, slot: u8 },
    /// `xCcHrRbB` — a Rosetta switch BMC.
    RouterBmc { cabinet: u32, chassis: u8, slot: u8, bmc: u8 },
    /// `dD` — a cooling distribution unit serving the liquid-cooled
    /// cabinets ("sensors in each cabinet, chassis, node, switch,
    /// cooling unit").
    Cdu { cdu: u32 },
}

/// Classification of an [`XName`], used for CMDB CI types and label values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// A full cabinet.
    Cabinet,
    /// A chassis.
    Chassis,
    /// A chassis BMC.
    ChassisBmc,
    /// A compute blade slot.
    ComputeSlot,
    /// A node BMC.
    NodeBmc,
    /// A compute node.
    Node,
    /// A router slot.
    RouterSlot,
    /// A Rosetta switch BMC.
    RouterBmc,
    /// A cooling distribution unit.
    Cdu,
}

impl ComponentKind {
    /// Lower-snake name used in labels and CMDB CI classes.
    pub fn as_str(&self) -> &'static str {
        match self {
            ComponentKind::Cabinet => "cabinet",
            ComponentKind::Chassis => "chassis",
            ComponentKind::ChassisBmc => "chassis_bmc",
            ComponentKind::ComputeSlot => "compute_slot",
            ComponentKind::NodeBmc => "node_bmc",
            ComponentKind::Node => "node",
            ComponentKind::RouterSlot => "router_slot",
            ComponentKind::RouterBmc => "router_bmc",
            ComponentKind::Cdu => "cdu",
        }
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl XName {
    /// Which kind of component this xname addresses.
    pub fn kind(&self) -> ComponentKind {
        match self {
            XName::Cabinet { .. } => ComponentKind::Cabinet,
            XName::Chassis { .. } => ComponentKind::Chassis,
            XName::ChassisBmc { .. } => ComponentKind::ChassisBmc,
            XName::ComputeSlot { .. } => ComponentKind::ComputeSlot,
            XName::NodeBmc { .. } => ComponentKind::NodeBmc,
            XName::Node { .. } => ComponentKind::Node,
            XName::RouterSlot { .. } => ComponentKind::RouterSlot,
            XName::RouterBmc { .. } => ComponentKind::RouterBmc,
            XName::Cdu { .. } => ComponentKind::Cdu,
        }
    }

    /// The cabinet number the xname carries; CDUs sit outside the
    /// cabinet rows and report their own unit number.
    pub fn cabinet(&self) -> u32 {
        match *self {
            XName::Cdu { cdu } => cdu,
            XName::Cabinet { cabinet }
            | XName::Chassis { cabinet, .. }
            | XName::ChassisBmc { cabinet, .. }
            | XName::ComputeSlot { cabinet, .. }
            | XName::NodeBmc { cabinet, .. }
            | XName::Node { cabinet, .. }
            | XName::RouterSlot { cabinet, .. }
            | XName::RouterBmc { cabinet, .. } => cabinet,
        }
    }

    /// The chassis number, if this component is below cabinet level.
    pub fn chassis(&self) -> Option<u8> {
        match *self {
            XName::Cabinet { .. } | XName::Cdu { .. } => None,
            XName::Chassis { chassis, .. }
            | XName::ChassisBmc { chassis, .. }
            | XName::ComputeSlot { chassis, .. }
            | XName::NodeBmc { chassis, .. }
            | XName::Node { chassis, .. }
            | XName::RouterSlot { chassis, .. }
            | XName::RouterBmc { chassis, .. } => Some(chassis),
        }
    }

    /// The immediate parent in the hardware hierarchy, or `None` for a
    /// cabinet.
    pub fn parent(&self) -> Option<XName> {
        match *self {
            XName::Cabinet { .. } | XName::Cdu { .. } => None,
            XName::Chassis { cabinet, .. } => Some(XName::Cabinet { cabinet }),
            XName::ChassisBmc { cabinet, chassis, .. } => Some(XName::Chassis { cabinet, chassis }),
            XName::ComputeSlot { cabinet, chassis, .. } => {
                Some(XName::Chassis { cabinet, chassis })
            }
            XName::NodeBmc { cabinet, chassis, slot, .. } => {
                Some(XName::ComputeSlot { cabinet, chassis, slot })
            }
            XName::Node { cabinet, chassis, slot, bmc, .. } => {
                Some(XName::NodeBmc { cabinet, chassis, slot, bmc })
            }
            XName::RouterSlot { cabinet, chassis, .. } => Some(XName::Chassis { cabinet, chassis }),
            XName::RouterBmc { cabinet, chassis, slot, .. } => {
                Some(XName::RouterSlot { cabinet, chassis, slot })
            }
        }
    }

    /// Whether `self` is `other` or one of its ancestors. A cabinet
    /// contains all of its chassis, slots and nodes, etc.
    pub fn contains(&self, other: &XName) -> bool {
        let mut cur = Some(*other);
        while let Some(x) = cur {
            if x == *self {
                return true;
            }
            cur = x.parent();
        }
        false
    }
}

/// Error produced when an xname string does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XNameParseError {
    /// The offending input.
    pub input: String,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for XNameParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid xname {:?}: {}", self.input, self.reason)
    }
}

impl std::error::Error for XNameParseError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn eat(&mut self, tag: u8) -> bool {
        if self.pos < self.bytes.len() && self.bytes[self.pos] == tag {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn number(&mut self) -> Option<u32> {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start || self.pos - start > 6 {
            return None;
        }
        let mut v: u32 = 0;
        for &b in &self.bytes[start..self.pos] {
            v = v * 10 + (b - b'0') as u32;
        }
        Some(v)
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

impl FromStr for XName {
    type Err = XNameParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason: &'static str| XNameParseError { input: s.to_string(), reason };
        let mut c = Cursor { bytes: s.as_bytes(), pos: 0 };
        if c.eat(b'd') {
            let cdu = c.number().ok_or_else(|| err("missing cdu number"))?;
            return if c.done() {
                Ok(XName::Cdu { cdu })
            } else {
                Err(err("trailing characters after cdu"))
            };
        }
        if !c.eat(b'x') {
            return Err(err("must start with 'x' or 'd'"));
        }
        let cabinet = c.number().ok_or_else(|| err("missing cabinet number"))?;
        if c.done() {
            return Ok(XName::Cabinet { cabinet });
        }
        if !c.eat(b'c') {
            return Err(err("expected 'c' after cabinet"));
        }
        let chassis = c.number().ok_or_else(|| err("missing chassis number"))? as u8;
        if c.done() {
            return Ok(XName::Chassis { cabinet, chassis });
        }
        if c.eat(b'b') {
            let bmc = c.number().ok_or_else(|| err("missing bmc number"))? as u8;
            return if c.done() {
                Ok(XName::ChassisBmc { cabinet, chassis, bmc })
            } else {
                Err(err("trailing characters after chassis bmc"))
            };
        }
        if c.eat(b's') {
            let slot = c.number().ok_or_else(|| err("missing slot number"))? as u8;
            if c.done() {
                return Ok(XName::ComputeSlot { cabinet, chassis, slot });
            }
            if !c.eat(b'b') {
                return Err(err("expected 'b' after compute slot"));
            }
            let bmc = c.number().ok_or_else(|| err("missing bmc number"))? as u8;
            if c.done() {
                return Ok(XName::NodeBmc { cabinet, chassis, slot, bmc });
            }
            if !c.eat(b'n') {
                return Err(err("expected 'n' after node bmc"));
            }
            let node = c.number().ok_or_else(|| err("missing node number"))? as u8;
            return if c.done() {
                Ok(XName::Node { cabinet, chassis, slot, bmc, node })
            } else {
                Err(err("trailing characters after node"))
            };
        }
        if c.eat(b'r') {
            let slot = c.number().ok_or_else(|| err("missing router slot number"))? as u8;
            if c.done() {
                return Ok(XName::RouterSlot { cabinet, chassis, slot });
            }
            if !c.eat(b'b') {
                return Err(err("expected 'b' after router slot"));
            }
            let bmc = c.number().ok_or_else(|| err("missing bmc number"))? as u8;
            return if c.done() {
                Ok(XName::RouterBmc { cabinet, chassis, slot, bmc })
            } else {
                Err(err("trailing characters after router bmc"))
            };
        }
        Err(err("expected 'b', 's' or 'r' after chassis"))
    }
}

impl fmt::Display for XName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            XName::Cabinet { cabinet } => write!(f, "x{cabinet}"),
            XName::Chassis { cabinet, chassis } => write!(f, "x{cabinet}c{chassis}"),
            XName::ChassisBmc { cabinet, chassis, bmc } => {
                write!(f, "x{cabinet}c{chassis}b{bmc}")
            }
            XName::ComputeSlot { cabinet, chassis, slot } => {
                write!(f, "x{cabinet}c{chassis}s{slot}")
            }
            XName::NodeBmc { cabinet, chassis, slot, bmc } => {
                write!(f, "x{cabinet}c{chassis}s{slot}b{bmc}")
            }
            XName::Node { cabinet, chassis, slot, bmc, node } => {
                write!(f, "x{cabinet}c{chassis}s{slot}b{bmc}n{node}")
            }
            XName::RouterSlot { cabinet, chassis, slot } => {
                write!(f, "x{cabinet}c{chassis}r{slot}")
            }
            XName::RouterBmc { cabinet, chassis, slot, bmc } => {
                write!(f, "x{cabinet}c{chassis}r{slot}b{bmc}")
            }
            XName::Cdu { cdu } => write!(f, "d{cdu}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_xnames() {
        // Figure 2 context: a chassis BMC.
        let fig2: XName = "x1203c1b0".parse().unwrap();
        assert_eq!(fig2, XName::ChassisBmc { cabinet: 1203, chassis: 1, bmc: 0 });
        // Figure 3 context: a node BMC.
        let fig3: XName = "x1102c4s0b0".parse().unwrap();
        assert_eq!(fig3, XName::NodeBmc { cabinet: 1102, chassis: 4, slot: 0, bmc: 0 });
        // Figure 7 switch: a router BMC.
        let fig7: XName = "x1002c1r7b0".parse().unwrap();
        assert_eq!(fig7, XName::RouterBmc { cabinet: 1002, chassis: 1, slot: 7, bmc: 0 });
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "x1203",
            "x1203c1",
            "x1203c1b0",
            "x1102c4s0",
            "x1102c4s0b0",
            "x1102c4s0b0n1",
            "x1002c1r7",
            "x1002c1r7b0",
            "d0",
            "d3",
        ] {
            let x: XName = s.parse().unwrap();
            assert_eq!(x.to_string(), s);
        }
    }

    #[test]
    fn cdu_parsing() {
        let d: XName = "d2".parse().unwrap();
        assert_eq!(d, XName::Cdu { cdu: 2 });
        assert_eq!(d.kind(), ComponentKind::Cdu);
        assert_eq!(d.parent(), None);
        assert_eq!(d.chassis(), None);
        assert!("d2x".parse::<XName>().is_err());
        assert!("d".parse::<XName>().is_err());
    }

    #[test]
    fn rejects_malformed() {
        for s in ["", "x", "y100", "x100c", "x100c1z0", "x100c1b0n0", "x100c1s0b0x", "x100c1r7b0b1"]
        {
            assert!(s.parse::<XName>().is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn parent_chain() {
        let node: XName = "x1102c4s0b0n1".parse().unwrap();
        let chain: Vec<String> =
            std::iter::successors(Some(node), |x| x.parent()).map(|x| x.to_string()).collect();
        assert_eq!(chain, vec!["x1102c4s0b0n1", "x1102c4s0b0", "x1102c4s0", "x1102c4", "x1102"]);
    }

    #[test]
    fn containment() {
        let cab: XName = "x1002".parse().unwrap();
        let switch: XName = "x1002c1r7b0".parse().unwrap();
        let other: XName = "x1003c1r7b0".parse().unwrap();
        assert!(cab.contains(&switch));
        assert!(!cab.contains(&other));
        assert!(switch.contains(&switch));
        assert!(!switch.contains(&cab));
    }

    #[test]
    fn kinds() {
        assert_eq!("x1".parse::<XName>().unwrap().kind(), ComponentKind::Cabinet);
        assert_eq!("x1c0r3".parse::<XName>().unwrap().kind(), ComponentKind::RouterSlot);
        assert_eq!("x1c0s3b0n0".parse::<XName>().unwrap().kind().as_str(), "node");
    }

    #[test]
    fn accessors() {
        let x: XName = "x1002c1r7b0".parse().unwrap();
        assert_eq!(x.cabinet(), 1002);
        assert_eq!(x.chassis(), Some(1));
        assert_eq!("x1002".parse::<XName>().unwrap().chassis(), None);
    }
}

//! Prometheus-style exporters.
//!
//! The paper's metric sources (§III): "Prometheus-style exporters and
//! endpoints that are installed by HPE (e.g. node-exporter)",
//! community exporters "(e.g. blackbox-exporter and kafka-exporter)", and
//! "custom Prometheus-style exporters that are written and installed by
//! NERSC (e.g. aruba-exporter)". Each exporter here renders the standard
//! text exposition format; [`exposition`] also parses it back, which is
//! what vmagent consumes.

pub mod exposition;
pub mod self_scrape;
pub mod simulated;

pub use exposition::{
    parse_exposition, render_exposition, valid_metric_name, ExpositionError, MetricFamily,
};
pub use self_scrape::SelfExporter;
pub use simulated::{
    shipped_exporter_families, ArubaExporter, BlackboxExporter, Exporter, GpfsExporter,
    KafkaExporter, NodeExporter,
};

//! The simulated exporter fleet, rendered against the Shasta machine.

use crate::exposition::{render_exposition, MetricFamily};
use omni_bus::Broker;
use omni_model::{LabelSet, SimClock};
use omni_redfish::SensorKind;
use omni_shasta::ShastaMachine;
use std::sync::Arc;

/// Every metric family the simulated exporter fleet can emit, as
/// `(metric name, label keys)` pairs. This is the static source of truth
/// the `omni-lint` catalog is derived from: a query referencing a metric
/// or label key absent from this table (plus the scrape-added
/// `job`/`instance` labels) cannot ever return data.
pub fn shipped_exporter_families() -> Vec<(&'static str, &'static [&'static str])> {
    const NODE: &[&str] = &["xname", "sensor"];
    const PROBE: &[&str] = &["target"];
    const KAFKA: &[&str] = &["topic"];
    const ARUBA: &[&str] = &["switch", "port"];
    const GPFS: &[&str] = &["fs", "server"];
    vec![
        ("node_temp_celsius", NODE),
        ("node_power_watts", NODE),
        ("node_fan_rpm", NODE),
        ("chassis_humidity_percent", NODE),
        ("chassis_leak_detected", NODE),
        ("cdu_flow_lpm", NODE),
        ("probe_success", PROBE),
        ("probe_duration_seconds", PROBE),
        ("kafka_topic_messages_in_total", KAFKA),
        ("kafka_topic_bytes_in_total", KAFKA),
        ("kafka_topic_retained_messages", KAFKA),
        ("aruba_port_rx_octets_total", ARUBA),
        ("aruba_port_rx_errors_total", ARUBA),
        ("aruba_port_up", ARUBA),
        ("gpfs_server_healthy", GPFS),
        ("gpfs_sick_disks", GPFS),
        ("gpfs_longest_waiter_seconds", GPFS),
        ("gpfs_read_mb_per_sec", GPFS),
        ("gpfs_write_mb_per_sec", GPFS),
    ]
}

/// An exporter: renders its current exposition page.
pub trait Exporter: Send + Sync {
    /// The exporter's job name (Prometheus `job` label).
    fn job(&self) -> &str;
    /// Render the scrape page.
    fn render(&self) -> String;
}

/// `node-exporter` (installed by HPE): per-node temperature, power and
/// fan metrics straight from the machine's sensors.
pub struct NodeExporter {
    machine: Arc<ShastaMachine>,
}

impl NodeExporter {
    /// Export for a machine.
    pub fn new(machine: Arc<ShastaMachine>) -> Self {
        Self { machine }
    }
}

impl Exporter for NodeExporter {
    fn job(&self) -> &str {
        "node-exporter"
    }

    fn render(&self) -> String {
        let mut temp = MetricFamily::gauge("node_temp_celsius", "Node temperature in Celsius.");
        let mut power = MetricFamily::gauge("node_power_watts", "Node power draw in Watts.");
        let mut fan = MetricFamily::gauge("node_fan_rpm", "Node fan speed in RPM.");
        let mut humidity =
            MetricFamily::gauge("chassis_humidity_percent", "Chassis relative humidity.");
        let mut leak = MetricFamily::gauge("chassis_leak_detected", "Leak sensor state (1=wet).");
        let mut flow = MetricFamily::gauge("cdu_flow_lpm", "CDU coolant flow (litres/minute).");
        for r in self.machine.sample_sensors() {
            let labels = LabelSet::from_pairs([
                ("xname", r.xname.to_string()),
                ("sensor", r.sensor_id.clone()),
            ]);
            match r.kind {
                SensorKind::Temperature => temp.sample(labels, r.value),
                SensorKind::Power => power.sample(labels, r.value),
                SensorKind::FanSpeed => fan.sample(labels, r.value),
                SensorKind::Humidity => humidity.sample(labels, r.value),
                SensorKind::Leak => leak.sample(labels, r.value),
                SensorKind::Flow => flow.sample(labels, r.value),
            };
        }
        render_exposition(&[temp, power, fan, humidity, leak, flow])
    }
}

/// `blackbox-exporter` (community): probe success/latency for the
/// service endpoints NERSC watches.
pub struct BlackboxExporter {
    targets: Vec<String>,
    clock: SimClock,
}

impl BlackboxExporter {
    /// Probe the given endpoints.
    pub fn new(targets: Vec<String>, clock: SimClock) -> Self {
        Self { targets, clock }
    }
}

impl Exporter for BlackboxExporter {
    fn job(&self) -> &str {
        "blackbox-exporter"
    }

    fn render(&self) -> String {
        let mut success = MetricFamily::gauge("probe_success", "Probe succeeded (1) or not (0).");
        let mut duration = MetricFamily::gauge("probe_duration_seconds", "Probe round-trip time.");
        let now = self.clock.now();
        for (i, t) in self.targets.iter().enumerate() {
            let labels = LabelSet::from_pairs([("target", t.as_str())]);
            // Deterministic pseudo-latency from target index + time bucket.
            let bucket = (now / 1_000_000_000) as u64;
            let jitter = omni_model::fnv1a64(format!("{t}:{bucket}").as_bytes()) % 50;
            success.sample(labels.clone(), 1.0);
            duration.sample(labels, 0.002 + i as f64 * 0.0005 + jitter as f64 * 1e-5);
        }
        render_exposition(&[success, duration])
    }
}

/// `kafka-exporter` (community): per-topic throughput counters from the
/// bus broker.
pub struct KafkaExporter {
    broker: Broker,
}

impl KafkaExporter {
    /// Export the broker's topic stats.
    pub fn new(broker: Broker) -> Self {
        Self { broker }
    }
}

impl Exporter for KafkaExporter {
    fn job(&self) -> &str {
        "kafka-exporter"
    }

    fn render(&self) -> String {
        let mut msgs =
            MetricFamily::counter("kafka_topic_messages_in_total", "Messages produced per topic.");
        let mut bytes =
            MetricFamily::counter("kafka_topic_bytes_in_total", "Bytes produced per topic.");
        let mut retained =
            MetricFamily::gauge("kafka_topic_retained_messages", "Currently retained messages.");
        for topic in self.broker.topics() {
            let labels = LabelSet::from_pairs([("topic", topic.as_str())]);
            if let Ok(stats) = self.broker.stats(&topic) {
                msgs.sample(labels.clone(), stats.messages_in as f64);
                bytes.sample(labels.clone(), stats.bytes_in as f64);
            }
            if let Ok(n) = self.broker.retained(&topic) {
                retained.sample(labels, n as f64);
            }
        }
        render_exposition(&[msgs, bytes, retained])
    }
}

/// `aruba-exporter` (NERSC custom): management-network switch port
/// counters, the paper's example of a site-written exporter.
pub struct ArubaExporter {
    switches: Vec<String>,
    clock: SimClock,
}

impl ArubaExporter {
    /// Export for the named management switches.
    pub fn new(switches: Vec<String>, clock: SimClock) -> Self {
        Self { switches, clock }
    }
}

impl Exporter for ArubaExporter {
    fn job(&self) -> &str {
        "aruba-exporter"
    }

    fn render(&self) -> String {
        let mut octets =
            MetricFamily::counter("aruba_port_rx_octets_total", "Received octets per port.");
        let mut errors =
            MetricFamily::counter("aruba_port_rx_errors_total", "Receive errors per port.");
        let mut status = MetricFamily::gauge("aruba_port_up", "Port operational status.");
        let t = (self.clock.now() / 1_000_000_000) as u64;
        for sw in &self.switches {
            for port in 0..4u32 {
                let labels =
                    LabelSet::from_pairs([("switch", sw.to_string()), ("port", format!("{port}"))]);
                let base = omni_model::fnv1a64(format!("{sw}:{port}").as_bytes()) % 10_000;
                octets.sample(labels.clone(), (base * 100 + t * 1_000) as f64);
                errors.sample(labels.clone(), (t / 600) as f64);
                status.sample(labels, 1.0);
            }
        }
        render_exposition(&[octets, errors, status])
    }
}

/// GPFS exporter (the §V future-work monitoring mechanism): per-NSD-server
/// health, throughput and long-waiter gauges from the filesystem simulator.
pub struct GpfsExporter {
    cluster: Arc<omni_shasta::GpfsCluster>,
}

impl GpfsExporter {
    /// Export a filesystem's health.
    pub fn new(cluster: Arc<omni_shasta::GpfsCluster>) -> Self {
        Self { cluster }
    }
}

impl Exporter for GpfsExporter {
    fn job(&self) -> &str {
        "gpfs-exporter"
    }

    fn render(&self) -> String {
        let mut state =
            MetricFamily::gauge("gpfs_server_healthy", "NSD server health (1=HEALTHY).");
        let mut sick = MetricFamily::gauge("gpfs_sick_disks", "Disks not HEALTHY per server.");
        let mut waiters =
            MetricFamily::gauge("gpfs_longest_waiter_seconds", "Longest RPC waiter per server.");
        let mut read = MetricFamily::gauge("gpfs_read_mb_per_sec", "Read throughput.");
        let mut write = MetricFamily::gauge("gpfs_write_mb_per_sec", "Write throughput.");
        for s in self.cluster.sample() {
            let labels = LabelSet::from_pairs([
                ("fs", self.cluster.name().to_string()),
                ("server", s.server.clone()),
            ]);
            state.sample(
                labels.clone(),
                if s.state == omni_shasta::GpfsState::Healthy { 1.0 } else { 0.0 },
            );
            sick.sample(labels.clone(), s.sick_disks as f64);
            waiters.sample(labels.clone(), s.longest_waiter_s);
            read.sample(labels.clone(), s.read_mb_s);
            write.sample(labels, s.write_mb_s);
        }
        render_exposition(&[state, sick, waiters, read, write])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exposition::parse_exposition;
    use omni_bus::TopicConfig;
    use omni_xname::TopologySpec;

    fn machine() -> Arc<ShastaMachine> {
        Arc::new(ShastaMachine::new(TopologySpec::tiny(), SimClock::starting_at(0), 1))
    }

    #[test]
    fn node_exporter_covers_sensors() {
        let exp = NodeExporter::new(machine());
        let text = exp.render();
        let records = parse_exposition(&text).unwrap();
        assert!(records.iter().any(|r| r.name() == Some("node_temp_celsius")));
        assert!(records.iter().any(|r| r.name() == Some("node_power_watts")));
        assert!(records.iter().any(|r| r.name() == Some("chassis_humidity_percent")));
        // Every sample carries an xname.
        assert!(records.iter().all(|r| r.labels.contains("xname")));
    }

    #[test]
    fn node_exporter_reports_leaks() {
        let m = machine();
        let chassis = m.topology().chassis()[0];
        m.inject_leak(chassis, 'A', omni_shasta::LeakZone::Front);
        let exp = NodeExporter::new(m);
        let records = parse_exposition(&exp.render()).unwrap();
        let leaks: Vec<_> =
            records.iter().filter(|r| r.name() == Some("chassis_leak_detected")).collect();
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].sample.value, 1.0);
    }

    #[test]
    fn blackbox_probes_targets() {
        let exp = BlackboxExporter::new(
            vec!["https://telemetry-api".into(), "https://loki-gw".into()],
            SimClock::starting_at(0),
        );
        let records = parse_exposition(&exp.render()).unwrap();
        assert_eq!(records.iter().filter(|r| r.name() == Some("probe_success")).count(), 2);
    }

    #[test]
    fn kafka_exporter_reflects_broker() {
        let broker = Broker::new(SimClock::new());
        broker.ensure_topic("cray-syslog", TopicConfig::default());
        broker.produce("cray-syslog", None, "hello").unwrap();
        let exp = KafkaExporter::new(broker);
        let records = parse_exposition(&exp.render()).unwrap();
        let m = records.iter().find(|r| r.name() == Some("kafka_topic_messages_in_total")).unwrap();
        assert_eq!(m.sample.value, 1.0);
        assert_eq!(m.labels.get("topic"), Some("cray-syslog"));
    }

    #[test]
    fn aruba_exporter_renders_ports() {
        let exp = ArubaExporter::new(vec!["mgmt-sw1".into()], SimClock::starting_at(0));
        let records = parse_exposition(&exp.render()).unwrap();
        assert_eq!(records.iter().filter(|r| r.name() == Some("aruba_port_up")).count(), 4);
    }

    #[test]
    fn gpfs_exporter_renders_health() {
        let gpfs = omni_shasta::GpfsCluster::new("scratch", 3, 4, SimClock::starting_at(0), 9);
        gpfs.fail_disk("nsd01", 0);
        let exp = GpfsExporter::new(gpfs);
        let records = parse_exposition(&exp.render()).unwrap();
        let healthy: Vec<_> =
            records.iter().filter(|r| r.name() == Some("gpfs_server_healthy")).collect();
        assert_eq!(healthy.len(), 3);
        let degraded = healthy.iter().find(|r| r.labels.get("server") == Some("nsd01")).unwrap();
        assert_eq!(degraded.sample.value, 0.0);
        let sick = records
            .iter()
            .find(|r| {
                r.name() == Some("gpfs_sick_disks") && r.labels.get("server") == Some("nsd01")
            })
            .unwrap();
        assert_eq!(sick.sample.value, 1.0);
    }

    #[test]
    fn all_exporters_have_distinct_jobs() {
        let m = machine();
        let clock = SimClock::new();
        let broker = Broker::new(clock.clone());
        let exps: Vec<Box<dyn Exporter>> = vec![
            Box::new(NodeExporter::new(m)),
            Box::new(BlackboxExporter::new(vec![], clock.clone())),
            Box::new(KafkaExporter::new(broker)),
            Box::new(ArubaExporter::new(vec![], clock.clone())),
            Box::new(GpfsExporter::new(omni_shasta::GpfsCluster::new("scratch", 1, 1, clock, 0))),
        ];
        let mut jobs: Vec<&str> = exps.iter().map(|e| e.job()).collect();
        jobs.sort();
        jobs.dedup();
        assert_eq!(jobs.len(), 5);
    }
}

//! The Prometheus text exposition format: the wire format every exporter
//! speaks and vmagent scrapes.
//!
//! ```text
//! # HELP node_temp_celsius Node temperature.
//! # TYPE node_temp_celsius gauge
//! node_temp_celsius{sensor="t0",node="x1000c0s0b0n0"} 43.5
//! ```

use omni_model::{LabelSet, MetricRecord};
use omni_obs::{format_trace_id, Exemplar};
use std::fmt;

/// One metric family: name, help, type and its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFamily {
    /// Metric name.
    pub name: String,
    /// `# HELP` text.
    pub help: String,
    /// `# TYPE` — gauge/counter/untyped.
    pub kind: &'static str,
    /// `(labels, value)` samples.
    pub samples: Vec<(LabelSet, f64)>,
    /// Exemplars keyed by sample labels, rendered as `# EXEMPLAR`
    /// comment lines after the matching sample so a latency bucket
    /// links to a sampled trace without breaking text-format parsers.
    pub exemplars: Vec<(LabelSet, Exemplar)>,
}

impl MetricFamily {
    /// A gauge family.
    pub fn gauge(name: &str, help: &str) -> Self {
        Self {
            name: name.to_string(),
            help: help.to_string(),
            kind: "gauge",
            samples: Vec::new(),
            exemplars: Vec::new(),
        }
    }

    /// A counter family.
    pub fn counter(name: &str, help: &str) -> Self {
        Self {
            name: name.to_string(),
            help: help.to_string(),
            kind: "counter",
            samples: Vec::new(),
            exemplars: Vec::new(),
        }
    }

    /// Add a sample.
    pub fn sample(&mut self, labels: LabelSet, value: f64) -> &mut Self {
        self.samples.push((labels, value));
        self
    }

    /// Attach an exemplar to the sample carrying `labels`.
    pub fn exemplar(&mut self, labels: LabelSet, exemplar: Exemplar) -> &mut Self {
        self.exemplars.push((labels, exemplar));
        self
    }
}

/// Is `name` a valid Prometheus metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`)?
/// Shared by the renderer, the parser, and the `omni-lint` static
/// analyzer so every side agrees on what a registrable name is.
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Render families to exposition text.
///
/// A family with an invalid metric name degrades to an error comment
/// instead of being rendered: one misnamed collector family would
/// otherwise produce an unparseable sample line and poison the *entire*
/// page for every conforming scraper.
pub fn render_exposition(families: &[MetricFamily]) -> String {
    let mut out = String::new();
    for f in families {
        if !valid_metric_name(&f.name) {
            out.push_str(&format!(
                "# omni-exporter error: dropped family with invalid metric name {:?}\n",
                f.name
            ));
            continue;
        }
        out.push_str(&format!("# HELP {} {}\n", f.name, escape_help(&f.help)));
        out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind));
        for (labels, value) in &f.samples {
            let rendered = render_labels(labels);
            out.push_str(&format!("{}{} {}\n", f.name, rendered, fmt_value(*value)));
            // Exemplars ride as comment lines (parsers skip `#`), so a
            // page with exemplars stays valid classic text format.
            for (els, ex) in &f.exemplars {
                if els == labels {
                    out.push_str(&format!(
                        "# EXEMPLAR {}{} trace_id={} {}\n",
                        f.name,
                        rendered,
                        format_trace_id(ex.trace_id),
                        fmt_value(ex.value)
                    ));
                }
            }
        }
    }
    out
}

/// `{k="v",..}` for non-empty label sets, empty string otherwise.
fn render_labels(labels: &LabelSet) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let rendered: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))).collect();
    format!("{{{}}}", rendered.join(","))
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// `# HELP` escaping per the text-format spec: only backslash and
/// line feed (quotes stay literal, unlike label values). Without this, a
/// help string containing a newline splits the comment across lines and
/// corrupts the page for any conforming parser.
fn escape_help(h: &str) -> String {
    h.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Exposition parse failure with line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpositionError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ExpositionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exposition parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ExpositionError {}

/// Parse exposition text into metric records (timestamps left at 0; the
/// scraper stamps them).
pub fn parse_exposition(text: &str) -> Result<Vec<MetricRecord>, ExpositionError> {
    let mut out = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| ExpositionError { line: ln + 1, message };
        // name{labels} value  |  name value
        let (name_and_labels, value_str) = match line.rfind(' ') {
            Some(pos) => (&line[..pos], line[pos + 1..].trim()),
            None => return Err(err("missing value".to_string())),
        };
        let value = match value_str {
            "NaN" => f64::NAN,
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            s => s.parse::<f64>().map_err(|_| err(format!("bad value {s:?}")))?,
        };
        let (name, labels) = if let Some(brace) = name_and_labels.find('{') {
            let name = name_and_labels[..brace].trim();
            let rest = name_and_labels[brace..].trim();
            if !rest.ends_with('}') {
                return Err(err("unterminated label braces".to_string()));
            }
            (name, parse_labels(&rest[1..rest.len() - 1]).map_err(err)?)
        } else {
            (name_and_labels.trim(), LabelSet::new())
        };
        if !valid_metric_name(name) {
            return Err(err(format!("invalid metric name {name:?}")));
        }
        out.push(MetricRecord::new(name, labels, 0, value));
    }
    Ok(out)
}

fn parse_labels(inner: &str) -> Result<LabelSet, String> {
    let mut labels = LabelSet::new();
    let b = inner.as_bytes();
    let mut i = 0;
    while i < b.len() {
        while i < b.len() && (b[i] == b',' || b[i] == b' ') {
            i += 1;
        }
        if i >= b.len() {
            break;
        }
        let key_start = i;
        while i < b.len() && b[i] != b'=' {
            i += 1;
        }
        if i >= b.len() {
            return Err("missing '=' in label".to_string());
        }
        let key = inner[key_start..i].trim();
        i += 1; // '='
        if i >= b.len() || b[i] != b'"' {
            return Err("label value must be quoted".to_string());
        }
        i += 1;
        let mut value = String::new();
        loop {
            if i >= b.len() {
                return Err("unterminated label value".to_string());
            }
            match b[i] {
                b'"' => {
                    i += 1;
                    break;
                }
                b'\\' => {
                    i += 1;
                    match b.get(i) {
                        Some(b'n') => value.push('\n'),
                        Some(b'"') => value.push('"'),
                        Some(b'\\') => value.push('\\'),
                        Some(&c) => value.push(c as char),
                        None => return Err("trailing backslash".to_string()),
                    }
                    i += 1;
                }
                _ => {
                    let c = inner[i..].chars().next().unwrap();
                    value.push(c);
                    i += c.len_utf8();
                }
            }
        }
        if key.is_empty() {
            return Err("empty label name".to_string());
        }
        labels.insert(key, value);
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::labels;

    #[test]
    fn render_and_parse_roundtrip() {
        let mut fam = MetricFamily::gauge("node_temp_celsius", "Node temperature.");
        fam.sample(labels!("sensor" => "t0", "node" => "x1000c0s0b0n0"), 43.5);
        fam.sample(LabelSet::new(), 20.0);
        let text = render_exposition(&[fam]);
        assert!(text.contains("# TYPE node_temp_celsius gauge"));
        let records = parse_exposition(&text).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name(), Some("node_temp_celsius"));
        assert_eq!(records[0].labels.get("sensor"), Some("t0"));
        assert_eq!(records[0].sample.value, 43.5);
        assert_eq!(records[1].labels.len(), 1); // just __name__
    }

    #[test]
    fn escaped_label_values() {
        let mut fam = MetricFamily::gauge("m", "h");
        fam.sample(labels!("path" => "a\"b\\c\nd"), 1.0);
        let text = render_exposition(&[fam]);
        let records = parse_exposition(&text).unwrap();
        assert_eq!(records[0].labels.get("path"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn help_text_is_escaped() {
        // A newline in help must not split the comment line, and a
        // backslash must round-trip as '\\' — per the text-format spec.
        let mut fam = MetricFamily::gauge("m", "line one\nline two \\ done");
        fam.sample(LabelSet::new(), 1.0);
        let text = render_exposition(&[fam]);
        assert!(text.contains("# HELP m line one\\nline two \\\\ done\n"), "{text:?}");
        // Every non-sample line is still a comment: the page stays parseable.
        assert_eq!(parse_exposition(&text).unwrap().len(), 1);
        // Quotes are NOT escaped in help (only label values escape them).
        let mut fam = MetricFamily::gauge("q", "says \"hi\"");
        fam.sample(LabelSet::new(), 1.0);
        assert!(render_exposition(&[fam]).contains("# HELP q says \"hi\"\n"));
    }

    #[test]
    fn exemplars_render_as_comments_and_do_not_break_parsing() {
        let mut fam = MetricFamily::counter("omni_query_latency_seconds_bucket", "Latency.");
        fam.sample(labels!("le" => "0.5"), 3.0);
        fam.sample(labels!("le" => "+Inf"), 4.0);
        fam.exemplar(labels!("le" => "0.5"), Exemplar { trace_id: 0xabcd, value: 0.4 });
        let text = render_exposition(&[fam]);
        // The exemplar line follows its bucket, as a comment carrying
        // the 16-hex trace id the trace store's timeline parser accepts.
        assert!(
            text.contains(
                "omni_query_latency_seconds_bucket{le=\"0.5\"} 3\n\
                 # EXEMPLAR omni_query_latency_seconds_bucket{le=\"0.5\"} \
                 trace_id=000000000000abcd 0.4\n"
            ),
            "{text:?}"
        );
        // The un-exemplared bucket renders bare.
        assert!(!text.contains("# EXEMPLAR omni_query_latency_seconds_bucket{le=\"+Inf\"}"));
        // A conforming classic-format parser sees only the samples.
        let records = parse_exposition(&text).unwrap();
        assert_eq!(records.len(), 2);
        // Help escaping still holds on an exemplar-bearing family.
        let mut fam = MetricFamily::counter("m", "line one\nline two \\ done");
        fam.sample(labels!("le" => "1"), 1.0);
        fam.exemplar(labels!("le" => "1"), Exemplar { trace_id: 7, value: 0.9 });
        let text = render_exposition(&[fam]);
        assert!(text.contains("# HELP m line one\\nline two \\\\ done\n"), "{text:?}");
        assert_eq!(parse_exposition(&text).unwrap().len(), 1);
        // Exemplars never rescue an invalid family name: the whole
        // family (exemplars included) degrades to the error comment.
        let mut bad = MetricFamily::gauge("bad name", "h");
        bad.sample(LabelSet::new(), 1.0);
        bad.exemplar(LabelSet::new(), Exemplar { trace_id: 9, value: 1.0 });
        let text = render_exposition(&[bad]);
        assert!(!text.contains("EXEMPLAR"), "{text:?}");
        assert!(parse_exposition(&text).unwrap().is_empty());
    }

    #[test]
    fn special_values() {
        let text = "m_nan NaN\nm_inf +Inf\nm_ninf -Inf\n";
        let records = parse_exposition(text).unwrap();
        assert!(records[0].sample.value.is_nan());
        assert_eq!(records[1].sample.value, f64::INFINITY);
        assert_eq!(records[2].sample.value, f64::NEG_INFINITY);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# HELP x y\n\n# TYPE x gauge\nx 1\n";
        assert_eq!(parse_exposition(text).unwrap().len(), 1);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "novalue",
            "1bad_name 3",
            "m{unterminated 3",
            "m{a=} 3",
            "m{a=\"x} 3",
            "m{=\"x\"} 3",
            "m not_a_number",
            "{a=\"b\"} 3",
        ] {
            assert!(parse_exposition(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn invalid_family_name_cannot_poison_the_page() {
        // Pre-fix, an empty or malformed family name rendered a sample
        // line the parser chokes on — and because a scrape parses the
        // whole page or nothing, one bad collector blinded the entire
        // self-telemetry job. Bad families must degrade to a comment.
        let mut empty_name = MetricFamily::gauge("", "anonymous");
        empty_name.sample(LabelSet::new(), 1.0);
        let mut spaced = MetricFamily::gauge("has space", "spaced out");
        spaced.sample(LabelSet::new(), 2.0);
        let mut digit_led = MetricFamily::counter("9lives_total", "cats");
        digit_led.sample(LabelSet::new(), 9.0);
        let mut good = MetricFamily::gauge("good_metric", "Survives.");
        good.sample(labels!("ok" => "yes"), 3.0);

        let text = render_exposition(&[empty_name, spaced, digit_led, good]);
        assert_eq!(text.matches("invalid metric name").count(), 3, "{text:?}");
        let records = parse_exposition(&text).expect("page must stay parseable");
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name(), Some("good_metric"));
        assert_eq!(records[0].sample.value, 3.0);
    }

    #[test]
    fn counter_kind_renders() {
        let mut fam = MetricFamily::counter("req_total", "Requests.");
        fam.sample(LabelSet::new(), 7.0);
        assert!(render_exposition(&[fam]).contains("# TYPE req_total counter"));
    }
}

//! The pipeline's own exporter: the monitor monitoring itself.
//!
//! [`SelfExporter`] renders an `omni-obs` [`Registry`] snapshot in the
//! same text exposition format every other exporter speaks, so the
//! simulated vmagent can scrape the pipeline's self-telemetry into the
//! TSDB exactly like node-exporter or kafka-exporter pages — queue
//! depths, consumer lag, WAL replays and stage-latency quantiles become
//! pane-queryable metrics.

use crate::exposition::{render_exposition, MetricFamily};
use crate::simulated::Exporter;
use omni_obs::{InstrumentKind, Registry};

/// Renders a metrics registry as a scrape page.
pub struct SelfExporter {
    registry: Registry,
}

impl SelfExporter {
    /// Wrap a registry.
    pub fn new(registry: Registry) -> Self {
        Self { registry }
    }

    /// The gathered families as exposition-layer values.
    pub fn families(&self) -> Vec<MetricFamily> {
        self.registry
            .gather()
            .into_iter()
            .map(|snap| {
                let mut fam = match snap.kind {
                    InstrumentKind::Counter => MetricFamily::counter(&snap.name, &snap.help),
                    InstrumentKind::Gauge => MetricFamily::gauge(&snap.name, &snap.help),
                };
                for s in snap.samples {
                    fam.sample(s.labels, s.value);
                }
                for (labels, ex) in snap.exemplars {
                    fam.exemplar(labels, ex);
                }
                fam
            })
            .collect()
    }
}

impl Exporter for SelfExporter {
    fn job(&self) -> &str {
        "omni-self"
    }

    fn render(&self) -> String {
        render_exposition(&self.families())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exposition::parse_exposition;
    use omni_model::{labels, SimClock};

    #[test]
    fn registry_renders_and_parses_like_any_exporter() {
        let reg = Registry::new(SimClock::new());
        reg.counter("omni_bus_messages_in_total", "Messages produced.", labels!("topic" => "t"))
            .add(3);
        reg.gauge("omni_delivery_queue_depth", "Pending notifications.", labels!()).set(2.0);
        reg.histogram("omni_stage_seconds", "Stage latency.", labels!("stage" => "kafka"), &[1.0])
            .observe(0.5);
        let exporter = SelfExporter::new(reg);
        assert_eq!(exporter.job(), "omni-self");
        let page = exporter.render();
        assert!(page.contains("# TYPE omni_bus_messages_in_total counter"), "{page}");
        assert!(page.contains("omni_stage_seconds_bucket"), "{page}");
        let records = parse_exposition(&page).unwrap();
        let depth = records
            .iter()
            .find(|r| r.name() == Some("omni_delivery_queue_depth"))
            .expect("gauge present");
        assert_eq!(depth.sample.value, 2.0);
        // p50/p99 convenience gauges are on the page too.
        assert!(records.iter().any(|r| r.name() == Some("omni_stage_seconds_p99")));
    }

    #[test]
    fn exemplars_survive_the_self_scrape() {
        let reg = Registry::new(SimClock::new());
        reg.histogram("omni_query_latency_seconds", "Query latency.", labels!(), &[1.0])
            .observe_with_exemplar(0.5, 0xbeef);
        let page = SelfExporter::new(reg).render();
        assert!(page.contains("# EXEMPLAR omni_query_latency_seconds_bucket"), "{page}");
        assert!(page.contains("trace_id=000000000000beef 0.5"), "{page}");
        // The page is still plain classic text format to a scraper.
        parse_exposition(&page).unwrap();
    }

    #[test]
    fn render_is_deterministic() {
        let build = || {
            let reg = Registry::new(SimClock::new());
            for t in ["b", "a"] {
                reg.counter("omni_x_total", "X.", labels!("topic" => t)).inc();
            }
            SelfExporter::new(reg).render()
        };
        assert_eq!(build(), build());
    }
}

//! Property tests for the WAL: whatever the ingest path accepts must
//! survive an encode → replay cycle bit-for-bit, including non-ASCII
//! lines and negative (pre-epoch) timestamps exercising the zigzag path.

use omni_loki::Wal;
use omni_model::{LabelSet, LogRecord};
use proptest::prelude::*;

/// Arbitrary label sets: 1..6 pairs, names lowercase, values spanning
/// printable unicode.
fn arb_labels() -> impl Strategy<Value = LabelSet> {
    prop::collection::vec(("[a-z_][a-z0-9_]{0,6}", "\\PC{0,12}"), 1..6).prop_map(|pairs| {
        let mut ls = LabelSet::new();
        for (k, v) in pairs {
            ls.insert(k, v);
        }
        ls
    })
}

fn arb_record() -> impl Strategy<Value = LogRecord> {
    (
        arb_labels(),
        // Timestamps on both sides of the epoch: negative values take the
        // zigzag encoder through its sign-folding branch.
        prop_oneof![-2_000_000_000i64..2_000_000_000, Just(i64::MIN / 2), Just(i64::MAX / 2),],
        // Lines mixing ASCII, escapes and multi-byte unicode.
        prop_oneof!["\\PC{0,80}", "[é中Ω→ß¥☃ \t]{0,20}", Just(String::new())],
    )
        .prop_map(|(labels, ts, line)| LogRecord::new(labels, ts, line))
}

proptest! {
    /// Encode → replay returns exactly the appended records, in order.
    #[test]
    fn append_replay_roundtrip(records in prop::collection::vec(arb_record(), 0..60)) {
        let wal = Wal::new();
        for r in &records {
            wal.append(r);
        }
        prop_assert_eq!(wal.record_count(), records.len() as u64);
        let replayed = wal.replay().unwrap();
        prop_assert_eq!(replayed, records);
    }

    /// Checkpointing keeps exactly the records at or after the bound and
    /// never grows the segment.
    #[test]
    fn checkpoint_partitions_by_timestamp(
        records in prop::collection::vec(arb_record(), 0..60),
        bound in -2_000_000_000i64..2_000_000_000,
    ) {
        let wal = Wal::new();
        for r in &records {
            wal.append(r);
        }
        let before_bytes = wal.bytes();
        let dropped = wal.checkpoint(bound);
        let expected: Vec<LogRecord> =
            records.iter().filter(|r| r.entry.ts >= bound).cloned().collect();
        prop_assert_eq!(dropped, records.len() - expected.len());
        prop_assert_eq!(wal.record_count(), expected.len() as u64);
        prop_assert!(wal.bytes() <= before_bytes);
        prop_assert_eq!(wal.replay().unwrap(), expected);
    }
}

//! Property tests for the WAL: whatever the ingest path accepts must
//! survive an encode → replay cycle bit-for-bit, including non-ASCII
//! lines and negative (pre-epoch) timestamps exercising the zigzag path.

use omni_loki::{Limits, LokiCluster, Wal};
use omni_model::{LabelSet, LogRecord, SimClock};
use proptest::prelude::*;

/// Arbitrary label sets: 1..6 pairs, names lowercase, values spanning
/// printable unicode.
fn arb_labels() -> impl Strategy<Value = LabelSet> {
    prop::collection::vec(("[a-z_][a-z0-9_]{0,6}", "\\PC{0,12}"), 1..6).prop_map(|pairs| {
        let mut ls = LabelSet::new();
        for (k, v) in pairs {
            ls.insert(k, v);
        }
        ls
    })
}

fn arb_record() -> impl Strategy<Value = LogRecord> {
    (
        arb_labels(),
        // Timestamps on both sides of the epoch: negative values take the
        // zigzag encoder through its sign-folding branch.
        prop_oneof![-2_000_000_000i64..2_000_000_000, Just(i64::MIN / 2), Just(i64::MAX / 2),],
        // Lines mixing ASCII, escapes and multi-byte unicode.
        prop_oneof!["\\PC{0,80}", "[é中Ω→ß¥☃ \t]{0,20}", Just(String::new())],
    )
        .prop_map(|(labels, ts, line)| LogRecord::new(labels, ts, line))
}

proptest! {
    /// Encode → replay returns exactly the appended records, in order.
    #[test]
    fn append_replay_roundtrip(records in prop::collection::vec(arb_record(), 0..60)) {
        let wal = Wal::new();
        for r in &records {
            wal.append(r);
        }
        prop_assert_eq!(wal.record_count(), records.len() as u64);
        let replayed = wal.replay().unwrap();
        prop_assert_eq!(replayed, records);
    }

    /// Checkpointing keeps exactly the records at or after the bound and
    /// never grows the segment.
    #[test]
    fn checkpoint_partitions_by_timestamp(
        records in prop::collection::vec(arb_record(), 0..60),
        bound in -2_000_000_000i64..2_000_000_000,
    ) {
        let wal = Wal::new();
        for r in &records {
            wal.append(r);
        }
        let before_bytes = wal.bytes();
        let dropped = wal.checkpoint(bound);
        let expected: Vec<LogRecord> =
            records.iter().filter(|r| r.entry.ts >= bound).cloned().collect();
        prop_assert_eq!(dropped, records.len() - expected.len());
        prop_assert_eq!(wal.record_count(), expected.len() as u64);
        prop_assert!(wal.bytes() <= before_bytes);
        prop_assert_eq!(wal.replay().unwrap(), expected);
    }

    /// Crash-recovery is idempotent at the cluster level: any script of
    /// crash/recover events — including a supervisor retrying recovery at
    /// the same WAL offset — restores exactly the accepted records, never
    /// duplicates. In-order pushes only, so acceptance is unconditional
    /// and the expected count is exact.
    #[test]
    fn repeated_crash_recovery_never_duplicates(
        // (push batch size, crash?, extra recover calls) per round.
        script in prop::collection::vec((1usize..8, any::<bool>(), 0usize..3), 1..8),
    ) {
        let c = LokiCluster::new(1, Limits::default(), SimClock::starting_at(0));
        let labels = LabelSet::from_pairs([("app", "fm")]);
        let mut pushed = 0i64;
        for (batch, crash, extra_recovers) in script {
            for _ in 0..batch {
                c.push(labels.clone(), pushed, format!("line {pushed}")).unwrap();
                pushed += 1;
            }
            if crash {
                c.crash_shard(0);
                let restored = c.recover_shard(0);
                prop_assert_eq!(restored as i64, pushed, "replay restores every record");
            }
            // Redundant recoveries (shard already up) must be no-ops.
            for _ in 0..extra_recovers {
                prop_assert_eq!(c.recover_shard(0), 0);
            }
            let out = c.query_logs(r#"{app="fm"}"#, -1, i64::MAX - 1, usize::MAX).unwrap();
            prop_assert_eq!(out.len() as i64, pushed, "no loss and no duplication");
        }
    }
}

//! Property tests for the query frontend: splitting a query into
//! retention-aligned intervals, executing the splits in parallel, and
//! serving repeats from the results cache must all be invisible — the
//! frontend's answer is byte-identical to running the engine directly
//! over a single unsharded ingester, cold or warm, before and after new
//! data lands inside a cached window.

use omni_logql::{parse_expr, Expr, LogQuery, MetricQuery};
use omni_loki::{Direction, Ingester, Limits, LokiCluster};
use omni_model::{LabelSet, LogRecord, SimClock};
use proptest::prelude::*;
use std::sync::Arc;

/// Records spread over a handful of streams with non-decreasing
/// timestamps, spanning up to a few minutes so small split intervals
/// produce many sub-queries.
fn arb_records() -> impl Strategy<Value = Vec<LogRecord>> {
    prop::collection::vec((0usize..8, 0i64..2_000_000_000, "\\PC{0,40}"), 1..120).prop_map(
        |items| {
            let mut ts = 0i64;
            items
                .into_iter()
                .map(|(stream, dt, line)| {
                    ts += dt;
                    let labels = LabelSet::from_pairs([
                        ("app", "x".to_string()),
                        ("stream", format!("{stream}")),
                    ]);
                    LogRecord::new(labels, ts, line)
                })
                .collect()
        },
    )
}

fn log_query(text: &str) -> LogQuery {
    match parse_expr(text).unwrap() {
        Expr::Log(q) => q,
        Expr::Metric(_) => panic!("expected a log query"),
    }
}

fn metric_query(text: &str) -> MetricQuery {
    match parse_expr(text).unwrap() {
        Expr::Metric(m) => m,
        Expr::Log(_) => panic!("expected a metric query"),
    }
}

/// Build a sharded cluster (frontend path) and a single bare ingester
/// (direct engine path) holding the same records.
fn build_pair(records: &[LogRecord], split_interval_ns: i64) -> (LokiCluster, Arc<Ingester>) {
    let limits = Limits { chunk_target_bytes: 512, split_interval_ns, ..Default::default() };
    let cluster = LokiCluster::new(4, limits.clone(), SimClock::starting_at(0));
    let single = Arc::new(Ingester::new(limits));
    for r in records {
        cluster.push_record(r.clone()).unwrap();
        single.append(r.clone()).unwrap();
    }
    (cluster, single)
}

proptest! {
    /// Split + cached log queries equal the direct engine, cold and
    /// warm, for both directions and arbitrary limits — including after
    /// an append lands inside the cached window.
    #[test]
    fn frontend_log_query_equals_direct_engine(
        records in arb_records(),
        splits in 1i64..6,
        limit in prop::sample::select(vec![1usize, 3, 10, usize::MAX]),
        backward in any::<bool>(),
    ) {
        let end = records.iter().map(|r| r.entry.ts).max().unwrap() + 1;
        let interval = (end / splits).max(1);
        let (cluster, single) = build_pair(&records, interval);

        let direction = if backward { Direction::Backward } else { Direction::Forward };
        let text = r#"{app="x"}"#;
        let q = log_query(text);
        let direct = omni_loki::engine::run_log_query(
            std::slice::from_ref(&single), &q, 0, end, limit, direction,
        );

        let cold = cluster.query_logs_directed(text, 0, end, limit, direction).unwrap();
        prop_assert_eq!(&cold, &direct);

        // Warm pass: served from the results cache, still identical.
        let warm = cluster.query_logs_directed(text, 0, end, limit, direction).unwrap();
        prop_assert_eq!(&warm, &direct);
        prop_assert!(cluster.frontend().stats().cache_hits > 0);

        // New stream lands inside the cached window: the cache must
        // invalidate, and the refreshed answer must track the engine.
        let mid = LogRecord::new(
            LabelSet::from_pairs([("app", "x".to_string()), ("stream", "new".to_string())]),
            end / 2,
            "late arrival",
        );
        cluster.push_record(mid.clone()).unwrap();
        single.append(mid).unwrap();
        let refreshed = cluster.query_logs_directed(text, 0, end, limit, direction).unwrap();
        let direct = omni_loki::engine::run_log_query(
            &[single], &q, 0, end, limit, direction,
        );
        prop_assert_eq!(refreshed, direct);
    }

    /// Split + cached range queries equal the direct engine across
    /// random split intervals, steps, and lookback ranges.
    #[test]
    fn frontend_range_query_equals_direct_engine(
        records in arb_records(),
        splits in 1i64..6,
        step_s in 1i64..45,
        range_s in prop::sample::select(vec![5i64, 30, 120]),
    ) {
        let end = records.iter().map(|r| r.entry.ts).max().unwrap() + 1;
        let interval = (end / splits).max(1);
        let (cluster, single) = build_pair(&records, interval);

        let text = format!(r#"sum by (stream) (count_over_time({{app="x"}}[{range_s}s]))"#);
        let m = metric_query(&text);
        let step_ns = step_s * 1_000_000_000;
        let direct = omni_loki::engine::run_range_query(
            std::slice::from_ref(&single), &m, 0, end, step_ns,
        );

        let cold = cluster.query_range(&text, 0, end, step_ns).unwrap();
        prop_assert_eq!(&cold, &direct);

        let warm = cluster.query_range(&text, 0, end, step_ns).unwrap();
        prop_assert_eq!(&warm, &direct);

        // An append inside a cached lookback window must invalidate the
        // overlapping splits and keep the refreshed matrix exact.
        let mid = LogRecord::new(
            LabelSet::from_pairs([("app", "x".to_string()), ("stream", "new".to_string())]),
            end / 2,
            "late arrival",
        );
        cluster.push_record(mid.clone()).unwrap();
        single.append(mid).unwrap();
        let refreshed = cluster.query_range(&text, 0, end, step_ns).unwrap();
        let direct = omni_loki::engine::run_range_query(&[single], &m, 0, end, step_ns);
        prop_assert_eq!(refreshed, direct);
    }
}

//! Property tests for the batched ingest path: `append_batch` must be
//! indistinguishable from the same records appended one at a time —
//! identical per-record outcomes, byte-identical sealed chunks, identical
//! index state, and identical WAL replay results (the batched WAL segment
//! itself may be smaller: runs share one label-set frame).

use omni_loki::{Ingester, Limits, LokiCluster, Wal};
use omni_model::{LabelSet, LogRecord, SimClock};
use proptest::prelude::*;

/// Records spread over a handful of streams with non-decreasing
/// timestamps (so the out-of-order check treats both paths identically),
/// seasoned with occasional invalid records (empty labels) to exercise
/// per-record error reporting.
fn arb_records() -> impl Strategy<Value = Vec<LogRecord>> {
    prop::collection::vec((0usize..9, 0i64..1_000_000, "\\PC{0,40}"), 0..120).prop_map(|items| {
        let mut ts = 0i64;
        items
            .into_iter()
            .map(|(stream, dt, line)| {
                ts += dt;
                let labels = if stream == 8 {
                    LabelSet::new() // invalid: rejected by both paths
                } else {
                    LabelSet::from_pairs([
                        ("app", "x".to_string()),
                        ("stream", format!("{stream}")),
                    ])
                };
                LogRecord::new(labels, ts, line)
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn ingester_batch_equals_sequential_appends(records in arb_records()) {
        let limits = Limits { chunk_target_bytes: 512, ..Default::default() };
        let serial = Ingester::new(limits.clone());
        let batched = Ingester::new(limits);

        let serial_results: Vec<_> =
            records.iter().map(|r| serial.append(r.clone())).collect();
        let batch: Vec<(u64, LogRecord)> =
            records.iter().map(|r| (r.labels.fingerprint(), r.clone())).collect();
        let batch_results = batched.append_batch(batch);

        prop_assert_eq!(serial_results, batch_results);
        prop_assert_eq!(serial.stats(), batched.stats());
        prop_assert_eq!(serial.stream_count(), batched.stream_count());
        prop_assert_eq!(serial.index_entries(), batched.index_entries());

        serial.flush();
        batched.flush();
        prop_assert_eq!(serial.sealed_chunk_bytes(), batched.sealed_chunk_bytes());
    }

    #[test]
    fn wal_batch_equals_sequential_appends(records in arb_records()) {
        let serial = Wal::new();
        let batched = Wal::new();
        for r in &records {
            serial.append(r);
        }
        batched.append_batch(&records);
        // Run framing writes each label set once per consecutive run, so
        // the batched segment is never larger — and replays identically.
        prop_assert!(batched.bytes() <= serial.bytes());
        prop_assert_eq!(serial.record_count(), batched.record_count());
        prop_assert_eq!(serial.replay().unwrap(), batched.replay().unwrap());
    }

    #[test]
    fn cluster_batch_push_equals_sequential_push(records in arb_records()) {
        let limits = Limits { chunk_target_bytes: 512, ..Default::default() };
        let serial = LokiCluster::new(4, limits.clone(), SimClock::starting_at(0));
        let batched = LokiCluster::new(4, limits, SimClock::starting_at(0));

        let serial_results: Vec<_> =
            records.iter().map(|r| serial.push_record(r.clone())).collect();
        let batch_results = batched.push_record_batch(records);
        prop_assert_eq!(serial_results, batch_results);
        prop_assert_eq!(serial.stats(), batched.stats());
        prop_assert_eq!(
            serial.resilience().wal_records,
            batched.resilience().wal_records
        );
        prop_assert!(batched.resilience().wal_bytes <= serial.resilience().wal_bytes);

        let q = |c: &LokiCluster| {
            c.query_logs(r#"{app="x"}"#, i64::MIN, i64::MAX, usize::MAX).unwrap()
        };
        prop_assert_eq!(q(&serial), q(&batched));
    }

    /// The stream-framed push (one label set + its entries per call) must
    /// be indistinguishable from pushing the same records one at a time:
    /// identical per-record outcomes, counters, and query results.
    /// Frames preserve each stream's arrival order, which is all the
    /// ordering check depends on.
    #[test]
    fn cluster_stream_frame_push_equals_sequential_push(records in arb_records()) {
        let limits = Limits { chunk_target_bytes: 512, ..Default::default() };
        let serial = LokiCluster::new(4, limits.clone(), SimClock::starting_at(0));
        let framed = LokiCluster::new(4, limits, SimClock::starting_at(0));

        let serial_results: Vec<_> =
            records.iter().map(|r| serial.push_record(r.clone())).collect();

        // Group into stream frames, remembering original positions.
        let mut frames: Vec<(omni_model::LabelSet, Vec<usize>)> = Vec::new();
        for (i, r) in records.iter().enumerate() {
            match frames.iter_mut().find(|(l, _)| *l == r.labels) {
                Some((_, idxs)) => idxs.push(i),
                None => frames.push((r.labels.clone(), vec![i])),
            }
        }
        let mut framed_results: Vec<Option<Result<(), omni_loki::IngestError>>> =
            vec![None; records.len()];
        for (labels, idxs) in frames {
            let entries = idxs.iter().map(|&i| records[i].entry.clone()).collect();
            for (&i, res) in idxs.iter().zip(framed.push_stream_batch(labels, entries)) {
                framed_results[i] = Some(res);
            }
        }
        let framed_results: Vec<_> = framed_results.into_iter().map(Option::unwrap).collect();

        prop_assert_eq!(serial_results, framed_results);
        prop_assert_eq!(serial.stats(), framed.stats());
        prop_assert_eq!(
            serial.resilience().wal_records,
            framed.resilience().wal_records
        );
        let q = |c: &LokiCluster| {
            c.query_logs(r#"{app="x"}"#, i64::MIN, i64::MAX, usize::MAX).unwrap()
        };
        prop_assert_eq!(q(&serial), q(&framed));
    }
}

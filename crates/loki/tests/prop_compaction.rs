//! Property tests for the compaction path: the series-index label codec
//! must round-trip and survive corrupt input, and — the load-bearing
//! invariant — queries must return byte-identical results whether the
//! data sits in ingester memory (head/sealed), in the hot object tier
//! (offloaded), or in the cold compacted tier. Compaction that changes a
//! single query answer is data corruption, not housekeeping.

use omni_loki::chunkstore::{labels_to_object, object_to_labels};
use omni_loki::{Limits, LokiCluster, ObjectStore};
use omni_model::{LabelSet, SimClock, NANOS_PER_SEC};
use proptest::prelude::*;

/// Label maps with Loki-plausible keys and arbitrary printable values
/// (duplicate keys collapse in the `LabelSet`, as at ingest).
fn arb_labels() -> impl Strategy<Value = LabelSet> {
    prop::collection::vec(("[a-z_][a-z0-9_]{0,12}", "\\PC{0,24}"), 0..8)
        .prop_map(LabelSet::from_pairs)
}

proptest! {
    /// Encoding a label set into a series-index object and decoding it
    /// back is lossless.
    #[test]
    fn labels_roundtrip(labels in arb_labels()) {
        let obj = labels_to_object(&labels);
        prop_assert_eq!(object_to_labels(&obj).unwrap(), labels);
    }

    /// Arbitrary bytes posing as a series-index object must decode to an
    /// error or a label set — never panic, never read out of bounds.
    #[test]
    fn corrupt_series_objects_never_panic(data in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = object_to_labels(&data);
    }

    /// A truncated valid encoding either errors or (cut at the exact
    /// end) reproduces the original — it never yields garbage labels.
    #[test]
    fn truncated_series_objects_error_or_roundtrip(
        labels in arb_labels(),
        cut_frac in 0.0f64..1.0,
    ) {
        let obj = labels_to_object(&labels);
        prop_assert_eq!(object_to_labels(&obj).unwrap(), labels.clone());
        let cut = ((obj.len() as f64) * cut_frac) as usize;
        if let Ok(decoded) = object_to_labels(&obj[..cut]) {
            // The trailing-bytes and bounds checks leave exactly one
            // decodable prefix: the whole object.
            prop_assert_eq!(cut, obj.len());
            prop_assert_eq!(decoded, labels);
        }
    }

    /// Tier equivalence: the same workload queried while resident in
    /// ingester memory, after offload to the hot object tier, and after
    /// compaction into the cold tier returns identical records — over
    /// the full window and over a random sub-window. The cache is
    /// dropped between stages so each read hits storage.
    #[test]
    fn head_sealed_and_compacted_tiers_answer_identically(
        deltas in prop::collection::vec(0i64..2 * NANOS_PER_SEC, 1..80),
        streams in prop::collection::vec(0usize..3, 1..80),
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let limits = Limits {
            chunk_target_bytes: 128, // many small sealed chunks
            compact_after_ns: 0,
            ..Default::default()
        };
        let c = LokiCluster::new(2, limits, SimClock::starting_at(0));
        let n = deltas.len().min(streams.len());
        let mut ts = 0i64;
        for i in 0..n {
            ts += deltas[i];
            let labels = LabelSet::from_pairs([
                ("app", "equiv".to_string()),
                ("stream", format!("{}", streams[i])),
            ]);
            // Unique lines: equal-content chunks would be legitimately
            // deduplicated, which is not what this test probes.
            c.push(labels, ts, format!("entry {i} of the workload")).unwrap();
        }
        let span = ts + 1;
        let sub_start = (span as f64 * start_frac) as i64 - 1;
        let sub_end = sub_start + 1 + (span as f64 * len_frac) as i64;
        let windows = [(-1, span), (sub_start, sub_end)];
        let query = |label: &str| -> Vec<_> {
            c.frontend().invalidate_all();
            windows
                .iter()
                .map(|&(s, e)| {
                    c.query_logs(r#"{app="equiv"}"#, s, e, usize::MAX)
                        .unwrap_or_else(|err| panic!("{label} query failed: {err}"))
                })
                .collect()
        };

        let in_memory = query("in-memory");
        // Stage 2: seal every head and offload everything to the store.
        c.clock().set(ts + 3_600 * NANOS_PER_SEC);
        c.flush();
        c.offload(0);
        prop_assert!(!c.chunk_store().objects().list("chunks/").is_empty());
        let offloaded = query("offloaded");
        // Stage 3: compact into the cold tier.
        c.compact();
        let compacted = query("compacted");

        prop_assert_eq!(&in_memory, &offloaded, "offload changed query results");
        prop_assert_eq!(&offloaded, &compacted, "compaction changed query results");
    }
}

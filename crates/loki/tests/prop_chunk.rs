//! Property tests for the chunk codec and the block compressor.

use bytes::Bytes;
use omni_loki::chunk::SealedChunk;
use omni_loki::compress::{compress, decompress};
use omni_model::LogEntry;
use proptest::prelude::*;

proptest! {
    #[test]
    fn compressor_is_lossless(data in prop::collection::vec(any::<u8>(), 0..5_000)) {
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn compressor_is_lossless_on_repetitive_text(
        word in "[a-z]{1,10}",
        n in 1usize..500,
    ) {
        let data: Vec<u8> = word.repeat(n).into_bytes();
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn decompressor_never_panics(data in prop::collection::vec(any::<u8>(), 0..2_000)) {
        let _ = decompress(&data);
    }

    #[test]
    fn chunk_roundtrip(
        deltas in prop::collection::vec(0i64..1_000_000_000, 0..200),
        lines in prop::collection::vec("\\PC{0,60}", 0..200),
    ) {
        let n = deltas.len().min(lines.len());
        let mut ts = 1_600_000_000_000_000_000i64;
        let entries: Vec<LogEntry> = (0..n)
            .map(|i| {
                ts += deltas[i];
                LogEntry::new(ts, lines[i].clone())
            })
            .collect();
        let chunk = SealedChunk::from_entries(&entries);
        prop_assert_eq!(chunk.decode().unwrap(), entries);
    }

    #[test]
    fn chunk_decode_of_corrupt_container_never_panics(
        data in prop::collection::vec(any::<u8>(), 0..2_000),
        count in 0usize..500,
    ) {
        // Arbitrary bytes posing as a chunk container: decode must return
        // (possibly garbage) entries or an error — never panic.
        let chunk = SealedChunk::from_parts(Bytes::from(data), 0, 1_000_000, count, 4_096);
        let _ = chunk.decode();
        let _ = chunk.decode_range(100, 2_000);
    }

    #[test]
    fn truncated_chunk_bytes_never_panic(
        n in 1usize..300,
        cut_frac in 0.0f64..1.0,
    ) {
        let entries: Vec<LogEntry> =
            (0..n).map(|i| LogEntry::new(i as i64 * 50, format!("payload line {i}"))).collect();
        let chunk = SealedChunk::from_entries(&entries);
        let raw = chunk.raw_block();
        let cut = ((raw.len() as f64) * cut_frac) as usize;
        let truncated = SealedChunk::from_parts(
            Bytes::from(raw[..cut].to_vec()),
            chunk.min_ts,
            chunk.max_ts,
            chunk.count,
            chunk.uncompressed,
        );
        let _ = truncated.decode();
        let _ = truncated.decode_range(0, i64::MAX);
    }

    #[test]
    fn chunk_range_decode_equals_filtered_full_decode(
        n in 1usize..100,
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let entries: Vec<LogEntry> =
            (0..n).map(|i| LogEntry::new(i as i64 * 100, format!("line {i}"))).collect();
        let chunk = SealedChunk::from_entries(&entries);
        let span = (n as i64) * 100;
        let start = (span as f64 * start_frac) as i64 - 50;
        let end = start + (span as f64 * len_frac) as i64;
        let ranged = chunk.decode_range(start, end).unwrap();
        let expected: Vec<LogEntry> = entries
            .iter()
            .filter(|e| e.ts > start && e.ts <= end)
            .cloned()
            .collect();
        prop_assert_eq!(ranged, expected);
    }
}

//! Property tests for the chunk codec and the block compressor.

use omni_loki::chunk::SealedChunk;
use omni_loki::compress::{compress, decompress};
use omni_model::LogEntry;
use proptest::prelude::*;

proptest! {
    #[test]
    fn compressor_is_lossless(data in prop::collection::vec(any::<u8>(), 0..5_000)) {
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn compressor_is_lossless_on_repetitive_text(
        word in "[a-z]{1,10}",
        n in 1usize..500,
    ) {
        let data: Vec<u8> = word.repeat(n).into_bytes();
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn decompressor_never_panics(data in prop::collection::vec(any::<u8>(), 0..2_000)) {
        let _ = decompress(&data);
    }

    #[test]
    fn chunk_roundtrip(
        deltas in prop::collection::vec(0i64..1_000_000_000, 0..200),
        lines in prop::collection::vec("\\PC{0,60}", 0..200),
    ) {
        let n = deltas.len().min(lines.len());
        let mut ts = 1_600_000_000_000_000_000i64;
        let entries: Vec<LogEntry> = (0..n)
            .map(|i| {
                ts += deltas[i];
                LogEntry::new(ts, lines[i].clone())
            })
            .collect();
        let chunk = SealedChunk::from_entries(&entries);
        prop_assert_eq!(chunk.decode().unwrap(), entries);
    }

    #[test]
    fn chunk_range_decode_equals_filtered_full_decode(
        n in 1usize..100,
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let entries: Vec<LogEntry> =
            (0..n).map(|i| LogEntry::new(i as i64 * 100, format!("line {i}"))).collect();
        let chunk = SealedChunk::from_entries(&entries);
        let span = (n as i64) * 100;
        let start = (span as f64 * start_frac) as i64 - 50;
        let end = start + (span as f64 * len_frac) as i64;
        let ranged = chunk.decode_range(start, end).unwrap();
        let expected: Vec<LogEntry> = entries
            .iter()
            .filter(|e| e.ts > start && e.ts <= end)
            .cloned()
            .collect();
        prop_assert_eq!(ranged, expected);
    }
}
